// Household electricity case study (paper §7): the utility analyzes the
// 30-minute usage distribution across households. Demonstrates the query
// inversion mechanism (§3.3.2): the top consumption bucket is rare, so the
// analyst runs both the native and the inverted query and compares
// accuracy.
//
// Build & run:  ./build/examples/electricity_monitoring

#include <cmath>
#include <cstdio>

#include "core/inversion.h"
#include "system/system.h"
#include "workload/electricity.h"

using namespace privapprox;

namespace {

constexpr size_t kHouseholds = 3000;
constexpr int64_t kWindowMs = 30 * 60 * 1000;

double RunOnce(bool inverted, std::vector<double>* estimates,
               std::vector<double>* truth_out) {
  system::SystemConfig config;
  config.num_clients = kHouseholds;
  config.seed = 21;
  config.invert_answers = inverted;
  system::PrivApproxSystem sys(config);

  workload::ElectricityGenerator generator(5);
  std::vector<double> truth(6, 0.0);
  const auto buckets = workload::ElectricityGenerator::UsageBuckets();
  for (size_t i = 0; i < kHouseholds; ++i) {
    generator.PopulateClient(sys.client(i).database(), 0, kWindowMs,
                             60 * 1000);
    const auto total = sys.client(i).database().Execute(
        "SELECT SUM(kwh) FROM meter", 0, kWindowMs);
    if (const auto bucket = buckets.BucketOf(total[0].AsDouble())) {
      truth[*bucket] += 1.0;
    }
  }

  const core::Query query =
      workload::ElectricityGenerator::MakeUsageQuery(3, kWindowMs, kWindowMs);
  core::ExecutionParams params;
  params.sampling_fraction = 0.9;
  params.randomization = {0.9, 0.6};
  sys.SubmitQuery(query, params);
  sys.RunEpoch(kWindowMs);
  sys.Flush();

  const core::QueryResult& result = sys.results().front().result;
  double loss_sum = 0.0;
  size_t loss_buckets = 0;
  estimates->clear();
  for (size_t b = 0; b < result.buckets.size(); ++b) {
    estimates->push_back(result.buckets[b].estimate.value);
    if (truth[b] > 0.0) {
      loss_sum += std::fabs(result.buckets[b].estimate.value - truth[b]) /
                  truth[b];
      ++loss_buckets;
    }
  }
  if (truth_out != nullptr) {
    *truth_out = truth;
  }
  return loss_buckets == 0 ? 0.0 : loss_sum / static_cast<double>(loss_buckets);
}

}  // namespace

int main() {
  std::printf("Household electricity usage distribution (%zu households, "
              "30-minute window)\n\n",
              kHouseholds);

  std::vector<double> native, inverted, truth;
  const double native_loss = RunOnce(false, &native, &truth);
  const double inverted_loss = RunOnce(true, &inverted, nullptr);

  const auto buckets = workload::ElectricityGenerator::UsageBuckets();
  std::printf("%-12s %10s %10s %10s\n", "bucket(kWh)", "truth", "native",
              "inverted");
  for (size_t b = 0; b < truth.size(); ++b) {
    std::printf("%-12s %10.0f %10.1f %10.1f\n",
                buckets.BucketLabel(b).c_str(), truth[b], native[b],
                inverted[b]);
  }
  std::printf("\nmean accuracy loss: native=%.4f inverted=%.4f\n", native_loss,
              inverted_loss);
  std::printf(
      "(inversion pays off when a bucket's yes-fraction is far from q; "
      "see Fig 5a)\n");
  return 0;
}
