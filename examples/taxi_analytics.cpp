// NYC taxi case study (paper §7): streaming distance-distribution analytics
// over a fleet of taxis, with multiple sliding-window epochs and the
// feedback controller re-tuning the sampling fraction between epochs.
//
// Build & run:  ./build/examples/taxi_analytics

#include <cstdio>

#include "core/budget.h"
#include "core/privacy.h"
#include "system/system.h"
#include "workload/taxi.h"

using namespace privapprox;

int main() {
  constexpr size_t kClients = 2000;
  constexpr int64_t kWindowMs = 60 * 1000;
  constexpr int64_t kSlideMs = 30 * 1000;
  constexpr int kEpochs = 6;

  system::SystemConfig config;
  config.num_clients = kClients;
  config.seed = 15;
  system::PrivApproxSystem sys(config);

  // Each taxi records its own rides locally.
  workload::TaxiGenerator generator(99);
  for (size_t i = 0; i < kClients; ++i) {
    generator.PopulateClient(sys.client(i).database(), /*rides_per_client=*/2,
                             0, kSlideMs);
  }

  const core::Query query =
      workload::TaxiGenerator::MakeDistanceQuery(7, kWindowMs, kSlideMs);
  core::ExecutionParams params;
  params.sampling_fraction = 0.6;
  params.randomization = {0.9, 0.3};  // q near the 33.6% yes-fraction
  sys.SubmitQuery(query, params);

  std::printf("NYC taxi distance distribution, %d sliding-window epochs\n",
              kEpochs);
  std::printf("eps_zk at s=%.2f: %.3f\n\n", params.sampling_fraction,
              core::EpsilonZk(params.randomization,
                              params.sampling_fraction));

  core::FeedbackController feedback(params, /*target_accuracy_loss=*/0.08);
  const auto truth = workload::TaxiGenerator::TrueBucketProbabilities();

  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    const int64_t now = epoch * kSlideMs;
    // New rides stream in during the epoch.
    for (size_t i = 0; i < kClients; ++i) {
      generator.PopulateClient(sys.client(i).database(), 2, now - kSlideMs,
                               now);
      sys.client(i).database().EvictBefore(now - kWindowMs);  // retention
    }
    sys.RunEpoch(now);
    sys.AdvanceWatermark(now);

    for (const auto& windowed : sys.TakeResults()) {
      const core::QueryResult& result = windowed.result;
      // Compare against the generator's closed-form distribution.
      Histogram expected(truth.size());
      for (size_t b = 0; b < truth.size(); ++b) {
        expected.SetCount(b, truth[b] * static_cast<double>(kClients));
      }
      const double loss = result.AccuracyLossAgainst(expected);
      std::printf("window [%6lld, %6lld)  participants=%5zu  "
                  "accuracy-loss=%.3f  s(next)=%.2f\n",
                  static_cast<long long>(windowed.window.start_ms),
                  static_cast<long long>(windowed.window.end_ms),
                  result.participants, loss,
                  feedback.OnEpochCompleted(loss).sampling_fraction);
    }
  }

  // Final flush and one detailed histogram.
  sys.Flush();
  const auto leftovers = sys.TakeResults();
  if (!leftovers.empty()) {
    const core::QueryResult& result = leftovers.back().result;
    std::printf("\nFinal window estimates (population of %zu taxis):\n",
                sys.num_clients());
    for (size_t b = 0; b < result.buckets.size(); ++b) {
      const auto& est = result.buckets[b].estimate;
      std::printf("  %-12s %8.1f +- %6.1f   (true fraction %.3f)\n",
                  query.answer_format.BucketLabel(b).c_str(), est.value,
                  est.error, truth[b]);
    }
  }
  return 0;
}
