// Quickstart: the smallest end-to-end PrivApprox run.
//
// An analyst wants the driving-speed distribution over a fleet of vehicles
// without ever seeing an individual's speed. We build a system with 1,000
// clients, load each client's private speed readings, submit a signed SQL
// query with a privacy budget, run one answering epoch, and print the
// estimated histogram with its confidence intervals next to the ground
// truth the analyst never gets to see.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/privacy.h"
#include "system/system.h"

using namespace privapprox;

int main() {
  // 1. Stand up the system: 1,000 clients, 2 non-colluding proxies.
  system::SystemConfig config;
  config.num_clients = 1000;
  config.num_proxies = 2;
  config.seed = 2017;
  system::PrivApproxSystem sys(config);

  // 2. Each client stores its private data locally (never uploaded).
  Xoshiro256 rng(7);
  std::vector<double> truth_counts(11, 0.0);
  for (size_t i = 0; i < sys.num_clients(); ++i) {
    auto& db = sys.client(i).database();
    auto& table = db.CreateTable("vehicle", {"speed", "location"});
    const double speed = std::min(109.0, 25.0 + 12.0 * rng.NextGaussian());
    table.Insert(/*timestamp_ms=*/500,
                 {localdb::Value(std::max(0.0, speed)),
                  localdb::Value("san_francisco")});
    const size_t bucket =
        std::min<size_t>(10, static_cast<size_t>(std::max(0.0, speed) / 10.0));
    truth_counts[bucket] += 1.0;
  }

  // 3. The analyst formulates the query of §2.2 with 11 speed buckets and
  //    signs it.
  const core::Query query =
      core::QueryBuilder()
          .WithId(1)
          .WithAnalyst(42)
          .WithSql(
              "SELECT speed FROM vehicle WHERE location = 'san_francisco'")
          .WithAnswerFormat(
              core::AnswerFormat::UniformNumeric(0, 100, 10, true))
          .WithFrequencyMs(1000)
          .WithWindowMs(10000)
          .WithSlideMs(10000)
          .Build();

  // 4. Submit with a budget; the initializer derives (s, p, q).
  core::QueryBudget budget;
  budget.max_epsilon = 1.5;            // privacy cap
  budget.max_accuracy_loss = 0.10;     // utility target
  const core::ExecutionParams params = sys.SubmitQuery(query, budget, 0.4);
  std::printf("Initializer chose: s=%.3f  p=%.3f  q=%.3f\n",
              params.sampling_fraction, params.randomization.p,
              params.randomization.q);
  std::printf("Achieved epsilon_dp(after sampling)=%.3f\n\n",
              core::AmplifyBySampling(core::EpsilonDp(params.randomization),
                                      params.sampling_fraction));

  // 5. One answering epoch: sample -> randomize -> split -> transmit ->
  //    join -> decrypt -> window -> estimate.
  const system::EpochStats stats = sys.RunEpoch(/*now_ms=*/5000);
  sys.Flush();
  std::printf("Epoch: %zu/%zu clients participated, %llu shares moved\n\n",
              stats.participants, sys.num_clients(),
              static_cast<unsigned long long>(stats.shares_sent));

  // 6. The analyst reads the windowed result with confidence intervals.
  if (sys.results().empty()) {
    std::printf("No results (did the watermark advance?)\n");
    return 1;
  }
  const core::QueryResult& result = sys.results().front().result;
  std::printf("%-12s %10s %16s %10s\n", "bucket", "estimate", "95%-interval",
              "truth");
  for (size_t b = 0; b < result.buckets.size(); ++b) {
    const auto& est = result.buckets[b].estimate;
    std::printf("%-12s %10.1f [%7.1f,%7.1f] %10.0f\n",
                query.answer_format.BucketLabel(b).c_str(), est.value,
                est.Lower(), est.Upper(), truth_counts[b]);
  }

  // 7. Operations view: the system keeps a metrics registry (counters,
  //    stage latency histograms, broker gauges). MetricsText() is the
  //    Prometheus-style `/metrics` dump; MetricsJson() is the same snapshot
  //    for programmatic scraping.
  std::printf("\n--- /metrics (Prometheus text exposition) ---\n%s",
              sys.MetricsText().c_str());
  return 0;
}
