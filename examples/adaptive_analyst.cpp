// Adaptive analyst session: the §5 feedback loop from the analyst's chair,
// now with two analysts sharing one client fleet under a fleet-wide
// zero-knowledge privacy budget.
//
// Analyst 9 wants the taxi distance distribution within a 6% (mass-
// weighted) accuracy-loss target, starting deliberately cheap at a 10%
// sampling fraction and letting the feedback controller walk s upward.
// Analyst 12 wants the fare distribution and pays for a fixed, much more
// generous budget up front (s = 0.8 with gentler randomization). Both
// queries run concurrently: clients make one shared sampling draw per
// epoch but answer each query through its own randomized-response and
// share streams, and every (query, proxy) pair has its own broker lane.
//
// The fleet budget (SystemConfig::budget.max_epsilon_zk) caps the SUM of
// eps_zk across queries — sequential composition. When analyst 9's
// controller asks for more s than the residual budget allows, the budget
// manager down-samples the update to fit, so the printed s plateaus at
// the cap instead of the target; and a third, greedy exact query (p = 1,
// infinite eps_dp) is refused outright mid-run.
//
// Build & run:  ./build/examples/adaptive_analyst

#include <algorithm>
#include <cstdio>

#include "analyst/analyst.h"
#include "core/budget_manager.h"
#include "core/privacy.h"
#include "workload/taxi.h"

using namespace privapprox;

int main() {
  constexpr size_t kClients = 3000;
  constexpr int64_t kSlideMs = 10 * 1000;
  constexpr int kEpochs = 14;
  constexpr double kTarget = 0.06;
  constexpr double kFleetCap = 7.0;  // total eps_zk across all queries

  system::SystemConfig config;
  config.num_clients = kClients;
  config.seed = 101;
  config.budget.max_epsilon_zk = kFleetCap;
  system::PrivApproxSystem sys(config);

  workload::TaxiGenerator generator(55);
  for (size_t i = 0; i < kClients; ++i) {
    generator.PopulateClient(sys.client(i).database(), 2, 0, kSlideMs);
  }

  // --- Query 1: adaptive distance distribution (analyst 9) -------------
  analyst::Analyst analyst(analyst::AnalystConfig{9, kTarget});
  const core::Query distance_query =
      analyst.NewQuery()
          .WithSql("SELECT distance FROM rides")
          .WithAnswerFormat(workload::TaxiGenerator::DistanceBuckets())
          .WithFrequencyMs(kSlideMs)
          .WithWindowMs(kSlideMs)
          .WithSlideMs(kSlideMs)
          .Build();
  // Deliberately under-sample at first: the analyst pays for as little as
  // possible and lets the controller discover the necessary s.
  core::ExecutionParams cheap;
  cheap.sampling_fraction = 0.10;
  cheap.randomization = {0.9, 0.3};
  analyst.Submit(sys, distance_query, cheap, kTarget);

  // --- Query 2: fixed fare distribution (analyst 12) --------------------
  const core::Query fare_query =
      core::QueryBuilder()
          .WithId((12ULL << 32) | 1)
          .WithAnalyst(12)
          .WithSql("SELECT fare FROM rides")
          .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 60, 6, true))
          .WithFrequencyMs(kSlideMs)
          .WithWindowMs(kSlideMs)
          .WithSlideMs(kSlideMs)
          .Build();
  core::ExecutionParams generous;
  generous.sampling_fraction = 0.80;
  generous.randomization = {0.85, 0.5};
  const core::ExecutionParams fare_admitted =
      sys.SubmitQuery(fare_query, generous);

  core::PrivacyBudgetManager& ledger = sys.budget_manager();
  std::printf(
      "Fleet budget: eps_zk <= %.2f across all queries.\n"
      "  q%llx (distance, adaptive) starts at s=%.2f  eps_zk=%.2f\n"
      "  q%llx (fare, fixed)     admitted at s=%.2f  eps_zk=%.2f%s\n"
      "  spent %.2f, remaining %.2f\n\n",
      kFleetCap, static_cast<unsigned long long>(distance_query.query_id),
      cheap.sampling_fraction,
      core::EpsilonZk(cheap.randomization, cheap.sampling_fraction),
      static_cast<unsigned long long>(fare_query.query_id),
      fare_admitted.sampling_fraction,
      core::EpsilonZk(fare_admitted.randomization,
                      fare_admitted.sampling_fraction),
      fare_admitted.sampling_fraction < generous.sampling_fraction
          ? "  (down-sampled to fit)"
          : "",
      ledger.spent(), ledger.remaining());

  // Public prior analyst 9 steers against.
  const auto probs = workload::TaxiGenerator::TrueBucketProbabilities();
  analyst.set_reference([&](const engine::Window&) {
    Histogram reference(probs.size());
    for (size_t b = 0; b < probs.size(); ++b) {
      reference.SetCount(b, probs[b] * static_cast<double>(kClients));
    }
    return reference;
  });

  std::printf("%6s %12s %8s %8s %12s %10s %10s\n", "epoch", "dist_parts",
              "loss", "s(next)", "fare_parts", "spent", "remaining");
  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    const int64_t now = epoch * kSlideMs;
    for (size_t i = 0; i < kClients; ++i) {
      generator.PopulateClient(sys.client(i).database(), 2, now - kSlideMs,
                               now);
      sys.client(i).database().EvictBefore(now - kSlideMs);
    }
    const auto results = analyst.RunEpoch(sys, now);
    size_t distance_parts = 0;
    size_t fare_parts = 0;
    for (const auto& windowed : results) {
      (windowed.query_id == distance_query.query_id ? distance_parts
                                                    : fare_parts) +=
          windowed.result.participants;
    }
    const double loss = analyst.loss_history().empty()
                            ? 0.0
                            : analyst.loss_history().back();
    const core::ExecutionParams& params = analyst.current_params();
    std::printf("%6d %12zu %7.2f%% %8.2f %12zu %10.2f %10.2f\n", epoch,
                distance_parts, 100.0 * loss, params.sampling_fraction,
                fare_parts, ledger.spent(), ledger.remaining());

    if (epoch == 8) {
      // A third analyst shows up asking for exact answers (p = 1): the
      // base mechanism has infinite eps_dp, so no sampling fraction can
      // fit a finite budget — the admission control refuses it while both
      // running queries are untouched.
      const core::Query greedy =
          core::QueryBuilder()
              .WithId((13ULL << 32) | 1)
              .WithAnalyst(13)
              .WithSql("SELECT distance FROM rides")
              .WithAnswerFormat(workload::TaxiGenerator::DistanceBuckets())
              .WithFrequencyMs(kSlideMs)
              .WithWindowMs(kSlideMs)
              .WithSlideMs(kSlideMs)
              .Build();
      core::ExecutionParams exact;
      exact.sampling_fraction = 1.0;
      exact.randomization = {1.0, 0.5};
      try {
        sys.SubmitQuery(greedy, exact);
      } catch (const core::BudgetExceededError& e) {
        std::printf("   -> exact query from analyst 13 refused: %s\n",
                    e.what());
      }
    }
  }
  std::printf(
      "\nThe controller walks s upward until the measured loss sits at the\n"
      "target — or until the fleet's zero-knowledge budget pinches: every\n"
      "parameter update is re-admitted against eps_zk(q1) + eps_zk(q2) <=\n"
      "%.1f, and an update that does not fit is down-sampled to the residual\n"
      "budget, which is why s can plateau below the controller's ask. Both\n"
      "queries ride the same %zu clients and one shared sampling draw per\n"
      "epoch, but independent randomization streams and broker lanes — so\n"
      "each result is exactly what a single-query run would have produced.\n",
      kFleetCap, kClients);
  return 0;
}
