// Adaptive analyst session: the §5 feedback loop from the analyst's chair.
//
// The analyst wants the taxi distance distribution within a 6% (mass-
// weighted) accuracy-loss target, but starts deliberately cheap at a 10%
// sampling fraction. Each epoch the analyst compares the windowed result
// against a public prior, feeds the measured loss to the controller, and
// the controller redistributes re-tuned parameters to all clients before
// the next epoch — raising s until the target holds, then holding (or
// decaying) it. Everything travels the real paths: announcements through
// the proxies' query topics, answers through sampling / randomization /
// XOR shares / MID join.
//
// Build & run:  ./build/examples/adaptive_analyst

#include <algorithm>
#include <cstdio>

#include "analyst/analyst.h"
#include "core/privacy.h"
#include "workload/taxi.h"

using namespace privapprox;

int main() {
  constexpr size_t kClients = 3000;
  constexpr int64_t kSlideMs = 10 * 1000;
  constexpr int kEpochs = 14;
  constexpr double kTarget = 0.06;

  system::SystemConfig config;
  config.num_clients = kClients;
  config.seed = 101;
  system::PrivApproxSystem sys(config);

  workload::TaxiGenerator generator(55);
  for (size_t i = 0; i < kClients; ++i) {
    generator.PopulateClient(sys.client(i).database(), 2, 0, kSlideMs);
  }

  analyst::Analyst analyst(analyst::AnalystConfig{9, kTarget});
  const core::Query query =
      analyst.NewQuery()
          .WithSql("SELECT distance FROM rides")
          .WithAnswerFormat(workload::TaxiGenerator::DistanceBuckets())
          .WithFrequencyMs(kSlideMs)
          .WithWindowMs(kSlideMs)
          .WithSlideMs(kSlideMs)
          .Build();

  // Deliberately under-sample at first: the analyst pays for as little as
  // possible and lets the controller discover the necessary s.
  core::ExecutionParams cheap;
  cheap.sampling_fraction = 0.10;
  cheap.randomization = {0.9, 0.3};
  analyst.Submit(sys, query, cheap, kTarget);

  std::printf("Query %llx, target weighted loss <= %.0f%%, starting at "
              "s = %.2f (p=%.1f, q=%.1f, eps_zk=%.2f)\n\n",
              static_cast<unsigned long long>(query.query_id),
              100.0 * kTarget, cheap.sampling_fraction,
              cheap.randomization.p, cheap.randomization.q,
              core::EpsilonZk(cheap.randomization, cheap.sampling_fraction));

  // Public prior the analyst steers against.
  const auto probs = workload::TaxiGenerator::TrueBucketProbabilities();
  analyst.set_reference([&](const engine::Window&) {
    Histogram reference(probs.size());
    for (size_t b = 0; b < probs.size(); ++b) {
      reference.SetCount(b, probs[b] * static_cast<double>(kClients));
    }
    return reference;
  });

  std::printf("%6s %14s %10s %10s %12s\n", "epoch", "participants", "loss",
              "s(next)", "eps_zk");
  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    const int64_t now = epoch * kSlideMs;
    for (size_t i = 0; i < kClients; ++i) {
      generator.PopulateClient(sys.client(i).database(), 2, now - kSlideMs,
                               now);
      sys.client(i).database().EvictBefore(now - kSlideMs);
    }
    const auto results = analyst.RunEpoch(sys, now);
    size_t participants = 0;
    for (const auto& windowed : results) {
      participants += windowed.result.participants;
    }
    const double loss = analyst.loss_history().empty()
                            ? 0.0
                            : analyst.loss_history().back();
    const core::ExecutionParams& params = analyst.current_params();
    std::printf("%6d %14zu %9.2f%% %10.2f %12.2f\n", epoch, participants,
                100.0 * loss, params.sampling_fraction,
                core::EpsilonZk(params.randomization,
                                std::min(0.999, params.sampling_fraction)));
  }
  std::printf(
      "\nThe controller walks s upward until the measured loss sits at the\n"
      "target, then holds — each change shipped to all %zu clients through\n"
      "the proxies' query topics (the paper's §5 loop, end to end). Note\n"
      "the privacy ledger: every increase in s raises eps_zk, which is why\n"
      "an analyst would also set a privacy cap (see analyst_test.cc).\n",
      kClients);
  return 0;
}
