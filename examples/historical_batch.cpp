// Historical analytics (paper §3.3.1): stream for several epochs while
// teeing joined answers into the response store, then run batch queries
// over past time ranges under different aggregator-side sampling budgets
// (the "spot market" knob).
//
// Build & run:  ./build/examples/historical_batch

#include <cstdio>

#include "system/system.h"
#include "workload/taxi.h"

using namespace privapprox;

int main() {
  constexpr size_t kClients = 1500;
  constexpr int64_t kSlideMs = 10 * 1000;
  constexpr int kEpochs = 8;

  system::SystemConfig config;
  config.num_clients = kClients;
  config.seed = 33;
  config.historical.enabled = true;
  system::PrivApproxSystem sys(config);

  workload::TaxiGenerator generator(44);
  const core::Query query = workload::TaxiGenerator::MakeDistanceQuery(
      5, /*window_ms=*/kSlideMs, /*slide_ms=*/kSlideMs);
  core::ExecutionParams params;
  params.sampling_fraction = 0.8;
  params.randomization = {0.9, 0.3};
  sys.SubmitQuery(query, params);

  // Stream kEpochs epochs; the aggregator tees every joined answer.
  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    const int64_t now = epoch * kSlideMs;
    for (size_t i = 0; i < kClients; ++i) {
      generator.PopulateClient(sys.client(i).database(), 1, now - kSlideMs,
                               now);
    }
    sys.RunEpoch(now);
    sys.AdvanceWatermark(now);
  }
  sys.Flush();
  std::printf("Streamed %d epochs; %zu windowed results emitted.\n\n",
              kEpochs, sys.results().size());

  // Batch analytics over the first half vs the whole run, under shrinking
  // budgets.
  const int64_t half = kEpochs / 2 * kSlideMs + kSlideMs;
  struct Case {
    const char* label;
    int64_t from, to;
    double budget;
  };
  const Case cases[] = {
      {"full range, full budget", 0, (kEpochs + 1) * kSlideMs, 1.0},
      {"full range, 30% budget", 0, (kEpochs + 1) * kSlideMs, 0.3},
      {"full range, 10% budget", 0, (kEpochs + 1) * kSlideMs, 0.1},
      {"first half, full budget", 0, half, 1.0},
  };
  std::printf("%-26s %12s %14s %16s\n", "batch query", "answers",
              "bucket0 est", "bucket0 95% CI");
  for (const Case& c : cases) {
    const core::QueryResult result =
        sys.RunHistorical(c.from, c.to, aggregator::BatchQueryBudget{c.budget});
    const auto& est = result.buckets[0].estimate;
    std::printf("%-26s %12zu %14.1f [%7.1f,%8.1f]\n", c.label,
                result.participants, est.value, est.Lower(), est.Upper());
  }
  std::printf(
      "\nNote how smaller aggregator budgets process fewer stored answers\n"
      "and report proportionally wider confidence intervals.\n");
  return 0;
}
