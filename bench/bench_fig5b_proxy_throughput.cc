// Figure 5(b): proxy throughput vs the answer bit-vector size A[n].
//
// Measures the real transmission path: clients' encrypted shares are
// produced into the proxy's inbound topic and Forward() moves them to the
// outbound topic — the only per-answer work a PrivApprox proxy does.
// Registered as a google-benchmark so the per-size timings come from steady-
// state measurement, then summarized as the paper's responses/sec series.
//
// Expected shape: throughput inversely proportional to the bit-vector size.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "broker/broker.h"
#include "crypto/xor_cipher.h"
#include "proxy/proxy.h"

using namespace privapprox;

namespace {

// Pre-build a batch of encoded shares of the given answer size.
std::vector<crypto::MessageShare> MakeShares(size_t bit_vector_size,
                                             size_t count) {
  crypto::XorSplitter splitter(2, crypto::ChaCha20Rng::FromSeed(1, 0));
  const std::vector<uint8_t> payload(
      crypto::AnswerMessage::WireSize(bit_vector_size), 0xAB);
  std::vector<crypto::MessageShare> shares;
  shares.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    shares.push_back(splitter.Split(payload)[0]);
  }
  return shares;
}

void BM_ProxyForward(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  constexpr size_t kBatch = 20000;
  const auto shares = MakeShares(bits, kBatch);
  uint64_t total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    broker::Broker b;
    proxy::Proxy proxy(proxy::ProxyConfig{0, 4}, b);
    for (const auto& share : shares) {
      proxy.Receive(share, 0);
    }
    state.ResumeTiming();
    total += proxy.Forward();
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
  state.counters["responses/sec"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_ProxyForward)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Figure 5(b): proxy throughput vs answer bit-vector size.\n"
      "Expected shape: responses/sec inversely proportional to A[n] size\n"
      "(paper: ~1.8M/s at 100 bits falling toward ~0.15M/s at 10^4 bits on\n"
      "their 3-node cluster; absolute numbers here are single-host).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
