// Table 2: computational overhead of crypto operations (operations/sec) —
// XOR (PrivApprox) vs RSA, Goldwasser-Micali, and Paillier with 1024-bit
// keys, encryption and decryption.
//
// All four schemes are real implementations over our own bignum substrate.
// The paper measured a phone, a laptop, and a 32-core server; we measure
// this host and print the paper's server column alongside. The result that
// matters is the shape: XOR beats the public-key schemes by 3-5 orders of
// magnitude, which is why PrivApprox can run on resource-constrained
// clients.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bignum/biguint.h"
#include "common/rng.h"
#include "crypto/goldwasser_micali.h"
#include "crypto/paillier.h"
#include "crypto/rsa.h"
#include "crypto/xor_cipher.h"

using namespace privapprox;

namespace {

constexpr size_t kKeyBits = 1024;
constexpr size_t kMessageBytes = 128;  // one 1024-bit block

Xoshiro256& Rng() {
  static Xoshiro256 rng(7);
  return rng;
}

const crypto::RsaKeyPair& RsaKey() {
  static const crypto::RsaKeyPair key =
      crypto::RsaKeyPair::Generate(Rng(), kKeyBits);
  return key;
}

const crypto::GoldwasserMicaliKeyPair& GmKey() {
  static const crypto::GoldwasserMicaliKeyPair key =
      crypto::GoldwasserMicaliKeyPair::Generate(Rng(), kKeyBits);
  return key;
}

const crypto::PaillierKeyPair& PaillierKey() {
  static const crypto::PaillierKeyPair key =
      crypto::PaillierKeyPair::Generate(Rng(), kKeyBits);
  return key;
}

void BM_XorEncrypt(benchmark::State& state) {
  crypto::XorSplitter splitter(2, crypto::ChaCha20Rng::FromSeed(1, 0));
  const std::vector<uint8_t> message(kMessageBytes, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(splitter.Split(message));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XorEncrypt);

void BM_XorDecrypt(benchmark::State& state) {
  crypto::XorSplitter splitter(2, crypto::ChaCha20Rng::FromSeed(1, 0));
  const auto shares = splitter.Split(std::vector<uint8_t>(kMessageBytes, 0x5A));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::XorSplitter::Combine(shares));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XorDecrypt);

void BM_RsaEncrypt(benchmark::State& state) {
  const auto& key = RsaKey();
  const auto m = bignum::BigUint::RandomBelow(Rng(), key.modulus());
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.Encrypt(m));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RsaEncrypt);

void BM_RsaDecrypt(benchmark::State& state) {
  const auto& key = RsaKey();
  const auto c = key.Encrypt(bignum::BigUint::RandomBelow(Rng(), key.modulus()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.Decrypt(c));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RsaDecrypt);

void BM_GoldwasserMicaliEncrypt(benchmark::State& state) {
  const auto& key = GmKey();
  // One crypto operation = one bit encryption (the unit the compared system
  // uses per answer bit).
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.EncryptBit(true, Rng()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoldwasserMicaliEncrypt);

void BM_GoldwasserMicaliDecrypt(benchmark::State& state) {
  const auto& key = GmKey();
  const auto c = key.EncryptBit(true, Rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.DecryptBit(c));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoldwasserMicaliDecrypt);

void BM_PaillierEncrypt(benchmark::State& state) {
  const auto& key = PaillierKey();
  const auto m = bignum::BigUint::RandomBelow(Rng(), key.modulus());
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.Encrypt(m, Rng()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PaillierEncrypt);

void BM_PaillierDecrypt(benchmark::State& state) {
  const auto& key = PaillierKey();
  const auto c =
      key.Encrypt(bignum::BigUint::RandomBelow(Rng(), key.modulus()), Rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.Decrypt(c));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PaillierDecrypt);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Table 2: crypto overhead (ops/sec; 1024-bit keys; this host).\n"
      "Paper's server column for reference (ops/sec):\n"
      "  encryption:  RSA 4,909 | GM 22,902 | Paillier 579 | XOR 1,351,937\n"
      "  decryption:  RSA   859 | GM  7,068 | Paillier 309 | XOR 22,678,285\n"
      "Shape to reproduce: XOR >> GM > RSA >> Paillier, with XOR 3-5 orders\n"
      "of magnitude ahead.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
