// Table 2: computational overhead of crypto operations (operations/sec) —
// XOR (PrivApprox) vs RSA, Goldwasser-Micali, and Paillier with 1024-bit
// keys, encryption and decryption.
//
// All four schemes are real implementations over our own bignum substrate.
// The paper measured a phone, a laptop, and a 32-core server; we measure
// this host and print the paper's server column alongside. The result that
// matters is the shape: XOR beats the public-key schemes by 3-5 orders of
// magnitude, which is why PrivApprox can run on resource-constrained
// clients.
//
// The SIMD section benchmarks the two primitives under the XOR scheme —
// ChaCha20 keystream generation and the bulk XOR — once per compiled-in
// dispatch tier (keystream_<isa> / xor_<isa> rows, bytes/sec) plus the
// dispatched default. A JSON row with per-ISA GB/s and the best-ISA/scalar
// speedup ratios is printed last and appended to a trajectory file
// (--json-out=PATH, default BENCH_crypto.json, empty disables), so CI can
// assert the vector kernels actually pay off on the host they ran on.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bignum/biguint.h"
#include "common/rng.h"
#include "common/simd_dispatch.h"
#include "common/xor_bytes.h"
#include "crypto/chacha20_simd.h"
#include "crypto/goldwasser_micali.h"
#include "crypto/paillier.h"
#include "crypto/rsa.h"
#include "crypto/xor_cipher.h"

using namespace privapprox;

namespace {

constexpr size_t kKeyBits = 1024;
constexpr size_t kMessageBytes = 128;  // one 1024-bit block

// SIMD primitive working-set: big enough that the wide kernels run almost
// entirely in their vector loops, small enough to stay L1/L2-resident so
// the rows measure compute, not memory bandwidth.
constexpr size_t kKeystreamBlocks = 256;  // 16 KiB per call
constexpr size_t kXorBytes = 16384;

Xoshiro256& Rng() {
  static Xoshiro256 rng(7);
  return rng;
}

const crypto::RsaKeyPair& RsaKey() {
  static const crypto::RsaKeyPair key =
      crypto::RsaKeyPair::Generate(Rng(), kKeyBits);
  return key;
}

const crypto::GoldwasserMicaliKeyPair& GmKey() {
  static const crypto::GoldwasserMicaliKeyPair key =
      crypto::GoldwasserMicaliKeyPair::Generate(Rng(), kKeyBits);
  return key;
}

const crypto::PaillierKeyPair& PaillierKey() {
  static const crypto::PaillierKeyPair key =
      crypto::PaillierKeyPair::Generate(Rng(), kKeyBits);
  return key;
}

void BM_XorEncrypt(benchmark::State& state) {
  crypto::XorSplitter splitter(2, crypto::ChaCha20Rng::FromSeed(1, 0));
  const std::vector<uint8_t> message(kMessageBytes, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(splitter.Split(message));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XorEncrypt);

void BM_XorDecrypt(benchmark::State& state) {
  crypto::XorSplitter splitter(2, crypto::ChaCha20Rng::FromSeed(1, 0));
  const auto shares = splitter.Split(std::vector<uint8_t>(kMessageBytes, 0x5A));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::XorSplitter::Combine(shares));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XorDecrypt);

void BM_RsaEncrypt(benchmark::State& state) {
  const auto& key = RsaKey();
  const auto m = bignum::BigUint::RandomBelow(Rng(), key.modulus());
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.Encrypt(m));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RsaEncrypt);

void BM_RsaDecrypt(benchmark::State& state) {
  const auto& key = RsaKey();
  const auto c = key.Encrypt(bignum::BigUint::RandomBelow(Rng(), key.modulus()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.Decrypt(c));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RsaDecrypt);

void BM_GoldwasserMicaliEncrypt(benchmark::State& state) {
  const auto& key = GmKey();
  // One crypto operation = one bit encryption (the unit the compared system
  // uses per answer bit).
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.EncryptBit(true, Rng()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoldwasserMicaliEncrypt);

void BM_GoldwasserMicaliDecrypt(benchmark::State& state) {
  const auto& key = GmKey();
  const auto c = key.EncryptBit(true, Rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.DecryptBit(c));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoldwasserMicaliDecrypt);

void BM_PaillierEncrypt(benchmark::State& state) {
  const auto& key = PaillierKey();
  const auto m = bignum::BigUint::RandomBelow(Rng(), key.modulus());
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.Encrypt(m, Rng()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PaillierEncrypt);

void BM_PaillierDecrypt(benchmark::State& state) {
  const auto& key = PaillierKey();
  const auto c =
      key.Encrypt(bignum::BigUint::RandomBelow(Rng(), key.modulus()), Rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.Decrypt(c));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PaillierDecrypt);

// ------------------------------------------------ SIMD keystream / XOR rows

void KeystreamBody(benchmark::State& state, simd::Isa isa, bool dispatched) {
  std::array<uint8_t, 32> key{};
  for (int i = 0; i < 32; ++i) {
    key[i] = static_cast<uint8_t>(i * 7);
  }
  const std::array<uint8_t, 12> nonce = {1, 2, 3, 4,  5,  6,
                                         7, 8, 9, 10, 11, 12};
  std::vector<uint8_t> out(kKeystreamBlocks * 64);
  uint32_t counter = 0;
  for (auto _ : state) {
    if (dispatched) {
      crypto::ChaCha20BlocksInto(out.data(), key, nonce, counter,
                                 kKeystreamBlocks);
    } else {
      crypto::ChaCha20BlocksIntoWith(isa, out.data(), key, nonce, counter,
                                     kKeystreamBlocks);
    }
    counter += static_cast<uint32_t>(kKeystreamBlocks);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(out.size()));
}

void XorBody(benchmark::State& state, simd::Isa isa, bool dispatched) {
  std::vector<uint8_t> dst(kXorBytes);
  std::vector<uint8_t> src(kXorBytes);
  for (size_t i = 0; i < kXorBytes; ++i) {
    dst[i] = static_cast<uint8_t>(i * 131);
    src[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  for (auto _ : state) {
    if (dispatched) {
      XorBytesInPlace(dst.data(), src.data(), kXorBytes);
    } else {
      XorBytesInPlaceWith(isa, dst.data(), src.data(), kXorBytes);
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kXorBytes));
}

void RegisterSimdBenchmarks() {
  for (const simd::Isa isa : simd::AvailableIsas()) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Keystream/") + simd::IsaName(isa)).c_str(),
        [isa](benchmark::State& state) { KeystreamBody(state, isa, false); });
  }
  benchmark::RegisterBenchmark(
      "BM_Keystream/dispatched", [](benchmark::State& state) {
        KeystreamBody(state, simd::Isa::kScalar, true);
      });
  for (const simd::Isa isa : simd::AvailableIsas()) {
    benchmark::RegisterBenchmark(
        (std::string("BM_XorInPlace/") + simd::IsaName(isa)).c_str(),
        [isa](benchmark::State& state) { XorBody(state, isa, false); });
  }
  benchmark::RegisterBenchmark(
      "BM_XorInPlace/dispatched", [](benchmark::State& state) {
        XorBody(state, simd::Isa::kScalar, true);
      });
}

// Self-timed bytes/sec for the JSON artifact: repeat the 16 KiB primitive
// until enough wall time has accumulated that the rate is stable. Separate
// from the google-benchmark rows so the artifact does not depend on
// benchmark-library output parsing.
double MeasureKeystreamBytesPerSec(simd::Isa isa) {
  std::array<uint8_t, 32> key{};
  for (int i = 0; i < 32; ++i) {
    key[i] = static_cast<uint8_t>(i * 7);
  }
  const std::array<uint8_t, 12> nonce = {1, 2, 3, 4,  5,  6,
                                         7, 8, 9, 10, 11, 12};
  std::vector<uint8_t> out(kKeystreamBlocks * 64);
  uint32_t counter = 0;
  // Warm-up pass (page in the buffer, settle turbo).
  crypto::ChaCha20BlocksIntoWith(isa, out.data(), key, nonce, counter,
                                 kKeystreamBlocks);
  size_t bytes = 0;
  const auto start = std::chrono::steady_clock::now();
  double seconds = 0.0;
  do {
    for (int rep = 0; rep < 16; ++rep) {
      crypto::ChaCha20BlocksIntoWith(isa, out.data(), key, nonce, counter,
                                     kKeystreamBlocks);
      counter += static_cast<uint32_t>(kKeystreamBlocks);
      bytes += out.size();
    }
    seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (seconds < 0.2);
  benchmark::DoNotOptimize(out.data());
  return static_cast<double>(bytes) / seconds;
}

double MeasureXorBytesPerSec(simd::Isa isa) {
  std::vector<uint8_t> dst(kXorBytes);
  std::vector<uint8_t> src(kXorBytes);
  for (size_t i = 0; i < kXorBytes; ++i) {
    dst[i] = static_cast<uint8_t>(i * 131);
    src[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  XorBytesInPlaceWith(isa, dst.data(), src.data(), kXorBytes);
  size_t bytes = 0;
  const auto start = std::chrono::steady_clock::now();
  double seconds = 0.0;
  do {
    for (int rep = 0; rep < 64; ++rep) {
      XorBytesInPlaceWith(isa, dst.data(), src.data(), kXorBytes);
      bytes += kXorBytes;
    }
    seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (seconds < 0.2);
  benchmark::DoNotOptimize(dst.data());
  return static_cast<double>(bytes) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  // Parse and strip our own flag before benchmark::Initialize sees argv.
  std::string json_out = "BENCH_crypto.json";
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  std::printf(
      "Table 2: crypto overhead (ops/sec; 1024-bit keys; this host).\n"
      "Paper's server column for reference (ops/sec):\n"
      "  encryption:  RSA 4,909 | GM 22,902 | Paillier 579 | XOR 1,351,937\n"
      "  decryption:  RSA   859 | GM  7,068 | Paillier 309 | XOR 22,678,285\n"
      "Shape to reproduce: XOR >> GM > RSA >> Paillier, with XOR 3-5 orders\n"
      "of magnitude ahead.\n"
      "SIMD rows: ChaCha20 keystream + bulk XOR per dispatch tier\n"
      "(active tier: %s).\n\n",
      simd::IsaName(simd::ActiveIsa()));
  RegisterSimdBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // JSON trajectory row: per-ISA GB/s plus the best-ISA/scalar ratios.
  const auto isas = simd::AvailableIsas();
  std::string keystream_json;
  std::string xor_json;
  double keystream_scalar = 0.0;
  double keystream_best = 0.0;
  double xor_scalar = 0.0;
  double xor_best = 0.0;
  char buf[256];
  for (size_t i = 0; i < isas.size(); ++i) {
    const double ks = MeasureKeystreamBytesPerSec(isas[i]);
    const double xr = MeasureXorBytesPerSec(isas[i]);
    if (isas[i] == simd::Isa::kScalar) {
      keystream_scalar = ks;
      xor_scalar = xr;
    }
    keystream_best = std::max(keystream_best, ks);
    xor_best = std::max(xor_best, xr);
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%.3f", i == 0 ? "" : ",",
                  simd::IsaName(isas[i]), ks / 1e9);
    keystream_json += buf;
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%.3f", i == 0 ? "" : ",",
                  simd::IsaName(isas[i]), xr / 1e9);
    xor_json += buf;
  }
  std::string json = "{\"bench\":\"table2_crypto\",\"active\":\"";
  json += simd::IsaName(simd::ActiveIsa());
  json += "\",\"keystream_gbps\":{" + keystream_json + "}";
  json += ",\"xor_gbps\":{" + xor_json + "}";
  std::snprintf(buf, sizeof(buf),
                ",\"keystream_best_ratio\":%.3f,\"xor_best_ratio\":%.3f}",
                keystream_scalar > 0.0 ? keystream_best / keystream_scalar
                                       : 0.0,
                xor_scalar > 0.0 ? xor_best / xor_scalar : 0.0);
  json += buf;
  std::printf("\n%s\n", json.c_str());
  if (!json_out.empty()) {
    if (std::FILE* f = std::fopen(json_out.c_str(), "a")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "warning: cannot append to %s\n", json_out.c_str());
    }
  }
  return 0;
}
