// Table 1: utility (accuracy loss eta) and privacy (zero-knowledge level
// eps_zk, tech report Eq 19) of query results for the nine (p, q)
// randomization settings. Setup per §6 #I: 10,000 original answers, 60%
// "Yes", sampling parameter s = 0.6.
//
// Prints the same rows as the paper's Table 1 with the paper's values
// alongside for comparison.

#include <cstdio>

#include "bench_util.h"
#include "core/privacy.h"

using namespace privapprox;

int main() {
  struct PaperRow {
    double p, q, eta, eps;
  };
  const PaperRow paper[] = {
      {0.3, 0.3, 0.0278, 1.7047}, {0.3, 0.6, 0.0262, 1.3862},
      {0.3, 0.9, 0.0268, 1.2527}, {0.6, 0.3, 0.0141, 2.5649},
      {0.6, 0.6, 0.0128, 2.0476}, {0.6, 0.9, 0.0136, 1.7917},
      {0.9, 0.3, 0.0098, 4.1820}, {0.9, 0.6, 0.0079, 3.5263},
      {0.9, 0.9, 0.0102, 3.1570},
  };

  std::printf("Table 1: utility and privacy vs randomization parameters\n");
  std::printf("(10,000 answers, 60%% yes, s = 0.6; %d trials per cell)\n\n",
              400);
  std::printf("%4s %4s | %12s %12s | %12s %12s\n", "p", "q", "eta(meas)",
              "eta(paper)", "eps(meas)", "eps(paper)");
  std::printf("---------+---------------------------+------------------------"
              "---\n");

  Xoshiro256 rng(1);
  for (const PaperRow& row : paper) {
    bench::SimulationConfig config;
    config.population = 10000;
    config.yes_fraction = 0.6;
    config.sampling_fraction = 0.6;
    config.p = row.p;
    config.q = row.q;
    config.trials = 400;
    const double eta = bench::MeasureAccuracyLoss(config, rng);
    const double eps =
        core::EpsilonZk(core::RandomizationParams{row.p, row.q}, 0.6);
    std::printf("%4.1f %4.1f | %12.4f %12.4f | %12.4f %12.4f\n", row.p, row.q,
                eta, row.eta, eps, row.eps);
  }
  std::printf(
      "\nShape checks: eta decreases as p rises; eta is lowest when q is\n"
      "closest to the 60%% yes-fraction; eps grows with p and falls with "
      "q.\n");
  return 0;
}
