// End-to-end epoch pipeline throughput: barrier vs streaming mode at
// 1/2/4/N worker threads.
//
// Runs the full client -> proxy -> aggregator epoch loop (system/system.cc)
// on the Table 3 configuration — 100k clients, sampling fraction s=0.6,
// (p, q) = (0.9, 0.6), the 11-bucket speed query, two proxies — and reports
// clients/sec and shares/sec per (mode, thread count) row, the speedup over
// the single-threaded barrier run, and the streaming/barrier throughput
// ratio at equal thread counts. Both modes are bit-deterministic and
// produce identical results (tests/parallel_epoch_test.cc), so every row
// processes identical work. Each row also reports heap allocations per
// share across the timed epochs (this binary links the counting global
// allocator from common/alloc_counter.h), pinning down the zero-copy
// share path's allocation bill.
//
// The last line printed is a single JSON row, also appended to a trajectory
// file so later PRs can diff epoch-throughput movement. Flags:
// --clients=N --epochs=N --json-out=PATH --metrics=0|1 --agg-shards=N
// --queries=N (defaults 100000 / 3 / BENCH_pipeline.json / 0 / 0 / 1;
// --json-out= empty disables the file append). --metrics=1 turns on the
// full observability layer (stage histograms, per-proxy families, channel
// depth gauges) so CI can check its overhead stays under 5%; core counters
// are always on either way. --agg-shards pins the aggregator join shard
// count; 0 (the default) follows the worker thread count of each row, so
// every row is tagged with the shard count it actually ran. --queries runs
// N identical concurrent queries (QIDs 1..N) over the shared fleet, so a
// 2-query row shows the per-lane cost of the multi-query runtime; the JSON
// row carries a "queries" tag. The row is also tagged "simd" with the
// active crypto dispatch tier (common/simd_dispatch.h), so trajectory diffs
// attribute throughput movement to the PRIVAPPROX_SIMD setting in force.
// --transport=inproc|tcp (default inproc) picks the MessageBus backend:
// tcp runs the same fleet through real loopback sockets — two proxy
// daemons plus an aggregator daemon driven by a FleetDriver — and reports
// the loopback shares/sec figure as a single row; the JSON row carries a
// "transport" tag either way so trajectory diffs never mix the two.
// --durability=off|on (default off) spills every broker topic through the
// durable partition log (storage/partition_log.h) under a throwaway temp
// dir, with --fsync=never|on_rotate|every_n_records|always picking the
// sync policy — so the trajectory records what the durable write path
// costs at each policy. The JSON row carries "durability" and "fsync" tags
// so durable rows never mix with memory-only ones.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/alloc_counter.h"
#include "common/simd_dispatch.h"
#include "deploy/aggregator_daemon.h"
#include "deploy/fleet_driver.h"
#include "deploy/proxy_daemon.h"
#include "storage/partition_log.h"
#include "system/system.h"

using namespace privapprox;

namespace {

struct BenchConfig {
  size_t clients = 100000;
  size_t epochs = 3;
  std::string json_out = "BENCH_pipeline.json";
  bool metrics = false;   // full observability layer on (--metrics=1)
  size_t agg_shards = 0;  // aggregator join shards; 0 = worker thread count
  size_t queries = 1;     // concurrent queries sharing the fleet
  std::string transport = "inproc";  // "inproc" | "tcp" (loopback daemons)
  bool durability = false;      // spill topics through the durable log
  std::string fsync = "never";  // partition-log fsync policy when durable
};

// A throwaway data_dir for one durable bench row, wiped on scope exit so
// rows never replay each other's logs.
class ScratchDataDir {
 public:
  explicit ScratchDataDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("privapprox_bench_" + std::to_string(getpid()) + "_" + tag);
    std::filesystem::remove_all(path_);
  }
  ~ScratchDataDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

struct Row {
  system::EpochPipelineMode mode = system::EpochPipelineMode::kBarrier;
  std::string label;  // mode name, or "tcp" for the socket row
  size_t threads = 0;
  double seconds = 0.0;
  double clients_per_sec = 0.0;
  double shares_per_sec = 0.0;
  uint64_t participants = 0;
  uint64_t shares_consumed = 0;
  uint64_t heap_allocs = 0;  // across the timed epochs (counting allocator)
  double allocs_per_share = 0.0;
  size_t agg_shards = 0;  // resolved aggregator shard count for this row
};

const char* ModeName(system::EpochPipelineMode mode) {
  return mode == system::EpochPipelineMode::kBarrier ? "barrier" : "streaming";
}

core::Query SpeedQuery(uint64_t qid) {
  return core::QueryBuilder()
      .WithId(qid)
      .WithSql("SELECT speed FROM vehicle")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 100, 10, true))
      .WithFrequencyMs(1000)
      .WithWindowMs(60000)
      .WithSlideMs(60000)
      .Build();
}

Row RunOne(system::EpochPipelineMode mode, size_t threads,
           const BenchConfig& bench) {
  system::SystemConfig config;
  config.num_clients = bench.clients;
  config.num_proxies = 2;
  config.seed = 42;
  config.pipeline.num_worker_threads = threads;
  config.pipeline.mode = mode;
  config.aggregator.num_shards = bench.agg_shards;
  config.metrics.enabled = bench.metrics;
  const ScratchDataDir data_dir(std::string(ModeName(mode)) + "_" +
                                std::to_string(threads));
  if (bench.durability) {
    config.broker.data_dir = data_dir.str();
    config.broker.log.fsync = storage::ParseFsyncPolicy(bench.fsync);
  }
  system::PrivApproxSystem sys(config);
  for (size_t i = 0; i < bench.clients; ++i) {
    auto& db = sys.client(i).database();
    auto& table = db.CreateTable("vehicle", {"speed"});
    table.Insert(500,
                 {localdb::Value(static_cast<double>((i * 13) % 100))});
  }
  core::ExecutionParams params;
  params.sampling_fraction = 0.6;
  params.randomization = {0.9, 0.6};
  // N concurrent queries over the same column: every query pays the full
  // RR/split/lane/join bill, so the row measures multi-query scaling.
  for (size_t q = 1; q <= bench.queries; ++q) {
    sys.SubmitQuery(SpeedQuery(q), params);
  }

  // Warm-up epoch: faults in lazily-built state outside the timed region.
  sys.RunEpoch(1000);

  Row row;
  row.mode = mode;
  row.label = ModeName(mode);
  row.threads = sys.num_worker_threads();
  row.agg_shards =
      bench.agg_shards != 0 ? bench.agg_shards : sys.num_worker_threads();
  const uint64_t allocs_before = AllocCounter::Count();
  const auto start = std::chrono::steady_clock::now();
  for (size_t e = 0; e < bench.epochs; ++e) {
    const system::EpochStats stats =
        sys.RunEpoch(2000 + static_cast<int64_t>(e) * 1000);
    row.participants += stats.participants;
    row.shares_consumed += stats.shares_consumed;
  }
  const auto end = std::chrono::steady_clock::now();
  row.seconds = std::chrono::duration<double>(end - start).count();
  row.heap_allocs = AllocCounter::Count() - allocs_before;
  row.allocs_per_share =
      row.shares_consumed == 0
          ? 0.0
          : static_cast<double>(row.heap_allocs) /
                static_cast<double>(row.shares_consumed);
  const double total_clients =
      static_cast<double>(bench.clients) * static_cast<double>(bench.epochs);
  row.clients_per_sec = total_clients / row.seconds;
  row.shares_per_sec =
      static_cast<double>(row.shares_consumed) / row.seconds;
  return row;
}

// The same fleet/query configuration pushed through real loopback TCP: two
// proxy daemons and one aggregator daemon on ephemeral ports, driven by a
// FleetDriver. Single-threaded by construction (the daemons' epoll loops do
// the socket work; epoch sequencing is the driver thread), so the row is
// the loopback shares/sec figure, not a scaling curve.
Row RunOneTcp(const BenchConfig& bench) {
  const ScratchDataDir data_dir("tcp");
  std::vector<std::unique_ptr<deploy::ProxyDaemon>> proxyds;
  std::vector<deploy::Endpoint> proxy_endpoints;
  for (size_t j = 0; j < 2; ++j) {
    deploy::ProxyDaemonConfig config;
    config.proxy_index = j;
    if (bench.durability) {
      config.data_dir = data_dir.str() + "/proxyd" + std::to_string(j);
      config.log.fsync = storage::ParseFsyncPolicy(bench.fsync);
    }
    proxyds.push_back(std::make_unique<deploy::ProxyDaemon>(config));
    proxyds.back()->Start();
    proxy_endpoints.push_back(
        deploy::Endpoint{"127.0.0.1", proxyds.back()->port()});
  }
  deploy::AggregatorDaemonConfig agg_config;
  agg_config.proxies = proxy_endpoints;
  agg_config.population = bench.clients;
  agg_config.num_shards = bench.agg_shards == 0 ? 1 : bench.agg_shards;
  deploy::AggregatorDaemon aggregatord(agg_config);
  aggregatord.Start();

  deploy::FleetDriverConfig fleet_config;
  fleet_config.num_clients = bench.clients;
  fleet_config.seed = 42;
  fleet_config.proxies = proxy_endpoints;
  fleet_config.aggregator = deploy::Endpoint{"127.0.0.1", aggregatord.port()};
  deploy::FleetDriver fleet(fleet_config);
  for (size_t i = 0; i < bench.clients; ++i) {
    auto& db = fleet.client(i).database();
    auto& table = db.CreateTable("vehicle", {"speed"});
    table.Insert(500,
                 {localdb::Value(static_cast<double>((i * 13) % 100))});
  }
  core::ExecutionParams params;
  params.sampling_fraction = 0.6;
  params.randomization = {0.9, 0.6};
  for (size_t q = 1; q <= bench.queries; ++q) {
    fleet.SubmitQuery(SpeedQuery(q), params);
  }

  // Warm-up epoch: faults in lazily-built lanes and socket buffers.
  fleet.RunEpoch(1000);

  Row row;
  row.label = "tcp";
  row.threads = 1;
  row.agg_shards = agg_config.num_shards;
  const uint64_t allocs_before = AllocCounter::Count();
  const auto start = std::chrono::steady_clock::now();
  for (size_t e = 0; e < bench.epochs; ++e) {
    const deploy::FleetEpochStats stats =
        fleet.RunEpoch(2000 + static_cast<int64_t>(e) * 1000);
    row.participants += stats.participants;
    row.shares_consumed += stats.shares_consumed;
  }
  const auto end = std::chrono::steady_clock::now();
  row.seconds = std::chrono::duration<double>(end - start).count();
  row.heap_allocs = AllocCounter::Count() - allocs_before;
  row.allocs_per_share =
      row.shares_consumed == 0
          ? 0.0
          : static_cast<double>(row.heap_allocs) /
                static_cast<double>(row.shares_consumed);
  const double total_clients =
      static_cast<double>(bench.clients) * static_cast<double>(bench.epochs);
  row.clients_per_sec = total_clients / row.seconds;
  row.shares_per_sec =
      static_cast<double>(row.shares_consumed) / row.seconds;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig bench;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      bench.clients = static_cast<size_t>(std::atoll(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      bench.epochs = static_cast<size_t>(std::atoll(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      bench.json_out = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      bench.metrics = std::atoi(argv[i] + 10) != 0;
    } else if (std::strncmp(argv[i], "--agg-shards=", 13) == 0) {
      bench.agg_shards = static_cast<size_t>(std::atoll(argv[i] + 13));
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      bench.queries = static_cast<size_t>(std::atoll(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      bench.transport = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--durability=", 13) == 0) {
      bench.durability = std::strcmp(argv[i] + 13, "on") == 0;
      if (!bench.durability && std::strcmp(argv[i] + 13, "off") != 0) {
        std::fprintf(stderr, "--durability must be 'off' or 'on'\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--fsync=", 8) == 0) {
      bench.fsync = argv[i] + 8;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--clients=N] [--epochs=N] [--json-out=PATH] "
                   "[--metrics=0|1] [--agg-shards=N] [--queries=N] "
                   "[--transport=inproc|tcp] [--durability=off|on] "
                   "[--fsync=POLICY]\n",
                   argv[0]);
      return 1;
    }
  }
  if (bench.queries == 0) {
    std::fprintf(stderr, "--queries must be >= 1\n");
    return 1;
  }
  if (bench.transport != "inproc" && bench.transport != "tcp") {
    std::fprintf(stderr, "--transport must be 'inproc' or 'tcp'\n");
    return 1;
  }
  try {
    storage::ParseFsyncPolicy(bench.fsync);  // validate before any row runs
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  std::vector<size_t> thread_counts{1, 2, 4};
  if (hw > 4) {
    thread_counts.push_back(hw);
  }

  std::vector<Row> rows;
  double barrier_base_seconds = 0.0;
  if (bench.transport == "tcp") {
    std::printf(
        "Epoch pipeline throughput over loopback TCP (Table 3 config:\n"
        "%zu clients, s=0.6, p=0.9 q=0.6, 11 buckets, 2 proxy daemons +\n"
        "1 aggregator daemon on ephemeral ports, %zu concurrent queries;\n"
        "%zu timed epochs). Every share crosses a real socket.\n\n",
        bench.clients, bench.queries, bench.epochs);
    std::printf("%10s %8s %10s %14s %14s %12s\n", "transport", "threads",
                "seconds", "clients/sec", "shares/sec", "allocs/share");
    rows.push_back(RunOneTcp(bench));
    const Row& row = rows.back();
    std::printf("%10s %8zu %10.3f %14.0f %14.0f %12.2f\n", row.label.c_str(),
                row.threads, row.seconds, row.clients_per_sec,
                row.shares_per_sec, row.allocs_per_share);
  } else {
    std::printf(
        "Epoch pipeline throughput (Table 3 config: %zu clients, s=0.6,\n"
        "p=0.9 q=0.6, 11 buckets, 2 proxies, %zu concurrent queries;\n"
        "%zu epochs per row).\n"
        "Host hardware_concurrency = %zu; thread counts beyond it time-slice\n"
        "one core and cannot speed up. 'speedup' is vs barrier@1; 'vs "
        "barrier'\n"
        "is streaming throughput over barrier at the same thread count.\n\n",
        bench.clients, bench.queries, bench.epochs, hw);
    std::printf("%10s %8s %10s %14s %14s %9s %11s %12s\n", "mode", "threads",
                "seconds", "clients/sec", "shares/sec", "speedup",
                "vs barrier", "allocs/share");

    rows.reserve(2 * thread_counts.size());
    for (size_t threads : thread_counts) {
      double barrier_seconds = 0.0;
      for (const auto mode : {system::EpochPipelineMode::kBarrier,
                              system::EpochPipelineMode::kStreaming}) {
        rows.push_back(RunOne(mode, threads, bench));
        const Row& row = rows.back();
        if (mode == system::EpochPipelineMode::kBarrier) {
          barrier_seconds = row.seconds;
          if (barrier_base_seconds == 0.0) {
            barrier_base_seconds = row.seconds;
          }
        }
        const double speedup = barrier_base_seconds / row.seconds;
        if (mode == system::EpochPipelineMode::kBarrier) {
          std::printf("%10s %8zu %10.3f %14.0f %14.0f %8.2fx %11s %12.2f\n",
                      row.label.c_str(), row.threads, row.seconds,
                      row.clients_per_sec, row.shares_per_sec, speedup, "-",
                      row.allocs_per_share);
        } else {
          std::printf(
              "%10s %8zu %10.3f %14.0f %14.0f %8.2fx %10.2fx %12.2f\n",
              row.label.c_str(), row.threads, row.seconds,
              row.clients_per_sec, row.shares_per_sec, speedup,
              barrier_seconds / row.seconds, row.allocs_per_share);
        }
      }
    }
  }

  // JSON trajectory row (one line, last on stdout; appended to the file).
  std::string json;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\":\"epoch_pipeline\",\"clients\":%zu,\"epochs\":%zu,"
                "\"queries\":%zu,\"transport\":\"%s\","
                "\"durability\":\"%s\",\"fsync\":\"%s\","
                "\"sampling\":0.6,\"hardware_concurrency\":%zu,\"metrics\":%d,"
                "\"simd\":\"%s\","
                "\"rows\":[",
                bench.clients, bench.epochs, bench.queries,
                bench.transport.c_str(), bench.durability ? "on" : "off",
                bench.durability ? bench.fsync.c_str() : "n/a", hw,
                bench.metrics ? 1 : 0, simd::IsaName(simd::ActiveIsa()));
  json += buf;
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"mode\":\"%s\",\"threads\":%zu,\"agg_shards\":%zu,"
                  "\"seconds\":%.4f,"
                  "\"clients_per_sec\":%.0f,\"shares_per_sec\":%.0f,"
                  "\"allocs_per_share\":%.3f}",
                  i == 0 ? "" : ",", row.label.c_str(), row.threads,
                  row.agg_shards, row.seconds, row.clients_per_sec,
                  row.shares_per_sec, row.allocs_per_share);
    json += buf;
  }
  const Row* barrier_two = nullptr;
  const Row* barrier_four = nullptr;
  const Row* streaming_four = nullptr;
  for (const Row& row : rows) {
    if (row.mode == system::EpochPipelineMode::kBarrier && row.threads == 2) {
      barrier_two = &row;
    }
    if (row.threads != 4) {
      continue;
    }
    (row.mode == system::EpochPipelineMode::kBarrier ? barrier_four
                                                     : streaming_four) = &row;
  }
  std::snprintf(
      buf, sizeof(buf),
      "],\"speedup_2_vs_1\":%.3f,\"speedup_4_vs_1\":%.3f,"
      "\"streaming_vs_barrier_4\":%.3f}",
      barrier_two != nullptr ? barrier_base_seconds / barrier_two->seconds
                             : 0.0,
      barrier_four != nullptr ? barrier_base_seconds / barrier_four->seconds
                              : 0.0,
      barrier_four != nullptr && streaming_four != nullptr
          ? barrier_four->seconds / streaming_four->seconds
          : 0.0);
  json += buf;
  std::printf("\n%s\n", json.c_str());

  if (!bench.json_out.empty()) {
    if (std::FILE* f = std::fopen(bench.json_out.c_str(), "a")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "warning: cannot append to %s\n",
                   bench.json_out.c_str());
    }
  }
  return 0;
}
