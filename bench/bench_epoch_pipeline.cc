// End-to-end epoch pipeline throughput at 1/2/4/N worker threads.
//
// Runs the full client -> proxy -> aggregator epoch loop (system/system.cc)
// on the Table 3 configuration — 100k clients, sampling fraction s=0.6,
// (p, q) = (0.9, 0.6), the 11-bucket speed query, two proxies — and reports
// clients/sec and shares/sec per thread count, plus the speedup over the
// single-threaded run. The parallel pipeline is bit-deterministic
// (tests/parallel_epoch_test.cc), so every row processes identical work.
//
// The last line printed is a single JSON row so the measurement lands in the
// benchmark trajectory; later PRs diff it to see epoch-throughput movement.
// Flags: --clients=N --epochs=N (defaults 100000 / 3).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "system/system.h"

using namespace privapprox;

namespace {

struct BenchConfig {
  size_t clients = 100000;
  size_t epochs = 3;
};

struct Row {
  size_t threads = 0;
  double seconds = 0.0;
  double clients_per_sec = 0.0;
  double shares_per_sec = 0.0;
  uint64_t participants = 0;
  uint64_t shares_consumed = 0;
};

core::Query SpeedQuery() {
  return core::QueryBuilder()
      .WithId(1)
      .WithSql("SELECT speed FROM vehicle")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 100, 10, true))
      .WithFrequencyMs(1000)
      .WithWindowMs(60000)
      .WithSlideMs(60000)
      .Build();
}

Row RunAtThreads(size_t threads, const BenchConfig& bench) {
  system::SystemConfig config;
  config.num_clients = bench.clients;
  config.num_proxies = 2;
  config.seed = 42;
  config.num_worker_threads = threads;
  system::PrivApproxSystem sys(config);
  for (size_t i = 0; i < bench.clients; ++i) {
    auto& db = sys.client(i).database();
    auto& table = db.CreateTable("vehicle", {"speed"});
    table.Insert(500,
                 {localdb::Value(static_cast<double>((i * 13) % 100))});
  }
  core::ExecutionParams params;
  params.sampling_fraction = 0.6;
  params.randomization = {0.9, 0.6};
  sys.SubmitQuery(SpeedQuery(), params);

  // Warm-up epoch: faults in lazily-built state outside the timed region.
  sys.RunEpoch(1000);

  Row row;
  row.threads = sys.num_worker_threads();
  const auto start = std::chrono::steady_clock::now();
  for (size_t e = 0; e < bench.epochs; ++e) {
    const system::EpochStats stats =
        sys.RunEpoch(2000 + static_cast<int64_t>(e) * 1000);
    row.participants += stats.participants;
    row.shares_consumed += stats.shares_consumed;
  }
  const auto end = std::chrono::steady_clock::now();
  row.seconds = std::chrono::duration<double>(end - start).count();
  const double total_clients =
      static_cast<double>(bench.clients) * static_cast<double>(bench.epochs);
  row.clients_per_sec = total_clients / row.seconds;
  row.shares_per_sec =
      static_cast<double>(row.shares_consumed) / row.seconds;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig bench;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      bench.clients = static_cast<size_t>(std::atoll(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      bench.epochs = static_cast<size_t>(std::atoll(argv[i] + 9));
    } else {
      std::fprintf(stderr, "usage: %s [--clients=N] [--epochs=N]\n", argv[0]);
      return 1;
    }
  }

  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  std::vector<size_t> thread_counts{1, 2, 4};
  if (hw > 4) {
    thread_counts.push_back(hw);
  }

  std::printf(
      "Epoch pipeline throughput (Table 3 config: %zu clients, s=0.6,\n"
      "p=0.9 q=0.6, 11 buckets, 2 proxies; %zu epochs per row).\n"
      "Host hardware_concurrency = %zu; thread counts beyond it time-slice\n"
      "one core and cannot speed up.\n\n",
      bench.clients, bench.epochs, hw);
  std::printf("%8s %10s %14s %14s %9s\n", "threads", "seconds", "clients/sec",
              "shares/sec", "speedup");

  std::vector<Row> rows;
  rows.reserve(thread_counts.size());
  for (size_t threads : thread_counts) {
    rows.push_back(RunAtThreads(threads, bench));
    const Row& row = rows.back();
    const double speedup = rows.front().seconds / row.seconds;
    std::printf("%8zu %10.3f %14.0f %14.0f %8.2fx\n", row.threads, row.seconds,
                row.clients_per_sec, row.shares_per_sec, speedup);
  }

  // JSON trajectory row (one line, last on stdout).
  std::printf("\n{\"bench\":\"epoch_pipeline\",\"clients\":%zu,\"epochs\":%zu,"
              "\"sampling\":0.6,\"hardware_concurrency\":%zu,\"rows\":[",
              bench.clients, bench.epochs, hw);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::printf("%s{\"threads\":%zu,\"seconds\":%.4f,\"clients_per_sec\":%.0f,"
                "\"shares_per_sec\":%.0f}",
                i == 0 ? "" : ",", row.threads, row.seconds,
                row.clients_per_sec, row.shares_per_sec);
  }
  const Row* four = nullptr;
  for (const Row& row : rows) {
    if (row.threads == 4) {
      four = &row;
    }
  }
  std::printf("],\"speedup_4_vs_1\":%.3f}\n",
              four != nullptr ? rows.front().seconds / four->seconds : 0.0);
  return 0;
}
