// Figure 4(b): decomposition of the accuracy loss into its two independent
// sources. Setup per §6 #II: 10,000 answers, 60% yes.
//   - "Sampling"            : p = 1 (no randomization), sweep s.
//   - "Randomized response" : s = 1 (census), p = 0.3, q = 0.6, constant.
//   - "Combined"            : both processes in succession.
//
// Expected shape: the combined loss tracks the sum of the two individual
// losses (statistical independence), converging to the RR-only loss as
// s -> 100%.

#include <cstdio>

#include "bench_util.h"

using namespace privapprox;

int main() {
  const int fractions[] = {10, 20, 40, 60, 80, 90, 100};
  constexpr size_t kTrials = 400;

  std::printf("Figure 4(b): error decomposition (accuracy loss, %%)\n");
  std::printf("(10,000 answers, 60%% yes; RR uses p=0.3, q=0.6)\n\n");
  std::printf("%8s %12s %14s %12s %14s\n", "s(%)", "sampling", "rand.resp.",
              "combined", "sum(s+rr)");

  Xoshiro256 rng(3);

  // RR-only loss is independent of s; measure once.
  bench::SimulationConfig rr_only;
  rr_only.sampling_fraction = 1.0;
  rr_only.p = 0.3;
  rr_only.q = 0.6;
  rr_only.trials = kTrials;
  const double rr_loss = bench::MeasureAccuracyLoss(rr_only, rng);

  for (int fraction : fractions) {
    bench::SimulationConfig sampling_only;
    sampling_only.sampling_fraction = fraction / 100.0;
    sampling_only.p = 1.0;  // no randomization
    sampling_only.trials = kTrials;
    const double sampling_loss =
        bench::MeasureAccuracyLoss(sampling_only, rng);

    bench::SimulationConfig combined = sampling_only;
    combined.p = 0.3;
    combined.q = 0.6;
    const double combined_loss = bench::MeasureAccuracyLoss(combined, rng);

    std::printf("%8d %12.3f %14.3f %12.3f %14.3f\n", fraction,
                100.0 * sampling_loss, 100.0 * rr_loss,
                100.0 * combined_loss,
                100.0 * (sampling_loss + rr_loss));
  }
  std::printf(
      "\nShape check: the two error sources are independent and add (§6 "
      "#II);\nthe combined column tracks the sum, tightly so for s >= 40%% "
      "(at very\nsmall s the RR noise itself grows ~1/sqrt(sN), so combined "
      "sits above\nthe fixed RR-only line plus the sampling line — visible "
      "in the paper's\nplot as well).\n");
  return 0;
}
