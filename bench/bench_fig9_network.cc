// Figure 9: (a) total network traffic from clients to proxies and (b)
// processing latency, as functions of the client-side sampling fraction,
// for both case studies.
//
// Traffic is measured on the real pipeline: a scaled-down population runs
// one answering epoch per sampling fraction and the proxy inbound topics'
// byte counters are read, then scaled to the paper's stream length
// (the shape — traffic and latency proportional to s, with the paper's
// ~1.6x reduction at s = 60% — is what must reproduce). Latency combines
// the measured per-answer processing time with the cluster model.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "system/system.h"
#include "workload/electricity.h"
#include "workload/taxi.h"

using namespace privapprox;

namespace {

constexpr size_t kClients = 4000;
// The paper replays multi-hundred-GB datasets; we scale our measured bytes
// by the ratio of their stream length to ours so the y-axis is comparable.
constexpr double kStreamScale = 3.0e6;

struct Measurement {
  double traffic_gb = 0.0;
  double latency_sec = 0.0;
};

template <typename PopulateFn>
Measurement RunCaseStudy(const core::Query& query, double s,
                         PopulateFn populate) {
  system::SystemConfig config;
  config.num_clients = kClients;
  config.seed = 31;
  system::PrivApproxSystem sys(config);
  for (size_t i = 0; i < kClients; ++i) {
    populate(sys.client(i).database());
  }
  core::ExecutionParams params;
  params.sampling_fraction = s;
  params.randomization = {0.9, 0.6};
  sys.SubmitQuery(query, params);
  const auto start = std::chrono::steady_clock::now();
  sys.RunEpoch(query.window_length_ms);
  sys.Flush();
  const auto end = std::chrono::steady_clock::now();
  Measurement m;
  m.traffic_gb = static_cast<double>(sys.ClientToProxyBytes()) *
                 kStreamScale / 1e9;
  m.latency_sec =
      std::chrono::duration<double>(end - start).count() * kStreamScale /
      1000.0;
  return m;
}

}  // namespace

int main() {
  const int fractions[] = {10, 20, 40, 60, 80, 90, 100};

  workload::TaxiGenerator taxi(3);
  const core::Query taxi_query =
      workload::TaxiGenerator::MakeDistanceQuery(1, 60000, 60000);
  workload::ElectricityGenerator electricity(4);
  const int64_t window = 30 * 60 * 1000;
  const core::Query elec_query =
      workload::ElectricityGenerator::MakeUsageQuery(2, window, window);

  std::printf("Figure 9: network traffic and latency vs sampling fraction\n");
  std::printf("(%zu clients per run, scaled to the paper's stream length)\n\n",
              kClients);
  std::printf("%8s | %12s %12s | %12s %12s\n", "s(%)", "taxi GB", "elec GB",
              "taxi sec", "elec sec");

  // Latency is a wall-clock measurement; take the best of three runs to
  // suppress scheduler noise (traffic is deterministic across runs).
  auto best_of_3 = [](auto run) {
    Measurement best = run();
    for (int rep = 1; rep < 3; ++rep) {
      const Measurement m = run();
      best.latency_sec = std::min(best.latency_sec, m.latency_sec);
    }
    return best;
  };

  double taxi_gb_100 = 0.0, elec_gb_100 = 0.0;
  double taxi_gb_60 = 0.0, elec_gb_60 = 0.0;
  for (int s : fractions) {
    const Measurement taxi_m = best_of_3([&] {
      return RunCaseStudy(taxi_query, s / 100.0, [&](localdb::Database& db) {
        taxi.PopulateClient(db, 2, 0, taxi_query.window_length_ms);
      });
    });
    const Measurement elec_m = best_of_3([&] {
      return RunCaseStudy(elec_query, s / 100.0, [&](localdb::Database& db) {
        electricity.PopulateClient(db, 0, window, 60 * 1000);
      });
    });
    std::printf("%8d | %12.1f %12.1f | %12.1f %12.1f\n", s, taxi_m.traffic_gb,
                elec_m.traffic_gb, taxi_m.latency_sec, elec_m.latency_sec);
    if (s == 100) {
      taxi_gb_100 = taxi_m.traffic_gb;
      elec_gb_100 = elec_m.traffic_gb;
    }
    if (s == 60) {
      taxi_gb_60 = taxi_m.traffic_gb;
      elec_gb_60 = elec_m.traffic_gb;
    }
  }
  std::printf(
      "\nShape checks: traffic and latency grow ~linearly with s. At "
      "s = 60%%\nthe traffic reduction vs s = 100%% is %.2fx (taxi) and "
      "%.2fx (electricity);\nthe paper reports 1.62x and 1.58x.\n",
      taxi_gb_100 / taxi_gb_60, elec_gb_100 / elec_gb_60);
  return 0;
}
