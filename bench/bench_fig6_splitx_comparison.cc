// Figure 6: proxy-side latency of SplitX vs PrivApprox across client
// populations (10^2 .. 10^8), with SplitX's per-stage breakdown
// (transmission, computation, shuffling).
//
// SplitX's published pipeline is modeled per its SIGCOMM'13 stages; the
// PrivApprox line is the same transmission model without the other stages
// (see baseline/splitx.h and DESIGN.md). Calibration targets the paper's
// reference point: 40.27 s vs 6.21 s at 10^6 clients (6.48x).

#include <cstdio>

#include "baseline/splitx.h"

using namespace privapprox;

int main() {
  const baseline::SplitXModel splitx;
  const baseline::PrivApproxProxyModel privapprox;

  std::printf("Figure 6: proxy latency (seconds), SplitX vs PrivApprox\n\n");
  std::printf("%10s %12s %12s %12s %12s %12s %9s\n", "clients", "sx-transmit",
              "sx-compute", "sx-shuffle", "SplitX", "PrivApprox", "speedup");
  for (uint64_t clients = 100; clients <= 100000000; clients *= 10) {
    const baseline::SplitXStageLatency stages = splitx.Estimate(clients);
    const double splitx_sec = stages.Total() / 1000.0;
    const double privapprox_sec = privapprox.EstimateMs(clients) / 1000.0;
    std::printf("%10llu %12.3f %12.3f %12.3f %12.3f %12.3f %8.2fx\n",
                static_cast<unsigned long long>(clients),
                stages.transmission_ms / 1000.0,
                stages.computation_ms / 1000.0, stages.shuffling_ms / 1000.0,
                splitx_sec, privapprox_sec, splitx_sec / privapprox_sec);
  }
  std::printf(
      "\nShape check: PrivApprox ~an order of magnitude below SplitX across\n"
      "the sweep; at 10^6 clients the paper reports 40.27 s vs 6.21 s "
      "(6.48x).\nThe gap is exactly the synchronization-bound stages "
      "(computation + shuffling)\nthat PrivApprox's proxies do not have.\n");
  return 0;
}
