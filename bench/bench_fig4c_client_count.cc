// Figure 4(c): accuracy loss vs the number of participating clients.
// Setup per §6 #III: s = 0.9, p = 0.9, q = 0.6, 60% truthful yes.
//
// Expected shape: loss shrinks roughly as 1/sqrt(U); fewer than ~100
// clients give low-utility results.

#include <cstdio>

#include "bench_util.h"

using namespace privapprox;

int main() {
  const size_t client_counts[] = {10, 100, 1000, 10000, 100000, 1000000};

  std::printf("Figure 4(c): accuracy loss (%%) vs number of clients\n");
  std::printf("(s = 0.9, p = 0.9, q = 0.6, 60%% yes)\n\n");
  std::printf("%10s %14s\n", "clients", "loss(%)");

  Xoshiro256 rng(4);
  for (size_t clients : client_counts) {
    bench::SimulationConfig config;
    config.population = clients;
    config.yes_fraction = 0.6;
    config.sampling_fraction = 0.9;
    config.p = 0.9;
    config.q = 0.6;
    // Fewer trials for the huge populations; the estimate is already tight.
    config.trials = clients >= 100000 ? 20 : 300;
    std::printf("%10zu %14.3f\n", clients,
                100.0 * bench::MeasureAccuracyLoss(config, rng));
  }
  std::printf("\nShape check: loss falls ~1/sqrt(clients); <100 clients is "
              "low-utility territory.\n");
  return 0;
}
