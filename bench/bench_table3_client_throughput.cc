// Table 3: throughput (operations/sec) at clients, broken into the three
// sub-processes of the answering path — the local database read, the
// randomized response, and the XOR encryption — plus the total.
//
// The paper's finding to reproduce: the database read is the bottleneck;
// randomization and XOR are orders of magnitude faster, so the privacy
// machinery adds almost nothing to client cost.

#include <benchmark/benchmark.h>

#include <cstdio>

#include <vector>

#include "client/client.h"
#include "common/arena.h"
#include "core/answer.h"
#include "crypto/xor_cipher.h"

using namespace privapprox;

namespace {

constexpr size_t kBuckets = 11;

core::Query MakeQuery() {
  return core::QueryBuilder()
      .WithId(1)
      .WithSql("SELECT speed FROM vehicle WHERE location = 'sf'")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 100, 10, true))
      .WithFrequencyMs(1000)
      .WithWindowMs(60000)
      .WithSlideMs(1000)
      .Build();
}

localdb::Database MakeDb(size_t rows) {
  localdb::Database db;
  auto& table = db.CreateTable("vehicle", {"speed", "location"});
  Xoshiro256 rng(1);
  for (size_t i = 0; i < rows; ++i) {
    table.Insert(static_cast<int64_t>(i),
                 {localdb::Value(rng.NextDouble() * 100.0),
                  localdb::Value(i % 2 == 0 ? "sf" : "nyc")});
  }
  return db;
}

void BM_DatabaseRead(benchmark::State& state) {
  localdb::Database db = MakeDb(1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.Execute("SELECT speed FROM vehicle WHERE location = 'sf'", 0,
                   1000000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DatabaseRead);

void BM_RandomizedResponse(benchmark::State& state) {
  Xoshiro256 rng(2);
  const core::RandomizedResponse rr(core::RandomizationParams{0.9, 0.6});
  BitVector truthful(kBuckets);
  truthful.Set(3, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rr.RandomizeAnswer(truthful, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomizedResponse);

void BM_XorEncryption(benchmark::State& state) {
  crypto::XorSplitter splitter(2, crypto::ChaCha20Rng::FromSeed(3, 0));
  BitVector answer(kBuckets);
  answer.Set(3, true);
  const crypto::AnswerMessage message{1, answer};
  const auto payload = message.Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(splitter.Split(payload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XorEncryption);

// Same split, zero-copy: encode all shares into an arena (no per-share
// vectors). The gap between this and BM_XorEncryption is what the arena
// path saves per answer.
void BM_XorEncryptionArena(benchmark::State& state) {
  crypto::XorSplitter splitter(2, crypto::ChaCha20Rng::FromSeed(3, 0));
  BitVector answer(kBuckets);
  answer.Set(3, true);
  const crypto::AnswerMessage message{1, answer};
  EpochArena arena;
  std::vector<crypto::ShareView> views(2);
  for (auto _ : state) {
    splitter.SplitMessageInto(message, arena, views);
    benchmark::DoNotOptimize(views.data());
    arena.Reset();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XorEncryptionArena);

void BM_TotalAnsweringPath(benchmark::State& state) {
  client::Client c(client::ClientConfig{0, 2, 7});
  auto& table = c.database().CreateTable("vehicle", {"speed", "location"});
  Xoshiro256 rng(4);
  for (size_t i = 0; i < 1000; ++i) {
    table.Insert(static_cast<int64_t>(i),
                 {localdb::Value(rng.NextDouble() * 100.0),
                  localdb::Value(i % 2 == 0 ? "sf" : "nyc")});
  }
  core::ExecutionParams params;
  params.sampling_fraction = 1.0;
  params.randomization = {0.9, 0.6};
  c.Subscribe(MakeQuery(), params);
  // The query window [now - 60s, now) must cover the stored rows
  // (timestamps 0..999) so the answering path does the real database scan.
  const int64_t now = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.AnswerQuery(now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TotalAnsweringPath);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Table 3: client answering-path throughput (ops/sec; this host).\n"
      "Paper's server column for reference: SQLite read 23,418 | randomized\n"
      "response 1,809,662 | XOR encryption 1,351,937 | total 22,026.\n"
      "Shape to reproduce: the database read dominates the total; RR and\n"
      "XOR are 1-2 orders of magnitude faster.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
