// Figure 7: NYC taxi case study — (a) utility (accuracy loss) and (b)
// privacy (zero-knowledge level eps_zk) with varying sampling and
// randomization parameters, and (c) the utility/privacy trade-off.
//
// The workload is the synthetic DEBS'15 stand-in (see DESIGN.md): 50,000
// taxis whose ride-distance distribution matches the published marginals
// (first bucket ~33.6%). For each (s, p, q) we run the full per-bucket
// pipeline — sample, encode one-hot over the 11 distance buckets, randomize
// every bit, de-bias, scale — and report the mean relative bucket error.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/histogram.h"
#include "core/privacy.h"
#include "core/randomized_response.h"
#include "workload/synthetic.h"
#include "workload/taxi.h"

using namespace privapprox;

namespace {

constexpr size_t kTaxis = 50000;
constexpr size_t kTrials = 10;

double MeasureLoss(const std::vector<BitVector>& truthful,
                   const Histogram& exact, double s,
                   const core::RandomizationParams& params,
                   Xoshiro256& rng) {
  const core::RandomizedResponse rr(params);
  const size_t buckets = exact.num_buckets();
  double total_loss = 0.0;
  for (size_t trial = 0; trial < kTrials; ++trial) {
    Histogram randomized(buckets);
    size_t participants = 0;
    for (const BitVector& answer : truthful) {
      if (!rng.NextBernoulli(s)) {
        continue;
      }
      ++participants;
      for (size_t b = 0; b < buckets; ++b) {
        if (rr.RandomizeBit(answer.Get(b), rng)) {
          randomized.Add(b);
        }
      }
    }
    if (participants == 0) {
      continue;
    }
    Histogram debiased = rr.DebiasHistogram(
        randomized, static_cast<double>(participants));
    const double scale = static_cast<double>(kTaxis) /
                         static_cast<double>(participants);
    // Normalized L1 distance between the estimated and exact histograms:
    // sum_b |est_b - exact_b| / sum_b exact_b. Buckets are weighted by their
    // mass, so the metric reports distribution-level accuracy (the paper's
    // sub-percent regime) instead of being dominated by near-empty tail
    // buckets.
    double abs_error = 0.0;
    for (size_t b = 0; b < buckets; ++b) {
      abs_error += std::fabs(debiased.Count(b) * scale - exact.Count(b));
    }
    total_loss += abs_error / exact.Total();
  }
  return total_loss / static_cast<double>(kTrials);
}

}  // namespace

int main() {
  Xoshiro256 rng(11);
  const auto probs = workload::TaxiGenerator::TrueBucketProbabilities();
  const auto truthful = workload::BucketAnswers(kTaxis, probs, rng);
  const Histogram exact = workload::ExactCounts(truthful, probs.size());

  const double p_values[] = {0.3, 0.6, 0.9};
  const double q_values[] = {0.3, 0.6, 0.9};
  const int fractions[] = {10, 20, 40, 60, 80, 90};

  std::printf("Figure 7(a): accuracy loss (%%), NYC taxi, %zu clients\n\n",
              kTaxis);
  std::printf("%6s", "s(%)");
  for (double p : p_values) {
    for (double q : q_values) {
      std::printf("  p%.1f/q%.1f", p, q);
    }
  }
  std::printf("\n");
  for (int s : fractions) {
    std::printf("%6d", s);
    for (double p : p_values) {
      for (double q : q_values) {
        const double loss = MeasureLoss(
            truthful, exact, s / 100.0, core::RandomizationParams{p, q}, rng);
        std::printf("  %8.3f", 100.0 * loss);
      }
    }
    std::printf("\n");
  }

  std::printf("\nFigure 7(b): privacy level eps_zk (tech report Eq 19)\n\n");
  std::printf("%6s", "s(%)");
  for (double p : p_values) {
    for (double q : q_values) {
      std::printf("  p%.1f/q%.1f", p, q);
    }
  }
  std::printf("\n");
  for (int s : fractions) {
    std::printf("%6d", s);
    for (double p : p_values) {
      for (double q : q_values) {
        std::printf("  %8.3f",
                    core::EpsilonZk(core::RandomizationParams{p, q},
                                    s / 100.0));
      }
    }
    std::printf("\n");
  }

  std::printf(
      "\nFigure 7(c): utility vs privacy trade-off (p = 0.9, q = 0.3 — q\n"
      "near the 33.6%% first-bucket fraction)\n\n");
  std::printf("%10s %14s\n", "eps_zk", "loss(%)");
  for (int s : fractions) {
    const core::RandomizationParams params{0.9, 0.3};
    const double eps = core::EpsilonZk(params, s / 100.0);
    const double loss = MeasureLoss(truthful, exact, s / 100.0, params, rng);
    std::printf("%10.3f %14.3f\n", eps, 100.0 * loss);
  }
  std::printf(
      "\nShape checks: loss falls as s and p grow; eps_zk rises with both;\n"
      "loss is lowest near q = 0.3 (the dataset's 33.57%% yes-fraction);\n"
      "the (c) curve slopes down — privacy is bought with accuracy.\n");
  return 0;
}
