// Ablation: utility at matched privacy — PrivApprox vs full RAPPOR.
//
// Fig 5c compares privacy at matched utility machinery; this ablation asks
// the converse question the paper implies: for the SAME differential-
// privacy level, who estimates a population count more accurately? We give
// RAPPOR its full pipeline (Bloom k=32/h=1 so the value maps to dedicated
// bits, PRR + IRR) and PrivApprox its sampling + two-coin RR, tune both to
// the same one-time epsilon, and measure the relative error of the
// recovered count of a value held by 30% of 20,000 clients.
//
// Expected: PrivApprox wins at every epsilon — its noise budget goes into
// one mechanism (RR) plus cheap sampling, while RAPPOR pays twice (PRR for
// longitudinal safety, IRR per report).

#include <cmath>
#include <cstdio>

#include "baseline/rappor_full.h"
#include "common/rng.h"
#include "core/privacy.h"
#include "core/randomized_response.h"

using namespace privapprox;

namespace {

constexpr size_t kClients = 20000;
constexpr double kHotFraction = 0.3;
constexpr int kTrials = 30;

// PrivApprox loss at the given eps: pick p for q = 0.5 at s = 1 via Eq 8.
double PrivApproxLoss(double epsilon, Xoshiro256& rng) {
  const double p = core::FirstCoinForEpsilon(0.5, epsilon);
  const core::RandomizedResponse rr(core::RandomizationParams{p, 0.5});
  const double truth = kHotFraction * kClients;
  double loss = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    size_t ry = 0;
    for (size_t i = 0; i < kClients; ++i) {
      ry += rr.RandomizeBit(static_cast<double>(i) < truth, rng) ? 1 : 0;
    }
    loss += std::fabs(rr.DebiasCount(static_cast<double>(ry), kClients) -
                      truth) /
            truth;
  }
  return loss / kTrials;
}

// RAPPOR loss at (approximately) the same one-time epsilon: fix the IRR at
// the canonical (0.25, 0.75) and solve f by bisection.
double RapporLossAtEpsilon(double epsilon, Xoshiro256& rng) {
  baseline::RapporConfig config;
  config.num_bits = 32;
  config.num_hashes = 1;
  config.p_irr = 0.25;
  config.q_irr = 0.75;
  double lo = 1e-4, hi = 1.0 - 1e-4;
  for (int iter = 0; iter < 80; ++iter) {
    config.f = 0.5 * (lo + hi);
    if (baseline::RapporEpsilonOneTime(config) > epsilon) {
      lo = config.f;  // more permanent noise needed
    } else {
      hi = config.f;
    }
  }
  // The hot value's Bloom bit.
  baseline::RapporClient reference(config, 0);
  const BitVector bloom = reference.BloomEncode("hot");
  size_t hot_bit = 0;
  for (size_t i = 0; i < config.num_bits; ++i) {
    if (bloom.Get(i)) {
      hot_bit = i;
    }
  }
  const double truth = kHotFraction * kClients;
  double loss = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    double count = 0.0;
    for (size_t c = 0; c < kClients; ++c) {
      baseline::RapporClient client(config, trial * kClients + c + 1);
      const bool is_hot = static_cast<double>(c) < truth;
      const BitVector report =
          client.Report(is_hot ? "hot" : "cold" + std::to_string(c % 97));
      count += report.Get(hot_bit) ? 1.0 : 0.0;
    }
    Histogram counts(config.num_bits);
    counts.SetCount(hot_bit, count);
    const Histogram debiased = baseline::RapporDebias(
        config, counts, static_cast<double>(kClients));
    // Cold values can collide into the hot bit (k=32): subtract the
    // expected collision mass 1/k of the cold population.
    const double collisions =
        (1.0 - kHotFraction) * kClients / static_cast<double>(config.num_bits);
    loss += std::fabs(debiased.Count(hot_bit) - collisions - truth) / truth;
  }
  return loss / kTrials;
}

}  // namespace

int main() {
  std::printf("Ablation: utility at matched one-time epsilon — PrivApprox\n"
              "(sampling + two-coin RR) vs full RAPPOR (Bloom + PRR + IRR).\n"
              "%zu clients, hot value held by %.0f%%.\n\n",
              kClients, 100.0 * kHotFraction);
  std::printf("%8s %18s %14s %8s\n", "epsilon", "PrivApprox loss",
              "RAPPOR loss", "ratio");
  Xoshiro256 rng(13);
  for (double epsilon : {0.5, 1.0, 2.0, 3.0}) {
    const double ours = PrivApproxLoss(epsilon, rng);
    const double theirs = RapporLossAtEpsilon(epsilon, rng);
    std::printf("%8.1f %17.3f%% %13.3f%% %7.1fx\n", epsilon, 100.0 * ours,
                100.0 * theirs, theirs / ours);
  }
  std::printf(
      "\nShape check: PrivApprox's loss is a multiple smaller at every\n"
      "epsilon — the cost RAPPOR pays for longitudinal memoization (PRR)\n"
      "on top of per-report noise (IRR).\n");
  return 0;
}
