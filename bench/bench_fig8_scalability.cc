// Figure 8: throughput at (a) proxies and (b) the aggregator, scaling up
// (CPU cores) and scaling out (nodes), for both case studies.
//
// Per-core rates are measured for real on this host over a fixed batch of
// genuine shares (taxi answers are 11-bit vectors, electricity answers
// 6-bit — the size difference is why the electricity series sits higher at
// the proxies). The core and node sweeps extrapolate through the calibrated
// cluster model (net/topology.h): this container exposes one CPU and the
// paper's 44-node testbed does not fit in one process.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <unordered_map>

#include "aggregator/aggregator.h"
#include "broker/broker.h"
#include "common/thread_pool.h"
#include "crypto/xor_cipher.h"
#include "net/topology.h"
#include "proxy/proxy.h"

using namespace privapprox;

namespace {

constexpr size_t kRecords = 200000;

// Builds a proxy preloaded with `count` shares of an answer with
// `answer_bits` buckets; returns forwarding throughput (records/sec) using
// `cores` workers.
double MeasureProxyThroughput(size_t answer_bits, size_t cores) {
  broker::Broker b;
  // Plenty of partitions so parallel workers do not serialize on partition
  // locks (Kafka deployments over-partition for the same reason).
  proxy::Proxy proxy(proxy::ProxyConfig{0, 64}, b);
  crypto::XorSplitter splitter(2, crypto::ChaCha20Rng::FromSeed(1, 0));
  const std::vector<uint8_t> payload(
      crypto::AnswerMessage::WireSize(answer_bits), 0x77);
  for (size_t i = 0; i < kRecords; ++i) {
    proxy.Receive(splitter.Split(payload)[0], 0);
  }
  ThreadPool pool(cores);
  const auto start = std::chrono::steady_clock::now();
  const uint64_t moved = proxy.ForwardParallel(pool);
  const auto end = std::chrono::steady_clock::now();
  const double sec = std::chrono::duration<double>(end - start).count();
  return static_cast<double>(moved) / sec;
}

// Aggregator-side throughput: the real Aggregator::Drain path — broker
// consumption from both proxy streams, share decoding, MID join with
// replay/duplicate defense, XOR decryption, answer deserialization, and
// sliding-window assignment. Single-threaded (cores = 1 calibration; the
// model extrapolates, see main()).
double MeasureAggregatorThroughput(size_t answer_bits, size_t /*cores*/) {
  broker::Broker b;
  proxy::Proxy proxy0(proxy::ProxyConfig{0, 8}, b);
  proxy::Proxy proxy1(proxy::ProxyConfig{1, 8}, b);
  const core::Query query =
      core::QueryBuilder()
          .WithId(1)
          .WithSql("SELECT x FROM t")
          .WithAnswerFormat(core::AnswerFormat::UniformNumeric(
              0, static_cast<double>(answer_bits), answer_bits))
          .WithWindowMs(1 << 20)
          .WithSlideMs(1 << 20)
          .Build();
  core::ExecutionParams params;
  params.randomization = {0.9, 0.6};
  aggregator::AggregatorConfig config;
  config.num_proxies = 2;
  config.population = kRecords;
  aggregator::Aggregator agg(config, query, params, b,
                             [](const aggregator::WindowedResult&) {});
  crypto::XorSplitter splitter(2, crypto::ChaCha20Rng::FromSeed(2, 0));
  BitVector answer(answer_bits);
  answer.Set(0, true);
  const auto payload = crypto::AnswerMessage{1, answer}.Serialize();
  const size_t messages = kRecords / 2;
  for (size_t i = 0; i < messages; ++i) {
    const auto shares = splitter.Split(payload);
    proxy0.Receive(shares[0], 0);
    proxy1.Receive(shares[1], 0);
  }
  proxy0.Forward();
  proxy1.Forward();
  const auto start = std::chrono::steady_clock::now();
  const uint64_t consumed = agg.Drain();
  const auto end = std::chrono::steady_clock::now();
  const double sec = std::chrono::duration<double>(end - start).count();
  return static_cast<double>(consumed) / sec;
}

}  // namespace

// Sweeps a core count through the cluster model (1 node) with the measured
// single-core rate as calibration.
void PrintScaleUp(const char* title, double taxi_rate_per_sec,
                  double elec_rate_per_sec) {
  std::printf("%s\n\n", title);
  std::printf("%8s %12s %14s\n", "cores", "NYC taxi", "Electricity");
  for (size_t cores : {2u, 4u, 6u, 8u}) {
    auto throughput = [cores](double rate_per_sec) {
      net::ClusterConfig config;
      config.num_nodes = 1;
      config.node.cores = cores;
      config.node.records_per_ms_per_core = rate_per_sec / 1000.0;
      config.per_node_overhead_ms = 0.0;
      config.link.bandwidth_bytes_per_ms = 1e12;  // isolate compute scaling
      return net::Cluster(config).ThroughputPerSec(10000000, 16.0);
    };
    std::printf("%8zu %12.0f %14.0f\n", cores,
                throughput(taxi_rate_per_sec) / 1000.0,
                throughput(elec_rate_per_sec) / 1000.0);
  }
}

int main() {
  std::printf(
      "Figure 8: scale-up and scale-out. This container exposes a single\n"
      "CPU, so per-core rates are measured for real on one core and the\n"
      "core/node sweeps use the calibrated cluster model (DESIGN.md\n"
      "substitution table; sub-linear efficiency 0.85/core as on real "
      "hardware).\n\n");

  // Calibration: real single-threaded rates on this host.
  const double proxy_taxi = MeasureProxyThroughput(11, 1);
  const double proxy_elec = MeasureProxyThroughput(6, 1);
  const double agg_taxi = MeasureAggregatorThroughput(11, 1);
  const double agg_elec = MeasureAggregatorThroughput(6, 1);
  std::printf("Measured single-core rates (K records/sec): proxy %0.f/%0.f, "
              "aggregator %0.f/%0.f (taxi/electricity)\n\n",
              proxy_taxi / 1000.0, proxy_elec / 1000.0, agg_taxi / 1000.0,
              agg_elec / 1000.0);

  PrintScaleUp("Figure 8(a): proxy throughput (K responses/sec), scale-up",
               proxy_taxi, proxy_elec);
  std::printf("\n");
  PrintScaleUp(
      "Figure 8(b): aggregator throughput (K responses/sec), scale-up",
      agg_taxi, agg_elec);

  std::printf("\nScale-out (cluster model; nodes of 8 cores each)\n\n");
  std::printf("%8s %16s %18s\n", "nodes", "proxy (K/s)", "aggregator (K/s)");
  for (size_t nodes : {1u, 5u, 10u, 15u, 20u}) {
    auto throughput = [nodes](double rate_per_sec) {
      net::ClusterConfig config;
      config.num_nodes = nodes;
      config.node.cores = 8;
      config.node.records_per_ms_per_core = rate_per_sec / 1000.0;
      // 10 GbE per node: our measured per-core rates are an order of
      // magnitude above the paper's 2012-era Xeons, so a Gigabit link would
      // gate everything and hide the compute scaling the figure is about.
      config.link.bandwidth_bytes_per_ms = 1.25e6;
      return net::Cluster(config).ThroughputPerSec(10000000, 16.0);
    };
    std::printf("%8zu %16.0f %18.0f\n", nodes,
                throughput(proxy_taxi) / 1000.0,
                throughput(agg_taxi) / 1000.0);
  }
  std::printf(
      "\nShape checks: both components scale near-linearly with cores and\n"
      "nodes; the electricity case study (6-bit answers) outpaces the taxi\n"
      "one (11-bit) at proxies but not at the aggregator, where the join\n"
      "dominates and message size barely matters; the aggregator's absolute\n"
      "throughput sits well below the proxies' — all as in the paper.\n");
  return 0;
}
