// Figure 4(a): accuracy loss vs sampling fraction for the nine (p, q)
// randomization settings. Setup per §6 #I: 10,000 answers, 60% yes.
//
// Expected shape: loss decreases with the sampling fraction for every
// (p, q); diminishing returns past ~80%.

#include <cstdio>

#include "bench_util.h"

using namespace privapprox;

int main() {
  const double p_values[] = {0.3, 0.6, 0.9};
  const double q_values[] = {0.3, 0.6, 0.9};
  const int fractions[] = {10, 20, 40, 60, 80, 90, 100};

  std::printf("Figure 4(a): accuracy loss (%%) vs sampling fraction (%%)\n");
  std::printf("(10,000 answers, 60%% yes, 300 trials per point)\n\n");
  std::printf("%8s", "s(%)");
  for (double p : p_values) {
    for (double q : q_values) {
      std::printf("  p%.1f/q%.1f", p, q);
    }
  }
  std::printf("\n");

  Xoshiro256 rng(2);
  for (int fraction : fractions) {
    std::printf("%8d", fraction);
    for (double p : p_values) {
      for (double q : q_values) {
        bench::SimulationConfig config;
        config.population = 10000;
        config.yes_fraction = 0.6;
        config.sampling_fraction = fraction / 100.0;
        config.p = p;
        config.q = q;
        config.trials = 300;
        std::printf("  %8.3f",
                    100.0 * bench::MeasureAccuracyLoss(config, rng));
      }
    }
    std::printf("\n");
  }
  std::printf("\nShape check: every column decreases with s; the drop "
              "flattens past s = 80%%.\n");
  return 0;
}
