// Figure 5(a): accuracy loss of the native vs the inverted query across
// truthful-yes fractions. Setup per §6 #IV: s = 0.9, p = 0.9, q = 0.6,
// 10,000 answers. The inverted query counts the truthful "No" answers
// (§3.3.2); its loss is measured on that counted quantity, as in the paper.
//
// Expected shape: the native curve is lowest where y ~ q (60%) and high for
// small y (paper: 2.54% at y = 10%); the inverted curve mirrors it, cutting
// the y = 10% loss to ~0.4%. An analyst should pick whichever of the two is
// better at the estimated y, which is exactly ShouldInvertQuery's decision.

#include <cstdio>

#include "bench_util.h"

using namespace privapprox;

int main() {
  constexpr size_t kTrials = 400;
  std::printf("Figure 5(a): native vs inverted query accuracy loss (%%)\n");
  std::printf("(10,000 answers, s = 0.9, p = 0.9, q = 0.6)\n\n");
  std::printf("%10s %12s %12s %10s\n", "yes(%)", "native", "inverted",
              "invert?");

  Xoshiro256 rng(5);
  for (int yes = 10; yes <= 90; yes += 10) {
    bench::SimulationConfig native;
    native.population = 10000;
    native.yes_fraction = yes / 100.0;
    native.sampling_fraction = 0.9;
    native.p = 0.9;
    native.q = 0.6;
    native.trials = kTrials;
    bench::SimulationConfig inverted = native;
    inverted.inverted = true;
    const double native_loss = bench::MeasureAccuracyLoss(native, rng);
    const double inverted_loss = bench::MeasureAccuracyLoss(inverted, rng);
    std::printf("%10d %12.3f %12.3f %10s\n", yes, 100.0 * native_loss,
                100.0 * inverted_loss,
                core::ShouldInvertQuery(yes / 100.0, 0.6) ? "yes" : "no");
  }
  std::printf(
      "\nShape check: native loss peaks at small yes-fractions and bottoms\n"
      "near y = q; inversion slashes the small-y loss (paper: 2.54%% -> "
      "0.4%% at y = 10%%).\n");
  return 0;
}
