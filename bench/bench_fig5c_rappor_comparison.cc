// Figure 5(c): differential privacy level of PrivApprox vs RAPPOR across
// client-side sampling fractions. Mapping per §6 #VIII: s varies for
// PrivApprox, RAPPOR is the s = 1 point; p = 1 - f, q = 0.5, h = 1, so both
// share the identical randomized-response step and differ only in sampling.
//
// Expected shape: RAPPOR's line is flat; PrivApprox's epsilon grows with s
// and meets RAPPOR's at s = 100%.

#include <cstdio>

#include "baseline/rappor.h"
#include "core/privacy.h"

using namespace privapprox;

int main() {
  const double f = 0.5;  // RAPPOR's canonical longitudinal parameter
  const baseline::Rappor rappor(f, /*num_hashes=*/1);
  const core::RandomizationParams params = rappor.ToPrivApproxParams();
  const double eps_rappor = core::EpsilonDp(params);

  std::printf("Figure 5(c): PrivApprox vs RAPPOR (f = %.1f -> p = %.1f, "
              "q = %.1f, h = 1)\n\n",
              f, params.p, params.q);
  std::printf("%8s %16s %12s\n", "s(%)", "PrivApprox eps", "RAPPOR eps");
  for (int s = 10; s <= 100; s += 10) {
    const double eps_privapprox =
        core::AmplifyBySampling(eps_rappor, s / 100.0);
    std::printf("%8d %16.4f %12.4f\n", s, eps_privapprox, eps_rappor);
  }
  std::printf(
      "\nShape check: PrivApprox is strictly below RAPPOR for s < 100%% and\n"
      "equal at s = 100%% — the sampling step is pure privacy gain.\n"
      "(RAPPOR's own one-time accounting, counting both response\n"
      "probabilities: eps = %.4f.)\n",
      rappor.EpsilonOneTime());
  return 0;
}
