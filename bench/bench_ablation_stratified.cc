// Ablation: simple random sampling vs stratified sampling (the tech-report
// extension of §3.2.1) on a population whose clients' data streams follow
// two very different distributions.
//
// Population: 80% "urban" clients answering ~N(20, 5) and 20% "highway"
// clients answering ~N(70, 8). SRS treats them as one stratum (the paper's
// base assumption); stratified sampling samples each stratum separately
// with proportional allocation. Expected: identical means, but the
// stratified estimator's confidence interval is substantially tighter at
// every sample budget.

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "stats/srs.h"
#include "stats/stratified.h"

using namespace privapprox;

int main() {
  constexpr size_t kUrban = 80000, kHighway = 20000;
  Xoshiro256 rng(5);
  std::vector<double> urban(kUrban), highway(kHighway);
  double true_sum = 0.0;
  for (auto& v : urban) {
    v = 20.0 + 5.0 * rng.NextGaussian();
    true_sum += v;
  }
  for (auto& v : highway) {
    v = 70.0 + 8.0 * rng.NextGaussian();
    true_sum += v;
  }

  std::printf("Ablation: SRS vs stratified sampling\n");
  std::printf("(two strata: 80k urban ~N(20,5), 20k highway ~N(70,8); true "
              "sum %.0f)\n\n",
              true_sum);
  std::printf("%10s | %14s %12s | %14s %12s | %8s\n", "samples", "SRS est",
              "SRS +-", "strat est", "strat +-", "ratio");

  for (size_t budget : {200u, 1000u, 5000u, 20000u}) {
    stats::SrsSumEstimator srs(kUrban + kHighway);
    stats::StratifiedSumEstimator stratified({kUrban, kHighway});
    const auto allocation =
        stats::ProportionalAllocation({kUrban, kHighway}, budget);
    for (size_t i = 0; i < budget; ++i) {
      const size_t index = rng.NextBounded(kUrban + kHighway);
      srs.Add(index < kUrban ? urban[index] : highway[index - kUrban]);
    }
    for (size_t i = 0; i < allocation[0]; ++i) {
      stratified.Add(0, urban[rng.NextBounded(kUrban)]);
    }
    for (size_t i = 0; i < allocation[1]; ++i) {
      stratified.Add(1, highway[rng.NextBounded(kHighway)]);
    }
    const stats::Estimate srs_est = srs.EstimateSum();
    const stats::Estimate strat_est = stratified.EstimateSum();
    std::printf("%10zu | %14.0f %12.0f | %14.0f %12.0f | %7.2fx\n", budget,
                srs_est.value, srs_est.error, strat_est.value,
                strat_est.error, srs_est.error / strat_est.error);
  }
  std::printf(
      "\nShape check: both estimators bracket the true sum, and the\n"
      "stratified margin is consistently a multiple tighter — the win the\n"
      "tech report's stratified extension buys on skewed populations.\n");
  return 0;
}
