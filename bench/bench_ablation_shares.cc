// Ablation: cost of the proxy count n (the XOR share count).
//
// The paper fixes n = 2 proxies ("at least two ... which do not collude").
// Each extra proxy costs the client one more pad generation + XOR pass and
// multiplies client->proxy traffic by n/(n-1). This bench quantifies both,
// answering "what would more non-collusion insurance cost?".

#include <benchmark/benchmark.h>

#include <cstdio>

#include "crypto/xor_cipher.h"

using namespace privapprox;

namespace {

void BM_SplitByShareCount(benchmark::State& state) {
  const size_t num_shares = static_cast<size_t>(state.range(0));
  crypto::XorSplitter splitter(num_shares,
                               crypto::ChaCha20Rng::FromSeed(1, 0));
  const std::vector<uint8_t> payload(
      crypto::AnswerMessage::WireSize(1000), 0x3C);
  for (auto _ : state) {
    benchmark::DoNotOptimize(splitter.Split(payload));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["bytes_on_wire"] =
      static_cast<double>(payload.size() * num_shares);
}

BENCHMARK(BM_SplitByShareCount)->DenseRange(2, 8, 1);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Ablation: XOR share count n (number of proxies), 1000-bit answers.\n"
      "Client encryption cost grows ~linearly in n; wire bytes grow exactly\n"
      "linearly (bytes_on_wire counter). n = 2 — the paper's deployment —\n"
      "is the cheapest configuration that still provides non-collusion.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
