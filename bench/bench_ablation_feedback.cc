// Ablation: the error-driven feedback loop (§5) on vs off.
//
// The prototype re-tunes the sampling parameter when a window's measured
// error exceeds the analyst's target. We simulate a drifting workload whose
// intrinsic noise doubles half-way through the run. Without feedback the
// accuracy loss blows past the target after the shift; with feedback the
// controller raises s and pulls the loss back under the target within a few
// epochs, then decays s when conditions improve.

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "core/budget.h"
#include "core/privacy.h"

using namespace privapprox;

namespace {

// Measured accuracy loss of one epoch at sampling fraction s for the
// current population: the analytic expected loss of the pipeline (the same
// model the initializer uses) with +-15% multiplicative measurement jitter,
// so the trace shows the control behaviour rather than per-epoch noise.
double EpochLoss(double s, size_t population, Xoshiro256& rng) {
  core::ExecutionParams params;
  params.sampling_fraction = s;
  params.randomization = {0.9, 0.6};
  const double expected = core::PredictAccuracyLoss(params, population, 0.6);
  return expected * (0.85 + 0.3 * rng.NextDouble());
}

}  // namespace

int main() {
  constexpr double kTarget = 0.03;
  constexpr int kEpochs = 30;

  std::printf("Ablation: feedback re-tuning (target accuracy loss %.0f%%)\n",
              kTarget * 100);
  std::printf("Population drops 20,000 -> 1,500 at epoch 15 (noise shock).\n\n");
  std::printf("%6s %12s | %10s %12s | %10s %12s\n", "epoch", "population",
              "s(fixed)", "loss(fixed)", "s(fb)", "loss(fb)");

  core::ExecutionParams initial;
  initial.sampling_fraction = 0.2;
  initial.randomization = {0.9, 0.6};
  core::FeedbackController controller(initial, kTarget);
  double s_feedback = initial.sampling_fraction;
  const double s_fixed = initial.sampling_fraction;

  Xoshiro256 rng(9);
  int fixed_violations = 0, feedback_violations = 0;
  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    const size_t population = epoch <= 15 ? 20000 : 1500;
    const double loss_fixed = EpochLoss(s_fixed, population, rng);
    const double loss_feedback = EpochLoss(s_feedback, population, rng);
    fixed_violations += loss_fixed > kTarget ? 1 : 0;
    feedback_violations += loss_feedback > kTarget ? 1 : 0;
    std::printf("%6d %12zu | %10.2f %11.2f%% | %10.2f %11.2f%%\n", epoch,
                population, s_fixed, 100 * loss_fixed, s_feedback,
                100 * loss_feedback);
    s_feedback =
        controller.OnEpochCompleted(loss_feedback).sampling_fraction;
  }
  std::printf(
      "\nTarget violations: fixed-s %d/%d epochs, feedback %d/%d epochs.\n"
      "Shape check: after the shock the feedback column recovers within a\n"
      "few epochs while fixed-s keeps violating the target.\n",
      fixed_violations, kEpochs, feedback_violations, kEpochs);
  return 0;
}
