// Shared simulation helpers for the paper-reproduction benchmarks.
//
// The microbenchmarks (§6) all follow one recipe: a population of U truthful
// binary answers with a fixed yes-fraction, client-side sampling at s,
// two-coin randomization with (p, q), Eq 5 de-biasing, scaling back to the
// population, and the Eq 6 accuracy loss against the truth. These helpers
// implement that recipe once so every bench prints numbers produced the
// same way the paper's were.

#ifndef PRIVAPPROX_BENCH_BENCH_UTIL_H_
#define PRIVAPPROX_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstddef>

#include "common/rng.h"
#include "core/inversion.h"
#include "core/randomized_response.h"

namespace privapprox::bench {

struct SimulationConfig {
  size_t population = 10000;
  double yes_fraction = 0.6;
  double sampling_fraction = 0.6;  // s
  double p = 0.9;
  double q = 0.6;
  size_t trials = 200;
  // Measure the loss on the inverted query's counted quantity (§3.3.2).
  bool inverted = false;
};

// Mean Eq 6 accuracy loss of the full sample -> randomize -> debias ->
// scale pipeline over `trials` independent runs.
inline double MeasureAccuracyLoss(const SimulationConfig& config,
                                  Xoshiro256& rng) {
  const core::RandomizedResponse rr(
      core::RandomizationParams{config.p, config.q});
  const double yes_fraction =
      config.inverted ? 1.0 - config.yes_fraction : config.yes_fraction;
  const double truth =
      yes_fraction * static_cast<double>(config.population);
  double total_loss = 0.0;
  size_t valid_trials = 0;
  for (size_t trial = 0; trial < config.trials; ++trial) {
    size_t participants = 0;
    size_t randomized_yes = 0;
    for (size_t i = 0; i < config.population; ++i) {
      if (config.sampling_fraction < 1.0 &&
          !rng.NextBernoulli(config.sampling_fraction)) {
        continue;
      }
      ++participants;
      const bool truthful =
          static_cast<double>(i) <
          yes_fraction * static_cast<double>(config.population);
      if (config.p >= 1.0 ? truthful
                          : rr.RandomizeBit(truthful, rng)) {
        ++randomized_yes;
      }
    }
    if (participants == 0) {
      continue;
    }
    const double debiased =
        config.p >= 1.0
            ? static_cast<double>(randomized_yes)
            : rr.DebiasCount(static_cast<double>(randomized_yes),
                             static_cast<double>(participants));
    const double scaled = debiased * static_cast<double>(config.population) /
                          static_cast<double>(participants);
    total_loss += core::AccuracyLoss(truth, scaled);
    ++valid_trials;
  }
  return valid_trials == 0 ? 0.0
                           : total_loss / static_cast<double>(valid_trials);
}

}  // namespace privapprox::bench

#endif  // PRIVAPPROX_BENCH_BENCH_UTIL_H_
