// Ablation: do sampling and randomized response commute? (paper §4)
//
// The privacy proof relies on the two operations commuting. We verify the
// claim empirically: the de-biased yes-fraction estimate has the same mean
// and essentially the same spread whether clients sample first and then
// randomize (PrivApprox's order) or randomize first and then sample.

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "core/randomized_response.h"
#include "stats/moments.h"

using namespace privapprox;

int main() {
  const size_t population = 50000;
  const double yes_fraction = 0.6;
  const int trials = 300;
  const core::RandomizedResponse rr(core::RandomizationParams{0.7, 0.5});

  std::printf("Ablation: commutativity of sampling and randomization\n");
  std::printf("(%zu clients, 60%% yes, p = 0.7, q = 0.5, %d trials)\n\n",
              population, trials);
  std::printf("%8s | %12s %12s | %12s %12s | %8s\n", "s(%)",
              "mean(S->R)", "sd(S->R)", "mean(R->S)", "sd(R->S)", "KS-ish");

  Xoshiro256 rng(1);
  for (int s_pct : {20, 50, 80}) {
    const double s = s_pct / 100.0;
    stats::RunningMoments sample_first, randomize_first;
    for (int trial = 0; trial < trials; ++trial) {
      size_t n_a = 0, ry_a = 0, n_b = 0, ry_b = 0;
      for (size_t i = 0; i < population; ++i) {
        const bool truth = static_cast<double>(i) < yes_fraction * population;
        if (rng.NextBernoulli(s)) {
          ++n_a;
          ry_a += rr.RandomizeBit(truth, rng) ? 1 : 0;
        }
        const bool randomized = rr.RandomizeBit(truth, rng);
        if (rng.NextBernoulli(s)) {
          ++n_b;
          ry_b += randomized ? 1 : 0;
        }
      }
      sample_first.Add(rr.DebiasCount(ry_a, n_a) / static_cast<double>(n_a));
      randomize_first.Add(rr.DebiasCount(ry_b, n_b) /
                          static_cast<double>(n_b));
    }
    const double mean_gap =
        std::fabs(sample_first.Mean() - randomize_first.Mean());
    std::printf("%8d | %12.5f %12.5f | %12.5f %12.5f | %8.5f\n", s_pct,
                sample_first.Mean(), sample_first.SampleStdDev(),
                randomize_first.Mean(), randomize_first.SampleStdDev(),
                mean_gap);
  }
  std::printf(
      "\nShape check: means agree to within sampling noise and spreads "
      "match:\nthe operations commute, as the privacy analysis assumes.\n");
  return 0;
}
