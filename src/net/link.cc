#include "net/link.h"

#include <algorithm>
#include <stdexcept>

namespace privapprox::net {

double TransferTimeMs(const LinkConfig& config, uint64_t bytes) {
  if (config.bandwidth_bytes_per_ms <= 0.0 || config.latency_ms < 0.0) {
    throw std::invalid_argument("TransferTimeMs: bad config");
  }
  return config.latency_ms +
         static_cast<double>(bytes) / config.bandwidth_bytes_per_ms;
}

Link::Link(LinkConfig config) : config_(config) {
  if (config.bandwidth_bytes_per_ms <= 0.0 || config.latency_ms < 0.0) {
    throw std::invalid_argument("Link: bad config");
  }
}

double Link::Transfer(double start_ms, uint64_t bytes) {
  const double begin = std::max(start_ms, busy_until_ms_);
  const double serialize =
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_ms;
  busy_until_ms_ = begin + serialize;
  bytes_transferred_ += bytes;
  ++transfers_;
  return busy_until_ms_ + config_.latency_ms;
}

void Link::Reset() {
  busy_until_ms_ = 0.0;
  bytes_transferred_ = 0;
  transfers_ = 0;
}

}  // namespace privapprox::net
