// Cluster topology model for scale-up / scale-out experiments.
//
// The paper's testbed: 44 nodes, Gigabit Ethernet, 2x quad-core Xeon per
// node; 2 Kafka proxies (4 brokers + 3 Zookeeper each), 20 Flink nodes
// (§7.1). We model a cluster as N worker nodes with C cores each, behind
// per-node links, and provide an analytic completion-time estimate for a
// bulk workload: records are partitioned over nodes, each node overlaps
// network receive with per-core processing. That is enough to reproduce the
// scaling shapes of Fig 8 and the latency curves of Figs 6 and 9.

#ifndef PRIVAPPROX_NET_TOPOLOGY_H_
#define PRIVAPPROX_NET_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/link.h"

namespace privapprox::net {

struct NodeConfig {
  size_t cores = 8;
  // Per-core processing rate for one record of the workload in question.
  double records_per_ms_per_core = 100.0;
  // Parallel efficiency per extra core (sub-linear scale-up, locks/memory
  // bandwidth): effective cores = 1 + e*(c-1).
  double core_efficiency = 0.85;
};

struct ClusterConfig {
  size_t num_nodes = 1;
  NodeConfig node;
  LinkConfig link;
  // Coordination overhead per node added to a distributed run (scale-out is
  // sub-linear too).
  double per_node_overhead_ms = 1.0;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  const ClusterConfig& config() const { return config_; }

  // Effective processing rate (records/ms) of one node with its cores.
  double NodeRate() const;

  // Aggregate effective rate of the cluster.
  double ClusterRate() const;

  // Completion time for processing `records` records of `bytes_per_record`
  // each, fanned out evenly over the nodes: per-node time is
  // max(network time, compute time) + overhead, and the cluster finishes
  // when the slowest (here: any, they are equal) node finishes.
  double CompletionTimeMs(uint64_t records, double bytes_per_record) const;

  // Throughput (records/sec) implied by CompletionTimeMs for the workload.
  double ThroughputPerSec(uint64_t records, double bytes_per_record) const;

 private:
  ClusterConfig config_;
};

}  // namespace privapprox::net

#endif  // PRIVAPPROX_NET_TOPOLOGY_H_
