#include "net/topology.h"

#include <algorithm>
#include <stdexcept>

namespace privapprox::net {

Cluster::Cluster(ClusterConfig config) : config_(config) {
  if (config.num_nodes == 0 || config.node.cores == 0) {
    throw std::invalid_argument("Cluster: need >= 1 node and >= 1 core");
  }
  if (config.node.records_per_ms_per_core <= 0.0) {
    throw std::invalid_argument("Cluster: bad processing rate");
  }
  if (config.node.core_efficiency <= 0.0 ||
      config.node.core_efficiency > 1.0) {
    throw std::invalid_argument("Cluster: core_efficiency must be in (0, 1]");
  }
}

double Cluster::NodeRate() const {
  const double cores = static_cast<double>(config_.node.cores);
  const double effective =
      1.0 + config_.node.core_efficiency * (cores - 1.0);
  return effective * config_.node.records_per_ms_per_core;
}

double Cluster::ClusterRate() const {
  return NodeRate() * static_cast<double>(config_.num_nodes);
}

double Cluster::CompletionTimeMs(uint64_t records,
                                 double bytes_per_record) const {
  if (records == 0) {
    return 0.0;
  }
  const double per_node_records =
      static_cast<double>(records) / static_cast<double>(config_.num_nodes);
  const double compute_ms = per_node_records / NodeRate();
  const double network_ms =
      per_node_records * bytes_per_record / config_.link.bandwidth_bytes_per_ms +
      config_.link.latency_ms;
  const double overhead_ms =
      config_.per_node_overhead_ms * static_cast<double>(config_.num_nodes);
  // Receive overlaps compute; the slower of the two gates the node.
  return std::max(compute_ms, network_ms) + overhead_ms;
}

double Cluster::ThroughputPerSec(uint64_t records,
                                 double bytes_per_record) const {
  const double ms = CompletionTimeMs(records, bytes_per_record);
  if (ms <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(records) / ms * 1000.0;
}

}  // namespace privapprox::net
