// Simulated network links with bandwidth/latency accounting.
//
// Cluster experiments (Figs 6, 8, 9) need per-link byte counters and a
// transfer-time model. We model a link as latency + size/bandwidth with
// serialization at the sender — deterministic, so the benchmark shapes are
// reproducible run-to-run (see the DESIGN.md substitution table).

#ifndef PRIVAPPROX_NET_LINK_H_
#define PRIVAPPROX_NET_LINK_H_

#include <cstdint>

namespace privapprox::net {

struct LinkConfig {
  double bandwidth_bytes_per_ms = 125000.0;  // 1 Gbit/s
  double latency_ms = 0.2;                   // one-way propagation
};

// Stateless transfer-time model: latency + serialization for one transfer
// on an idle link. Unlike Link::Transfer it keeps no busy-until state, so
// it is safe to call concurrently (the fault injector prices degraded-path
// deliveries from parallel answer workers with it). Throws
// std::invalid_argument on a non-positive bandwidth or negative latency.
double TransferTimeMs(const LinkConfig& config, uint64_t bytes);

class Link {
 public:
  explicit Link(LinkConfig config);

  // Time to deliver `bytes` injected at `start_ms`, honoring the link's
  // serialization: a transfer cannot start before the previous one finished
  // leaving the sender. Returns the arrival time at the receiver.
  double Transfer(double start_ms, uint64_t bytes);

  uint64_t bytes_transferred() const { return bytes_transferred_; }
  uint64_t transfers() const { return transfers_; }
  double busy_until_ms() const { return busy_until_ms_; }

  void Reset();

 private:
  LinkConfig config_;
  double busy_until_ms_ = 0.0;
  uint64_t bytes_transferred_ = 0;
  uint64_t transfers_ = 0;
};

}  // namespace privapprox::net

#endif  // PRIVAPPROX_NET_LINK_H_
