// Lock-cheap process metrics for the epoch pipeline.
//
// The paper evaluates PrivApprox almost entirely through throughput/latency
// measurements of its Kafka+Flink deployment (Figs 5, 8, 9); this module is
// the equivalent first-class instrumentation for our in-process pipeline.
// Three primitive instruments — Counter and Gauge over relaxed atomics, and
// a log-bucketed latency Histogram with p50/p95/p99 — plus a process-wide
// Registry of labeled metric families with Prometheus-style text exposition
// and a JSON snapshot.
//
// Concurrency contract: instrument updates (Increment / Set / SetMax /
// Observe) are lock-free relaxed atomics, safe from any thread and cheap
// enough for the share hot path. Registration (GetCounter & friends) takes
// the registry mutex and returns a reference that stays valid for the
// registry's lifetime — register once at construction, update lock-free
// forever after. Rendering snapshots under the same mutex, so exposition is
// deterministic (families and label sets render in sorted order).

#ifndef PRIVAPPROX_METRICS_METRICS_H_
#define PRIVAPPROX_METRICS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace privapprox::metrics {

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time level. SetMax keeps a running high-watermark — the form the
// channel-depth (backpressure) gauges use.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log-bucketed histogram over non-negative integer samples (typically
// nanoseconds or bytes). Buckets are power-of-two octaves split into
// kSubBuckets sub-ranges, so any recorded value lands in a bucket whose
// bounds are within 1/kSubBuckets (12.5%) of it — tight enough for
// p50/p95/p99 latency reporting at a fixed 4 KiB of atomics per histogram,
// with no allocation and no locking on Observe.
class Histogram {
 public:
  static constexpr size_t kSubBucketBits = 3;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;  // 8
  static constexpr size_t kNumBuckets = (65 - kSubBucketBits) * kSubBuckets;

  void Observe(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  // Upper bound (inclusive) of the bucket holding the q-quantile sample,
  // q in [0, 1]. Exact for values < kSubBuckets; within 12.5% above. Returns
  // 0 on an empty histogram.
  double Percentile(double q) const;

  static size_t BucketIndex(uint64_t value) {
    if (value < kSubBuckets) {
      return static_cast<size_t>(value);
    }
    const int width = std::bit_width(value);  // >= kSubBucketBits + 1
    const int shift = width - static_cast<int>(kSubBucketBits) - 1;
    const size_t sub =
        static_cast<size_t>(value >> shift) - kSubBuckets;
    return (static_cast<size_t>(width) - kSubBucketBits) * kSubBuckets + sub;
  }

  // Exclusive upper bound of bucket `index` (its smallest non-member value).
  static uint64_t BucketUpperBound(size_t index) {
    if (index < kSubBuckets) {
      return static_cast<uint64_t>(index) + 1;
    }
    const size_t octave = index / kSubBuckets;  // >= 1
    const size_t sub = index % kSubBuckets;
    const int shift = static_cast<int>(octave) - 1;
    return static_cast<uint64_t>(kSubBuckets + sub + 1) << shift;
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

// Label set attached to one metric within a family, e.g.
// {{"proxy", "0"}, {"topic", "proxy0.in"}}. Rendered in the given order.
using Labels = std::vector<std::pair<std::string, std::string>>;

// A process-wide collection of labeled metric families.
//
// Get*(name, help, labels) registers on first use and returns the existing
// instrument on every later call with the same (name, labels) — so wiring
// code can re-request instead of threading pointers. A family's type is
// fixed by its first registration; re-registering under a different type
// throws std::logic_error.
//
// Collectors are callbacks run (outside the registry mutex) at the start of
// every render/snapshot; they pull values from external sources — e.g.
// broker topic byte counters and slab occupancy — into gauges, keeping
// those hot paths untouched by the registry.
class Registry {
 public:
  Counter& GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge& GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  Histogram& GetHistogram(const std::string& name, const std::string& help,
                          const Labels& labels = {});

  void AddCollector(std::function<void()> collector);

  // Prometheus-style text exposition. Counters and gauges render one sample
  // per label set; histograms render as summaries (quantile samples plus
  // _sum and _count). Deterministic: families sorted by name, label sets
  // sorted within a family.
  std::string RenderText();

  // The same data as a single JSON object:
  // {"counters":{...},"gauges":{...},"histograms":{"name{labels}":
  //   {"count":..,"sum":..,"p50":..,"p95":..,"p99":..}}}
  std::string RenderJson();

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Family {
    std::string help;
    Type type = Type::kCounter;
    // Keyed by the rendered label string (`k1="v1",k2="v2"`; empty for the
    // unlabeled metric). std::map keeps exposition order deterministic.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Family& GetFamily(const std::string& name, const std::string& help,
                    Type type);
  void RunCollectors();

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::vector<std::function<void()>> collectors_;
};

// Renders a label set as `k1="v1",k2="v2"` (no braces; empty for no labels).
std::string RenderLabels(const Labels& labels);

}  // namespace privapprox::metrics

#endif  // PRIVAPPROX_METRICS_METRICS_H_
