#include "metrics/metrics.h"

#include <cstdio>
#include <stdexcept>

namespace privapprox::metrics {

double Histogram::Percentile(double q) const {
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) {
    return 0.0;
  }
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank < 1) {
    rank = 1;
  }
  if (rank > total) {
    rank = total;
  }
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      return static_cast<double>(BucketUpperBound(i) - 1);
    }
  }
  return static_cast<double>(BucketUpperBound(kNumBuckets - 1) - 1);
}

std::string RenderLabels(const Labels& labels) {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  return out;
}

Registry::Family& Registry::GetFamily(const std::string& name,
                                      const std::string& help, Type type) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.help = help;
    it->second.type = type;
  } else if (it->second.type != type) {
    throw std::logic_error("metrics::Registry: family '" + name +
                           "' re-registered with a different type");
  }
  return it->second;
}

Counter& Registry::GetCounter(const std::string& name, const std::string& help,
                              const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = GetFamily(name, help, Type::kCounter);
  auto& slot = family.counters[RenderLabels(labels)];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name, const std::string& help,
                          const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = GetFamily(name, help, Type::kGauge);
  auto& slot = family.gauges[RenderLabels(labels)];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = GetFamily(name, help, Type::kHistogram);
  auto& slot = family.histograms[RenderLabels(labels)];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

void Registry::AddCollector(std::function<void()> collector) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(collector));
}

void Registry::RunCollectors() {
  // Copy the callbacks out so collectors may register/set metrics (which
  // takes the mutex) without deadlocking.
  std::vector<std::function<void()>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    collectors = collectors_;
  }
  for (const auto& collector : collectors) {
    collector();
  }
}

namespace {

void AppendSample(std::string& out, const std::string& name,
                  const std::string& labels, const std::string& extra_label,
                  double value, bool integral) {
  out += name;
  if (!labels.empty() || !extra_label.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra_label.empty()) {
      out += ',';
    }
    out += extra_label;
    out += '}';
  }
  char buf[32];
  if (integral) {
    std::snprintf(buf, sizeof(buf), " %lld\n",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), " %.0f\n", value);
  }
  out += buf;
}

}  // namespace

std::string Registry::RenderText() {
  RunCollectors();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + family.help + "\n";
    switch (family.type) {
      case Type::kCounter:
        out += "# TYPE " + name + " counter\n";
        for (const auto& [labels, counter] : family.counters) {
          AppendSample(out, name, labels, "",
                       static_cast<double>(counter->Value()), true);
        }
        break;
      case Type::kGauge:
        out += "# TYPE " + name + " gauge\n";
        for (const auto& [labels, gauge] : family.gauges) {
          AppendSample(out, name, labels, "",
                       static_cast<double>(gauge->Value()), true);
        }
        break;
      case Type::kHistogram:
        out += "# TYPE " + name + " summary\n";
        for (const auto& [labels, hist] : family.histograms) {
          AppendSample(out, name, labels, "quantile=\"0.5\"",
                       hist->Percentile(0.5), false);
          AppendSample(out, name, labels, "quantile=\"0.95\"",
                       hist->Percentile(0.95), false);
          AppendSample(out, name, labels, "quantile=\"0.99\"",
                       hist->Percentile(0.99), false);
          AppendSample(out, name + "_sum", labels, "",
                       static_cast<double>(hist->Sum()), true);
          AppendSample(out, name + "_count", labels, "",
                       static_cast<double>(hist->Count()), true);
        }
        break;
    }
  }
  return out;
}

namespace {

void AppendJsonEntry(std::string& out, bool& first, const std::string& name,
                     const std::string& labels, const std::string& value) {
  if (!first) {
    out += ',';
  }
  first = false;
  out += '"';
  out += name;
  if (!labels.empty()) {
    out += '{';
    // The rendered label string contains '"' around values; escape them.
    for (char c : labels) {
      if (c == '"') {
        out += "\\\"";
      } else {
        out += c;
      }
    }
    out += '}';
  }
  out += "\":";
  out += value;
}

}  // namespace

std::string Registry::RenderJson() {
  RunCollectors();
  std::lock_guard<std::mutex> lock(mu_);
  char buf[160];
  std::string counters = "{";
  std::string gauges = "{";
  std::string histograms = "{";
  bool first_counter = true;
  bool first_gauge = true;
  bool first_hist = true;
  for (const auto& [name, family] : families_) {
    switch (family.type) {
      case Type::kCounter:
        for (const auto& [labels, counter] : family.counters) {
          std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(counter->Value()));
          AppendJsonEntry(counters, first_counter, name, labels, buf);
        }
        break;
      case Type::kGauge:
        for (const auto& [labels, gauge] : family.gauges) {
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(gauge->Value()));
          AppendJsonEntry(gauges, first_gauge, name, labels, buf);
        }
        break;
      case Type::kHistogram:
        for (const auto& [labels, hist] : family.histograms) {
          std::snprintf(
              buf, sizeof(buf),
              "{\"count\":%llu,\"sum\":%llu,\"p50\":%.0f,\"p95\":%.0f,"
              "\"p99\":%.0f}",
              static_cast<unsigned long long>(hist->Count()),
              static_cast<unsigned long long>(hist->Sum()),
              hist->Percentile(0.5), hist->Percentile(0.95),
              hist->Percentile(0.99));
          AppendJsonEntry(histograms, first_hist, name, labels, buf);
        }
        break;
    }
  }
  counters += '}';
  gauges += '}';
  histograms += '}';
  return "{\"counters\":" + counters + ",\"gauges\":" + gauges +
         ",\"histograms\":" + histograms + "}";
}

}  // namespace privapprox::metrics
