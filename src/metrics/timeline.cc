#include "metrics/timeline.h"

#include <chrono>
#include <cstdio>

namespace privapprox::metrics {

namespace {

uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

int64_t EpochTimeline::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void EpochTimeline::Record(const char* name, int64_t start_ns,
                           int64_t end_ns) {
  if (!enabled()) {
    return;
  }
  Event event;
  event.name = name;
  event.tid = ThisThreadId();
  event.start_ns = start_ns;
  event.duration_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.capacity() == events_.size()) {
    events_.reserve(events_.empty() ? 256 : events_.size() * 2);
  }
  events_.push_back(event);
}

void EpochTimeline::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::vector<EpochTimeline::Event> EpochTimeline::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t EpochTimeline::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string EpochTimeline::ToChromeTracingJson() const {
  std::vector<Event> events = Events();
  int64_t origin_ns = 0;
  for (const Event& event : events) {
    if (origin_ns == 0 || event.start_ns < origin_ns) {
      origin_ns = event.start_ns;
    }
  }
  std::string out = "{\"traceEvents\":[";
  char buf[192];
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& event = events[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f}",
                  i == 0 ? "" : ",", event.name, event.tid,
                  static_cast<double>(event.start_ns - origin_ns) / 1000.0,
                  static_cast<double>(event.duration_ns) / 1000.0);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace privapprox::metrics
