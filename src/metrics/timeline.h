// Per-stage span tracing for the epoch pipeline.
//
// An EpochTimeline records named start/stop spans (client answer shards,
// per-proxy forwards, aggregator consumes, barrier phases) and dumps them as
// chrome://tracing / Perfetto-compatible JSON, so one epoch's stage overlap
// is visible on a real timeline instead of inferred from aggregate
// throughput numbers.
//
// Disabled (the default) a Span costs two branch-predicted loads — no clock
// reads, no locking — so the trace hook can stay compiled into the hot
// stages (SystemConfig::metrics.timeline turns it on). Enabled, Record takes
// a mutex around a push_back into a reserved vector; span granularity is one
// shard batch (~1k clients), so contention is negligible next to the work
// being traced.

#ifndef PRIVAPPROX_METRICS_TIMELINE_H_
#define PRIVAPPROX_METRICS_TIMELINE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace privapprox::metrics {

class EpochTimeline {
 public:
  struct Event {
    const char* name = nullptr;  // static string; not owned
    uint32_t tid = 0;
    int64_t start_ns = 0;
    int64_t duration_ns = 0;
  };

  explicit EpochTimeline(bool enabled = false) : enabled_(enabled) {}

  EpochTimeline(const EpochTimeline&) = delete;
  EpochTimeline& operator=(const EpochTimeline&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Monotonic clock used for span timestamps (nanoseconds).
  static int64_t NowNs();

  // Records one completed span. `name` must be a static string — the
  // timeline stores the pointer, not a copy.
  void Record(const char* name, int64_t start_ns, int64_t end_ns);

  void Clear();
  std::vector<Event> Events() const;
  size_t size() const;

  // chrome://tracing "trace event" JSON: load the returned string (saved to
  // a file) in chrome://tracing or https://ui.perfetto.dev. One row per
  // recording thread, microsecond timestamps relative to the first span.
  std::string ToChromeTracingJson() const;

  // RAII span: reads the clock on construction and records on destruction —
  // both skipped when the timeline is disabled.
  class Span {
   public:
    Span(EpochTimeline& timeline, const char* name)
        : timeline_(timeline), name_(name) {
      if (timeline_.enabled()) {
        start_ns_ = NowNs();
      }
    }
    ~Span() {
      if (start_ns_ >= 0) {
        timeline_.Record(name_, start_ns_, NowNs());
      }
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    EpochTimeline& timeline_;
    const char* name_;
    int64_t start_ns_ = -1;
  };

 private:
  std::atomic<bool> enabled_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace privapprox::metrics

#endif  // PRIVAPPROX_METRICS_TIMELINE_H_
