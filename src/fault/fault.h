// Deterministic fault injection for the epoch pipeline.
//
// The paper's deployment assumes proxies and share streams fail
// independently while the aggregator keeps emitting per-window answers with
// honest error bounds. This module injects those failures on purpose: a
// seeded FaultPlan describes per-share loss/corruption/duplication/delay on
// the client->proxy link, per-attempt forward timeouts, and per-epoch proxy
// crashes; the FaultInjector turns the plan into decisions.
//
// Determinism contract: every decision is a pure hash of
// (plan seed, query id, MID, proxy index, decision kind) — never of
// wall-clock time, thread identity, or arrival order — so a given plan
// injects the *same* faults in the barrier and streaming pipeline modes at
// any worker count. That is what lets tests assert streaming == barrier
// results under faults and lets a CI chaos matrix replay a seed exactly.
// Salting with the query id gives every query an independent (but still
// replayable) fault sequence; proxy crashes are infrastructure-level and
// stay per (epoch, proxy), hitting every query's lane alike.
//
// Recovery is modeled client-side: a forward that times out is retried with
// bounded exponential backoff (client::RetryPolicy; backoff is simulated
// virtual time, observed into a histogram, never slept) and fails over to
// the proxy's standby once retries are exhausted. Shares routed over the
// degraded link (net::LinkConfig transfer-time model) arrive in the next
// epoch when the transfer misses the late deadline.

#ifndef PRIVAPPROX_FAULT_FAULT_H_
#define PRIVAPPROX_FAULT_FAULT_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "client/retry.h"
#include "metrics/metrics.h"
#include "net/link.h"

namespace privapprox::fault {

// A seeded description of what goes wrong. All probabilities are per
// (MID, proxy) share; the per-share fates (drop / corrupt / duplicate /
// delay) are mutually exclusive, drawn from one uniform in that priority
// order, so their probabilities must sum to <= 1.
struct FaultPlan {
  uint64_t seed = 1;

  // --- Injected share faults on the client -> proxy link ----------------
  double drop_probability = 0.0;       // share silently lost in transit
  double corrupt_probability = 0.0;    // record truncated below the MID
                                       // header (undecodable downstream)
  double duplicate_probability = 0.0;  // share delivered twice
  double delay_probability = 0.0;      // share routed over degraded_link

  // Degraded-path model for delay-fated shares: arrival is
  // net::TransferTimeMs(degraded_link, record bytes) after the send; when
  // that exceeds late_deadline_ms the share misses the epoch and is
  // delivered at the start of the next one instead.
  net::LinkConfig degraded_link{/*bandwidth_bytes_per_ms=*/1.0,
                                /*latency_ms=*/200.0};
  double late_deadline_ms = 100.0;

  // --- Forward timeouts and proxy crashes -------------------------------
  double timeout_probability = 0.0;  // per forward attempt
  double crash_probability = 0.0;    // per (proxy, epoch): proxy crashes
                                     // mid-epoch, restarts for the next one
  // Fraction of a crashing proxy's shares sent before the crash instant;
  // the rest hit a dead proxy and time out on every attempt.
  double crash_point = 0.5;

  // --- Recovery ---------------------------------------------------------
  client::RetryPolicy retry;    // bounded exponential backoff per share
  bool standby_proxies = true;  // failover target once retries are exhausted

  void Validate() const;

  // True when the plan can time a forward out (and thus needs standbys for
  // failover to recover anything).
  bool CanTimeOut() const {
    return timeout_probability > 0.0 || crash_probability > 0.0;
  }
};

// Registry instruments, not owned (null = uncounted). Wired by
// PrivApproxSystem from the privapprox_fault_* / privapprox_recovery_*
// families; all are relaxed atomics, safe from concurrent answer shards.
struct FaultCounters {
  metrics::Counter* shares_dropped = nullptr;
  metrics::Counter* shares_corrupted = nullptr;
  metrics::Counter* shares_duplicated = nullptr;
  metrics::Counter* shares_delayed = nullptr;   // deferred to the next epoch
  metrics::Counter* forward_timeouts = nullptr;  // failed forward attempts
  metrics::Counter* proxy_crashes = nullptr;     // proxy-epochs down
  metrics::Counter* lost_mids = nullptr;  // distinct MIDs that cannot join
  metrics::Counter* retries = nullptr;    // forward attempts retried
  metrics::Counter* failovers = nullptr;  // shares delivered via standby
  metrics::Counter* late_delivered = nullptr;  // deferred shares delivered
  metrics::Histogram* backoff_ms = nullptr;    // simulated backoff per share
};

// Where one share ends up after injection + client-side recovery.
enum class ShareRoute {
  kPrimary,   // delivered to the proxy (possibly corrupted / duplicated)
  kStandby,   // retries exhausted; failed over to the standby proxy
  kDeferred,  // degraded link missed the deadline; deliver next epoch
  kLost,      // dropped in transit, or retries exhausted with no standby
};

struct ShareOutcome {
  ShareRoute route = ShareRoute::kPrimary;
  bool duplicate = false;
  // != SIZE_MAX: truncate the wire record to this many bytes (< 8, so the
  // decode path counts it malformed and the MID can never join).
  size_t corrupt_to = SIZE_MAX;
};

// A share held back by the degraded link, owned until redelivery. The
// record is a core::query_wire tagged-share frame (QID | MID | payload):
// the deferral buffer is the one place shares sit outside their
// per-(query, proxy) lane, so the bytes must carry the QID themselves for
// next-epoch replay to route them back to the right lane.
struct DeferredShare {
  uint64_t query_id = 0;
  size_t proxy = 0;
  uint64_t message_id = 0;
  std::vector<uint8_t> record;  // tagged frame (QID | MID header | payload)
  int64_t timestamp_ms = 0;     // original event time
};

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, FaultCounters counters, bool has_standby);

  const FaultPlan& plan() const { return plan_; }
  bool has_standby() const { return has_standby_; }

  // Decides one share's fate and runs the client-side forward protocol
  // (retry with backoff, then failover). Deterministic per
  // (seed, query, mid, proxy, epoch); counts everything it injects and
  // recovers. `record_bytes` sizes the degraded-link transfer for delay
  // fates.
  ShareOutcome RouteShare(uint64_t query_id, uint64_t mid, size_t proxy,
                          uint64_t epoch, size_t record_bytes);

  // True when `proxy` crashes during `epoch` (restarts for epoch + 1).
  // Query-independent: a crashed proxy is down for every lane it serves.
  bool ProxyCrashes(uint64_t epoch, size_t proxy) const;

  // Parks a deferred share until the next epoch (copies `lane_record`, the
  // <MID, payload> wire record, into an owned QID-tagged frame — the
  // caller's arena does not outlive the epoch). Thread-safe.
  void Defer(uint64_t query_id, size_t proxy, uint64_t mid,
             std::span<const uint8_t> lane_record, int64_t timestamp_ms);
  // Drains the deferred shares in deterministic (proxy, QID, MID) order,
  // counting them as late-delivered. Called at the next epoch's start.
  std::vector<DeferredShare> TakeDeferred();

  // Drains the (query, MID) pairs lost so far (sorted, each counted once)
  // so the system can hand them to the right aggregator lane for CI
  // widening.
  std::vector<std::pair<uint64_t, uint64_t>> TakeLostMids();

 private:
  double UnitUniform(uint64_t salt, uint64_t query_id, uint64_t a,
                     uint64_t b) const;
  void NoteLostMid(uint64_t query_id, uint64_t mid);

  FaultPlan plan_;
  FaultCounters counters_;
  bool has_standby_;
  std::mutex mu_;
  std::vector<DeferredShare> deferred_;
  std::set<std::pair<uint64_t, uint64_t>> lost_mids_;  // (QID, MID)
};

}  // namespace privapprox::fault

#endif  // PRIVAPPROX_FAULT_FAULT_H_
