#include "fault/fault.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/query_wire.h"

namespace privapprox::fault {

namespace {

// Decision-kind salts: each independent random decision about the same
// (mid, proxy) pair hashes with a distinct salt so the draws are
// uncorrelated.
constexpr uint64_t kSaltFate = 0x01;       // drop/corrupt/duplicate/delay
constexpr uint64_t kSaltCorruptLen = 0x02;  // truncation length
constexpr uint64_t kSaltCrash = 0x03;       // per (epoch, proxy)
constexpr uint64_t kSaltCrashPos = 0x04;    // sent before/after the crash
constexpr uint64_t kSaltTimeout = 0x05;     // per forward attempt

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void CheckProbability(double p, const char* what) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                " must be in [0, 1]");
  }
}

}  // namespace

void FaultPlan::Validate() const {
  CheckProbability(drop_probability, "drop_probability");
  CheckProbability(corrupt_probability, "corrupt_probability");
  CheckProbability(duplicate_probability, "duplicate_probability");
  CheckProbability(delay_probability, "delay_probability");
  CheckProbability(timeout_probability, "timeout_probability");
  CheckProbability(crash_probability, "crash_probability");
  CheckProbability(crash_point, "crash_point");
  if (drop_probability + corrupt_probability + duplicate_probability +
          delay_probability >
      1.0) {
    throw std::invalid_argument(
        "FaultPlan: share fate probabilities must sum to <= 1");
  }
  if (late_deadline_ms < 0.0) {
    throw std::invalid_argument("FaultPlan: late_deadline_ms must be >= 0");
  }
  if (degraded_link.bandwidth_bytes_per_ms <= 0.0 ||
      degraded_link.latency_ms < 0.0) {
    throw std::invalid_argument("FaultPlan: bad degraded_link");
  }
  if (retry.max_attempts == 0) {
    throw std::invalid_argument("FaultPlan: retry.max_attempts must be >= 1");
  }
}

FaultInjector::FaultInjector(FaultPlan plan, FaultCounters counters,
                             bool has_standby)
    : plan_(plan), counters_(counters), has_standby_(has_standby) {
  plan_.Validate();
}

// Uniform in [0, 1) from a pure hash of (seed, salt, query, a, b):
// bit-identical for a given plan regardless of call order, thread, or
// pipeline mode. Folding the query id in gives each query its own
// independent fault stream over the same (mid, proxy) space.
double FaultInjector::UnitUniform(uint64_t salt, uint64_t query_id,
                                  uint64_t a, uint64_t b) const {
  uint64_t h = SplitMix64(plan_.seed ^ salt);
  h = SplitMix64(h ^ query_id);
  h = SplitMix64(h ^ a);
  h = SplitMix64(h ^ b);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::ProxyCrashes(uint64_t epoch, size_t proxy) const {
  if (plan_.crash_probability <= 0.0) {
    return false;
  }
  // query_id 0 (never a real QID): crashes are per proxy, not per lane.
  return UnitUniform(kSaltCrash, 0, epoch, proxy) < plan_.crash_probability;
}

void FaultInjector::NoteLostMid(uint64_t query_id, uint64_t mid) {
  std::lock_guard<std::mutex> lock(mu_);
  if (lost_mids_.insert({query_id, mid}).second &&
      counters_.lost_mids != nullptr) {
    counters_.lost_mids->Increment();
  }
}

ShareOutcome FaultInjector::RouteShare(uint64_t query_id, uint64_t mid,
                                       size_t proxy, uint64_t epoch,
                                       size_t record_bytes) {
  ShareOutcome out;

  // --- In-transit fate: one uniform cascaded through the (mutually
  // exclusive) fault probabilities in fixed priority order.
  double u = UnitUniform(kSaltFate, query_id, mid, proxy);
  if (u < plan_.drop_probability) {
    if (counters_.shares_dropped != nullptr) {
      counters_.shares_dropped->Increment();
    }
    // A missing share makes the whole MID unjoinable (for this query).
    NoteLostMid(query_id, mid);
    out.route = ShareRoute::kLost;
    return out;
  }
  u -= plan_.drop_probability;
  if (u < plan_.corrupt_probability) {
    // Truncate below the 8-byte MID header: the decode path counts the
    // record malformed, so the corrupted share can never join (and can
    // never reach the joiner with a mismatched payload length).
    out.corrupt_to = static_cast<size_t>(
        UnitUniform(kSaltCorruptLen, query_id, mid, proxy) * 8.0);
    out.corrupt_to = std::min<size_t>(out.corrupt_to, 7);
    if (counters_.shares_corrupted != nullptr) {
      counters_.shares_corrupted->Increment();
    }
    NoteLostMid(query_id, mid);  // cannot join without this share's bytes
  } else {
    u -= plan_.corrupt_probability;
    if (u < plan_.duplicate_probability) {
      if (counters_.shares_duplicated != nullptr) {
        counters_.shares_duplicated->Increment();
      }
      out.duplicate = true;
    } else {
      u -= plan_.duplicate_probability;
      if (u < plan_.delay_probability) {
        // Degraded path: deterministic transfer-time model decides whether
        // the share still makes this epoch's deadline.
        const double arrival_ms =
            net::TransferTimeMs(plan_.degraded_link, record_bytes);
        if (arrival_ms > plan_.late_deadline_ms) {
          if (counters_.shares_delayed != nullptr) {
            counters_.shares_delayed->Increment();
          }
          out.route = ShareRoute::kDeferred;
          return out;
        }
      }
    }
  }

  // --- Forward protocol: per-attempt timeouts, bounded exponential backoff
  // between attempts (simulated virtual time), failover once exhausted. A
  // share sent after a crashing proxy's crash point times out every attempt.
  const bool proxy_down =
      ProxyCrashes(epoch, proxy) &&
      UnitUniform(kSaltCrashPos, query_id, mid, proxy) >= plan_.crash_point;
  if (plan_.timeout_probability <= 0.0 && !proxy_down) {
    return out;
  }
  for (size_t attempt = 0; attempt < plan_.retry.max_attempts; ++attempt) {
    const bool timed_out =
        proxy_down ||
        UnitUniform(kSaltTimeout + 16 * attempt, query_id, mid, proxy) <
            plan_.timeout_probability;
    if (!timed_out) {
      return out;  // delivered (possibly after retries already counted)
    }
    if (counters_.forward_timeouts != nullptr) {
      counters_.forward_timeouts->Increment();
    }
    if (attempt + 1 < plan_.retry.max_attempts) {
      if (counters_.retries != nullptr) {
        counters_.retries->Increment();
      }
      if (counters_.backoff_ms != nullptr) {
        counters_.backoff_ms->Observe(static_cast<uint64_t>(
            plan_.retry.BackoffForAttempt(attempt)));
      }
    }
  }
  // Retries exhausted against the primary.
  if (has_standby_) {
    if (counters_.failovers != nullptr) {
      counters_.failovers->Increment();
    }
    out.route = ShareRoute::kStandby;
    return out;
  }
  NoteLostMid(query_id, mid);
  out.route = ShareRoute::kLost;
  return out;
}

void FaultInjector::Defer(uint64_t query_id, size_t proxy, uint64_t mid,
                          std::span<const uint8_t> lane_record,
                          int64_t timestamp_ms) {
  DeferredShare share;
  share.query_id = query_id;
  share.proxy = proxy;
  share.message_id = mid;
  // Tag the lane record with its QID: the deferral buffer holds shares
  // from every lane mixed together, so the frame must say where each one
  // goes back.
  share.record = core::SerializeTaggedShare(query_id, lane_record);
  share.timestamp_ms = timestamp_ms;
  std::lock_guard<std::mutex> lock(mu_);
  deferred_.push_back(std::move(share));
}

std::vector<DeferredShare> FaultInjector::TakeDeferred() {
  std::vector<DeferredShare> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(deferred_);
  }
  // Arrival order at the injector depends on thread interleaving; sorting
  // by (proxy, QID, MID) restores a deterministic redelivery order that
  // also groups each lane's records for batched replay.
  std::sort(out.begin(), out.end(),
            [](const DeferredShare& a, const DeferredShare& b) {
              if (a.proxy != b.proxy) {
                return a.proxy < b.proxy;
              }
              if (a.query_id != b.query_id) {
                return a.query_id < b.query_id;
              }
              return a.message_id < b.message_id;
            });
  if (counters_.late_delivered != nullptr && !out.empty()) {
    counters_.late_delivered->Increment(out.size());
  }
  return out;
}

std::vector<std::pair<uint64_t, uint64_t>> FaultInjector::TakeLostMids() {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.assign(lost_mids_.begin(), lost_mids_.end());
    lost_mids_.clear();
  }
  return out;
}

}  // namespace privapprox::fault
