#include "localdb/sql.h"

#include <cctype>
#include <sstream>

namespace privapprox::localdb {
namespace {

enum class TokenKind {
  kIdent,
  kNumber,
  kString,
  kSymbol,  // operators and punctuation
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
  bool is_integer = false;
  size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  std::vector<Token> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdent());
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < input_.size() &&
                  std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
        tokens.push_back(LexNumber());
      } else if (c == '\'') {
        tokens.push_back(LexString());
      } else {
        tokens.push_back(LexSymbol());
      }
    }
    tokens.push_back(Token{TokenKind::kEnd, "", 0.0, false, pos_});
    return tokens;
  }

 private:
  Token LexIdent() {
    const size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    return Token{TokenKind::kIdent, input_.substr(start, pos_ - start), 0.0,
                 false, start};
  }

  Token LexNumber() {
    const size_t start = pos_;
    if (input_[pos_] == '-') {
      ++pos_;
    }
    bool is_integer = true;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.')) {
      if (input_[pos_] == '.') {
        is_integer = false;
      }
      ++pos_;
    }
    Token token{TokenKind::kNumber, input_.substr(start, pos_ - start), 0.0,
                is_integer, start};
    try {
      token.number = std::stod(token.text);
    } catch (const std::exception&) {
      throw SqlError("bad numeric literal '" + token.text + "' at position " +
                     std::to_string(start));
    }
    return token;
  }

  Token LexString() {
    const size_t start = pos_;
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < input_.size() && input_[pos_] != '\'') {
      text.push_back(input_[pos_++]);
    }
    if (pos_ >= input_.size()) {
      throw SqlError("unterminated string literal at position " +
                     std::to_string(start));
    }
    ++pos_;  // closing quote
    return Token{TokenKind::kString, std::move(text), 0.0, false, start};
  }

  Token LexSymbol() {
    const size_t start = pos_;
    static constexpr const char* kTwoChar[] = {"!=", "<>", "<=", ">="};
    if (pos_ + 1 < input_.size()) {
      const std::string two = input_.substr(pos_, 2);
      for (const char* sym : kTwoChar) {
        if (two == sym) {
          pos_ += 2;
          return Token{TokenKind::kSymbol, two, 0.0, false, start};
        }
      }
    }
    const char c = input_[pos_];
    if (c == '=' || c == '<' || c == '>' || c == '(' || c == ')' ||
        c == '*' || c == ',') {
      ++pos_;
      return Token{TokenKind::kSymbol, std::string(1, c), 0.0, false, start};
    }
    throw SqlError("unexpected character '" + std::string(1, c) +
                   "' at position " + std::to_string(start));
  }

  const std::string& input_;
  size_t pos_ = 0;
};

std::string ToUpper(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return s;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  SelectStatement Parse() {
    SelectStatement stmt;
    ExpectKeyword("SELECT");
    ParseSelect(stmt);
    ExpectKeyword("FROM");
    stmt.table = ExpectIdent("table name");
    if (IsKeyword("WHERE")) {
      Advance();
      stmt.where = ParseOr();
      stmt.has_where = true;
    }
    if (Current().kind != TokenKind::kEnd) {
      Fail("trailing input");
    }
    return stmt;
  }

 private:
  const Token& Current() const { return tokens_[index_]; }
  void Advance() { ++index_; }

  [[noreturn]] void Fail(const std::string& what) const {
    std::ostringstream out;
    out << "SQL parse error: " << what << " at position "
        << Current().position;
    if (!Current().text.empty()) {
      out << " (near '" << Current().text << "')";
    }
    throw SqlError(out.str());
  }

  bool IsKeyword(const std::string& upper) const {
    return Current().kind == TokenKind::kIdent &&
           ToUpper(Current().text) == upper;
  }

  void ExpectKeyword(const std::string& upper) {
    if (!IsKeyword(upper)) {
      Fail("expected " + upper);
    }
    Advance();
  }

  std::string ExpectIdent(const std::string& what) {
    if (Current().kind != TokenKind::kIdent) {
      Fail("expected " + what);
    }
    std::string text = Current().text;
    Advance();
    return text;
  }

  void ExpectSymbol(const std::string& symbol) {
    if (Current().kind != TokenKind::kSymbol || Current().text != symbol) {
      Fail("expected '" + symbol + "'");
    }
    Advance();
  }

  void ParseSelect(SelectStatement& stmt) {
    const std::string first = ExpectIdent("column or aggregate");
    const std::string upper = ToUpper(first);
    Aggregate aggregate = Aggregate::kNone;
    if (upper == "SUM") {
      aggregate = Aggregate::kSum;
    } else if (upper == "AVG") {
      aggregate = Aggregate::kAvg;
    } else if (upper == "MIN") {
      aggregate = Aggregate::kMin;
    } else if (upper == "MAX") {
      aggregate = Aggregate::kMax;
    } else if (upper == "COUNT") {
      aggregate = Aggregate::kCount;
    }
    const bool looks_like_call = Current().kind == TokenKind::kSymbol &&
                                 Current().text == "(";
    if (aggregate != Aggregate::kNone && looks_like_call) {
      Advance();  // '('
      stmt.aggregate = aggregate;
      if (aggregate == Aggregate::kCount && Current().kind == TokenKind::kSymbol &&
          Current().text == "*") {
        Advance();
        stmt.count_star = true;
      } else {
        stmt.column = ExpectIdent("aggregate column");
      }
      ExpectSymbol(")");
    } else {
      stmt.column = first;
    }
  }

  Predicate ParseOr() {
    Predicate left = ParseAnd();
    if (!IsKeyword("OR")) {
      return left;
    }
    Predicate node;
    node.kind = Predicate::Kind::kOr;
    node.children.push_back(std::move(left));
    while (IsKeyword("OR")) {
      Advance();
      node.children.push_back(ParseAnd());
    }
    return node;
  }

  Predicate ParseAnd() {
    Predicate left = ParseUnary();
    if (!IsKeyword("AND")) {
      return left;
    }
    Predicate node;
    node.kind = Predicate::Kind::kAnd;
    node.children.push_back(std::move(left));
    while (IsKeyword("AND")) {
      Advance();
      node.children.push_back(ParseUnary());
    }
    return node;
  }

  Predicate ParseUnary() {
    if (IsKeyword("NOT")) {
      Advance();
      Predicate node;
      node.kind = Predicate::Kind::kNot;
      node.children.push_back(ParseUnary());
      return node;
    }
    return ParsePrimary();
  }

  Predicate ParsePrimary() {
    if (Current().kind == TokenKind::kSymbol && Current().text == "(") {
      Advance();
      Predicate inner = ParseOr();
      ExpectSymbol(")");
      return inner;
    }
    std::string column = ExpectIdent("column name");
    if (IsKeyword("IN")) {
      Advance();
      ExpectSymbol("(");
      Predicate in;
      in.kind = Predicate::Kind::kIn;
      in.column = std::move(column);
      in.literal_set.push_back(ParseLiteral());
      while (Current().kind == TokenKind::kSymbol && Current().text == ",") {
        Advance();
        in.literal_set.push_back(ParseLiteral());
      }
      ExpectSymbol(")");
      return in;
    }
    if (IsKeyword("BETWEEN")) {
      Advance();
      Predicate between;
      between.kind = Predicate::Kind::kBetween;
      between.column = std::move(column);
      between.between_lo = ParseLiteral();
      ExpectKeyword("AND");
      between.between_hi = ParseLiteral();
      return between;
    }
    Predicate cmp;
    cmp.kind = Predicate::Kind::kComparison;
    cmp.column = std::move(column);
    cmp.op = ParseOp();
    cmp.literal = ParseLiteral();
    return cmp;
  }

  CompareOp ParseOp() {
    if (Current().kind != TokenKind::kSymbol) {
      Fail("expected comparison operator");
    }
    const std::string& symbol = Current().text;
    CompareOp op;
    if (symbol == "=") {
      op = CompareOp::kEq;
    } else if (symbol == "!=" || symbol == "<>") {
      op = CompareOp::kNe;
    } else if (symbol == "<") {
      op = CompareOp::kLt;
    } else if (symbol == "<=") {
      op = CompareOp::kLe;
    } else if (symbol == ">") {
      op = CompareOp::kGt;
    } else if (symbol == ">=") {
      op = CompareOp::kGe;
    } else {
      Fail("expected comparison operator");
    }
    Advance();
    return op;
  }

  Value ParseLiteral() {
    if (Current().kind == TokenKind::kNumber) {
      Value value = Current().is_integer
                        ? Value(static_cast<int64_t>(Current().number))
                        : Value(Current().number);
      Advance();
      return value;
    }
    if (Current().kind == TokenKind::kString) {
      Value value(Current().text);
      Advance();
      return value;
    }
    Fail("expected literal");
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

}  // namespace

SelectStatement ParseSql(const std::string& sql) {
  Lexer lexer(sql);
  Parser parser(lexer.Tokenize());
  return parser.Parse();
}

}  // namespace privapprox::localdb
