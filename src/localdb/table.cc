#include "localdb/table.h"

#include <stdexcept>

namespace privapprox::localdb {

Table::Table(std::string name, std::vector<std::string> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  if (name_.empty()) {
    throw std::invalid_argument("Table: empty name");
  }
  if (columns_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

std::optional<size_t> Table::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == column) {
      return i;
    }
  }
  return std::nullopt;
}

void Table::Insert(int64_t timestamp_ms, Row row) {
  if (row.size() != columns_.size()) {
    throw std::invalid_argument("Table::Insert: column count mismatch");
  }
  rows_.push_back(TimestampedRow{timestamp_ms, std::move(row)});
}

void Table::EvictBefore(int64_t cutoff_ms) {
  while (!rows_.empty() && rows_.front().timestamp_ms < cutoff_ms) {
    rows_.pop_front();
  }
}

std::vector<const TimestampedRow*> Table::RowsInRange(int64_t from_ms,
                                                      int64_t to_ms) const {
  std::vector<const TimestampedRow*> out;
  for (const auto& row : rows_) {
    if (row.timestamp_ms >= from_ms && row.timestamp_ms < to_ms) {
      out.push_back(&row);
    }
  }
  return out;
}

}  // namespace privapprox::localdb
