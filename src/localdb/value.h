// Typed values for the client-local database (the SQLite stand-in; see
// DESIGN.md substitution table). Clients execute the analyst's SQL against
// rows of these values.

#ifndef PRIVAPPROX_LOCALDB_VALUE_H_
#define PRIVAPPROX_LOCALDB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace privapprox::localdb {

class Value {
 public:
  Value() : data_(int64_t{0}) {}
  Value(int64_t v) : data_(v) {}            // NOLINT(google-explicit-constructor)
  Value(double v) : data_(v) {}             // NOLINT(google-explicit-constructor)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(google-explicit-constructor)

  bool IsInt() const { return std::holds_alternative<int64_t>(data_); }
  bool IsDouble() const { return std::holds_alternative<double>(data_); }
  bool IsString() const { return std::holds_alternative<std::string>(data_); }
  bool IsNumeric() const { return IsInt() || IsDouble(); }

  int64_t AsInt() const;
  // Numeric coercion: ints convert; strings throw.
  double AsDouble() const;
  const std::string& AsString() const;

  // Three-way comparison with numeric coercion between int and double.
  // Comparing a string with a number throws std::invalid_argument.
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> data_;
};

using Row = std::vector<Value>;

}  // namespace privapprox::localdb

#endif  // PRIVAPPROX_LOCALDB_VALUE_H_
