// Executes a parsed SELECT statement against a client's local table over a
// time range — the "query answering" module of the client (paper §5).

#ifndef PRIVAPPROX_LOCALDB_EXECUTOR_H_
#define PRIVAPPROX_LOCALDB_EXECUTOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "localdb/sql.h"
#include "localdb/table.h"

namespace privapprox::localdb {

// Evaluates the WHERE predicate against one row.
bool EvaluatePredicate(const Predicate& predicate, const Table& table,
                       const Row& row);

// Executes `stmt` over rows of `table` with timestamps in [from_ms, to_ms).
// - Non-aggregate SELECT col: returns all matching values of the column.
// - Aggregate: returns a single value (or empty when no rows match and the
//   aggregate is undefined, i.e. everything except COUNT).
// Throws SqlError if the statement references an unknown table/column or
// aggregates a non-numeric column.
std::vector<Value> ExecuteSelect(const SelectStatement& stmt,
                                 const Table& table, int64_t from_ms,
                                 int64_t to_ms);

}  // namespace privapprox::localdb

#endif  // PRIVAPPROX_LOCALDB_EXECUTOR_H_
