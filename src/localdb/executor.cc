#include "localdb/executor.h"

#include <algorithm>
#include <limits>

namespace privapprox::localdb {
namespace {

bool CompareWith(CompareOp op, const Value& lhs, const Value& rhs) {
  const int cmp = lhs.Compare(rhs);
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

size_t ResolveColumn(const Table& table, const std::string& column) {
  const auto index = table.ColumnIndex(column);
  if (!index.has_value()) {
    throw SqlError("unknown column '" + column + "' in table '" +
                   table.name() + "'");
  }
  return *index;
}

}  // namespace

bool EvaluatePredicate(const Predicate& predicate, const Table& table,
                       const Row& row) {
  switch (predicate.kind) {
    case Predicate::Kind::kComparison: {
      const size_t column = ResolveColumn(table, predicate.column);
      return CompareWith(predicate.op, row[column], predicate.literal);
    }
    case Predicate::Kind::kAnd:
      return std::all_of(predicate.children.begin(), predicate.children.end(),
                         [&](const Predicate& child) {
                           return EvaluatePredicate(child, table, row);
                         });
    case Predicate::Kind::kOr:
      return std::any_of(predicate.children.begin(), predicate.children.end(),
                         [&](const Predicate& child) {
                           return EvaluatePredicate(child, table, row);
                         });
    case Predicate::Kind::kNot:
      return !EvaluatePredicate(predicate.children.front(), table, row);
    case Predicate::Kind::kIn: {
      const size_t column = ResolveColumn(table, predicate.column);
      return std::any_of(
          predicate.literal_set.begin(), predicate.literal_set.end(),
          [&](const Value& v) { return row[column] == v; });
    }
    case Predicate::Kind::kBetween: {
      const size_t column = ResolveColumn(table, predicate.column);
      return row[column] >= predicate.between_lo &&
             row[column] <= predicate.between_hi;
    }
  }
  return false;
}

std::vector<Value> ExecuteSelect(const SelectStatement& stmt,
                                 const Table& table, int64_t from_ms,
                                 int64_t to_ms) {
  if (stmt.table != table.name()) {
    throw SqlError("unknown table '" + stmt.table + "'");
  }
  std::optional<size_t> column;
  if (!stmt.count_star) {
    column = ResolveColumn(table, stmt.column);
  }

  size_t count = 0;
  double sum = 0.0;
  double min_value = std::numeric_limits<double>::infinity();
  double max_value = -std::numeric_limits<double>::infinity();
  std::vector<Value> results;

  for (const TimestampedRow* row : table.RowsInRange(from_ms, to_ms)) {
    if (stmt.has_where && !EvaluatePredicate(stmt.where, table, row->values)) {
      continue;
    }
    ++count;
    if (stmt.aggregate == Aggregate::kNone) {
      results.push_back(row->values[*column]);
      continue;
    }
    if (stmt.aggregate != Aggregate::kCount) {
      const Value& value = row->values[*column];
      if (!value.IsNumeric()) {
        throw SqlError("aggregate over non-numeric column '" + stmt.column +
                       "'");
      }
      const double x = value.AsDouble();
      sum += x;
      min_value = std::min(min_value, x);
      max_value = std::max(max_value, x);
    }
  }

  switch (stmt.aggregate) {
    case Aggregate::kNone:
      return results;
    case Aggregate::kCount:
      return {Value(static_cast<int64_t>(count))};
    case Aggregate::kSum:
      return count == 0 ? std::vector<Value>{} : std::vector<Value>{Value(sum)};
    case Aggregate::kAvg:
      return count == 0
                 ? std::vector<Value>{}
                 : std::vector<Value>{Value(sum / static_cast<double>(count))};
    case Aggregate::kMin:
      return count == 0 ? std::vector<Value>{}
                        : std::vector<Value>{Value(min_value)};
    case Aggregate::kMax:
      return count == 0 ? std::vector<Value>{}
                        : std::vector<Value>{Value(max_value)};
  }
  return {};
}

}  // namespace privapprox::localdb
