// In-memory typed table with optional time-ordered retention — the shape of
// a client's private data stream (e.g. a vehicle's speed readings or a
// household's meter readings, timestamped and windowed).

#ifndef PRIVAPPROX_LOCALDB_TABLE_H_
#define PRIVAPPROX_LOCALDB_TABLE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "localdb/value.h"

namespace privapprox::localdb {

struct TimestampedRow {
  int64_t timestamp_ms = 0;
  Row values;
};

class Table {
 public:
  Table(std::string name, std::vector<std::string> columns);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& columns() const { return columns_; }
  size_t num_rows() const { return rows_.size(); }

  // Column index by name; nullopt if absent.
  std::optional<size_t> ColumnIndex(const std::string& column) const;

  // Appends a row (must match the column count) with an event timestamp.
  void Insert(int64_t timestamp_ms, Row row);

  // Drops rows older than `cutoff_ms` (exclusive). Rows are kept in insert
  // order, which client streams guarantee to be time order.
  void EvictBefore(int64_t cutoff_ms);

  // Rows with timestamp in [from_ms, to_ms).
  std::vector<const TimestampedRow*> RowsInRange(int64_t from_ms,
                                                 int64_t to_ms) const;

  const std::deque<TimestampedRow>& rows() const { return rows_; }

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::deque<TimestampedRow> rows_;
};

}  // namespace privapprox::localdb

#endif  // PRIVAPPROX_LOCALDB_TABLE_H_
