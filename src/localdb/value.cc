#include "localdb/value.h"

#include <sstream>
#include <stdexcept>

namespace privapprox::localdb {

int64_t Value::AsInt() const {
  if (IsInt()) {
    return std::get<int64_t>(data_);
  }
  if (IsDouble()) {
    return static_cast<int64_t>(std::get<double>(data_));
  }
  throw std::invalid_argument("Value::AsInt: string value");
}

double Value::AsDouble() const {
  if (IsDouble()) {
    return std::get<double>(data_);
  }
  if (IsInt()) {
    return static_cast<double>(std::get<int64_t>(data_));
  }
  throw std::invalid_argument("Value::AsDouble: string value");
}

const std::string& Value::AsString() const {
  if (!IsString()) {
    throw std::invalid_argument("Value::AsString: numeric value");
  }
  return std::get<std::string>(data_);
}

int Value::Compare(const Value& other) const {
  if (IsString() != other.IsString()) {
    throw std::invalid_argument("Value::Compare: type mismatch");
  }
  if (IsString()) {
    const int cmp = AsString().compare(other.AsString());
    return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  if (IsInt() && other.IsInt()) {
    const int64_t a = std::get<int64_t>(data_);
    const int64_t b = std::get<int64_t>(other.data_);
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  const double a = AsDouble();
  const double b = other.AsDouble();
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string Value::ToString() const {
  if (IsString()) {
    return AsString();
  }
  std::ostringstream out;
  if (IsInt()) {
    out << std::get<int64_t>(data_);
  } else {
    out << std::get<double>(data_);
  }
  return out.str();
}

}  // namespace privapprox::localdb
