// A client's local database: named tables plus a parse-and-execute entry
// point. This is the SQLite stand-in of the prototype (§5: "the query
// answer module is used to execute the input query on the local user's
// private data stored in SQLite").

#ifndef PRIVAPPROX_LOCALDB_DATABASE_H_
#define PRIVAPPROX_LOCALDB_DATABASE_H_

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "localdb/executor.h"
#include "localdb/table.h"

namespace privapprox::localdb {

class Database {
 public:
  // Creates a table; throws if the name exists.
  Table& CreateTable(const std::string& name,
                     std::vector<std::string> columns);

  bool HasTable(const std::string& name) const;
  Table& GetTable(const std::string& name);
  const Table& GetTable(const std::string& name) const;

  // Parses and executes `sql` over rows in [from_ms, to_ms). The parse of
  // the most recent statement text is cached, so re-answering the same
  // subscribed query each epoch (the client hot path) skips the parser.
  std::vector<Value> Execute(const std::string& sql,
                             int64_t from_ms = std::numeric_limits<int64_t>::min(),
                             int64_t to_ms = std::numeric_limits<int64_t>::max());

  // Evicts rows older than `cutoff_ms` from all tables (retention policy).
  void EvictBefore(int64_t cutoff_ms);

 private:
  std::map<std::string, Table> tables_;
  // Single-entry parse cache (clients answer one subscribed query).
  std::string cached_sql_;
  std::optional<SelectStatement> cached_stmt_;
};

}  // namespace privapprox::localdb

#endif  // PRIVAPPROX_LOCALDB_DATABASE_H_
