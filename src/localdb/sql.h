// SQL subset for client-side query execution (the paper's query model,
// §2.2: analysts formulate SQL queries that clients run on their private
// data, e.g. "SELECT speed FROM vehicle WHERE location='San Francisco'").
//
// Grammar:
//   query      := SELECT select FROM ident [WHERE or_expr]
//   select     := ident | fn '(' ident ')' | COUNT '(' '*' ')'
//   fn         := SUM | AVG | MIN | MAX | COUNT
//   or_expr    := and_expr (OR and_expr)*
//   and_expr   := primary (AND primary)*
//   primary    := '(' or_expr ')' | ident op literal
//   op         := = | != | <> | < | <= | > | >=
//   literal    := number | 'string'

#ifndef PRIVAPPROX_LOCALDB_SQL_H_
#define PRIVAPPROX_LOCALDB_SQL_H_

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "localdb/value.h"

namespace privapprox::localdb {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

// WHERE-clause expression tree.
struct Predicate {
  enum class Kind { kComparison, kAnd, kOr, kNot, kIn, kBetween };
  Kind kind = Kind::kComparison;

  // kComparison / kIn / kBetween:
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;                   // kComparison
  std::vector<Value> literal_set;  // kIn: the value list
  Value between_lo, between_hi;    // kBetween (inclusive, SQL semantics)

  // kAnd / kOr / kNot (kNot has exactly one child):
  std::vector<Predicate> children;
};

enum class Aggregate { kNone, kSum, kAvg, kMin, kMax, kCount };

// Parsed SELECT statement.
struct SelectStatement {
  Aggregate aggregate = Aggregate::kNone;
  std::string column;      // empty for COUNT(*)
  bool count_star = false;
  std::string table;
  bool has_where = false;
  Predicate where;
};

// Parses `sql`; throws SqlError with a position-annotated message on any
// lexical or syntactic problem.
SelectStatement ParseSql(const std::string& sql);

class SqlError : public std::runtime_error {
 public:
  explicit SqlError(const std::string& message)
      : std::runtime_error(message) {}
};

}  // namespace privapprox::localdb

#endif  // PRIVAPPROX_LOCALDB_SQL_H_
