#include "localdb/database.h"

#include <stdexcept>

namespace privapprox::localdb {

Table& Database::CreateTable(const std::string& name,
                             std::vector<std::string> columns) {
  const auto [it, inserted] =
      tables_.emplace(name, Table(name, std::move(columns)));
  if (!inserted) {
    throw std::invalid_argument("Database::CreateTable: table '" + name +
                                "' already exists");
  }
  return it->second;
}

bool Database::HasTable(const std::string& name) const {
  return tables_.contains(name);
}

Table& Database::GetTable(const std::string& name) {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::invalid_argument("Database::GetTable: no table '" + name + "'");
  }
  return it->second;
}

const Table& Database::GetTable(const std::string& name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::invalid_argument("Database::GetTable: no table '" + name + "'");
  }
  return it->second;
}

std::vector<Value> Database::Execute(const std::string& sql, int64_t from_ms,
                                     int64_t to_ms) {
  if (!cached_stmt_.has_value() || sql != cached_sql_) {
    SelectStatement stmt = ParseSql(sql);  // may throw; cache stays intact
    cached_stmt_ = std::move(stmt);
    cached_sql_ = sql;
  }
  const SelectStatement& stmt = *cached_stmt_;
  const auto it = tables_.find(stmt.table);
  if (it == tables_.end()) {
    throw SqlError("unknown table '" + stmt.table + "'");
  }
  return ExecuteSelect(stmt, it->second, from_ms, to_ms);
}

void Database::EvictBefore(int64_t cutoff_ms) {
  for (auto& [name, table] : tables_) {
    table.EvictBefore(cutoff_ms);
  }
}

}  // namespace privapprox::localdb
