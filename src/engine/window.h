// Sliding event-time windows (paper §2.2, §3.2.4).
//
// Queries execute as sliding-window computations: window length w, sliding
// interval delta (Eq 1). The assigner maps an event timestamp to every
// window containing it; WindowBuffer keeps per-window state and emits
// windows whose end has passed the watermark, mirroring how the aggregator
// "adapts the computation window to the current start time t by removing
// all old data items ... then adds the newly incoming data items".

#ifndef PRIVAPPROX_ENGINE_WINDOW_H_
#define PRIVAPPROX_ENGINE_WINDOW_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace privapprox::engine {

struct Window {
  int64_t start_ms = 0;
  int64_t end_ms = 0;
  bool operator==(const Window&) const = default;
  auto operator<=>(const Window&) const = default;
};

class SlidingWindowAssigner {
 public:
  // length >= slide > 0; windows start at multiples of `slide`.
  SlidingWindowAssigner(int64_t length_ms, int64_t slide_ms);

  int64_t length_ms() const { return length_ms_; }
  int64_t slide_ms() const { return slide_ms_; }

  // All windows [start, start + length) that contain `timestamp`.
  std::vector<Window> WindowsFor(int64_t timestamp_ms) const;

 private:
  int64_t length_ms_;
  int64_t slide_ms_;
};

// Accumulates items into their windows and fires complete windows when the
// event-time watermark advances past a window's end.
template <typename T>
class WindowBuffer {
 public:
  using FireFn = std::function<void(const Window&, const std::vector<T>&)>;

  WindowBuffer(SlidingWindowAssigner assigner, FireFn on_fire)
      : assigner_(assigner), on_fire_(std::move(on_fire)) {}

  void Add(int64_t timestamp_ms, const T& item) {
    // Late data (behind the watermark) is dropped, as in the prototype's
    // event-time join.
    if (timestamp_ms < watermark_ms_) {
      ++late_dropped_;
      return;
    }
    for (const Window& window : assigner_.WindowsFor(timestamp_ms)) {
      pending_[window].push_back(item);
    }
  }

  // Advances the watermark and fires every window that is now complete.
  void AdvanceWatermark(int64_t watermark_ms) {
    if (watermark_ms <= watermark_ms_) {
      return;
    }
    watermark_ms_ = watermark_ms;
    auto it = pending_.begin();
    while (it != pending_.end() && it->first.end_ms <= watermark_ms_) {
      on_fire_(it->first, it->second);
      it = pending_.erase(it);
    }
  }

  // Fires all remaining windows regardless of the watermark (end of stream).
  void Flush() {
    for (const auto& [window, items] : pending_) {
      on_fire_(window, items);
    }
    pending_.clear();
  }

  size_t pending_windows() const { return pending_.size(); }
  uint64_t late_dropped() const { return late_dropped_; }
  int64_t watermark_ms() const { return watermark_ms_; }

 private:
  SlidingWindowAssigner assigner_;
  FireFn on_fire_;
  std::map<Window, std::vector<T>> pending_;
  int64_t watermark_ms_ = INT64_MIN;
  uint64_t late_dropped_ = 0;
};

}  // namespace privapprox::engine

#endif  // PRIVAPPROX_ENGINE_WINDOW_H_
