// Sliding event-time windows (paper §2.2, §3.2.4).
//
// Queries execute as sliding-window computations: window length w, sliding
// interval delta (Eq 1). The assigner maps an event timestamp to every
// window containing it; WindowBuffer keeps per-window state and emits
// windows whose end has passed the watermark, mirroring how the aggregator
// "adapts the computation window to the current start time t by removing
// all old data items ... then adds the newly incoming data items".

#ifndef PRIVAPPROX_ENGINE_WINDOW_H_
#define PRIVAPPROX_ENGINE_WINDOW_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

namespace privapprox::engine {

struct Window {
  int64_t start_ms = 0;
  int64_t end_ms = 0;
  bool operator==(const Window&) const = default;
  auto operator<=>(const Window&) const = default;
};

class SlidingWindowAssigner {
 public:
  // length >= slide > 0; windows start at multiples of `slide`.
  SlidingWindowAssigner(int64_t length_ms, int64_t slide_ms);

  int64_t length_ms() const { return length_ms_; }
  int64_t slide_ms() const { return slide_ms_; }

  // All windows [start, start + length) that contain `timestamp`.
  std::vector<Window> WindowsFor(int64_t timestamp_ms) const;

  // Allocation-free variant for the hot path: clears `out` and appends the
  // same windows, newest first. Tumbling windows (length == slide) resolve
  // to the single containing window without the backwards scan.
  void AppendWindowsFor(int64_t timestamp_ms, std::vector<Window>& out) const;

 private:
  int64_t length_ms_;
  int64_t slide_ms_;
};

// Accumulates items into their windows and fires complete windows when the
// event-time watermark advances past a window's end.
template <typename T>
class WindowBuffer {
 public:
  using FireFn = std::function<void(const Window&, const std::vector<T>&)>;

  WindowBuffer(SlidingWindowAssigner assigner, FireFn on_fire)
      : assigner_(assigner), on_fire_(std::move(on_fire)) {}

  void Add(int64_t timestamp_ms, const T& item) { AddImpl(timestamp_ms, item); }
  // Rvalue path: the item is copied into all but its last assigned window
  // and moved into the last, saving one copy per add (the only copy, for
  // tumbling windows).
  void Add(int64_t timestamp_ms, T&& item) {
    AddImpl(timestamp_ms, std::move(item));
  }

  // Advances the watermark and fires every window that is now complete.
  void AdvanceWatermark(int64_t watermark_ms) {
    if (watermark_ms <= watermark_ms_) {
      return;
    }
    watermark_ms_ = watermark_ms;
    auto it = pending_.begin();
    while (it != pending_.end() && it->first.end_ms <= watermark_ms_) {
      on_fire_(it->first, it->second);
      it = pending_.erase(it);
    }
  }

  // Fires all remaining windows regardless of the watermark (end of
  // stream), then pins the watermark at INT64_MAX: the stream is over, so a
  // later Add counts as late_dropped instead of silently starting a window
  // that could never fire.
  void Flush() {
    for (const auto& [window, items] : pending_) {
      on_fire_(window, items);
    }
    pending_.clear();
    watermark_ms_ = INT64_MAX;
  }

  size_t pending_windows() const { return pending_.size(); }
  uint64_t late_dropped() const { return late_dropped_; }
  int64_t watermark_ms() const { return watermark_ms_; }

 private:
  template <typename U>
  void AddImpl(int64_t timestamp_ms, U&& item) {
    // Late data (behind the watermark) is dropped, as in the prototype's
    // event-time join.
    if (timestamp_ms < watermark_ms_) {
      ++late_dropped_;
      return;
    }
    assigner_.AppendWindowsFor(timestamp_ms, windows_scratch_);
    for (size_t i = 0; i + 1 < windows_scratch_.size(); ++i) {
      pending_[windows_scratch_[i]].push_back(item);
    }
    pending_[windows_scratch_.back()].push_back(std::forward<U>(item));
  }

  SlidingWindowAssigner assigner_;
  FireFn on_fire_;
  std::map<Window, std::vector<T>> pending_;
  std::vector<Window> windows_scratch_;  // reused across adds: no per-add
                                         // window-list allocation
  int64_t watermark_ms_ = INT64_MIN;
  uint64_t late_dropped_ = 0;
};

// Shard-local window state for additive aggregates (aggregator scale-out):
// instead of buffering every item, each pending window keeps one
// accumulator that items are folded into on arrival. Fired accumulators
// are handed back to the caller rather than a callback, so a coordinator
// can merge the same window's accumulators from many shards (in shard
// order — the merge is order-free for additive counts, but a fixed order
// keeps runs bit-identical) before acting on the window. Watermark and
// late-drop semantics mirror WindowBuffer exactly, including the
// INT64_MAX pin after a drain-all flush.
template <typename Acc>
class AccumulatingWindowBuffer {
 public:
  explicit AccumulatingWindowBuffer(SlidingWindowAssigner assigner)
      : assigner_(assigner) {}

  // Folds `item` into every window containing `timestamp_ms` via
  // `Acc::Add(item)`; a window touched for the first time gets its
  // accumulator from `make()`.
  template <typename Item, typename MakeFn>
  void Fold(int64_t timestamp_ms, const Item& item, MakeFn make) {
    if (timestamp_ms < watermark_ms_) {
      ++late_dropped_;
      return;
    }
    assigner_.AppendWindowsFor(timestamp_ms, windows_scratch_);
    for (const Window& window : windows_scratch_) {
      auto it = pending_.find(window);
      if (it == pending_.end()) {
        it = pending_.emplace(window, make()).first;
      }
      it->second.Add(item);
    }
  }

  // Advances the watermark and moves every now-complete window's
  // accumulator into `out` (appended in ascending window order).
  void DrainFired(int64_t watermark_ms,
                  std::vector<std::pair<Window, Acc>>& out) {
    if (watermark_ms <= watermark_ms_) {
      return;
    }
    watermark_ms_ = watermark_ms;
    auto it = pending_.begin();
    while (it != pending_.end() && it->first.end_ms <= watermark_ms_) {
      out.emplace_back(it->first, std::move(it->second));
      it = pending_.erase(it);
    }
  }

  // Moves everything pending into `out` (end of stream) and pins the
  // watermark at INT64_MAX so later folds count as late.
  void DrainAll(std::vector<std::pair<Window, Acc>>& out) {
    for (auto& [window, acc] : pending_) {
      out.emplace_back(window, std::move(acc));
    }
    pending_.clear();
    watermark_ms_ = INT64_MAX;
  }

  size_t pending_windows() const { return pending_.size(); }
  uint64_t late_dropped() const { return late_dropped_; }
  int64_t watermark_ms() const { return watermark_ms_; }

 private:
  SlidingWindowAssigner assigner_;
  std::map<Window, Acc> pending_;
  std::vector<Window> windows_scratch_;
  int64_t watermark_ms_ = INT64_MIN;
  uint64_t late_dropped_ = 0;
};

}  // namespace privapprox::engine

#endif  // PRIVAPPROX_ENGINE_WINDOW_H_
