// MID share join (paper §3.2.4).
//
// The aggregator receives n share streams — one per proxy — and joins shares
// by message identifier. Each group holds one slot per source stream; when
// all n slots of one MID are filled the shares are XOR-combined into the
// original randomized message. Source slots make the join robust against
// redelivery: the same share arriving twice from one proxy cannot
// self-combine into garbage, it is counted as a duplicate. Replayed MIDs (a
// malicious client re-answering to distort the result) are detected and
// dropped; partial groups are evicted after a timeout so a share lost on one
// proxy path cannot leak memory.

#ifndef PRIVAPPROX_ENGINE_JOIN_H_
#define PRIVAPPROX_ENGINE_JOIN_H_

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "crypto/message.h"

namespace privapprox::engine {

struct JoinStats {
  uint64_t joined = 0;            // complete messages emitted
  uint64_t duplicates_dropped = 0;  // replayed MIDs
  uint64_t evicted_partial = 0;     // timed-out incomplete groups
  uint64_t late_dropped = 0;        // shares arriving after their group's
                                    // eviction (stragglers past the timeout)
};

class MidJoiner {
 public:
  using EmitFn =
      std::function<void(uint64_t mid, std::vector<uint8_t> plaintext,
                         int64_t timestamp_ms)>;

  // Called for every group EvictStale expires, with the group's MID and
  // first-seen event time — the fault-recovery layer uses it to attribute
  // the loss to the right window for confidence-interval widening.
  using EvictFn = std::function<void(uint64_t mid, int64_t first_seen_ms)>;

  // `expected_shares` = number of proxies n; `timeout_ms` bounds how long a
  // partial group may wait for its remaining shares.
  MidJoiner(size_t expected_shares, int64_t timeout_ms, EmitFn emit);

  void set_evict_fn(EvictFn fn) { evict_fn_ = std::move(fn); }

  // Feeds one share from stream `source` (the proxy index, < n);
  // `timestamp_ms` is the share's event time. Emits the joined plaintext as
  // soon as every source slot of the MID is filled. Throws
  // std::out_of_range for source >= n and std::invalid_argument if a
  // group's share lengths disagree at combine time.
  void Add(const crypto::MessageShare& share, int64_t timestamp_ms,
           size_t source);
  // Zero-copy variant: `payload` must point into storage that outlives the
  // pending group — the aggregator feeds broker slab views, which live as
  // long as the topic, so partial groups may safely park a span across
  // epochs. No payload bytes are copied until the group completes and is
  // XOR-combined into the emitted plaintext.
  void Add(uint64_t message_id, std::span<const uint8_t> payload,
           int64_t timestamp_ms, size_t source);

  // Evicts partial groups whose first share is older than now - timeout
  // (strictly: first_seen < now - timeout, so a group whose last share
  // lands exactly at the cutoff still joins). Evicted MIDs are remembered:
  // a straggler share arriving later is dropped as late (it must not start
  // a fresh, never-completable group). The remembered completed/expired
  // sets are pruned behind the same cutoff, so their size is bounded by
  // the MIDs seen within the last join timeout instead of growing for the
  // life of the run.
  void EvictStale(int64_t now_ms);

  const JoinStats& stats() const { return stats_; }
  size_t pending_groups() const { return pending_.size(); }
  // Size of the remembered (completed + expired) MID sets — bounded by the
  // pruning in EvictStale; the boundedness test pins it.
  size_t remembered_mids() const {
    return completed_mids_.size() + expired_mids_.size();
  }

 private:
  // One per-source slot. The copying Add stores the payload in `owned` and
  // points `view` at it (the vector's heap buffer is stable under Group
  // moves); the zero-copy Add leaves `owned` empty and parks the caller's
  // span directly.
  struct Slot {
    std::vector<uint8_t> owned;
    std::span<const uint8_t> view;
    bool filled = false;
  };
  struct Group {
    std::vector<Slot> slots;  // one per source
    size_t filled = 0;
    int64_t first_seen_ms = 0;
  };

  void AddImpl(uint64_t message_id, std::span<const uint8_t> payload,
               int64_t timestamp_ms, size_t source, bool copy);

  size_t expected_shares_;
  int64_t timeout_ms_;
  EmitFn emit_;
  EvictFn evict_fn_;
  std::unordered_map<uint64_t, Group> pending_;
  // Remembered MIDs, stamped for pruning: completed_mids_ holds the event
  // time of the completing share (a replay within one timeout of it is
  // still detected), expired_mids_ the eviction watermark (a straggler
  // within one timeout of the eviction is still dropped as late). EvictStale
  // drops entries whose stamp fell behind its cutoff — anything older is
  // beyond the join horizon anyway: at worst an ancient replay restarts a
  // group that can never complete and expires again at the next pass.
  std::unordered_map<uint64_t, int64_t> completed_mids_;
  std::unordered_map<uint64_t, int64_t> expired_mids_;
  JoinStats stats_;
};

}  // namespace privapprox::engine

#endif  // PRIVAPPROX_ENGINE_JOIN_H_
