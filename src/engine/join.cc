#include "engine/join.h"

#include <iterator>
#include <stdexcept>

#include "common/xor_bytes.h"

namespace privapprox::engine {

MidJoiner::MidJoiner(size_t expected_shares, int64_t timeout_ms, EmitFn emit)
    : expected_shares_(expected_shares),
      timeout_ms_(timeout_ms),
      emit_(std::move(emit)) {
  if (expected_shares < 2) {
    throw std::invalid_argument("MidJoiner: need at least two shares");
  }
  if (timeout_ms <= 0) {
    throw std::invalid_argument("MidJoiner: timeout must be > 0");
  }
}

void MidJoiner::Add(const crypto::MessageShare& share, int64_t timestamp_ms,
                    size_t source) {
  AddImpl(share.message_id, share.payload, timestamp_ms, source,
          /*copy=*/true);
}

void MidJoiner::Add(uint64_t message_id, std::span<const uint8_t> payload,
                    int64_t timestamp_ms, size_t source) {
  AddImpl(message_id, payload, timestamp_ms, source, /*copy=*/false);
}

void MidJoiner::AddImpl(uint64_t message_id, std::span<const uint8_t> payload,
                        int64_t timestamp_ms, size_t source, bool copy) {
  if (source >= expected_shares_) {
    throw std::out_of_range("MidJoiner::Add: bad source index");
  }
  if (completed_mids_.contains(message_id)) {
    ++stats_.duplicates_dropped;
    return;
  }
  if (expired_mids_.contains(message_id)) {
    // Straggler for a group already evicted at the watermark: starting a
    // fresh group could never complete (its siblings are gone) and would
    // double-count the loss on the next eviction pass.
    ++stats_.late_dropped;
    return;
  }
  Group& group = pending_[message_id];
  if (group.slots.empty()) {
    group.slots.resize(expected_shares_);
    group.first_seen_ms = timestamp_ms;
  }
  Slot& slot = group.slots[source];
  if (slot.filled) {
    // Redelivery on the same stream (or a replay through it).
    ++stats_.duplicates_dropped;
    return;
  }
  if (copy) {
    slot.owned.assign(payload.begin(), payload.end());
    slot.view = slot.owned;
  } else {
    slot.view = payload;
  }
  slot.filled = true;
  ++group.filled;
  if (group.filled == expected_shares_) {
    // XOR-combine all source views (Eq 12: M = ME xor MK_2 xor ... xor MK_n).
    // The first pair goes through the three-operand XorBytesInto, combining
    // the two slab spans straight into the plaintext buffer instead of
    // copying share 0 and XORing over it.
    const std::span<const uint8_t> first = group.slots[0].view;
    const std::span<const uint8_t> second = group.slots[1].view;
    if (second.size() != first.size()) {
      throw std::invalid_argument("MidJoiner::Add: share length mismatch");
    }
    std::vector<uint8_t> plaintext(first.size());
    XorBytesInto(plaintext.data(), first.data(), second.data(), first.size());
    for (size_t i = 2; i < expected_shares_; ++i) {
      const std::span<const uint8_t> view = group.slots[i].view;
      if (view.size() != plaintext.size()) {
        throw std::invalid_argument("MidJoiner::Add: share length mismatch");
      }
      XorBytesInPlace(plaintext.data(), view.data(), view.size());
    }
    const int64_t first_seen = group.first_seen_ms;
    pending_.erase(message_id);
    completed_mids_[message_id] = timestamp_ms;
    ++stats_.joined;
    emit_(message_id, std::move(plaintext), first_seen);
  }
}

void MidJoiner::EvictStale(int64_t now_ms) {
  const int64_t cutoff = now_ms - timeout_ms_;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.first_seen_ms < cutoff) {
      ++stats_.evicted_partial;
      const uint64_t mid = it->first;
      const int64_t first_seen = it->second.first_seen_ms;
      expired_mids_[mid] = now_ms;
      it = pending_.erase(it);
      if (evict_fn_) {
        evict_fn_(mid, first_seen);
      }
    } else {
      ++it;
    }
  }
  // Prune the remembered sets behind the same cutoff: a completed MID is
  // forgotten one timeout after its completing share's event time, an
  // expired MID one timeout after its eviction — keeping the sets bounded
  // by roughly two timeouts of distinct MIDs in steady state.
  for (auto it = completed_mids_.begin(); it != completed_mids_.end();) {
    it = it->second < cutoff ? completed_mids_.erase(it) : std::next(it);
  }
  for (auto it = expired_mids_.begin(); it != expired_mids_.end();) {
    it = it->second < cutoff ? expired_mids_.erase(it) : std::next(it);
  }
}

}  // namespace privapprox::engine
