#include "engine/join.h"

#include <stdexcept>

#include "crypto/xor_cipher.h"

namespace privapprox::engine {

MidJoiner::MidJoiner(size_t expected_shares, int64_t timeout_ms, EmitFn emit)
    : expected_shares_(expected_shares),
      timeout_ms_(timeout_ms),
      emit_(std::move(emit)) {
  if (expected_shares < 2) {
    throw std::invalid_argument("MidJoiner: need at least two shares");
  }
  if (timeout_ms <= 0) {
    throw std::invalid_argument("MidJoiner: timeout must be > 0");
  }
}

void MidJoiner::Add(const crypto::MessageShare& share, int64_t timestamp_ms,
                    size_t source) {
  if (source >= expected_shares_) {
    throw std::out_of_range("MidJoiner::Add: bad source index");
  }
  if (completed_mids_.contains(share.message_id)) {
    ++stats_.duplicates_dropped;
    return;
  }
  Group& group = pending_[share.message_id];
  if (group.shares.empty()) {
    group.shares.resize(expected_shares_);
    group.first_seen_ms = timestamp_ms;
  }
  if (group.shares[source].has_value()) {
    // Redelivery on the same stream (or a replay through it).
    ++stats_.duplicates_dropped;
    return;
  }
  group.shares[source] = share;
  ++group.filled;
  if (group.filled == expected_shares_) {
    std::vector<crypto::MessageShare> shares;
    shares.reserve(expected_shares_);
    for (auto& slot : group.shares) {
      shares.push_back(std::move(*slot));
    }
    std::vector<uint8_t> plaintext = crypto::XorSplitter::Combine(shares);
    const int64_t first_seen = group.first_seen_ms;
    pending_.erase(share.message_id);
    completed_mids_.insert(share.message_id);
    ++stats_.joined;
    emit_(share.message_id, std::move(plaintext), first_seen);
  }
}

void MidJoiner::EvictStale(int64_t now_ms) {
  const int64_t cutoff = now_ms - timeout_ms_;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.first_seen_ms < cutoff) {
      ++stats_.evicted_partial;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace privapprox::engine
