#include "engine/pipeline.h"

namespace privapprox::engine {

PipelineStats PullPipeline::DrainSequential(broker::Consumer& consumer,
                                            const BatchFn& process,
                                            size_t batch_size) {
  PipelineStats stats;
  for (;;) {
    std::vector<broker::Record> batch = consumer.Poll(batch_size);
    if (batch.empty()) {
      break;
    }
    stats.records += batch.size();
    ++stats.batches;
    process(std::move(batch));
  }
  return stats;
}

PipelineStats PullPipeline::DrainParallel(
    broker::Consumer& consumer, ThreadPool& pool,
    const std::function<void(const broker::Record&)>& process_record,
    size_t batch_size) {
  PipelineStats stats;
  for (;;) {
    std::vector<broker::Record> batch = consumer.Poll(batch_size);
    if (batch.empty()) {
      break;
    }
    stats.records += batch.size();
    ++stats.batches;
    pool.ParallelFor(batch.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        process_record(batch[i]);
      }
    });
  }
  return stats;
}

}  // namespace privapprox::engine
