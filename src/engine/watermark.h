// Event-time watermark generation.
//
// The aggregator consumes share streams whose event timestamps arrive
// slightly out of order (clients answer at the same epoch boundary but
// shares traverse different proxies). A bounded-out-of-orderness watermark
// — the same strategy the Flink prototype would use — tracks the maximum
// event time seen and lags it by a fixed bound; windows fire when the
// watermark passes their end, and anything arriving later than the bound is
// late data (dropped and counted by WindowBuffer).

#ifndef PRIVAPPROX_ENGINE_WATERMARK_H_
#define PRIVAPPROX_ENGINE_WATERMARK_H_

#include <cstdint>
#include <stdexcept>

namespace privapprox::engine {

class BoundedOutOfOrdernessWatermark {
 public:
  // `max_out_of_orderness_ms` >= 0: how far behind the fastest-seen event
  // time a straggler may be and still count.
  explicit BoundedOutOfOrdernessWatermark(int64_t max_out_of_orderness_ms)
      : bound_ms_(max_out_of_orderness_ms) {
    if (max_out_of_orderness_ms < 0) {
      throw std::invalid_argument(
          "BoundedOutOfOrdernessWatermark: bound must be >= 0");
    }
  }

  // Observes one event timestamp.
  void Observe(int64_t event_time_ms) {
    if (event_time_ms > max_event_time_ms_) {
      max_event_time_ms_ = event_time_ms;
    }
  }

  // The current watermark: no event with timestamp <= Current() is expected
  // anymore. INT64_MIN until the first observation.
  int64_t Current() const {
    if (max_event_time_ms_ == INT64_MIN) {
      return INT64_MIN;
    }
    return max_event_time_ms_ - bound_ms_;
  }

  int64_t max_event_time_ms() const { return max_event_time_ms_; }
  int64_t bound_ms() const { return bound_ms_; }

 private:
  int64_t bound_ms_;
  int64_t max_event_time_ms_ = INT64_MIN;
};

}  // namespace privapprox::engine

#endif  // PRIVAPPROX_ENGINE_WATERMARK_H_
