#include "engine/window.h"

#include <stdexcept>

namespace privapprox::engine {

SlidingWindowAssigner::SlidingWindowAssigner(int64_t length_ms,
                                             int64_t slide_ms)
    : length_ms_(length_ms), slide_ms_(slide_ms) {
  if (slide_ms <= 0 || length_ms <= 0) {
    throw std::invalid_argument("SlidingWindowAssigner: periods must be > 0");
  }
  if (slide_ms > length_ms) {
    throw std::invalid_argument(
        "SlidingWindowAssigner: slide must not exceed length");
  }
}

std::vector<Window> SlidingWindowAssigner::WindowsFor(
    int64_t timestamp_ms) const {
  std::vector<Window> windows;
  AppendWindowsFor(timestamp_ms, windows);
  return windows;
}

void SlidingWindowAssigner::AppendWindowsFor(int64_t timestamp_ms,
                                             std::vector<Window>& out) const {
  out.clear();
  // The most recent window start at or before the timestamp (floor division
  // that also works for negative timestamps).
  int64_t last_start = timestamp_ms / slide_ms_ * slide_ms_;
  if (timestamp_ms < 0 && last_start > timestamp_ms) {
    last_start -= slide_ms_;
  }
  if (length_ms_ == slide_ms_) {
    // Tumbling windows: exactly one window contains the timestamp.
    out.push_back(Window{last_start, last_start + length_ms_});
    return;
  }
  for (int64_t start = last_start; start > timestamp_ms - length_ms_;
       start -= slide_ms_) {
    out.push_back(Window{start, start + length_ms_});
  }
}

}  // namespace privapprox::engine
