// A minimal dataflow pipeline: a pull loop that drains broker consumers in
// batches through a processing function, optionally parallelized across a
// worker pool per batch. This is the execution skeleton of both the proxy
// (transmission-only) and the aggregator (join + decrypt + window) and the
// unit the Fig 8 scalability bench scales over cores.

#ifndef PRIVAPPROX_ENGINE_PIPELINE_H_
#define PRIVAPPROX_ENGINE_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "broker/broker.h"
#include "common/thread_pool.h"

namespace privapprox::engine {

struct PipelineStats {
  uint64_t batches = 0;
  uint64_t records = 0;
};

class PullPipeline {
 public:
  using BatchFn = std::function<void(std::vector<broker::Record>&&)>;

  // Drains `consumer` through `process` in batches of `batch_size` until the
  // consumer is caught up. Single-threaded; ordering is preserved.
  static PipelineStats DrainSequential(broker::Consumer& consumer,
                                       const BatchFn& process,
                                       size_t batch_size = 4096);

  // Drains with record-level parallelism: each batch is partitioned over the
  // pool and `process_record` is applied concurrently. `process_record` must
  // be thread-safe. Per-batch barrier keeps watermark handling simple.
  static PipelineStats DrainParallel(
      broker::Consumer& consumer, ThreadPool& pool,
      const std::function<void(const broker::Record&)>& process_record,
      size_t batch_size = 4096);
};

}  // namespace privapprox::engine

#endif  // PRIVAPPROX_ENGINE_PIPELINE_H_
