// The client runtime (paper §3.2 steps I-III, §5).
//
// Each client stores the user's private data in a local database, subscribes
// to analyst queries, and in each answering epoch:
//   1. flips the sampling coin (participate or not)            — Step I
//   2. executes the SQL locally and bucketizes the result
//   3. randomizes the answer bit-vector with two-coin RR       — Step II
//   4. XOR-splits <QID, answer> into n shares under a fresh MID and hands
//      one share to each proxy                                 — Step III
// No client ever talks to another client and nothing here requires
// synchronization — the property the paper's latency wins come from.

#ifndef PRIVAPPROX_CLIENT_CLIENT_H_
#define PRIVAPPROX_CLIENT_CLIENT_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "core/budget.h"
#include "core/query.h"
#include "core/randomized_response.h"
#include "core/sampling.h"
#include "crypto/xor_cipher.h"
#include "localdb/database.h"
#include "metrics/metrics.h"

namespace privapprox::client {

struct ClientConfig {
  uint64_t client_id = 0;
  size_t num_proxies = 2;
  uint64_t seed = 1;
  // When true, the client answers the inverted query (§3.3.2): bucket bits
  // are flipped before randomization, and the aggregator de-inverts.
  bool invert_answers = false;
  // Optional shared instruments, not owned (null = uninstrumented): epochs
  // where this client answered vs. sat out on the sampling coin. Typically
  // one counter pair shared by every client in the system (relaxed atomics,
  // so concurrent answering shards update them without synchronization).
  metrics::Counter* answers_total = nullptr;
  metrics::Counter* skips_total = nullptr;
};

// Everything a client ships in one epoch: one share per proxy.
struct EpochAnswer {
  std::vector<crypto::MessageShare> shares;  // shares[i] goes to proxy i
  int64_t timestamp_ms = 0;
};

class Client {
 public:
  explicit Client(ClientConfig config);

  uint64_t id() const { return config_.client_id; }
  localdb::Database& database() { return db_; }

  // Installs the active query and its execution parameters (delivered via
  // aggregator -> proxies -> client in the submission phase). Rejects
  // queries whose signature does not verify.
  void Subscribe(const core::Query& query, const core::ExecutionParams& params);

  // Wire-level subscription: parses a serialized query announcement as
  // received from a proxy's query topic, verifies it, and subscribes.
  // Throws core::WireError on malformed bytes and std::invalid_argument on
  // a bad signature or parameters.
  void OnAnnouncement(const std::vector<uint8_t>& announcement);

  bool subscribed() const { return query_.has_value(); }
  const core::Query& query() const;

  // Runs one answering epoch at `now_ms`. Returns nullopt when the sampling
  // coin says "do not participate" this epoch, or when no query is
  // installed. A client whose local query yields no rows still answers with
  // an all-zero truthful vector (its non-participation must not be visible).
  std::optional<EpochAnswer> AnswerQuery(int64_t now_ms);

  // Zero-copy variant: identical sampling/randomization/split decisions (it
  // consumes the client's RNG streams in exactly the same order), but the n
  // share records are encoded contiguously into `arena` and returned as
  // views in `out` (out.size() must be num_proxies). Returns false when the
  // client does not participate this epoch — `out` and `arena` are then
  // untouched. out[i].bytes() is the full wire record for proxy i, valid
  // until the arena is reset.
  bool AnswerQueryInto(int64_t now_ms, EpochArena& arena,
                       std::span<crypto::ShareView> out);

  // The truthful (pre-randomization) answer, for test/benchmark reference
  // only — a real deployment never exposes this.
  BitVector TruthfulAnswer(int64_t now_ms);

 private:
  BitVector ComputeTruthful(int64_t now_ms);

  ClientConfig config_;
  localdb::Database db_;
  Xoshiro256 coin_rng_;                 // sampling + randomization coins
  crypto::XorSplitter splitter_;        // pads from ChaCha20
  std::optional<core::Query> query_;
  std::optional<core::ExecutionParams> params_;
};

}  // namespace privapprox::client

#endif  // PRIVAPPROX_CLIENT_CLIENT_H_
