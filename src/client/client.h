// The client runtime (paper §3.2 steps I-III, §5).
//
// Each client stores the user's private data in a local database, subscribes
// to analyst queries, and in each answering epoch:
//   1. flips the sampling coin (participate or not)            — Step I
//   2. executes the SQL locally and bucketizes the result
//   3. randomizes the answer bit-vector with two-coin RR       — Step II
//   4. XOR-splits <QID, answer> into n shares under a fresh MID and hands
//      one share to each proxy                                 — Step III
// No client ever talks to another client and nothing here requires
// synchronization — the property the paper's latency wins come from.
//
// Multi-query: a client holds a *set* of subscriptions and answers all of
// them in one epoch pass. The sampling coin is shared — one uniform draw u
// per epoch, query q participates iff u < s_q — so the per-epoch answering
// cost is one local-DB scan per query but only one coin. Randomized-response
// coins and XOR pad material are per-query streams seeded as pure functions
// of (seed, client_id, query_id), so each query's randomness (and therefore
// its results) is bit-identical whether it runs alone or alongside others.

#ifndef PRIVAPPROX_CLIENT_CLIENT_H_
#define PRIVAPPROX_CLIENT_CLIENT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "core/budget.h"
#include "core/query.h"
#include "core/randomized_response.h"
#include "core/sampling.h"
#include "crypto/xor_cipher.h"
#include "localdb/database.h"
#include "metrics/metrics.h"

namespace privapprox::client {

struct ClientConfig {
  uint64_t client_id = 0;
  size_t num_proxies = 2;
  uint64_t seed = 1;
  // When true, the client answers the inverted query (§3.3.2): bucket bits
  // are flipped before randomization, and the aggregator de-inverts.
  bool invert_answers = false;
  // Optional shared instruments, not owned (null = uninstrumented): counted
  // per (subscription, epoch) decision — a client holding two queries adds
  // two increments per epoch. Typically one counter pair shared by every
  // client in the system (relaxed atomics, so concurrent answering shards
  // update them without synchronization).
  metrics::Counter* answers_total = nullptr;
  metrics::Counter* skips_total = nullptr;
};

// Everything a client ships for one query in one epoch: one share per proxy.
struct EpochAnswer {
  std::vector<crypto::MessageShare> shares;  // shares[i] goes to proxy i
  int64_t timestamp_ms = 0;
};

class Client {
 public:
  explicit Client(ClientConfig config);

  uint64_t id() const { return config_.client_id; }
  localdb::Database& database() { return db_; }

  // Installs (or, for an already-subscribed QID, updates in place) a query
  // and its execution parameters, as delivered via aggregator -> proxies ->
  // client in the submission phase. Re-subscribing an existing QID keeps
  // its randomness streams intact so feedback-loop parameter changes never
  // reset pads mid-stream. Rejects queries whose signature does not verify.
  void Subscribe(const core::Query& query, const core::ExecutionParams& params);

  // Wire-level subscription: parses a serialized query announcement as
  // received from a proxy's query topic, verifies it, and subscribes.
  // Throws core::WireError on malformed bytes and std::invalid_argument on
  // a bad signature or parameters.
  void OnAnnouncement(const std::vector<uint8_t>& announcement);

  bool subscribed() const { return !subs_.empty(); }
  size_t num_subscriptions() const { return subs_.size(); }
  // Subscribed QIDs in ascending order — the slot layout AnswerSubscribedInto
  // emits.
  std::vector<uint64_t> subscribed_query_ids() const;

  // Single-subscription accessor; throws std::logic_error unless exactly one
  // query is installed. Kept for the single-query API surface.
  const core::Query& query() const;
  const core::Query& query(uint64_t query_id) const;

  // Runs one answering epoch at `now_ms` for a single-subscription client.
  // Returns nullopt when the sampling coin says "do not participate" this
  // epoch, or when no query is installed; throws std::logic_error with more
  // than one subscription (use AnswerSubscribedInto). A client whose local
  // query yields no rows still answers with an all-zero truthful vector
  // (its non-participation must not be visible).
  std::optional<EpochAnswer> AnswerQuery(int64_t now_ms);

  // Zero-copy variant of AnswerQuery: identical sampling/randomization/split
  // decisions (it consumes the client's RNG streams in exactly the same
  // order), but the n share records are encoded contiguously into `arena`
  // and returned as views in `out` (out.size() must be num_proxies). Returns
  // false when the client does not participate this epoch — `out` and
  // `arena` are then untouched. out[i].bytes() is the full wire record for
  // proxy i, valid until the arena is reset. Single-subscription shim like
  // AnswerQuery.
  bool AnswerQueryInto(int64_t now_ms, EpochArena& arena,
                       std::span<crypto::ShareView> out);

  // Multi-query epoch pass: answers every subscribed query with one shared
  // sampling draw. `out` must hold num_subscriptions() * num_proxies slots;
  // the shares for the k-th subscription (QIDs ascending) land in
  // out[k * num_proxies + j], j = proxy index. `answered` is cleared and
  // filled with the QIDs that participated this epoch — slots belonging to
  // non-participating queries are left untouched. No-op with zero
  // subscriptions (the sampling coin is not consumed).
  void AnswerSubscribedInto(int64_t now_ms, EpochArena& arena,
                            std::span<crypto::ShareView> out,
                            std::vector<uint64_t>& answered);

  // The truthful (pre-randomization) answer, for test/benchmark reference
  // only — a real deployment never exposes this. The QID-less overload is
  // the single-subscription shim.
  BitVector TruthfulAnswer(int64_t now_ms);
  BitVector TruthfulAnswer(uint64_t query_id, int64_t now_ms);

 private:
  struct Subscription {
    core::Query query;
    core::ExecutionParams params;
    Xoshiro256 rr_rng;             // randomized-response coins, per query
    crypto::XorSplitter splitter;  // MID + pad material, per query
  };

  const Subscription& SingleSub(const char* caller) const;
  Subscription& SingleSub(const char* caller);
  BitVector ComputeTruthful(const core::Query& query, int64_t now_ms);
  // Steps II-III for one participating subscription (the caller has already
  // spent the sampling coin).
  void EncodeAnswerInto(Subscription& sub, int64_t now_ms, EpochArena& arena,
                        std::span<crypto::ShareView> out);

  ClientConfig config_;
  localdb::Database db_;
  Xoshiro256 coin_rng_;  // sampling coin only: one draw per answering epoch
  std::map<uint64_t, Subscription> subs_;  // QID -> subscription, ascending
};

}  // namespace privapprox::client

#endif  // PRIVAPPROX_CLIENT_CLIENT_H_
