// Bounded retry with exponential backoff for the client -> proxy forward
// path. Header-only so the fault layer (src/fault/) can model the client's
// recovery protocol without linking the client runtime.
//
// The paper's clients are fire-and-forget (§3.2 step III); a deployment
// needs a forward that survives a proxy restart. The policy is the standard
// one: retry up to max_attempts with base * 2^attempt backoff, capped. The
// fault injector advances this backoff in simulated virtual time (it never
// sleeps), observing each wait into a histogram so recovery latency is
// visible in the metrics exposition.

#ifndef PRIVAPPROX_CLIENT_RETRY_H_
#define PRIVAPPROX_CLIENT_RETRY_H_

#include <algorithm>
#include <cstddef>

namespace privapprox::client {

struct RetryPolicy {
  size_t max_attempts = 4;       // total forward attempts per share (>= 1)
  double base_backoff_ms = 50.0;  // wait before the first retry
  double max_backoff_ms = 2000.0;

  // Backoff after failed attempt `attempt` (0-based): base * 2^attempt,
  // capped at max_backoff_ms.
  double BackoffForAttempt(size_t attempt) const {
    const size_t shift = std::min<size_t>(attempt, 52);
    const double backoff =
        base_backoff_ms * static_cast<double>(std::size_t{1} << shift);
    return std::min(backoff, max_backoff_ms);
  }
};

}  // namespace privapprox::client

#endif  // PRIVAPPROX_CLIENT_RETRY_H_
