#include "client/client.h"

#include <stdexcept>
#include <string>

#include "core/answer.h"
#include "core/inversion.h"
#include "core/query_wire.h"

namespace privapprox::client {

namespace {

// Expands (seed, client_id, query_id) into the per-subscription randomness
// streams. A pure function of its inputs: a query's RR coins and pad bytes
// do not depend on which other queries the client happens to hold, which is
// what makes per-query results identical between joint and isolated runs.
SplitMix64 SubscriptionMixer(uint64_t seed, uint64_t client_id,
                             uint64_t query_id) {
  return SplitMix64(seed ^ (client_id * 0x9E3779B97F4A7C15ULL) ^
                    (query_id * 0xBF58476D1CE4E5B9ULL));
}

}  // namespace

Client::Client(ClientConfig config)
    : config_(config),
      coin_rng_(config.seed ^ (config.client_id * 0x9E3779B97F4A7C15ULL)) {}

void Client::Subscribe(const core::Query& query,
                       const core::ExecutionParams& params) {
  if (!query.VerifySignature()) {
    throw std::invalid_argument("Client::Subscribe: bad query signature");
  }
  params.Validate();
  const auto it = subs_.find(query.query_id);
  if (it != subs_.end()) {
    // Parameter/plan update for a live query: keep the RNG streams running.
    it->second.query = query;
    it->second.params = params;
    return;
  }
  SplitMix64 mixer =
      SubscriptionMixer(config_.seed, config_.client_id, query.query_id);
  const uint64_t rr_seed = mixer.Next();
  const uint64_t pad_seed = mixer.Next();
  subs_.emplace(
      query.query_id,
      Subscription{query, params, Xoshiro256(rr_seed),
                   crypto::XorSplitter(
                       config_.num_proxies,
                       crypto::ChaCha20Rng::FromSeed(pad_seed,
                                                     query.query_id))});
}

void Client::OnAnnouncement(const std::vector<uint8_t>& announcement) {
  const core::QueryAnnouncement ann =
      core::DeserializeAnnouncement(announcement);
  Subscribe(ann.query, ann.params);
}

std::vector<uint64_t> Client::subscribed_query_ids() const {
  std::vector<uint64_t> ids;
  ids.reserve(subs_.size());
  for (const auto& [qid, sub] : subs_) {
    ids.push_back(qid);
  }
  return ids;
}

const Client::Subscription& Client::SingleSub(const char* caller) const {
  if (subs_.empty()) {
    throw std::logic_error(std::string(caller) + ": no subscription");
  }
  if (subs_.size() > 1) {
    throw std::logic_error(std::string(caller) +
                           ": multiple subscriptions; pass a query id");
  }
  return subs_.begin()->second;
}

Client::Subscription& Client::SingleSub(const char* caller) {
  return const_cast<Subscription&>(
      static_cast<const Client*>(this)->SingleSub(caller));
}

const core::Query& Client::query() const {
  return SingleSub("Client::query").query;
}

const core::Query& Client::query(uint64_t query_id) const {
  const auto it = subs_.find(query_id);
  if (it == subs_.end()) {
    throw std::logic_error("Client::query: not subscribed to query " +
                           std::to_string(query_id));
  }
  return it->second.query;
}

BitVector Client::ComputeTruthful(const core::Query& query, int64_t now_ms) {
  const int64_t from_ms = now_ms - query.window_length_ms;
  std::vector<localdb::Value> values;
  try {
    values = db_.Execute(query.sql, from_ms, now_ms);
  } catch (const localdb::SqlError&) {
    // A query this client cannot answer (missing table/column) yields the
    // all-zero vector; participation still looks normal from outside.
    return core::EmptyAnswer(query.answer_format);
  }
  if (values.empty()) {
    return core::EmptyAnswer(query.answer_format);
  }
  // Bucketize the (first) result value; aggregates return exactly one.
  const localdb::Value& value = values.front();
  BitVector truthful =
      value.IsNumeric()
          ? core::EncodeAnswer(query.answer_format, value.AsDouble())
          : core::EncodeAnswer(query.answer_format, value.AsString());
  if (config_.invert_answers) {
    truthful = core::InvertAnswer(truthful);
  }
  return truthful;
}

BitVector Client::TruthfulAnswer(int64_t now_ms) {
  return ComputeTruthful(SingleSub("Client::TruthfulAnswer").query, now_ms);
}

BitVector Client::TruthfulAnswer(uint64_t query_id, int64_t now_ms) {
  return ComputeTruthful(query(query_id), now_ms);
}

void Client::EncodeAnswerInto(Subscription& sub, int64_t now_ms,
                              EpochArena& arena,
                              std::span<crypto::ShareView> out) {
  // Step II: local execution + randomized response (per-query coin stream).
  const BitVector truthful = ComputeTruthful(sub.query, now_ms);
  const core::RandomizedResponse rr(sub.params.randomization);
  const BitVector randomized = rr.RandomizeAnswer(truthful, sub.rr_rng);
  // Step III: frame and split.
  const crypto::AnswerMessage message{sub.query.query_id, randomized};
  sub.splitter.SplitMessageInto(message, arena, out);
}

std::optional<EpochAnswer> Client::AnswerQuery(int64_t now_ms) {
  if (subs_.empty()) {
    return std::nullopt;
  }
  Subscription& sub = SingleSub("Client::AnswerQuery");
  // Step I: the sampling coin.
  const double u = coin_rng_.NextDouble();
  if (!(u < sub.params.sampling_fraction)) {
    if (config_.skips_total != nullptr) {
      config_.skips_total->Increment();
    }
    return std::nullopt;
  }
  if (config_.answers_total != nullptr) {
    config_.answers_total->Increment();
  }
  const BitVector truthful = ComputeTruthful(sub.query, now_ms);
  const core::RandomizedResponse rr(sub.params.randomization);
  const BitVector randomized = rr.RandomizeAnswer(truthful, sub.rr_rng);
  const crypto::AnswerMessage message{sub.query.query_id, randomized};
  EpochAnswer answer;
  answer.timestamp_ms = now_ms;
  answer.shares = sub.splitter.Split(message.Serialize());
  return answer;
}

bool Client::AnswerQueryInto(int64_t now_ms, EpochArena& arena,
                             std::span<crypto::ShareView> out) {
  if (subs_.empty()) {
    return false;
  }
  Subscription& sub = SingleSub("Client::AnswerQueryInto");
  const double u = coin_rng_.NextDouble();
  if (!(u < sub.params.sampling_fraction)) {
    if (config_.skips_total != nullptr) {
      config_.skips_total->Increment();
    }
    return false;
  }
  if (config_.answers_total != nullptr) {
    config_.answers_total->Increment();
  }
  EncodeAnswerInto(sub, now_ms, arena, out);
  return true;
}

void Client::AnswerSubscribedInto(int64_t now_ms, EpochArena& arena,
                                  std::span<crypto::ShareView> out,
                                  std::vector<uint64_t>& answered) {
  answered.clear();
  if (subs_.empty()) {
    return;
  }
  if (out.size() != subs_.size() * config_.num_proxies) {
    throw std::invalid_argument(
        "Client::AnswerSubscribedInto: out must hold subscriptions * "
        "proxies share slots");
  }
  // Step I, shared across subscriptions: one uniform draw per epoch, query
  // q participates iff u < s_q. The draw count per epoch is independent of
  // how many queries are live, and each query sees exactly the
  // participation sequence it would see running alone.
  const double u = coin_rng_.NextDouble();
  size_t slot = 0;
  for (auto& [qid, sub] : subs_) {
    if (u < sub.params.sampling_fraction) {
      if (config_.answers_total != nullptr) {
        config_.answers_total->Increment();
      }
      answered.push_back(qid);
      EncodeAnswerInto(sub, now_ms, arena,
                       out.subspan(slot * config_.num_proxies,
                                   config_.num_proxies));
    } else if (config_.skips_total != nullptr) {
      config_.skips_total->Increment();
    }
    ++slot;
  }
}

}  // namespace privapprox::client
