#include "client/client.h"

#include <stdexcept>

#include "core/answer.h"
#include "core/inversion.h"
#include "core/query_wire.h"

namespace privapprox::client {

Client::Client(ClientConfig config)
    : config_(config),
      coin_rng_(config.seed ^ (config.client_id * 0x9E3779B97F4A7C15ULL)),
      splitter_(config.num_proxies,
                crypto::ChaCha20Rng::FromSeed(config.seed, config.client_id)) {}

void Client::Subscribe(const core::Query& query,
                       const core::ExecutionParams& params) {
  if (!query.VerifySignature()) {
    throw std::invalid_argument("Client::Subscribe: bad query signature");
  }
  params.Validate();
  query_ = query;
  params_ = params;
}

void Client::OnAnnouncement(const std::vector<uint8_t>& announcement) {
  const core::QueryAnnouncement ann =
      core::DeserializeAnnouncement(announcement);
  Subscribe(ann.query, ann.params);
}

const core::Query& Client::query() const {
  if (!query_.has_value()) {
    throw std::logic_error("Client::query: no subscription");
  }
  return *query_;
}

BitVector Client::ComputeTruthful(int64_t now_ms) {
  const core::Query& query = *query_;
  const int64_t from_ms = now_ms - query.window_length_ms;
  std::vector<localdb::Value> values;
  try {
    values = db_.Execute(query.sql, from_ms, now_ms);
  } catch (const localdb::SqlError&) {
    // A query this client cannot answer (missing table/column) yields the
    // all-zero vector; participation still looks normal from outside.
    return core::EmptyAnswer(query.answer_format);
  }
  if (values.empty()) {
    return core::EmptyAnswer(query.answer_format);
  }
  // Bucketize the (first) result value; aggregates return exactly one.
  const localdb::Value& value = values.front();
  BitVector truthful =
      value.IsNumeric()
          ? core::EncodeAnswer(query.answer_format, value.AsDouble())
          : core::EncodeAnswer(query.answer_format, value.AsString());
  if (config_.invert_answers) {
    truthful = core::InvertAnswer(truthful);
  }
  return truthful;
}

BitVector Client::TruthfulAnswer(int64_t now_ms) {
  if (!query_.has_value()) {
    throw std::logic_error("Client::TruthfulAnswer: no subscription");
  }
  return ComputeTruthful(now_ms);
}

std::optional<EpochAnswer> Client::AnswerQuery(int64_t now_ms) {
  if (!query_.has_value()) {
    return std::nullopt;
  }
  // Step I: the sampling coin.
  const core::SamplingPolicy sampling(params_->sampling_fraction);
  if (!sampling.ShouldParticipate(coin_rng_)) {
    if (config_.skips_total != nullptr) {
      config_.skips_total->Increment();
    }
    return std::nullopt;
  }
  if (config_.answers_total != nullptr) {
    config_.answers_total->Increment();
  }
  // Step II: local execution + randomized response.
  const BitVector truthful = ComputeTruthful(now_ms);
  const core::RandomizedResponse rr(params_->randomization);
  const BitVector randomized = rr.RandomizeAnswer(truthful, coin_rng_);
  // Step III: frame and split.
  const crypto::AnswerMessage message{query_->query_id, randomized};
  EpochAnswer answer;
  answer.timestamp_ms = now_ms;
  answer.shares = splitter_.Split(message.Serialize());
  return answer;
}

bool Client::AnswerQueryInto(int64_t now_ms, EpochArena& arena,
                             std::span<crypto::ShareView> out) {
  if (!query_.has_value()) {
    return false;
  }
  const core::SamplingPolicy sampling(params_->sampling_fraction);
  if (!sampling.ShouldParticipate(coin_rng_)) {
    if (config_.skips_total != nullptr) {
      config_.skips_total->Increment();
    }
    return false;
  }
  if (config_.answers_total != nullptr) {
    config_.answers_total->Increment();
  }
  const BitVector truthful = ComputeTruthful(now_ms);
  const core::RandomizedResponse rr(params_->randomization);
  const BitVector randomized = rr.RandomizeAnswer(truthful, coin_rng_);
  const crypto::AnswerMessage message{query_->query_id, randomized};
  splitter_.SplitMessageInto(message, arena, out);
  return true;
}

}  // namespace privapprox::client
