// The TCP bus's request/response vocabulary: what goes inside a frame.
//
// Each frame payload is one message. Requests carry a one-byte opcode
// mirroring the MessageBus contract (EnsureTopic / Produce / Poll /
// EndOffset / TopicMeta) plus a Control escape hatch the daemons use for
// verbs that are not topic I/O (lane setup, drains, watermark advances,
// metrics dumps). Responses are a status byte followed by the op-specific
// body; errors carry the server-side exception message so the client can
// rethrow something debuggable.
//
// Everything is little-endian and length-prefixed; strings are u16-length,
// payloads u32-length. Poll responses are byte-budgeted: the server stops
// packing records once the response body would exceed the request's
// max_bytes (always packing at least one), so a poll may legally return
// fewer records than exist — BusConsumer loops.
//
// HandleRequest is the entire server-side dispatch, operating on a
// broker::Broker plus a control callback and producing the response body.
// It is pure message-in/message-out — the epoll server owns sockets, this
// file owns semantics — which is what lets the protocol be unit-tested
// without a network.

#ifndef PRIVAPPROX_TRANSPORT_WIRE_H_
#define PRIVAPPROX_TRANSPORT_WIRE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "broker/broker.h"

namespace privapprox::transport {

enum class WireOp : uint8_t {
  kEnsureTopic = 1,
  kProduce = 2,
  kPoll = 3,
  kEndOffset = 4,
  kTopicMeta = 5,
  kControl = 6,
};

inline constexpr uint8_t kWireOk = 0;
inline constexpr uint8_t kWireError = 1;

// Default poll response byte budget (payload bytes per round-trip).
inline constexpr uint32_t kDefaultPollByteBudget = 1 << 20;

// --- primitive writers/readers -----------------------------------------

void PutU8(uint8_t v, std::vector<uint8_t>& out);
void PutU16(uint16_t v, std::vector<uint8_t>& out);
void PutU32(uint32_t v, std::vector<uint8_t>& out);
void PutU64(uint64_t v, std::vector<uint8_t>& out);
void PutString(const std::string& s, std::vector<uint8_t>& out);  // u16 len
void PutBytes(std::span<const uint8_t> b, std::vector<uint8_t>& out);  // u32

// Bounds-checked sequential reader over one message body. Throws
// std::invalid_argument on truncation — the server turns that into an error
// response, the client into an exception.
class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t TakeU8();
  uint16_t TakeU16();
  uint32_t TakeU32();
  uint64_t TakeU64();
  std::string TakeString();
  std::span<const uint8_t> TakeBytes();
  std::span<const uint8_t> TakeRaw(size_t len);
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

// --- request builders (client side) ------------------------------------

void BuildEnsureTopicRequest(const std::string& topic, size_t num_partitions,
                             std::vector<uint8_t>& out);
void BuildProduceRequest(const std::string& topic,
                         std::span<const broker::ProduceView> records,
                         std::vector<uint8_t>& out);
void BuildPollRequest(const std::string& topic, size_t partition,
                      uint64_t offset, size_t max_records, uint32_t max_bytes,
                      std::vector<uint8_t>& out);
void BuildEndOffsetRequest(const std::string& topic, size_t partition,
                           std::vector<uint8_t>& out);
void BuildTopicMetaRequest(const std::string& topic, std::vector<uint8_t>& out);
void BuildControlRequest(const std::string& verb,
                         std::span<const uint8_t> payload,
                         std::vector<uint8_t>& out);

// --- server dispatch -----------------------------------------------------

// Daemon-specific verbs: (verb, payload) -> response payload. Throwing maps
// to an error response for that request; the connection survives.
using ControlHandler = std::function<std::vector<uint8_t>(
    const std::string& verb, std::span<const uint8_t> payload)>;

// Decodes one request from `request`, executes it against `broker` (or
// `control` for kControl), and appends the response body to `response`
// (cleared first). Never throws: every failure becomes a kWireError
// response. Returns the opcode served (0 on an undecodable request).
uint8_t HandleRequest(broker::Broker& broker, const ControlHandler& control,
                      std::span<const uint8_t> request,
                      std::vector<uint8_t>& response);

}  // namespace privapprox::transport

#endif  // PRIVAPPROX_TRANSPORT_WIRE_H_
