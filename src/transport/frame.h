// Wire framing for the TCP bus: length-prefixed, CRC-guarded records.
//
// Every message on a bus connection is one frame:
//
//   [u32 payload_len][u32 crc32(payload)][payload bytes]   (little-endian)
//
// The CRC is the IEEE polynomial from storage/crc32 — the same integrity
// check the durable segment log uses — computed over the payload only, so a
// flipped length byte shows up as a CRC mismatch on whatever bytes the bad
// length framed. Decoding is incremental: feed whatever the socket
// delivered into an accumulating buffer and TryDecodeFrame either yields a
// complete frame, asks for more bytes, or reports a protocol error
// (oversized length or CRC mismatch) after which the connection must be
// quarantined — framing cannot resynchronize mid-stream.

#ifndef PRIVAPPROX_TRANSPORT_FRAME_H_
#define PRIVAPPROX_TRANSPORT_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace privapprox::transport {

// Frames larger than this are a protocol error on both ends. Generously
// above the TCP bus's poll byte budget, comfortably below anything that
// could exhaust a peer: a malicious or corrupt length prefix cannot make a
// receiver buffer gigabytes.
inline constexpr size_t kMaxFrameBytes = 64 * 1024 * 1024;
inline constexpr size_t kFrameHeaderBytes = 8;

// Appends one encoded frame (header + payload) to `out`.
void EncodeFrame(std::span<const uint8_t> payload, std::vector<uint8_t>& out);

enum class FrameStatus {
  kFrame,        // a complete, CRC-valid frame was decoded
  kNeedMore,     // the buffer holds only a partial header or payload
  kTooLarge,     // length prefix exceeds max_frame_bytes — quarantine
  kCrcMismatch,  // payload bytes fail the CRC — quarantine
};

struct FrameDecodeResult {
  FrameStatus status = FrameStatus::kNeedMore;
  // On kFrame: the payload, viewing into the caller's buffer, and the total
  // encoded size (header + payload) to consume from the buffer's front.
  std::span<const uint8_t> payload;
  size_t consumed = 0;
};

// Attempts to decode one frame from the front of `buffer`. Never consumes
// bytes itself — on kFrame the caller erases `consumed` bytes from the
// buffer's front after using the payload view.
FrameDecodeResult TryDecodeFrame(std::span<const uint8_t> buffer,
                                 size_t max_frame_bytes = kMaxFrameBytes);

}  // namespace privapprox::transport

#endif  // PRIVAPPROX_TRANSPORT_FRAME_H_
