// The in-process MessageBus backend: a thin span-first facade over a
// broker::Broker living in the same process. This is the deterministic-test
// mode — every produce and poll is a direct slab append/read, so runs are
// bit-reproducible and allocation-flat exactly like calling the broker
// directly.
//
// The simulated network model survives the API redesign here: construct the
// bus with a net::LinkConfig and it prices every byte that crosses it with
// the deterministic latency + size/bandwidth transfer model, accumulating
// simulated transfer time without ever sleeping. Benches read the total to
// report what a 1 Gbit/s (or any configured) link would have cost.

#ifndef PRIVAPPROX_TRANSPORT_INPROC_BUS_H_
#define PRIVAPPROX_TRANSPORT_INPROC_BUS_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "net/link.h"
#include "transport/message_bus.h"

namespace privapprox::transport {

class InProcessBus final : public MessageBus {
 public:
  explicit InProcessBus(broker::Broker& broker,
                        std::optional<net::LinkConfig> link = std::nullopt);

  void EnsureTopic(const std::string& topic, size_t num_partitions) override;
  size_t NumPartitions(const std::string& topic) override;
  void Produce(const std::string& topic,
               std::span<const broker::ProduceView> records) override;
  size_t Poll(const std::string& topic, size_t partition, uint64_t offset,
              size_t max_records, std::vector<broker::RecordView>& out) override;
  uint64_t EndOffset(const std::string& topic, size_t partition) override;

  broker::Broker& broker() { return broker_; }

  // Accumulated simulated transfer time for every payload byte produced or
  // polled through this bus (0 unless a link model was configured).
  // Deterministic: depends only on the byte counts, never on wall time.
  uint64_t simulated_transfer_ns() const {
    return transfer_ns_.load(std::memory_order_relaxed);
  }

 private:
  void AccountTransfer(uint64_t bytes);

  broker::Broker& broker_;
  std::optional<net::LinkConfig> link_;
  std::atomic<uint64_t> transfer_ns_{0};
};

}  // namespace privapprox::transport

#endif  // PRIVAPPROX_TRANSPORT_INPROC_BUS_H_
