#include "transport/frame.h"

#include "storage/crc32.h"

namespace privapprox::transport {

namespace {

void PutU32(uint32_t value, std::vector<uint8_t>& out) {
  out.push_back(static_cast<uint8_t>(value));
  out.push_back(static_cast<uint8_t>(value >> 8));
  out.push_back(static_cast<uint8_t>(value >> 16));
  out.push_back(static_cast<uint8_t>(value >> 24));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

// An empty span's data() may be null; the CRC of zero bytes never reads it,
// but keep the pointer arithmetic defined for the sanitizer builds.
uint32_t CrcOf(const uint8_t* data, size_t len) {
  static constexpr uint8_t kNone = 0;
  return storage::Crc32(len == 0 ? &kNone : data, len);
}

}  // namespace

void EncodeFrame(std::span<const uint8_t> payload, std::vector<uint8_t>& out) {
  PutU32(static_cast<uint32_t>(payload.size()), out);
  PutU32(CrcOf(payload.data(), payload.size()), out);
  out.insert(out.end(), payload.begin(), payload.end());
}

FrameDecodeResult TryDecodeFrame(std::span<const uint8_t> buffer,
                                 size_t max_frame_bytes) {
  FrameDecodeResult result;
  if (buffer.size() < kFrameHeaderBytes) {
    result.status = FrameStatus::kNeedMore;
    return result;
  }
  const uint32_t payload_len = GetU32(buffer.data());
  if (payload_len > max_frame_bytes) {
    result.status = FrameStatus::kTooLarge;
    return result;
  }
  if (buffer.size() < kFrameHeaderBytes + payload_len) {
    result.status = FrameStatus::kNeedMore;
    return result;
  }
  const uint32_t want_crc = GetU32(buffer.data() + 4);
  const uint8_t* payload = buffer.data() + kFrameHeaderBytes;
  if (CrcOf(payload, payload_len) != want_crc) {
    result.status = FrameStatus::kCrcMismatch;
    return result;
  }
  result.status = FrameStatus::kFrame;
  result.payload = std::span<const uint8_t>(payload, payload_len);
  result.consumed = kFrameHeaderBytes + payload_len;
  return result;
}

}  // namespace privapprox::transport
