#include "transport/wire.h"

#include <exception>
#include <stdexcept>

namespace privapprox::transport {

void PutU8(uint8_t v, std::vector<uint8_t>& out) { out.push_back(v); }

void PutU16(uint16_t v, std::vector<uint8_t>& out) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(uint32_t v, std::vector<uint8_t>& out) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(uint64_t v, std::vector<uint8_t>& out) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutString(const std::string& s, std::vector<uint8_t>& out) {
  if (s.size() > UINT16_MAX) {
    throw std::invalid_argument("wire: string too long");
  }
  PutU16(static_cast<uint16_t>(s.size()), out);
  out.insert(out.end(), s.begin(), s.end());
}

void PutBytes(std::span<const uint8_t> b, std::vector<uint8_t>& out) {
  PutU32(static_cast<uint32_t>(b.size()), out);
  out.insert(out.end(), b.begin(), b.end());
}

std::span<const uint8_t> WireReader::TakeRaw(size_t len) {
  if (data_.size() - pos_ < len) {
    throw std::invalid_argument("wire: truncated message");
  }
  const auto out = data_.subspan(pos_, len);
  pos_ += len;
  return out;
}

uint8_t WireReader::TakeU8() { return TakeRaw(1)[0]; }

uint16_t WireReader::TakeU16() {
  const auto b = TakeRaw(2);
  return static_cast<uint16_t>(b[0] | (b[1] << 8));
}

uint32_t WireReader::TakeU32() {
  const auto b = TakeRaw(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(b[i]) << (8 * i);
  }
  return v;
}

uint64_t WireReader::TakeU64() {
  const auto b = TakeRaw(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(b[i]) << (8 * i);
  }
  return v;
}

std::string WireReader::TakeString() {
  const uint16_t len = TakeU16();
  const auto b = TakeRaw(len);
  return std::string(b.begin(), b.end());
}

std::span<const uint8_t> WireReader::TakeBytes() {
  const uint32_t len = TakeU32();
  return TakeRaw(len);
}

void BuildEnsureTopicRequest(const std::string& topic, size_t num_partitions,
                             std::vector<uint8_t>& out) {
  PutU8(static_cast<uint8_t>(WireOp::kEnsureTopic), out);
  PutString(topic, out);
  PutU32(static_cast<uint32_t>(num_partitions), out);
}

void BuildProduceRequest(const std::string& topic,
                         std::span<const broker::ProduceView> records,
                         std::vector<uint8_t>& out) {
  PutU8(static_cast<uint8_t>(WireOp::kProduce), out);
  PutString(topic, out);
  PutU32(static_cast<uint32_t>(records.size()), out);
  for (const auto& record : records) {
    PutU64(record.key, out);
    PutU64(static_cast<uint64_t>(record.timestamp_ms), out);
    PutBytes(record.payload, out);
  }
}

void BuildPollRequest(const std::string& topic, size_t partition,
                      uint64_t offset, size_t max_records, uint32_t max_bytes,
                      std::vector<uint8_t>& out) {
  PutU8(static_cast<uint8_t>(WireOp::kPoll), out);
  PutString(topic, out);
  PutU32(static_cast<uint32_t>(partition), out);
  PutU64(offset, out);
  PutU32(static_cast<uint32_t>(max_records), out);
  PutU32(max_bytes, out);
}

void BuildEndOffsetRequest(const std::string& topic, size_t partition,
                           std::vector<uint8_t>& out) {
  PutU8(static_cast<uint8_t>(WireOp::kEndOffset), out);
  PutString(topic, out);
  PutU32(static_cast<uint32_t>(partition), out);
}

void BuildTopicMetaRequest(const std::string& topic,
                           std::vector<uint8_t>& out) {
  PutU8(static_cast<uint8_t>(WireOp::kTopicMeta), out);
  PutString(topic, out);
}

void BuildControlRequest(const std::string& verb,
                         std::span<const uint8_t> payload,
                         std::vector<uint8_t>& out) {
  PutU8(static_cast<uint8_t>(WireOp::kControl), out);
  PutString(verb, out);
  PutBytes(payload, out);
}

namespace {

void PutError(const char* what, std::vector<uint8_t>& out) {
  out.clear();
  PutU8(kWireError, out);
  PutString(std::string(what), out);
}

void ServeProduce(broker::Broker& broker, WireReader& reader,
                  std::vector<uint8_t>& response) {
  const std::string topic = reader.TakeString();
  const uint32_t count = reader.TakeU32();
  // Decode into views over the request buffer — the append below copies
  // payloads once into topic slabs, exactly like an in-process produce.
  thread_local std::vector<broker::ProduceView> views;
  views.clear();
  views.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t key = reader.TakeU64();
    const int64_t ts = static_cast<int64_t>(reader.TakeU64());
    views.push_back(broker::ProduceView{key, reader.TakeBytes(), ts});
  }
  broker.GetTopic(topic).AppendViews(views);
  PutU8(kWireOk, response);
  PutU32(count, response);
}

void ServePoll(broker::Broker& broker, WireReader& reader,
               std::vector<uint8_t>& response) {
  const std::string topic = reader.TakeString();
  const size_t partition = reader.TakeU32();
  const uint64_t offset = reader.TakeU64();
  const size_t max_records = reader.TakeU32();
  const uint32_t max_bytes = reader.TakeU32();
  thread_local std::vector<broker::RecordView> views;
  views.clear();
  broker.GetTopic(topic).ReadViews(partition, offset, max_records, views);
  PutU8(kWireOk, response);
  const size_t count_pos = response.size();
  PutU32(0, response);  // patched below
  uint32_t packed = 0;
  size_t body_bytes = 0;
  for (const auto& view : views) {
    // Byte-budgeted: always pack at least one record so progress is
    // guaranteed, stop before exceeding the requested response budget.
    if (packed > 0 && body_bytes + view.payload_len > max_bytes) {
      break;
    }
    PutU64(view.offset, response);
    PutU64(view.key, response);
    PutU64(static_cast<uint64_t>(view.timestamp_ms), response);
    PutBytes(view.bytes(), response);
    body_bytes += view.payload_len;
    ++packed;
  }
  for (int i = 0; i < 4; ++i) {
    response[count_pos + i] = static_cast<uint8_t>(packed >> (8 * i));
  }
}

}  // namespace

uint8_t HandleRequest(broker::Broker& broker, const ControlHandler& control,
                      std::span<const uint8_t> request,
                      std::vector<uint8_t>& response) {
  response.clear();
  uint8_t op = 0;
  try {
    WireReader reader(request);
    op = reader.TakeU8();
    switch (static_cast<WireOp>(op)) {
      case WireOp::kEnsureTopic: {
        const std::string topic = reader.TakeString();
        const size_t partitions = reader.TakeU32();
        broker.EnsureTopic(topic, partitions);
        PutU8(kWireOk, response);
        break;
      }
      case WireOp::kProduce:
        ServeProduce(broker, reader, response);
        break;
      case WireOp::kPoll:
        ServePoll(broker, reader, response);
        break;
      case WireOp::kEndOffset: {
        const std::string topic = reader.TakeString();
        const size_t partition = reader.TakeU32();
        PutU8(kWireOk, response);
        PutU64(broker.GetTopic(topic).EndOffset(partition), response);
        break;
      }
      case WireOp::kTopicMeta: {
        const std::string topic = reader.TakeString();
        PutU8(kWireOk, response);
        PutU32(static_cast<uint32_t>(
                   broker.GetTopic(topic).num_partitions()),
               response);
        break;
      }
      case WireOp::kControl: {
        const std::string verb = reader.TakeString();
        const auto payload = reader.TakeBytes();
        if (!control) {
          throw std::invalid_argument("wire: no control handler");
        }
        const std::vector<uint8_t> reply = control(verb, payload);
        PutU8(kWireOk, response);
        PutBytes(reply, response);
        break;
      }
      default:
        throw std::invalid_argument("wire: unknown opcode " +
                                    std::to_string(op));
    }
  } catch (const std::exception& e) {
    PutError(e.what(), response);
  }
  return op;
}

}  // namespace privapprox::transport
