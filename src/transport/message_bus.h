// The transport seam: one span-first produce/poll contract for every way
// records can move between pipeline tiers.
//
// MessageBus is the single producer/consumer surface the proxy, aggregator,
// and system runtimes speak — the seam Kafka's client protocol draws between
// the producer API and the wire format. Two backends implement it:
//
//   * InProcessBus (inproc_bus.h) wraps a broker::Broker in the same
//     process. This is the deterministic-test mode; the simulated
//     net::LinkConfig delay model is preserved as optional per-byte
//     transfer-time accounting.
//   * TcpBusClient (tcp_bus.h) speaks length-prefixed CRC-framed request/
//     response records over TCP to a TcpBusServer fronting a remote
//     broker — the process-separated load-test mode.
//
// The contract is deliberately small and offset-explicit: producing appends
// a span of views; polling reads from an explicit (partition, offset) and
// the caller commits by advancing its own offsets (BusConsumer below). That
// keeps consumption idempotent across reconnects and makes the promised-
// count streaming reads (PollExactInto) deterministic on both backends.
//
// View lifetime: polled RecordViews stay valid for the lifetime of the bus
// they came from. InProcessBus hands out broker-slab pointers; TcpBusClient
// copies fetched payloads into its own append-only slabs. Downstream code
// (the aggregator's MidJoiner parks share spans across calls) relies on
// this.

#ifndef PRIVAPPROX_TRANSPORT_MESSAGE_BUS_H_
#define PRIVAPPROX_TRANSPORT_MESSAGE_BUS_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "broker/topic.h"

namespace privapprox::transport {

class MessageBus {
 public:
  virtual ~MessageBus() = default;

  // Creates the topic if absent. An existing topic must have the same
  // partition count (std::invalid_argument otherwise) — two producers may
  // legitimately share one topic (standby-proxy failover).
  virtual void EnsureTopic(const std::string& topic, size_t num_partitions) = 0;

  // Partition count of an existing topic; throws std::invalid_argument for
  // an unknown topic.
  virtual size_t NumPartitions(const std::string& topic) = 0;

  // Appends a batch in one call. Relative order of records mapping to the
  // same partition is preserved, so the resulting log is byte-identical to
  // appending one record at a time. Payload spans only need to stay valid
  // for the duration of the call.
  virtual void Produce(const std::string& topic,
                       std::span<const broker::ProduceView> records) = 0;

  // Reads up to `max_records` records from `partition` starting at
  // `offset`, appending views into `out` (whose capacity is reused across
  // calls) and returning the number appended. A backend may return fewer
  // than are available (the TCP backend budgets response bytes per
  // round-trip); 0 means nothing exists at or after `offset` yet. Views
  // stay valid for the bus's lifetime.
  virtual size_t Poll(const std::string& topic, size_t partition,
                      uint64_t offset, size_t max_records,
                      std::vector<broker::RecordView>& out) = 0;

  // Next offset to be assigned in `partition` (== current log length).
  virtual uint64_t EndOffset(const std::string& topic, size_t partition) = 0;
};

// The partition a key maps to in a topic with `num_partitions` partitions —
// the same splitmix hash broker::Topic applies on append, exposed so
// transport-side producers and forwarders can compute per-partition counts
// without holding the topic object.
size_t PartitionForKey(uint64_t key, size_t num_partitions);

// A polling consumer over one topic of a MessageBus: owns its per-partition
// offsets (the explicit commit state of the contract) and reads partitions
// round-robin. Replaces the broker::Consumer poll surface.
class BusConsumer {
 public:
  BusConsumer(MessageBus& bus, std::string topic);

  const std::string& topic() const { return topic_; }
  size_t num_partitions() const { return offsets_.size(); }

  // Pulls up to `max_records` available records across partitions,
  // appending views into `out`; returns the number pulled.
  size_t PollInto(size_t max_records, std::vector<broker::RecordView>& out);

  // Pulls exactly `counts[p]` records from each partition p, in partition
  // order. The streaming epoch pipeline uses this to consume precisely one
  // forwarded shard batch: the producer reports how many records it
  // appended per partition, so the read is deterministic even while later
  // batches are being appended concurrently. Throws std::invalid_argument
  // on a partition-count mismatch and std::logic_error if a partition does
  // not (yet) hold the promised records — callers must only request counts
  // that were appended before the call. Returns the number pulled.
  size_t PollExactInto(const std::vector<uint32_t>& counts,
                       std::vector<broker::RecordView>& out);

  // Total records consumed so far.
  uint64_t consumed() const { return consumed_; }

  // The committed offset of one partition (next record this consumer will
  // poll) — the retention low-watermark this consumer contributes.
  uint64_t offset(size_t partition) const { return offsets_.at(partition); }

  // Repositions one partition's committed offset. Recovery-only: a restarted
  // proxy daemon seeks each lane consumer to its outbound topic's recovered
  // end offset (forwarding preserves per-partition order and mapping, so
  // out-end == records-already-forwarded). Not for steady-state use —
  // skipping forward silently drops records.
  void Seek(size_t partition, uint64_t offset);

  // True when the consumer has caught up with every partition.
  bool CaughtUp();

 private:
  MessageBus& bus_;
  std::string topic_;
  std::vector<uint64_t> offsets_;
  uint64_t consumed_ = 0;
};

// Routes each topic to one of several backend buses by longest matching
// name prefix. The aggregator daemon fronts its n proxy daemons with one of
// these: topics "proxy0.*" resolve to the TcpBusClient dialed at proxy 0,
// "proxy1.*" to proxy 1, and the aggregator's n-source join code stays
// byte-for-byte the code that runs in process.
class TopicRouterBus final : public MessageBus {
 public:
  // Longest matching prefix wins; an unrouteable topic throws
  // std::invalid_argument.
  void AddRoute(std::string topic_prefix, MessageBus& target);

  void EnsureTopic(const std::string& topic, size_t num_partitions) override;
  size_t NumPartitions(const std::string& topic) override;
  void Produce(const std::string& topic,
               std::span<const broker::ProduceView> records) override;
  size_t Poll(const std::string& topic, size_t partition, uint64_t offset,
              size_t max_records, std::vector<broker::RecordView>& out) override;
  uint64_t EndOffset(const std::string& topic, size_t partition) override;

 private:
  MessageBus& Route(const std::string& topic);

  std::vector<std::pair<std::string, MessageBus*>> routes_;
};

}  // namespace privapprox::transport

#endif  // PRIVAPPROX_TRANSPORT_MESSAGE_BUS_H_
