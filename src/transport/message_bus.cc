#include "transport/message_bus.h"

#include <stdexcept>

namespace privapprox::transport {

size_t PartitionForKey(uint64_t key, size_t num_partitions) {
  return broker::PartitionForKey(key, num_partitions);
}

BusConsumer::BusConsumer(MessageBus& bus, std::string topic)
    : bus_(bus), topic_(std::move(topic)) {
  offsets_.assign(bus_.NumPartitions(topic_), 0);
}

size_t BusConsumer::PollInto(size_t max_records,
                             std::vector<broker::RecordView>& out) {
  const size_t start = out.size();
  for (size_t p = 0; p < offsets_.size() && out.size() - start < max_records;
       ++p) {
    // A backend may return partial batches (the TCP client budgets response
    // bytes per round-trip), so drain the partition until it reports empty
    // or the caller's budget is spent.
    for (;;) {
      const size_t budget = max_records - (out.size() - start);
      if (budget == 0) {
        break;
      }
      const size_t pulled = bus_.Poll(topic_, p, offsets_[p], budget, out);
      if (pulled == 0) {
        break;
      }
      offsets_[p] += pulled;
      consumed_ += pulled;
    }
  }
  return out.size() - start;
}

size_t BusConsumer::PollExactInto(const std::vector<uint32_t>& counts,
                                  std::vector<broker::RecordView>& out) {
  // The promised-count validation for partition polls lives here and only
  // here: both streaming consumers (in-process and over the wire) share it.
  if (counts.size() != offsets_.size()) {
    throw std::invalid_argument(
        "BusConsumer::PollExactInto: partition count mismatch");
  }
  const size_t start = out.size();
  for (size_t p = 0; p < offsets_.size(); ++p) {
    size_t got = 0;
    while (got < counts[p]) {
      const size_t pulled =
          bus_.Poll(topic_, p, offsets_[p] + got, counts[p] - got, out);
      if (pulled == 0) {
        throw std::logic_error(
            "BusConsumer::PollExactInto: promised records not available");
      }
      got += pulled;
    }
    offsets_[p] += got;
    consumed_ += got;
  }
  return out.size() - start;
}

void BusConsumer::Seek(size_t partition, uint64_t offset) {
  offsets_.at(partition) = offset;
}

bool BusConsumer::CaughtUp() {
  for (size_t p = 0; p < offsets_.size(); ++p) {
    if (offsets_[p] < bus_.EndOffset(topic_, p)) {
      return false;
    }
  }
  return true;
}

void TopicRouterBus::AddRoute(std::string topic_prefix, MessageBus& target) {
  routes_.emplace_back(std::move(topic_prefix), &target);
}

MessageBus& TopicRouterBus::Route(const std::string& topic) {
  MessageBus* best = nullptr;
  size_t best_len = 0;
  for (const auto& [prefix, bus] : routes_) {
    if (topic.starts_with(prefix) &&
        (best == nullptr || prefix.size() > best_len)) {
      best = bus;
      best_len = prefix.size();
    }
  }
  if (best == nullptr) {
    throw std::invalid_argument("TopicRouterBus: no route for topic '" +
                                topic + "'");
  }
  return *best;
}

void TopicRouterBus::EnsureTopic(const std::string& topic,
                                 size_t num_partitions) {
  Route(topic).EnsureTopic(topic, num_partitions);
}

size_t TopicRouterBus::NumPartitions(const std::string& topic) {
  return Route(topic).NumPartitions(topic);
}

void TopicRouterBus::Produce(const std::string& topic,
                             std::span<const broker::ProduceView> records) {
  Route(topic).Produce(topic, records);
}

size_t TopicRouterBus::Poll(const std::string& topic, size_t partition,
                            uint64_t offset, size_t max_records,
                            std::vector<broker::RecordView>& out) {
  return Route(topic).Poll(topic, partition, offset, max_records, out);
}

uint64_t TopicRouterBus::EndOffset(const std::string& topic,
                                   size_t partition) {
  return Route(topic).EndOffset(topic, partition);
}

}  // namespace privapprox::transport
