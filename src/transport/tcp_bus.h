// The socket MessageBus backend: a single-threaded epoll server fronting a
// broker::Broker, and a synchronous RPC client implementing MessageBus over
// one TCP connection.
//
// Server model (TcpBusServer): one event-loop thread, non-blocking
// listen/accept, per-peer receive accumulation buffers and bounded send
// queues. A peer whose queued response bytes exceed the cap has its reads
// paused (EPOLLIN dropped from its interest set) until the queue drains —
// backpressure by suspension, never by unbounded buffering. Framing errors
// (oversized length prefix, CRC mismatch) quarantine the connection: it is
// closed immediately and counted in protocol_errors; framing cannot
// resynchronize mid-stream. Request semantics live in wire.h's
// HandleRequest; the loop only moves bytes.
//
// Client model (TcpBusClient): blocking, mutex-serialized request/response
// — one in-flight RPC per connection, which is exactly the discipline
// BusConsumer's offset-explicit polls need. Connecting is non-blocking with
// a timeout and bounded retry/backoff (counted in reconnects); an I/O error
// poisons the connection, throws, and the next call re-dials. Polled
// payload bytes are copied into client-owned append-only slabs so
// RecordViews stay valid for the bus's lifetime — the same guarantee the
// in-process slabs give, which the aggregator's join relies on when it
// parks share spans across calls.

#ifndef PRIVAPPROX_TRANSPORT_TCP_BUS_H_
#define PRIVAPPROX_TRANSPORT_TCP_BUS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "metrics/metrics.h"
#include "transport/frame.h"
#include "transport/message_bus.h"
#include "transport/wire.h"

namespace privapprox::transport {

// Optional instruments, not owned (null = uninstrumented) — the metrics
// house style. The daemons wire these to privapprox_transport_* families.
struct TransportCounters {
  metrics::Counter* frames_in = nullptr;
  metrics::Counter* frames_out = nullptr;
  metrics::Counter* bytes_in = nullptr;
  metrics::Counter* bytes_out = nullptr;
  metrics::Counter* accepts = nullptr;      // server: connections accepted
  metrics::Counter* disconnects = nullptr;  // server: peers hung up
  metrics::Counter* protocol_errors = nullptr;  // quarantined connections
  metrics::Counter* reconnects = nullptr;   // client: re-dials after the
                                            // first established connection
};

struct TcpBusServerConfig {
  std::string bind_host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port with port()
  size_t max_frame_bytes = kMaxFrameBytes;
  // Backpressure cap: queued-but-unsent response bytes per peer above which
  // the peer's reads are paused until the queue drains below it.
  size_t max_send_queue_bytes = 8u << 20;
  TransportCounters counters;
};

class TcpBusServer {
 public:
  // Serves `broker` topic I/O; `control` handles daemon verbs (may be
  // empty). Both must outlive the server.
  TcpBusServer(TcpBusServerConfig config, broker::Broker& broker,
               ControlHandler control = {});
  ~TcpBusServer();

  TcpBusServer(const TcpBusServer&) = delete;
  TcpBusServer& operator=(const TcpBusServer&) = delete;

  // Binds + listens (throws std::runtime_error on failure) and starts the
  // event-loop thread. port() is valid once Start returns.
  void Start();
  void Stop();

  uint16_t port() const { return port_; }

 private:
  struct Peer {
    int fd = -1;
    std::vector<uint8_t> recv;
    std::vector<uint8_t> send;
    size_t send_off = 0;  // bytes of `send` already written
    bool want_write = false;
    bool reads_paused = false;
  };

  void Loop();
  void AcceptPeers();
  // Returns false if the peer was closed/quarantined and must be erased.
  bool ReadPeer(Peer& peer);
  bool FlushPeer(Peer& peer);
  void UpdateInterest(Peer& peer);
  void ClosePeer(Peer& peer);
  void Bump(metrics::Counter* counter, uint64_t n = 1);

  TcpBusServerConfig config_;
  broker::Broker& broker_;
  ControlHandler control_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::map<int, Peer> peers_;
  std::vector<uint8_t> response_;  // HandleRequest scratch
};

struct TcpBusClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connect_timeout_ms = 5000;
  int io_timeout_ms = 30000;
  // Dial attempts per (re)connect, with linear backoff between them — lets
  // a fleet driver start before its daemons finish binding.
  int max_connect_attempts = 40;
  int connect_backoff_ms = 25;
  size_t max_frame_bytes = kMaxFrameBytes;
  // Poll response byte budget per round-trip (server packs at least one
  // record regardless, so progress is guaranteed).
  uint32_t poll_byte_budget = kDefaultPollByteBudget;
  TransportCounters counters;
};

class TcpBusClient final : public MessageBus {
 public:
  explicit TcpBusClient(TcpBusClientConfig config);
  ~TcpBusClient() override;

  TcpBusClient(const TcpBusClient&) = delete;
  TcpBusClient& operator=(const TcpBusClient&) = delete;

  void EnsureTopic(const std::string& topic, size_t num_partitions) override;
  size_t NumPartitions(const std::string& topic) override;
  void Produce(const std::string& topic,
               std::span<const broker::ProduceView> records) override;
  size_t Poll(const std::string& topic, size_t partition, uint64_t offset,
              size_t max_records, std::vector<broker::RecordView>& out) override;
  uint64_t EndOffset(const std::string& topic, size_t partition) override;

  // Daemon control verb round-trip; throws std::runtime_error with the
  // server-side message on a remote error.
  std::vector<uint8_t> Control(const std::string& verb,
                               std::span<const uint8_t> payload = {});

 private:
  // One request/response round-trip; `mu_` must be held. Returns the
  // response body (status byte already checked and stripped... see .cc).
  std::span<const uint8_t> Rpc();
  void EnsureConnectedLocked();
  void Disconnect();
  const uint8_t* StorePayload(std::span<const uint8_t> payload);
  void Bump(metrics::Counter* counter, uint64_t n = 1);

  TcpBusClientConfig config_;
  std::mutex mu_;
  int fd_ = -1;
  bool ever_connected_ = false;
  std::vector<uint8_t> request_;   // wire body being built
  std::vector<uint8_t> frame_;     // framed request bytes
  std::vector<uint8_t> recv_;      // response accumulation
  std::vector<uint8_t> body_;      // decoded response body copy
  // Append-only payload slabs backing polled RecordViews for the bus's
  // lifetime (mirrors broker::Topic's slab guarantee across the wire).
  struct Slab {
    std::unique_ptr<uint8_t[]> data;
    size_t used = 0;
    size_t cap = 0;
  };
  std::vector<Slab> slabs_;
};

}  // namespace privapprox::transport

#endif  // PRIVAPPROX_TRANSPORT_TCP_BUS_H_
