#include "transport/tcp_bus.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace privapprox::transport {

namespace {

constexpr size_t kReadChunk = 64 * 1024;
constexpr size_t kClientSlabChunk = 256 * 1024;

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("tcp_bus: fcntl(O_NONBLOCK) failed");
  }
}

void SetBlockingWithTimeout(int fd, int timeout_ms) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

sockaddr_in MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("tcp_bus: bad address '" + host + "'");
  }
  return addr;
}

}  // namespace

// --------------------------------------------------------------------------
// TcpBusServer

TcpBusServer::TcpBusServer(TcpBusServerConfig config, broker::Broker& broker,
                           ControlHandler control)
    : config_(std::move(config)),
      broker_(broker),
      control_(std::move(control)) {}

TcpBusServer::~TcpBusServer() { Stop(); }

void TcpBusServer::Bump(metrics::Counter* counter, uint64_t n) {
  if (counter != nullptr && n > 0) {
    counter->Increment(n);
  }
}

void TcpBusServer::Start() {
  if (thread_.joinable()) {
    throw std::logic_error("TcpBusServer::Start: already running");
  }
  stop_.store(false);
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("TcpBusServer: socket() failed");
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = MakeAddr(config_.bind_host, config_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpBusServer: bind(" + config_.bind_host + ":" +
                             std::to_string(config_.port) +
                             ") failed: " + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (listen(listen_fd_, 64) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpBusServer: listen() failed");
  }
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    throw std::runtime_error("TcpBusServer: epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  thread_ = std::thread([this] { Loop(); });
}

void TcpBusServer::Stop() {
  if (!thread_.joinable()) {
    return;
  }
  stop_.store(true);
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  thread_.join();
  for (auto& [fd, peer] : peers_) {
    close(fd);
  }
  peers_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

void TcpBusServer::ClosePeer(Peer& peer) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, peer.fd, nullptr);
  close(peer.fd);
}

void TcpBusServer::UpdateInterest(Peer& peer) {
  epoll_event ev{};
  ev.data.fd = peer.fd;
  ev.events = 0;
  if (!peer.reads_paused) {
    ev.events |= EPOLLIN;
  }
  if (peer.want_write) {
    ev.events |= EPOLLOUT;
  }
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, peer.fd, &ev);
}

void TcpBusServer::AcceptPeers() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;  // EAGAIN or transient error — the loop will retry
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Peer& peer = peers_[fd];
    peer.fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    Bump(config_.counters.accepts);
  }
}

bool TcpBusServer::FlushPeer(Peer& peer) {
  while (peer.send_off < peer.send.size()) {
    const ssize_t n =
        send(peer.fd, peer.send.data() + peer.send_off,
             peer.send.size() - peer.send_off, MSG_NOSIGNAL);
    if (n > 0) {
      peer.send_off += static_cast<size_t>(n);
      Bump(config_.counters.bytes_out, static_cast<uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    // Write error: the peer is gone.
    Bump(config_.counters.disconnects);
    ClosePeer(peer);
    return false;
  }
  if (peer.send_off == peer.send.size()) {
    peer.send.clear();
    peer.send_off = 0;
  }
  const size_t queued = peer.send.size() - peer.send_off;
  const bool want_write = queued > 0;
  const bool pause_reads = queued > config_.max_send_queue_bytes;
  if (want_write != peer.want_write || pause_reads != peer.reads_paused) {
    peer.want_write = want_write;
    peer.reads_paused = pause_reads;
    UpdateInterest(peer);
  }
  return true;
}

bool TcpBusServer::ReadPeer(Peer& peer) {
  uint8_t chunk[kReadChunk];
  bool eof = false;
  for (;;) {
    const ssize_t n = recv(peer.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      peer.recv.insert(peer.recv.end(), chunk, chunk + n);
      Bump(config_.counters.bytes_in, static_cast<uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    eof = true;  // orderly shutdown (0) or hard error — either way, gone
    break;
  }
  // Serve every complete frame accumulated so far.
  size_t consumed = 0;
  for (;;) {
    const auto decoded = TryDecodeFrame(
        std::span<const uint8_t>(peer.recv.data() + consumed,
                                 peer.recv.size() - consumed),
        config_.max_frame_bytes);
    if (decoded.status == FrameStatus::kNeedMore) {
      break;
    }
    if (decoded.status != FrameStatus::kFrame) {
      // Oversized or corrupt frame: quarantine — close immediately, the
      // stream cannot be resynchronized.
      Bump(config_.counters.protocol_errors);
      ClosePeer(peer);
      return false;
    }
    Bump(config_.counters.frames_in);
    HandleRequest(broker_, control_, decoded.payload, response_);
    EncodeFrame(response_, peer.send);
    Bump(config_.counters.frames_out);
    consumed += decoded.consumed;
  }
  if (consumed > 0) {
    peer.recv.erase(peer.recv.begin(),
                    peer.recv.begin() + static_cast<ptrdiff_t>(consumed));
  }
  if (!FlushPeer(peer)) {
    return false;
  }
  if (eof) {
    // A non-empty recv buffer here means the peer died mid-frame; either
    // way the connection is finished.
    Bump(config_.counters.disconnects);
    ClosePeer(peer);
    return false;
  }
  return true;
}

void TcpBusServer::Loop() {
  epoll_event events[64];
  while (!stop_.load(std::memory_order_relaxed)) {
    const int n = epoll_wait(epoll_fd_, events, 64, 500);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drain;
        [[maybe_unused]] ssize_t r = read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      if (fd == listen_fd_) {
        AcceptPeers();
        continue;
      }
      const auto it = peers_.find(fd);
      if (it == peers_.end()) {
        continue;  // already closed earlier in this batch
      }
      Peer& peer = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        Bump(config_.counters.disconnects);
        ClosePeer(peer);
        peers_.erase(it);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!FlushPeer(peer)) {
          peers_.erase(it);
          continue;
        }
      }
      if ((events[i].events & EPOLLIN) != 0) {
        if (!ReadPeer(peer)) {
          peers_.erase(it);
          continue;
        }
      }
    }
  }
}

// --------------------------------------------------------------------------
// TcpBusClient

TcpBusClient::TcpBusClient(TcpBusClientConfig config)
    : config_(std::move(config)) {}

TcpBusClient::~TcpBusClient() { Disconnect(); }

void TcpBusClient::Bump(metrics::Counter* counter, uint64_t n) {
  if (counter != nullptr && n > 0) {
    counter->Increment(n);
  }
}

void TcpBusClient::Disconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

void TcpBusClient::EnsureConnectedLocked() {
  if (fd_ >= 0) {
    return;
  }
  const sockaddr_in addr = MakeAddr(config_.host, config_.port);
  std::string last_error = "no attempt made";
  for (int attempt = 0; attempt < std::max(1, config_.max_connect_attempts);
       ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.connect_backoff_ms));
    }
    const int fd =
        socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      last_error = "socket() failed";
      continue;
    }
    int rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    if (rc < 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      rc = poll(&pfd, 1, config_.connect_timeout_ms);
      if (rc > 0) {
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        rc = err == 0 ? 0 : -1;
        if (err != 0) {
          last_error = std::strerror(err);
        }
      } else {
        rc = -1;
        last_error = "connect timed out";
      }
    } else if (rc < 0) {
      last_error = std::strerror(errno);
    }
    if (rc != 0) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetBlockingWithTimeout(fd, config_.io_timeout_ms);
    fd_ = fd;
    if (ever_connected_) {
      Bump(config_.counters.reconnects);
    }
    ever_connected_ = true;
    return;
  }
  throw std::runtime_error("TcpBusClient: cannot connect to " + config_.host +
                           ":" + std::to_string(config_.port) + ": " +
                           last_error);
}

const uint8_t* TcpBusClient::StorePayload(std::span<const uint8_t> payload) {
  if (slabs_.empty() ||
      slabs_.back().cap - slabs_.back().used < payload.size()) {
    const size_t cap =
        payload.size() > kClientSlabChunk ? payload.size() : kClientSlabChunk;
    slabs_.push_back(Slab{std::make_unique<uint8_t[]>(cap), 0, cap});
  }
  Slab& slab = slabs_.back();
  uint8_t* dst = slab.data.get() + slab.used;
  if (!payload.empty()) {
    std::memcpy(dst, payload.data(), payload.size());
  }
  slab.used += payload.size();
  return dst;
}

std::span<const uint8_t> TcpBusClient::Rpc() {
  EnsureConnectedLocked();
  frame_.clear();
  EncodeFrame(request_, frame_);
  size_t sent = 0;
  while (sent < frame_.size()) {
    const ssize_t n =
        send(fd_, frame_.data() + sent, frame_.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      Disconnect();
      throw std::runtime_error("TcpBusClient: send failed");
    }
    sent += static_cast<size_t>(n);
  }
  Bump(config_.counters.bytes_out, frame_.size());
  Bump(config_.counters.frames_out);
  recv_.clear();
  for (;;) {
    const auto decoded = TryDecodeFrame(recv_, config_.max_frame_bytes);
    if (decoded.status == FrameStatus::kFrame) {
      Bump(config_.counters.frames_in);
      // Copy out of the accumulation buffer: body_ survives until the next
      // RPC, recv_ is reused immediately.
      body_.assign(decoded.payload.begin(), decoded.payload.end());
      return body_;
    }
    if (decoded.status != FrameStatus::kNeedMore) {
      Bump(config_.counters.protocol_errors);
      Disconnect();
      throw std::runtime_error("TcpBusClient: corrupt response frame");
    }
    uint8_t chunk[kReadChunk];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      Disconnect();
      throw std::runtime_error(
          "TcpBusClient: connection lost awaiting response");
    }
    recv_.insert(recv_.end(), chunk, chunk + n);
    Bump(config_.counters.bytes_in, static_cast<uint64_t>(n));
  }
}

namespace {

// Strips the status byte; throws the remote error message on kWireError.
WireReader CheckOk(std::span<const uint8_t> body) {
  WireReader reader(body);
  const uint8_t status = reader.TakeU8();
  if (status != kWireOk) {
    WireReader rest = reader;
    throw std::runtime_error("TcpBusClient: remote error: " +
                             rest.TakeString());
  }
  return reader;
}

}  // namespace

void TcpBusClient::EnsureTopic(const std::string& topic,
                               size_t num_partitions) {
  std::lock_guard<std::mutex> lock(mu_);
  request_.clear();
  BuildEnsureTopicRequest(topic, num_partitions, request_);
  CheckOk(Rpc());
}

size_t TcpBusClient::NumPartitions(const std::string& topic) {
  std::lock_guard<std::mutex> lock(mu_);
  request_.clear();
  BuildTopicMetaRequest(topic, request_);
  WireReader reader = CheckOk(Rpc());
  return reader.TakeU32();
}

void TcpBusClient::Produce(const std::string& topic,
                           std::span<const broker::ProduceView> records) {
  std::lock_guard<std::mutex> lock(mu_);
  request_.clear();
  BuildProduceRequest(topic, records, request_);
  CheckOk(Rpc());
}

size_t TcpBusClient::Poll(const std::string& topic, size_t partition,
                          uint64_t offset, size_t max_records,
                          std::vector<broker::RecordView>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  request_.clear();
  BuildPollRequest(topic, partition, offset, max_records,
                   config_.poll_byte_budget, request_);
  WireReader reader = CheckOk(Rpc());
  const uint32_t count = reader.TakeU32();
  for (uint32_t i = 0; i < count; ++i) {
    broker::RecordView view;
    view.offset = reader.TakeU64();
    view.key = reader.TakeU64();
    view.timestamp_ms = static_cast<int64_t>(reader.TakeU64());
    const auto payload = reader.TakeBytes();
    view.payload = StorePayload(payload);
    view.payload_len = static_cast<uint32_t>(payload.size());
    out.push_back(view);
  }
  return count;
}

uint64_t TcpBusClient::EndOffset(const std::string& topic, size_t partition) {
  std::lock_guard<std::mutex> lock(mu_);
  request_.clear();
  BuildEndOffsetRequest(topic, partition, request_);
  WireReader reader = CheckOk(Rpc());
  return reader.TakeU64();
}

std::vector<uint8_t> TcpBusClient::Control(const std::string& verb,
                                           std::span<const uint8_t> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  request_.clear();
  BuildControlRequest(verb, payload, request_);
  WireReader reader = CheckOk(Rpc());
  const auto reply = reader.TakeBytes();
  return std::vector<uint8_t>(reply.begin(), reply.end());
}

}  // namespace privapprox::transport
