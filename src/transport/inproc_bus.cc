#include "transport/inproc_bus.h"

namespace privapprox::transport {

InProcessBus::InProcessBus(broker::Broker& broker,
                           std::optional<net::LinkConfig> link)
    : broker_(broker), link_(link) {}

void InProcessBus::AccountTransfer(uint64_t bytes) {
  if (!link_.has_value() || bytes == 0) {
    return;
  }
  const double ms = net::TransferTimeMs(*link_, bytes);
  transfer_ns_.fetch_add(static_cast<uint64_t>(ms * 1e6),
                         std::memory_order_relaxed);
}

void InProcessBus::EnsureTopic(const std::string& topic,
                               size_t num_partitions) {
  broker_.EnsureTopic(topic, num_partitions);
}

size_t InProcessBus::NumPartitions(const std::string& topic) {
  return broker_.GetTopic(topic).num_partitions();
}

void InProcessBus::Produce(const std::string& topic,
                           std::span<const broker::ProduceView> records) {
  broker_.GetTopic(topic).AppendViews(records);
  if (link_.has_value()) {
    uint64_t bytes = 0;
    for (const auto& record : records) {
      bytes += record.payload.size();
    }
    AccountTransfer(bytes);
  }
}

size_t InProcessBus::Poll(const std::string& topic, size_t partition,
                          uint64_t offset, size_t max_records,
                          std::vector<broker::RecordView>& out) {
  const size_t before = out.size();
  broker_.GetTopic(topic).ReadViews(partition, offset, max_records, out);
  const size_t pulled = out.size() - before;
  if (link_.has_value() && pulled > 0) {
    uint64_t bytes = 0;
    for (size_t i = before; i < out.size(); ++i) {
      bytes += out[i].payload_len;
    }
    AccountTransfer(bytes);
  }
  return pulled;
}

uint64_t InProcessBus::EndOffset(const std::string& topic, size_t partition) {
  return broker_.GetTopic(topic).EndOffset(partition);
}

}  // namespace privapprox::transport
