#include "common/simd_dispatch.h"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/logging.h"

namespace privapprox::simd {
namespace {

bool CpuSupports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse2") != 0;
#else
      return false;
#endif
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(__ARM_NEON)
      // NEON is baseline on aarch64; on 32-bit ARM the macro is only set
      // when the compiler already targets it.
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool CompiledIn(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
#if defined(__SSE2__)
      return true;
#else
      return false;
#endif
    case Isa::kAvx2:
#if defined(PRIVAPPROX_HAVE_AVX2_TU)
      return true;
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(__ARM_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Isa BestAvailable() {
  for (Isa isa : {Isa::kAvx2, Isa::kSse2, Isa::kNeon}) {
    if (IsaAvailable(isa)) {
      return isa;
    }
  }
  return Isa::kScalar;
}

Isa DecideActiveIsa() {
  const char* env = std::getenv("PRIVAPPROX_SIMD");
  if (env != nullptr && env[0] != '\0') {
    const std::optional<Isa> requested = ParseIsaName(env);
    if (!requested.has_value()) {
      LogWarning() << "PRIVAPPROX_SIMD=" << env
                   << " is not off|sse2|avx2|neon; auto-selecting";
    } else if (!IsaAvailable(*requested)) {
      LogWarning() << "PRIVAPPROX_SIMD=" << env
                   << " not available on this host/build; auto-selecting";
    } else {
      LogInfo() << "SIMD dispatch: " << IsaName(*requested)
                << " (forced via PRIVAPPROX_SIMD)";
      return *requested;
    }
  }
  const Isa best = BestAvailable();
  LogInfo() << "SIMD dispatch: " << IsaName(best) << " (auto-selected)";
  return best;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "off";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "off";
}

std::optional<Isa> ParseIsaName(const char* name) {
  if (name == nullptr) {
    return std::nullopt;
  }
  if (std::strcmp(name, "off") == 0 || std::strcmp(name, "scalar") == 0) {
    return Isa::kScalar;
  }
  if (std::strcmp(name, "sse2") == 0) {
    return Isa::kSse2;
  }
  if (std::strcmp(name, "avx2") == 0) {
    return Isa::kAvx2;
  }
  if (std::strcmp(name, "neon") == 0) {
    return Isa::kNeon;
  }
  return std::nullopt;
}

bool IsaAvailable(Isa isa) { return CompiledIn(isa) && CpuSupports(isa); }

std::vector<Isa> AvailableIsas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kNeon}) {
    if (IsaAvailable(isa)) {
      out.push_back(isa);
    }
  }
  return out;
}

Isa ActiveIsa() {
  static const Isa active = DecideActiveIsa();
  return active;
}

}  // namespace privapprox::simd
