// Epoch-scoped bump allocation for the zero-copy share path.
//
// An EpochArena hands out raw byte spans from large chunks and frees nothing
// until Reset(): the share-encoding hot loop (crypto/xor_cipher.h
// SplitMessageInto) allocates all n shares of an answer with one pointer
// bump, and the whole arena rewinds in O(1) when the shard batch has been
// copied into broker slabs. Chunks are recycled across Reset() calls, so a
// warmed arena performs no heap allocation at all in steady state.
//
// An ArenaPool recycles whole arenas across pipeline stages and epochs: the
// answer stage acquires one arena per shard, encodes into it, and ships a
// shared reference with each per-proxy batch; when the last stage drops its
// reference the arena resets and returns to the pool. Because the streaming
// pipeline's channels are bounded, the pool's high-water mark — and with it
// the steady-state memory footprint — is bounded by the pipeline depth.

#ifndef PRIVAPPROX_COMMON_ARENA_H_
#define PRIVAPPROX_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace privapprox {

class EpochArena {
 public:
  static constexpr size_t kDefaultChunkBytes = 256 * 1024;

  explicit EpochArena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  EpochArena(const EpochArena&) = delete;
  EpochArena& operator=(const EpochArena&) = delete;

  // Returns `n` contiguous bytes (never split across chunks). The span stays
  // valid until Reset(). n == 0 returns a valid (dangling-safe) pointer into
  // the current chunk.
  uint8_t* Alloc(size_t n) {
    while (chunk_index_ < chunks_.size()) {
      Chunk& chunk = chunks_[chunk_index_];
      if (chunk.cap - used_ >= n) {
        uint8_t* out = chunk.data.get() + used_;
        used_ += n;
        allocated_ += n;
        return out;
      }
      ++chunk_index_;
      used_ = 0;
    }
    const size_t cap = n > chunk_bytes_ ? n : chunk_bytes_;
    chunks_.push_back(Chunk{std::make_unique<uint8_t[]>(cap), cap});
    uint8_t* out = chunks_.back().data.get();
    used_ = n;
    allocated_ += n;
    return out;
  }

  // Rewinds to empty, keeping every chunk for reuse.
  void Reset() {
    chunk_index_ = 0;
    used_ = 0;
    allocated_ = 0;
  }

  // Bytes handed out since the last Reset().
  size_t bytes_allocated() const { return allocated_; }

  // Total chunk capacity owned (survives Reset()).
  size_t bytes_capacity() const {
    size_t total = 0;
    for (const Chunk& chunk : chunks_) {
      total += chunk.cap;
    }
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<uint8_t[]> data;
    size_t cap = 0;
  };

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t chunk_index_ = 0;
  size_t used_ = 0;
  size_t allocated_ = 0;
};

// Shared ownership of an in-flight arena. The batches a shard fans out to
// the n proxy stages each hold one reference; the arena returns to its pool
// when the last one is dropped.
using ArenaRef = std::shared_ptr<EpochArena>;

// Thread-safe free list of arenas. The pool must outlive every ArenaRef it
// hands out (the deleter touches the pool).
class ArenaPool {
 public:
  explicit ArenaPool(size_t chunk_bytes = EpochArena::kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  // Hands out a reset arena, reusing a pooled one when available. The
  // returned reference resets and returns the arena on final release.
  ArenaRef Acquire() {
    std::unique_ptr<EpochArena> arena;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        arena = std::move(free_.back());
        free_.pop_back();
      }
    }
    if (arena == nullptr) {
      arena = std::make_unique<EpochArena>(chunk_bytes_);
    }
    return ArenaRef(arena.release(), [this](EpochArena* released) {
      released->Reset();
      std::lock_guard<std::mutex> lock(mu_);
      free_.emplace_back(released);
    });
  }

  size_t idle() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

 private:
  size_t chunk_bytes_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<EpochArena>> free_;
};

}  // namespace privapprox

#endif  // PRIVAPPROX_COMMON_ARENA_H_
