// Runtime SIMD dispatch policy for the crypto hot path.
//
// The ChaCha20 keystream engine (crypto/chacha20_simd.h) and the wide XOR
// primitives (common/xor_bytes.h) each ship several kernels — scalar, 4-way
// SSE2, 8-way AVX2 on x86-64, 4-way NEON on aarch64 — that produce
// bit-identical output. This module picks which one runs: the best ISA both
// compiled in and supported by the host CPU, decided once per process and
// overridable with PRIVAPPROX_SIMD=off|sse2|avx2|neon for A/B runs and CI.
// Every consumer caches the decision in its own function pointer, so the
// policy costs nothing on the per-call path.

#ifndef PRIVAPPROX_COMMON_SIMD_DISPATCH_H_
#define PRIVAPPROX_COMMON_SIMD_DISPATCH_H_

#include <optional>
#include <vector>

namespace privapprox::simd {

enum class Isa {
  kScalar = 0,  // portable uint64 code paths (PRIVAPPROX_SIMD=off)
  kSse2,        // 4-way 128-bit (x86-64 baseline)
  kAvx2,        // 8-way 256-bit (needs the -mavx2 TU and host support)
  kNeon,        // 4-way 128-bit (aarch64 baseline)
};

// Lower-case name used in logs, metrics labels, bench JSON, and the
// PRIVAPPROX_SIMD override: "off" for kScalar, else "sse2"/"avx2"/"neon".
const char* IsaName(Isa isa);

// Parses a PRIVAPPROX_SIMD value. Accepts the IsaName spellings plus
// "scalar" as an alias for "off"; nullopt for anything else (including
// nullptr/empty, which mean "auto-select").
std::optional<Isa> ParseIsaName(const char* name);

// True when `isa`'s kernels are compiled into this binary AND the host CPU
// executes them. kScalar is always available.
bool IsaAvailable(Isa isa);

// Every available ISA, scalar first — what tests iterate to pin each
// compiled-in kernel against the RFC vectors on this host.
std::vector<Isa> AvailableIsas();

// The ISA the dispatched entry points use: the PRIVAPPROX_SIMD override if
// it names an available ISA (an unavailable request logs a warning and
// falls back), otherwise the best available one. Decided once, on first
// call, and logged at kInfo.
Isa ActiveIsa();

}  // namespace privapprox::simd

#endif  // PRIVAPPROX_COMMON_SIMD_DISPATCH_H_
