#include "common/alloc_counter.h"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace {

std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};

void* CountedAlloc(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (size == 0) {
    size = 1;
  }
  void* ptr = align > alignof(std::max_align_t)
                  ? std::aligned_alloc(align, (size + align - 1) / align * align)
                  : std::malloc(size);
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}

}  // namespace

namespace privapprox {

uint64_t AllocCounter::Count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

uint64_t AllocCounter::Bytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}

}  // namespace privapprox

void* operator new(std::size_t size) {
  return CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
