#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace privapprox {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Nanoseconds of the first log call; 0 until then. All timestamps are
// relative to it, so logs start near 000000.000 and stay monotonic.
int64_t LogOriginNs() {
  static std::atomic<int64_t> origin{0};
  int64_t value = origin.load(std::memory_order_relaxed);
  if (value == 0) {
    int64_t expected = 0;
    const int64_t now = MonotonicNowNs();
    if (origin.compare_exchange_strong(expected, now,
                                       std::memory_order_relaxed)) {
      return now;
    }
    return expected;
  }
  return value;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }

LogLevel GetLogLevel() { return g_level.load(); }

std::string FormatLogLine(LogLevel level, const std::string& message,
                          int64_t elapsed_ns) {
  if (elapsed_ns < 0) {
    elapsed_ns = 0;
  }
  const long long seconds = elapsed_ns / 1000000000LL;
  const long long millis = (elapsed_ns / 1000000LL) % 1000;
  char prefix[48];
  std::snprintf(prefix, sizeof(prefix), "[%06lld.%03lld] [%s] ", seconds,
                millis, LevelName(level));
  std::string line;
  line.reserve(sizeof(prefix) + message.size() + 1);
  line += prefix;
  line += message;
  line += '\n';
  return line;
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) {
    return;
  }
  const std::string line =
      FormatLogLine(level, message, MonotonicNowNs() - LogOriginNs());
  // One fwrite for the whole line: stdio streams are locked per call
  // (POSIX), so concurrent writers never interleave mid-line and no
  // process-level mutex is needed.
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace privapprox
