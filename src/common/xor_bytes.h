// Word-level XOR over byte buffers.
//
// The XOR one-time pad (crypto/xor_cipher.h) and the BitVector bulk ops are
// the innermost loops of the client answering path and the aggregator join;
// Table 3 / Table 2 throughput hinges on them. Chunking through uint64_t via
// memcpy is the strict-aliasing-safe idiom — compilers lower the memcpys to
// plain word loads/stores and vectorize the loop.

#ifndef PRIVAPPROX_COMMON_XOR_BYTES_H_
#define PRIVAPPROX_COMMON_XOR_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace privapprox {

// dst[i] ^= src[i] for i in [0, len).
inline void XorBytesInPlace(uint8_t* dst, const uint8_t* src, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t a;
    uint64_t b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < len; ++i) {
    dst[i] ^= src[i];
  }
}

}  // namespace privapprox

#endif  // PRIVAPPROX_COMMON_XOR_BYTES_H_
