// Word- and vector-level XOR over byte buffers.
//
// The XOR one-time pad (crypto/xor_cipher.h), the MidJoiner share combine,
// and the BitVector bulk ops are the innermost loops of the client
// answering path and the aggregator join; Table 3 / Table 2 throughput
// hinges on them. Short buffers (the common case: one share payload is a
// few dozen bytes) run an inline uint64_t loop — chunking through memcpy is
// the strict-aliasing-safe idiom, and compilers lower it to plain word
// loads/stores. Buffers of kXorVectorBytes or more take the out-of-line
// vector path (common/xor_bytes.cc), which runs 16/32-byte register chunks
// selected once per process by simd::ActiveIsa() (PRIVAPPROX_SIMD
// override). Both paths are exact, so the split is invisible to callers.

#ifndef PRIVAPPROX_COMMON_XOR_BYTES_H_
#define PRIVAPPROX_COMMON_XOR_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/simd_dispatch.h"

namespace privapprox {

namespace detail {

// Buffers at least this long go through the dispatched vector kernels; the
// threshold covers one full vector step plus the call overhead.
inline constexpr size_t kXorVectorBytes = 64;

void XorVectorInPlace(uint8_t* dst, const uint8_t* src, size_t len);
void XorVectorInto(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                   size_t len);

}  // namespace detail

// dst[i] ^= src[i] for i in [0, len).
inline void XorBytesInPlace(uint8_t* dst, const uint8_t* src, size_t len) {
  if (len >= detail::kXorVectorBytes) {
    detail::XorVectorInPlace(dst, src, len);
    return;
  }
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t a;
    uint64_t b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < len; ++i) {
    dst[i] ^= src[i];
  }
}

// dst[i] = a[i] ^ b[i] for i in [0, len). `dst` may alias `a` (that is the
// in-place form) but must not partially overlap either input.
inline void XorBytesInto(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                         size_t len) {
  if (len >= detail::kXorVectorBytes) {
    detail::XorVectorInto(dst, a, b, len);
    return;
  }
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t wa;
    uint64_t wb;
    std::memcpy(&wa, a + i, 8);
    std::memcpy(&wb, b + i, 8);
    wa ^= wb;
    std::memcpy(dst + i, &wa, 8);
  }
  for (; i < len; ++i) {
    dst[i] = static_cast<uint8_t>(a[i] ^ b[i]);
  }
}

// Forced-ISA variants for the Table 2 bench and the per-kernel equivalence
// tests; length-unrestricted (no small-buffer shortcut). Throw
// std::invalid_argument if `isa` is unavailable (simd::IsaAvailable).
void XorBytesInPlaceWith(simd::Isa isa, uint8_t* dst, const uint8_t* src,
                         size_t len);
void XorBytesIntoWith(simd::Isa isa, uint8_t* dst, const uint8_t* a,
                      const uint8_t* b, size_t len);

}  // namespace privapprox

#endif  // PRIVAPPROX_COMMON_XOR_BYTES_H_
