// Dynamic bit vector used for client answers A[n] and XOR one-time pads.
//
// Client answers in PrivApprox are n-bit vectors, one bit per histogram
// bucket (§2.2). The XOR-based encryption (§3.2.3) operates on these vectors
// bit-wise; the aggregator pops counts per bucket out of them.

#ifndef PRIVAPPROX_COMMON_BITVECTOR_H_
#define PRIVAPPROX_COMMON_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace privapprox {

class BitVector {
 public:
  BitVector() = default;
  // Creates a vector of `num_bits` zero bits.
  explicit BitVector(size_t num_bits);

  // Builds from raw bytes; the vector has bytes.size()*8 bits unless
  // `num_bits` (<= bytes.size()*8) trims it.
  static BitVector FromBytes(std::vector<uint8_t> bytes, size_t num_bits);

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  bool Get(size_t index) const;
  void Set(size_t index, bool value);
  void Flip(size_t index);

  // Number of set bits.
  size_t PopCount() const;

  // In-place XOR with `other`. Both vectors must have the same size.
  BitVector& operator^=(const BitVector& other);
  // Three-operand bulk XOR (XorBytesInto): writes lhs ^ rhs straight into
  // the result's bytes, no copy-then-xor pass.
  friend BitVector operator^(const BitVector& lhs, const BitVector& rhs);

  bool operator==(const BitVector& other) const;
  bool operator!=(const BitVector& other) const { return !(*this == other); }

  // Sets all bits to zero.
  void Clear();

  // Raw little-endian byte serialization (ceil(num_bits/8) bytes; trailing
  // pad bits are zero).
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  size_t ByteSize() const { return bytes_.size(); }

  // "0101..." debug rendering, most significant index last.
  std::string ToString() const;

 private:
  void MaskTail();

  size_t num_bits_ = 0;
  std::vector<uint8_t> bytes_;
};

}  // namespace privapprox

#endif  // PRIVAPPROX_COMMON_BITVECTOR_H_
