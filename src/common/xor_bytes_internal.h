// Internal kernel declarations shared between xor_bytes.cc (baseline ISA:
// scalar/SSE2/NEON kernels + dispatch) and xor_bytes_avx2.cc (the only
// common/ file compiled with -mavx2). Not for use outside those TUs.

#ifndef PRIVAPPROX_COMMON_XOR_BYTES_INTERNAL_H_
#define PRIVAPPROX_COMMON_XOR_BYTES_INTERNAL_H_

#include <cstddef>
#include <cstdint>

namespace privapprox::detail {

void XorScalarInPlace(uint8_t* dst, const uint8_t* src, size_t len);
void XorScalarInto(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                   size_t len);

#if defined(PRIVAPPROX_HAVE_AVX2_TU)
void XorAvx2InPlace(uint8_t* dst, const uint8_t* src, size_t len);
void XorAvx2Into(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t len);
#endif

}  // namespace privapprox::detail

#endif  // PRIVAPPROX_COMMON_XOR_BYTES_INTERNAL_H_
