#include "common/thread_pool.h"

#include <algorithm>

namespace privapprox {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t, size_t)>& body) {
  if (count == 0) {
    return;
  }
  const size_t num_chunks =
      std::min(count, std::max<size_t>(1, workers_.size()));
  if (num_chunks == 1) {
    body(0, count);
    return;
  }
  const size_t chunk = (count + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (size_t begin = 0; begin < count; begin += chunk) {
    const size_t end = std::min(begin + chunk, count);
    futures.push_back(Submit([&body, begin, end] { body(begin, end); }));
  }
  // Wait for every chunk before rethrowing: chunks capture `body` by
  // reference, so returning while any are still queued or running would let
  // them race the caller's frame unwinding. The first exception wins.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) {
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace privapprox
