// Out-of-line vector kernels behind XorBytesInPlace / XorBytesInto. The
// scalar uint64 kernels double as the tail handler for every vector path;
// SSE2 and NEON are baseline ISA on their platforms and live here, AVX2
// lives in xor_bytes_avx2.cc (compiled with -mavx2).

#include "common/xor_bytes.h"

#include <stdexcept>
#include <string>

#include "common/xor_bytes_internal.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace privapprox {
namespace detail {

void XorScalarInPlace(uint8_t* dst, const uint8_t* src, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t a;
    uint64_t b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < len; ++i) {
    dst[i] ^= src[i];
  }
}

void XorScalarInto(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                   size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t wa;
    uint64_t wb;
    std::memcpy(&wa, a + i, 8);
    std::memcpy(&wb, b + i, 8);
    wa ^= wb;
    std::memcpy(dst + i, &wa, 8);
  }
  for (; i < len; ++i) {
    dst[i] = static_cast<uint8_t>(a[i] ^ b[i]);
  }
}

namespace {

#if defined(__SSE2__)

void XorSse2InPlace(uint8_t* dst, const uint8_t* src, size_t len) {
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(a, b));
  }
  XorScalarInPlace(dst + i, src + i, len - i);
}

void XorSse2Into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                 size_t len) {
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i wa =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i wb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(wa, wb));
  }
  XorScalarInto(dst + i, a + i, b + i, len - i);
}

#endif  // __SSE2__

#if defined(__ARM_NEON)

void XorNeonInPlace(uint8_t* dst, const uint8_t* src, size_t len) {
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
  }
  XorScalarInPlace(dst + i, src + i, len - i);
}

void XorNeonInto(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                 size_t len) {
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
  }
  XorScalarInto(dst + i, a + i, b + i, len - i);
}

#endif  // __ARM_NEON

using InPlaceFn = void (*)(uint8_t*, const uint8_t*, size_t);
using IntoFn = void (*)(uint8_t*, const uint8_t*, const uint8_t*, size_t);

struct XorKernels {
  InPlaceFn in_place = &XorScalarInPlace;
  IntoFn into = &XorScalarInto;
};

XorKernels KernelsFor(simd::Isa isa) {
  switch (isa) {
    case simd::Isa::kScalar:
      break;
#if defined(__SSE2__)
    case simd::Isa::kSse2:
      return {&XorSse2InPlace, &XorSse2Into};
#endif
#if defined(PRIVAPPROX_HAVE_AVX2_TU)
    case simd::Isa::kAvx2:
      return {&XorAvx2InPlace, &XorAvx2Into};
#endif
#if defined(__ARM_NEON)
    case simd::Isa::kNeon:
      return {&XorNeonInPlace, &XorNeonInto};
#endif
    default:
      break;
  }
  return {};
}

const XorKernels& ActiveKernels() {
  static const XorKernels kernels = KernelsFor(simd::ActiveIsa());
  return kernels;
}

}  // namespace

void XorVectorInPlace(uint8_t* dst, const uint8_t* src, size_t len) {
  ActiveKernels().in_place(dst, src, len);
}

void XorVectorInto(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                   size_t len) {
  ActiveKernels().into(dst, a, b, len);
}

}  // namespace detail

void XorBytesInPlaceWith(simd::Isa isa, uint8_t* dst, const uint8_t* src,
                         size_t len) {
  if (!simd::IsaAvailable(isa)) {
    throw std::invalid_argument(
        std::string("XorBytesInPlaceWith: ISA not available: ") +
        simd::IsaName(isa));
  }
  detail::KernelsFor(isa).in_place(dst, src, len);
}

void XorBytesIntoWith(simd::Isa isa, uint8_t* dst, const uint8_t* a,
                      const uint8_t* b, size_t len) {
  if (!simd::IsaAvailable(isa)) {
    throw std::invalid_argument(
        std::string("XorBytesIntoWith: ISA not available: ") +
        simd::IsaName(isa));
  }
  detail::KernelsFor(isa).into(dst, a, b, len);
}

}  // namespace privapprox
