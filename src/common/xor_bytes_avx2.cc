// 32-byte-register XOR kernels. Only this common/ file is compiled with
// -mavx2 (see src/CMakeLists.txt); the dispatcher in xor_bytes.cc routes
// here only after the CPUID check passes.

#include "common/xor_bytes_internal.h"

#if defined(PRIVAPPROX_HAVE_AVX2_TU)

#include <immintrin.h>

namespace privapprox::detail {

void XorAvx2InPlace(uint8_t* dst, const uint8_t* src, size_t len) {
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
  XorScalarInPlace(dst + i, src + i, len - i);
}

void XorAvx2Into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                 size_t len) {
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i wa =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i wb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(wa, wb));
  }
  XorScalarInto(dst + i, a + i, b + i, len - i);
}

}  // namespace privapprox::detail

#endif  // PRIVAPPROX_HAVE_AVX2_TU
