// Fixed-size worker pool used by the broker, the dataflow engine, and the
// scalability benchmarks (Fig 8 sweeps worker counts to model scale-up).

#ifndef PRIVAPPROX_COMMON_THREAD_POOL_H_
#define PRIVAPPROX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace privapprox {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues a task; returns a future for its completion.
  std::future<void> Submit(std::function<void()> task);

  // Partitions [0, count) into contiguous chunks, runs `body(begin, end)` on
  // the pool, and blocks until all chunks finish. Runs inline if the pool has
  // one thread or count is small.
  void ParallelFor(size_t count, const std::function<void(size_t, size_t)>& body);

  // Blocks until the queue is empty and all in-flight tasks are done.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace privapprox

#endif  // PRIVAPPROX_COMMON_THREAD_POOL_H_
