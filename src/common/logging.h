// Minimal leveled logging. Off by default below kWarning so benchmarks stay
// quiet; tests and examples can raise verbosity.
//
// Each emitted line carries a level tag and a monotonic timestamp (seconds
// since the first log call, steady clock — immune to wall-clock jumps), and
// is written to stderr with a single formatted fwrite. Concurrent stage
// workers therefore never interleave within a line, and lines sort in
// emission order, which is what makes streaming-mode logs readable.

#ifndef PRIVAPPROX_COMMON_LOGGING_H_
#define PRIVAPPROX_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace privapprox {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets/returns the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits `message` to stderr if `level` >= the global level.
void LogMessage(LogLevel level, const std::string& message);

// Formats one log line: "[ssssss.mmm] [LEVEL] message\n" where the
// timestamp is `elapsed_ns` rendered as seconds.milliseconds. Exposed for
// the logging tests; LogMessage uses it with the time since first log.
std::string FormatLogLine(LogLevel level, const std::string& message,
                          int64_t elapsed_ns);

namespace internal {

// Stream-style helper: accumulates a line, emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

inline internal::LogLine LogDebug() {
  return internal::LogLine(LogLevel::kDebug);
}
inline internal::LogLine LogInfo() { return internal::LogLine(LogLevel::kInfo); }
inline internal::LogLine LogWarning() {
  return internal::LogLine(LogLevel::kWarning);
}
inline internal::LogLine LogError() {
  return internal::LogLine(LogLevel::kError);
}

}  // namespace privapprox

#endif  // PRIVAPPROX_COMMON_LOGGING_H_
