// Minimal leveled logging. Off by default below kWarning so benchmarks stay
// quiet; tests and examples can raise verbosity.

#ifndef PRIVAPPROX_COMMON_LOGGING_H_
#define PRIVAPPROX_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace privapprox {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets/returns the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits `message` to stderr if `level` >= the global level.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

// Stream-style helper: accumulates a line, emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

inline internal::LogLine LogDebug() {
  return internal::LogLine(LogLevel::kDebug);
}
inline internal::LogLine LogInfo() { return internal::LogLine(LogLevel::kInfo); }
inline internal::LogLine LogWarning() {
  return internal::LogLine(LogLevel::kWarning);
}
inline internal::LogLine LogError() {
  return internal::LogLine(LogLevel::kError);
}

}  // namespace privapprox

#endif  // PRIVAPPROX_COMMON_LOGGING_H_
