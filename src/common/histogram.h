// Bucketed counts — the aggregate form of all PrivApprox query results.
//
// Every query result in the paper's model is "counts within histogram
// buckets" (§2.2). Histogram accumulates per-bucket counts, supports
// merging partial aggregates (across windows / workers), and converts to
// fractions for accuracy-loss computations.

#ifndef PRIVAPPROX_COMMON_HISTOGRAM_H_
#define PRIVAPPROX_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace privapprox {

class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(size_t num_buckets) : counts_(num_buckets, 0.0) {}
  explicit Histogram(std::vector<double> counts) : counts_(std::move(counts)) {}

  size_t num_buckets() const { return counts_.size(); }

  double Count(size_t bucket) const;
  void Add(size_t bucket, double weight = 1.0);
  void SetCount(size_t bucket, double count);

  // Sum of all bucket counts.
  double Total() const;

  // Element-wise merge of another histogram with the same bucket count.
  Histogram& Merge(const Histogram& other);

  // Per-bucket fraction of the total; zero vector if the total is zero.
  std::vector<double> Fractions() const;

  // Mean absolute relative error against `exact`, skipping buckets where the
  // exact count is zero (matches the paper's accuracy-loss metric
  // |estimate - exact| / exact averaged over buckets).
  double MeanRelativeError(const Histogram& exact) const;

  const std::vector<double>& counts() const { return counts_; }

  std::string ToString() const;

 private:
  std::vector<double> counts_;
};

}  // namespace privapprox

#endif  // PRIVAPPROX_COMMON_HISTOGRAM_H_
