#include "common/bitvector.h"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "common/xor_bytes.h"

namespace privapprox {

BitVector::BitVector(size_t num_bits)
    : num_bits_(num_bits), bytes_((num_bits + 7) / 8, 0) {}

BitVector BitVector::FromBytes(std::vector<uint8_t> bytes, size_t num_bits) {
  if (num_bits > bytes.size() * 8) {
    throw std::invalid_argument("BitVector::FromBytes: num_bits too large");
  }
  BitVector bv;
  bv.num_bits_ = num_bits;
  bytes.resize((num_bits + 7) / 8);
  bv.bytes_ = std::move(bytes);
  bv.MaskTail();
  return bv;
}

bool BitVector::Get(size_t index) const {
  if (index >= num_bits_) {
    throw std::out_of_range("BitVector::Get: index out of range");
  }
  return (bytes_[index / 8] >> (index % 8)) & 1u;
}

void BitVector::Set(size_t index, bool value) {
  if (index >= num_bits_) {
    throw std::out_of_range("BitVector::Set: index out of range");
  }
  const uint8_t mask = static_cast<uint8_t>(1u << (index % 8));
  if (value) {
    bytes_[index / 8] |= mask;
  } else {
    bytes_[index / 8] &= static_cast<uint8_t>(~mask);
  }
}

void BitVector::Flip(size_t index) { Set(index, !Get(index)); }

size_t BitVector::PopCount() const {
  size_t count = 0;
  size_t i = 0;
  const size_t n = bytes_.size();
  for (; i + 8 <= n; i += 8) {
    uint64_t word;
    std::memcpy(&word, bytes_.data() + i, 8);
    count += static_cast<size_t>(std::popcount(word));
  }
  for (; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(bytes_[i]));
  }
  return count;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  if (num_bits_ != other.num_bits_) {
    throw std::invalid_argument("BitVector::operator^=: size mismatch");
  }
  XorBytesInPlace(bytes_.data(), other.bytes_.data(), bytes_.size());
  return *this;
}

BitVector operator^(const BitVector& lhs, const BitVector& rhs) {
  if (lhs.num_bits_ != rhs.num_bits_) {
    throw std::invalid_argument("BitVector::operator^: size mismatch");
  }
  BitVector out(lhs.num_bits_);
  XorBytesInto(out.bytes_.data(), lhs.bytes_.data(), rhs.bytes_.data(),
               out.bytes_.size());
  return out;
}

bool BitVector::operator==(const BitVector& other) const {
  return num_bits_ == other.num_bits_ && bytes_ == other.bytes_;
}

void BitVector::Clear() { std::fill(bytes_.begin(), bytes_.end(), 0); }

std::string BitVector::ToString() const {
  std::string out;
  out.reserve(num_bits_);
  for (size_t i = 0; i < num_bits_; ++i) {
    out.push_back(Get(i) ? '1' : '0');
  }
  return out;
}

void BitVector::MaskTail() {
  const size_t tail_bits = num_bits_ % 8;
  if (tail_bits != 0 && !bytes_.empty()) {
    bytes_.back() &= static_cast<uint8_t>((1u << tail_bits) - 1);
  }
}

}  // namespace privapprox
