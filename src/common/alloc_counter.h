// Heap-allocation counting for regression tests and benchmarks.
//
// Linking the privapprox_alloc_counter library into a binary replaces the
// global operator new/delete with counting wrappers (relaxed atomics over
// malloc/free, so the overhead is one fetch_add per allocation). Production
// targets do NOT link it; only the allocation regression test and the epoch
// pipeline bench do, to prove the zero-copy share path stays allocation-free
// in steady state.

#ifndef PRIVAPPROX_COMMON_ALLOC_COUNTER_H_
#define PRIVAPPROX_COMMON_ALLOC_COUNTER_H_

#include <cstdint>

namespace privapprox {

struct AllocCounter {
  // Total operator-new calls / bytes requested since process start.
  // Monotonic; diff two snapshots around the region of interest.
  static uint64_t Count();
  static uint64_t Bytes();
};

}  // namespace privapprox

#endif  // PRIVAPPROX_COMMON_ALLOC_COUNTER_H_
