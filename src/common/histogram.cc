#include "common/histogram.h"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace privapprox {

double Histogram::Count(size_t bucket) const {
  if (bucket >= counts_.size()) {
    throw std::out_of_range("Histogram::Count: bucket out of range");
  }
  return counts_[bucket];
}

void Histogram::Add(size_t bucket, double weight) {
  if (bucket >= counts_.size()) {
    throw std::out_of_range("Histogram::Add: bucket out of range");
  }
  counts_[bucket] += weight;
}

void Histogram::SetCount(size_t bucket, double count) {
  if (bucket >= counts_.size()) {
    throw std::out_of_range("Histogram::SetCount: bucket out of range");
  }
  counts_[bucket] = count;
}

double Histogram::Total() const {
  return std::accumulate(counts_.begin(), counts_.end(), 0.0);
}

Histogram& Histogram::Merge(const Histogram& other) {
  if (counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("Histogram::Merge: bucket count mismatch");
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  return *this;
}

std::vector<double> Histogram::Fractions() const {
  std::vector<double> fractions(counts_.size(), 0.0);
  const double total = Total();
  if (total <= 0.0) {
    return fractions;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    fractions[i] = counts_[i] / total;
  }
  return fractions;
}

double Histogram::MeanRelativeError(const Histogram& exact) const {
  if (counts_.size() != exact.counts_.size()) {
    throw std::invalid_argument(
        "Histogram::MeanRelativeError: bucket count mismatch");
  }
  double sum = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (exact.counts_[i] == 0.0) {
      continue;
    }
    sum += std::fabs(counts_[i] - exact.counts_[i]) / exact.counts_[i];
    ++used;
  }
  return used == 0 ? 0.0 : sum / static_cast<double>(used);
}

std::string Histogram::ToString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (i != 0) {
      out << ", ";
    }
    out << counts_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace privapprox
