// Deterministic pseudo-random number generation.
//
// PrivApprox draws randomness in three places: the client-side sampling coin,
// the two randomized-response coins, and the XOR one-time-pad key material.
// The first two only need statistical quality and reproducibility (so
// experiments are repeatable); they use xoshiro256**. Key material must be
// cryptographically strong and is produced by crypto::ChaCha20Rng instead.

#ifndef PRIVAPPROX_COMMON_RNG_H_
#define PRIVAPPROX_COMMON_RNG_H_

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace privapprox {

// SplitMix64: used to expand a single 64-bit seed into a full xoshiro state.
// Passes through all 2^64 states; recommended seeding procedure by the
// xoshiro authors.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next();

 private:
  uint64_t state_;
};

// xoshiro256**: fast, high-quality, 256-bit state general-purpose PRNG.
// Satisfies the C++ UniformRandomBitGenerator concept so it can be used with
// <random> distributions as well.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  // Seeds the 256-bit state from a 64-bit seed via SplitMix64.
  explicit Xoshiro256(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return Next(); }

  uint64_t Next();

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  // Bernoulli trial: true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Standard normal variate (Box-Muller).
  double NextGaussian();

  // Exponential variate with rate lambda.
  double NextExponential(double lambda);

  // Log-normal variate with the given parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma);

  // Jump function: advances the state by 2^128 steps, for creating
  // non-overlapping independent substreams (one per simulated client).
  void Jump();

  // Returns a new generator whose stream is 2^128 steps ahead; this
  // generator is also advanced. Use to hand out per-client substreams.
  Xoshiro256 Split();

 private:
  std::array<uint64_t, 4> state_;
  // Cached second Box-Muller variate.
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// Fills `out` with random bytes from `rng` (not cryptographically strong;
// for crypto key material use crypto::ChaCha20Rng).
void FillRandomBytes(Xoshiro256& rng, std::vector<uint8_t>& out);

}  // namespace privapprox

#endif  // PRIVAPPROX_COMMON_RNG_H_
