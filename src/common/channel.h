// Bounded MPMC channel + stage runner — the streaming runtime under the
// epoch pipeline (system/system.cc).
//
// A Channel<T> is a capacity-bounded queue with blocking Push/Pop: a full
// channel blocks producers, which is how backpressure propagates upstream
// through a pipeline of stages (a slow aggregator stage eventually stalls
// client answering instead of buffering unboundedly). Close() flips the
// channel into drain mode: pending items can still be popped, further
// pushes fail, and Pop returns false once the queue is empty — the signal
// stage workers use to exit.
//
// A Stage owns worker threads that pull items from one input channel and
// run a processing function on each (typically pushing results into the
// next channel). Joining a stage after closing its input gives the
// producer→transform→consumer shutdown sequence: close, join, close the
// next channel, join the next stage, ...

#ifndef PRIVAPPROX_COMMON_CHANNEL_H_
#define PRIVAPPROX_COMMON_CHANNEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "metrics/metrics.h"

namespace privapprox {

template <typename T>
class Channel {
 public:
  explicit Channel(size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) {
      throw std::invalid_argument("Channel: capacity must be >= 1");
    }
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Attaches a high-watermark gauge (not owned; null detaches): every Push
  // records the post-push queue depth via Gauge::SetMax, making sustained
  // backpressure visible in the metrics registry. Set before the channel
  // goes live — the pointer is read unsynchronized on the push path.
  void set_depth_gauge(metrics::Gauge* gauge) { depth_hwm_ = gauge; }

  // Blocks while the channel is full. Returns false (dropping `value`) if
  // the channel is closed.
  bool Push(T value) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(value));
      if (depth_hwm_ != nullptr) {
        depth_hwm_->SetMax(static_cast<int64_t>(items_.size()));
      }
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the channel is closed and drained.
  // Returns false only in the latter case.
  bool Pop(T& out) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) {
        return false;  // closed and fully drained
      }
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  // Non-blocking Pop: false when the channel is currently empty (closed or
  // not).
  bool TryPop(T& out) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) {
        return false;
      }
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  // Idempotent. Wakes every blocked producer (their pushes fail) and lets
  // consumers drain what is already queued.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  metrics::Gauge* depth_hwm_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

// Runs `num_workers` threads, each looping `fn(item)` over items popped from
// `in` until the channel is closed and drained. `In` must be
// default-constructible and move-assignable.
//
// If `fn` throws, the first exception is captured and rethrown by Join();
// after a failure the stage keeps draining its input without processing, so
// upstream producers blocked on a full channel always make progress and a
// pipeline shuts down cleanly even on error.
template <typename In>
class Stage {
 public:
  Stage(Channel<In>& in, size_t num_workers, std::function<void(In&&)> fn)
      : in_(in), fn_(std::move(fn)) {
    if (num_workers == 0) {
      throw std::invalid_argument("Stage: need >= 1 worker");
    }
    workers_.reserve(num_workers);
    for (size_t i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this] { Run(); });
    }
  }

  Stage(const Stage&) = delete;
  Stage& operator=(const Stage&) = delete;

  ~Stage() { JoinWorkers(); }

  // Blocks until every worker has exited (i.e. the input channel is closed
  // and drained), then rethrows the first exception any worker hit.
  void Join() {
    JoinWorkers();
    if (error_ != nullptr) {
      std::exception_ptr error = error_;
      error_ = nullptr;
      std::rethrow_exception(error);
    }
  }

  size_t num_workers() const { return workers_.size(); }

 private:
  void Run() {
    In item;
    while (in_.Pop(item)) {
      if (failed_.load(std::memory_order_relaxed)) {
        continue;  // drain-only after a failure; keeps producers unblocked
      }
      try {
        fn_(std::move(item));
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu_);
        if (error_ == nullptr) {
          error_ = std::current_exception();
        }
        failed_.store(true, std::memory_order_relaxed);
      }
    }
  }

  void JoinWorkers() {
    for (std::thread& worker : workers_) {
      if (worker.joinable()) {
        worker.join();
      }
    }
  }

  Channel<In>& in_;
  std::function<void(In&&)> fn_;
  std::vector<std::thread> workers_;
  std::mutex error_mu_;
  std::exception_ptr error_;
  std::atomic<bool> failed_{false};
};

}  // namespace privapprox

#endif  // PRIVAPPROX_COMMON_CHANNEL_H_
