#include "common/rng.h"

#include <cmath>

namespace privapprox {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) {
    s = sm.Next();
  }
  // All-zero state is the one invalid state; SplitMix64 cannot produce four
  // consecutive zeros in practice, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Xoshiro256::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::NextBernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

uint64_t Xoshiro256::NextBounded(uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Xoshiro256::NextInRange(int64_t lo, int64_t hi) {
  if (lo >= hi) {
    return lo;
  }
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Xoshiro256::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; avoid log(0) by shifting u1 away from zero.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Xoshiro256::NextExponential(double lambda) {
  double u = NextDouble();
  if (u >= 1.0) {
    u = std::nextafter(1.0, 0.0);
  }
  return -std::log1p(-u) / lambda;
}

double Xoshiro256::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

void Xoshiro256::Jump() {
  static constexpr uint64_t kJump[] = {0x180EC6D33CFD0ABAULL,
                                       0xD5A61266F0C9392CULL,
                                       0xA9582618E03FC9AAULL,
                                       0x39ABDC4529B1661CULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      Next();
    }
  }
  state_ = {s0, s1, s2, s3};
}

Xoshiro256 Xoshiro256::Split() {
  Xoshiro256 child = *this;
  Jump();
  child.has_cached_gaussian_ = false;
  return child;
}

void FillRandomBytes(Xoshiro256& rng, std::vector<uint8_t>& out) {
  size_t i = 0;
  while (i + 8 <= out.size()) {
    uint64_t word = rng.Next();
    for (int b = 0; b < 8; ++b) {
      out[i++] = static_cast<uint8_t>(word >> (8 * b));
    }
  }
  if (i < out.size()) {
    uint64_t word = rng.Next();
    for (int b = 0; i < out.size(); ++b) {
      out[i++] = static_cast<uint8_t>(word >> (8 * b));
    }
  }
}

}  // namespace privapprox
