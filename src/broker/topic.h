// A pub/sub topic: an append-only, partitioned record log.
//
// This is the Kafka stand-in (see DESIGN.md): PrivApprox proxies are Kafka
// brokers with two topics — `key` and `answer` — carrying the two halves of
// the XOR-split message streams (§5). Records are opaque payloads keyed by
// message id; a key-hash assigns partitions so one MID's shares always land
// in the same partition of each topic.
//
// Storage layout (zero-copy share path): each partition stores payload
// bytes in append-only slabs — large heap chunks that are never moved or
// freed — plus a record index of {payload pointer, length, key, timestamp}
// entries. Producing copies the payload once into the slab; consuming via
// the view API (ReadViews / transport::BusConsumer) returns pointers into the
// slabs, so consumers decode records in place with no per-record vector.
// Slab bytes are immutable once their index entry is published under the
// partition lock, and slabs live as long as the topic, so a RecordView
// stays valid for the topic's lifetime even while producers keep appending.

#ifndef PRIVAPPROX_BROKER_TOPIC_H_
#define PRIVAPPROX_BROKER_TOPIC_H_

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "storage/partition_log.h"

namespace privapprox::broker {

// An owning record copy (legacy read path; tests and offline tools).
struct Record {
  uint64_t offset = 0;
  int64_t timestamp_ms = 0;
  uint64_t key = 0;
  std::vector<uint8_t> payload;
};

// A non-owning view of one stored record: `payload` points into a partition
// slab and is valid for the topic's lifetime.
struct RecordView {
  uint64_t offset = 0;
  int64_t timestamp_ms = 0;
  uint64_t key = 0;
  const uint8_t* payload = nullptr;
  uint32_t payload_len = 0;

  std::span<const uint8_t> bytes() const { return {payload, payload_len}; }
};

// A record to be produced (no offset yet — the topic assigns it on append).
// Batch producers build vectors of these so one lock acquisition per
// partition covers the whole batch.
struct ProduceRecord {
  uint64_t key = 0;
  std::vector<uint8_t> payload;
  int64_t timestamp_ms = 0;
};

// Zero-copy produce: the payload span (typically arena- or slab-backed)
// only needs to stay valid for the duration of the append call — the topic
// copies it into its own slab.
struct ProduceView {
  uint64_t key = 0;
  std::span<const uint8_t> payload;
  int64_t timestamp_ms = 0;
};

// Per-topic counters used by the throughput/network benchmarks.
struct TopicMetrics {
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

// Slab-storage occupancy across all partitions of a topic: how much payload
// memory the topic holds and how full the allocated slabs are. Feeds the
// metrics registry's broker collector.
struct SlabStats {
  uint64_t slabs = 0;
  uint64_t allocated_bytes = 0;
  uint64_t used_bytes = 0;
};

// Opt-in durable spill: every append additionally lands in a
// storage::PartitionLog at <directory>/p<k> for partition k, and the topic
// constructor replays whatever those logs hold back into the in-memory
// slabs — so a recovered topic serves reads and offsets exactly as if the
// process had never died. Absent (the default), the topic is byte-identical
// to the memory-only topic of previous releases.
struct TopicDurability {
  std::filesystem::path directory;
  storage::PartitionLogOptions log;
};

// privapprox_storage_* metric sources, summed over a topic's (or broker's)
// partition logs. All zero for a non-durable topic.
struct DurableStats {
  uint64_t segments = 0;
  uint64_t bytes = 0;
  uint64_t fsyncs = 0;
  uint64_t recovered_records = 0;
  uint64_t truncated_tails = 0;
};

// The partition a key maps to in a topic with `num_partitions` partitions
// (splitmix hash of the key; counts below 1 clamp to 1, matching the Topic
// constructor). Exposed as a free function so transport-side producers can
// compute per-partition record counts without holding the topic object —
// the hash is part of the wire contract between processes.
size_t PartitionForKey(uint64_t key, size_t num_partitions);

class Topic {
 public:
  // Payload slab chunk size. Appends amortize to one heap allocation per
  // chunk of payload bytes; records larger than a chunk get a dedicated
  // slab so payloads are always contiguous.
  static constexpr size_t kSlabChunkBytes = 256 * 1024;

  Topic(std::string name, size_t num_partitions);
  // Durable topic: appends spill through per-partition logs under
  // `durability.directory` and the constructor recovers (replays) whatever
  // a previous incarnation left there. Throws storage::SegmentLogError on
  // unrecoverable on-disk corruption or a directory locked by a live
  // instance.
  Topic(std::string name, size_t num_partitions,
        const TopicDurability& durability);

  const std::string& name() const { return name_; }
  size_t num_partitions() const { return partitions_.size(); }
  bool durable() const { return durable_; }

  // The partition a key maps to (splitmix hash of the key).
  size_t PartitionOf(uint64_t key) const;

  // Appends to the key's partition; returns the assigned offset.
  uint64_t Append(uint64_t key, std::span<const uint8_t> payload,
                  int64_t timestamp_ms);
  uint64_t Append(uint64_t key, const std::vector<uint8_t>& payload,
                  int64_t timestamp_ms) {
    return Append(key, std::span<const uint8_t>(payload), timestamp_ms);
  }

  // Appends a whole batch, grouping records by partition so each partition
  // lock is taken once per batch instead of once per record, with the
  // per-partition index growth reserved up front. Relative order of records
  // mapping to the same partition is preserved, so the resulting log is
  // byte-identical to appending the batch one record at a time.
  void AppendBatch(std::vector<ProduceRecord> records);
  // Zero-copy batch append: same ordering guarantees, payload bytes copied
  // once from the caller's spans into partition slabs.
  void AppendViews(std::span<const ProduceView> records);

  // Pre-commits capacity in `partition`: index slots for `records` more
  // entries and one contiguous slab run of `payload_bytes`. Appends within
  // that budget then perform no heap allocation (allocation regression test
  // and latency-sensitive producers).
  void Reserve(size_t partition, size_t records, size_t payload_bytes);

  // Reads up to `max_records` records from `partition` starting at `offset`,
  // copying payloads (legacy path; tests and offline consumers).
  std::vector<Record> Read(size_t partition, uint64_t offset,
                           size_t max_records) const;
  // Same, appending into a caller-owned buffer (reuses its capacity).
  void ReadInto(size_t partition, uint64_t offset, size_t max_records,
                std::vector<Record>& out) const;
  // Zero-copy read: appends slab-backed views into `out`. Views stay valid
  // for the topic's lifetime.
  void ReadViews(size_t partition, uint64_t offset, size_t max_records,
                 std::vector<RecordView>& out) const;

  // Next offset to be assigned in `partition` (== current log length).
  uint64_t EndOffset(size_t partition) const;

  TopicMetrics metrics() const;

  // Takes each partition lock briefly; intended for collection at exposition
  // time, not the hot path.
  SlabStats slab_stats() const;

  // --- Durable-spill surface (no-ops on a non-durable topic) -------------

  // Retention by consumer low-watermark: deletes whole on-disk segments of
  // `partition` whose records all sit below `offset`. Disk only — the
  // in-memory slabs keep every record, preserving the RecordView lifetime
  // guarantee for live consumers. Returns segments deleted.
  size_t AdvanceWatermark(size_t partition, uint64_t offset);

  // Forces every partition log to disk regardless of fsync policy.
  void SyncDurable();

  // Takes each partition lock briefly (exposition-time collection).
  DurableStats durable_stats() const;

 private:
  struct Slab {
    std::unique_ptr<uint8_t[]> data;
    size_t used = 0;
    size_t cap = 0;
  };
  struct IndexEntry {
    const uint8_t* payload = nullptr;
    uint32_t payload_len = 0;
    int64_t timestamp_ms = 0;
    uint64_t key = 0;
  };
  struct Partition {
    mutable std::mutex mu;
    std::vector<Slab> slabs;
    std::vector<IndexEntry> index;
    // Durable spill; null on a memory-only topic. `base` is the offset of
    // index[0]: fixed at recovery time to the log's base offset (non-zero
    // when earlier segments were retention-trimmed before the restart), so
    // EndOffset == base + index.size() continues the pre-crash numbering.
    std::unique_ptr<storage::PartitionLog> log;
    uint64_t base = 0;
  };

  // All helpers require the partition lock to be held. AppendToMemory is
  // the slab+index half (also the recovery replay path); AppendLocked
  // additionally spills to the partition log when one is attached.
  static uint8_t* SlabAlloc(Partition& partition, size_t len);
  static void EnsureIndexCapacity(Partition& partition, size_t additional);
  static void AppendToMemory(Partition& partition, uint64_t key,
                             std::span<const uint8_t> payload,
                             int64_t timestamp_ms);
  static void AppendLocked(Partition& partition, uint64_t key,
                           std::span<const uint8_t> payload,
                           int64_t timestamp_ms);

  std::string name_;
  bool durable_ = false;
  std::vector<Partition> partitions_;
  // Lock-free counters: metrics updates sit on the hot produce/consume paths
  // and must not serialize parallel workers.
  mutable std::atomic<uint64_t> records_in_{0};
  mutable std::atomic<uint64_t> records_out_{0};
  mutable std::atomic<uint64_t> bytes_in_{0};
  mutable std::atomic<uint64_t> bytes_out_{0};
};

}  // namespace privapprox::broker

#endif  // PRIVAPPROX_BROKER_TOPIC_H_
