// A pub/sub topic: an append-only, partitioned record log.
//
// This is the Kafka stand-in (see DESIGN.md): PrivApprox proxies are Kafka
// brokers with two topics — `key` and `answer` — carrying the two halves of
// the XOR-split message streams (§5). Records are opaque payloads keyed by
// message id; a key-hash assigns partitions so one MID's shares always land
// in the same partition of each topic.

#ifndef PRIVAPPROX_BROKER_TOPIC_H_
#define PRIVAPPROX_BROKER_TOPIC_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace privapprox::broker {

struct Record {
  uint64_t offset = 0;
  int64_t timestamp_ms = 0;
  uint64_t key = 0;
  std::vector<uint8_t> payload;
};

// A record to be produced (no offset yet — the topic assigns it on append).
// Batch producers build vectors of these so one lock acquisition per
// partition covers the whole batch.
struct ProduceRecord {
  uint64_t key = 0;
  std::vector<uint8_t> payload;
  int64_t timestamp_ms = 0;
};

// Per-topic counters used by the throughput/network benchmarks.
struct TopicMetrics {
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

class Topic {
 public:
  Topic(std::string name, size_t num_partitions);

  const std::string& name() const { return name_; }
  size_t num_partitions() const { return partitions_.size(); }

  // The partition a key maps to (splitmix hash of the key).
  size_t PartitionOf(uint64_t key) const;

  // Appends to the key's partition; returns the assigned offset.
  uint64_t Append(uint64_t key, std::vector<uint8_t> payload,
                  int64_t timestamp_ms);

  // Appends a whole batch, grouping records by partition so each partition
  // lock is taken once per batch instead of once per record. Relative order
  // of records mapping to the same partition is preserved, so the resulting
  // log is byte-identical to appending the batch one record at a time.
  void AppendBatch(std::vector<ProduceRecord> records);

  // Reads up to `max_records` records from `partition` starting at `offset`.
  std::vector<Record> Read(size_t partition, uint64_t offset,
                           size_t max_records) const;

  // Next offset to be assigned in `partition` (== current log length).
  uint64_t EndOffset(size_t partition) const;

  TopicMetrics metrics() const;

 private:
  struct Partition {
    mutable std::mutex mu;
    std::vector<Record> log;
  };

  std::string name_;
  std::vector<Partition> partitions_;
  // Lock-free counters: metrics updates sit on the hot produce/consume paths
  // and must not serialize parallel workers.
  mutable std::atomic<uint64_t> records_in_{0};
  mutable std::atomic<uint64_t> records_out_{0};
  mutable std::atomic<uint64_t> bytes_in_{0};
  mutable std::atomic<uint64_t> bytes_out_{0};
};

}  // namespace privapprox::broker

#endif  // PRIVAPPROX_BROKER_TOPIC_H_
