#include "broker/topic.h"

#include <stdexcept>

namespace privapprox::broker {
namespace {

uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Topic::Topic(std::string name, size_t num_partitions)
    : name_(std::move(name)), partitions_(std::max<size_t>(1, num_partitions)) {
  if (name_.empty()) {
    throw std::invalid_argument("Topic: empty name");
  }
}

size_t Topic::PartitionOf(uint64_t key) const {
  return static_cast<size_t>(Mix64(key) % partitions_.size());
}

uint64_t Topic::Append(uint64_t key, std::vector<uint8_t> payload,
                       int64_t timestamp_ms) {
  const size_t bytes = payload.size();
  Partition& partition = partitions_[PartitionOf(key)];
  uint64_t offset;
  {
    std::lock_guard<std::mutex> lock(partition.mu);
    offset = partition.log.size();
    partition.log.push_back(
        Record{offset, timestamp_ms, key, std::move(payload)});
  }
  records_in_.fetch_add(1, std::memory_order_relaxed);
  bytes_in_.fetch_add(bytes, std::memory_order_relaxed);
  return offset;
}

void Topic::AppendBatch(std::vector<ProduceRecord> records) {
  if (records.empty()) {
    return;
  }
  uint64_t bytes = 0;
  for (const auto& record : records) {
    bytes += record.payload.size();
  }
  const uint64_t count = records.size();
  if (partitions_.size() == 1) {
    Partition& partition = partitions_[0];
    std::lock_guard<std::mutex> lock(partition.mu);
    for (auto& record : records) {
      const uint64_t offset = partition.log.size();
      partition.log.push_back(Record{offset, record.timestamp_ms, record.key,
                                     std::move(record.payload)});
    }
  } else {
    std::vector<std::vector<size_t>> by_partition(partitions_.size());
    for (size_t i = 0; i < records.size(); ++i) {
      by_partition[PartitionOf(records[i].key)].push_back(i);
    }
    for (size_t p = 0; p < partitions_.size(); ++p) {
      if (by_partition[p].empty()) {
        continue;
      }
      Partition& partition = partitions_[p];
      std::lock_guard<std::mutex> lock(partition.mu);
      for (size_t i : by_partition[p]) {
        auto& record = records[i];
        const uint64_t offset = partition.log.size();
        partition.log.push_back(Record{offset, record.timestamp_ms,
                                       record.key, std::move(record.payload)});
      }
    }
  }
  records_in_.fetch_add(count, std::memory_order_relaxed);
  bytes_in_.fetch_add(bytes, std::memory_order_relaxed);
}

std::vector<Record> Topic::Read(size_t partition_index, uint64_t offset,
                                size_t max_records) const {
  if (partition_index >= partitions_.size()) {
    throw std::out_of_range("Topic::Read: bad partition");
  }
  const Partition& partition = partitions_[partition_index];
  std::vector<Record> out;
  size_t bytes = 0;
  {
    std::lock_guard<std::mutex> lock(partition.mu);
    const uint64_t end = partition.log.size();
    for (uint64_t i = offset; i < end && out.size() < max_records; ++i) {
      out.push_back(partition.log[static_cast<size_t>(i)]);
      bytes += out.back().payload.size();
    }
  }
  records_out_.fetch_add(out.size(), std::memory_order_relaxed);
  bytes_out_.fetch_add(bytes, std::memory_order_relaxed);
  return out;
}

uint64_t Topic::EndOffset(size_t partition_index) const {
  if (partition_index >= partitions_.size()) {
    throw std::out_of_range("Topic::EndOffset: bad partition");
  }
  const Partition& partition = partitions_[partition_index];
  std::lock_guard<std::mutex> lock(partition.mu);
  return partition.log.size();
}

TopicMetrics Topic::metrics() const {
  TopicMetrics metrics;
  metrics.records_in = records_in_.load(std::memory_order_relaxed);
  metrics.records_out = records_out_.load(std::memory_order_relaxed);
  metrics.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  metrics.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return metrics;
}

}  // namespace privapprox::broker
