#include "broker/topic.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace privapprox::broker {
namespace {

uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

size_t PartitionForKey(uint64_t key, size_t num_partitions) {
  return static_cast<size_t>(Mix64(key) % std::max<size_t>(1, num_partitions));
}

Topic::Topic(std::string name, size_t num_partitions)
    : name_(std::move(name)), partitions_(std::max<size_t>(1, num_partitions)) {
  if (name_.empty()) {
    throw std::invalid_argument("Topic: empty name");
  }
}

Topic::Topic(std::string name, size_t num_partitions,
             const TopicDurability& durability)
    : Topic(std::move(name), num_partitions) {
  durable_ = true;
  for (size_t p = 0; p < partitions_.size(); ++p) {
    Partition& partition = partitions_[p];
    partition.log = std::make_unique<storage::PartitionLog>(
        durability.directory / ("p" + std::to_string(p)), durability.log);
    partition.base = partition.log->base_offset();
    // Recovery replay: rebuild the in-memory slabs/index from disk. No lock
    // needed — the topic is not yet published. Replay goes through the
    // memory-only append so records are not re-spilled.
    partition.log->Replay([&partition](uint64_t /*offset*/, uint64_t key,
                                       int64_t timestamp_ms,
                                       std::span<const uint8_t> payload) {
      AppendToMemory(partition, key, payload, timestamp_ms);
    });
    // Replayed records are not re-counted in records_in_ — that counter
    // means "produced into this incarnation"; recovery volume is surfaced
    // separately via durable_stats().recovered_records.
  }
}

size_t Topic::PartitionOf(uint64_t key) const {
  return static_cast<size_t>(Mix64(key) % partitions_.size());
}

uint8_t* Topic::SlabAlloc(Partition& partition, size_t len) {
  if (partition.slabs.empty() ||
      partition.slabs.back().cap - partition.slabs.back().used < len) {
    const size_t cap = len > kSlabChunkBytes ? len : kSlabChunkBytes;
    partition.slabs.push_back(
        Slab{std::make_unique<uint8_t[]>(cap), 0, cap});
  }
  Slab& slab = partition.slabs.back();
  uint8_t* out = slab.data.get() + slab.used;
  slab.used += len;
  return out;
}

void Topic::EnsureIndexCapacity(Partition& partition, size_t additional) {
  const size_t needed = partition.index.size() + additional;
  if (partition.index.capacity() < needed) {
    // Grow geometrically even through explicit reserves — reserving exactly
    // `needed` every batch would reallocate the index once per batch.
    partition.index.reserve(
        std::max(needed, partition.index.capacity() * 2));
  }
}

void Topic::AppendToMemory(Partition& partition, uint64_t key,
                           std::span<const uint8_t> payload,
                           int64_t timestamp_ms) {
  uint8_t* dst = SlabAlloc(partition, payload.size());
  if (!payload.empty()) {
    std::memcpy(dst, payload.data(), payload.size());
  }
  partition.index.push_back(IndexEntry{
      dst, static_cast<uint32_t>(payload.size()), timestamp_ms, key});
}

void Topic::AppendLocked(Partition& partition, uint64_t key,
                         std::span<const uint8_t> payload,
                         int64_t timestamp_ms) {
  AppendToMemory(partition, key, payload, timestamp_ms);
  if (partition.log != nullptr) {
    // Disk stays in lockstep with memory: the log's end offset equals
    // base + index.size() by construction (replay filled exactly
    // [base, end), and every append lands in both under this lock).
    partition.log->Append(key, timestamp_ms, payload);
  }
}

uint64_t Topic::Append(uint64_t key, std::span<const uint8_t> payload,
                       int64_t timestamp_ms) {
  Partition& partition = partitions_[PartitionOf(key)];
  uint64_t offset;
  {
    std::lock_guard<std::mutex> lock(partition.mu);
    offset = partition.base + partition.index.size();
    AppendLocked(partition, key, payload, timestamp_ms);
  }
  records_in_.fetch_add(1, std::memory_order_relaxed);
  bytes_in_.fetch_add(payload.size(), std::memory_order_relaxed);
  return offset;
}

void Topic::AppendBatch(std::vector<ProduceRecord> records) {
  if (records.empty()) {
    return;
  }
  uint64_t bytes = 0;
  for (const auto& record : records) {
    bytes += record.payload.size();
  }
  if (partitions_.size() == 1) {
    Partition& partition = partitions_[0];
    std::lock_guard<std::mutex> lock(partition.mu);
    EnsureIndexCapacity(partition, records.size());
    for (const auto& record : records) {
      AppendLocked(partition, record.key, record.payload,
                   record.timestamp_ms);
    }
  } else {
    std::vector<std::vector<size_t>> by_partition(partitions_.size());
    for (size_t i = 0; i < records.size(); ++i) {
      by_partition[PartitionOf(records[i].key)].push_back(i);
    }
    for (size_t p = 0; p < partitions_.size(); ++p) {
      if (by_partition[p].empty()) {
        continue;
      }
      Partition& partition = partitions_[p];
      std::lock_guard<std::mutex> lock(partition.mu);
      EnsureIndexCapacity(partition, by_partition[p].size());
      for (size_t i : by_partition[p]) {
        AppendLocked(partition, records[i].key, records[i].payload,
                     records[i].timestamp_ms);
      }
    }
  }
  records_in_.fetch_add(records.size(), std::memory_order_relaxed);
  bytes_in_.fetch_add(bytes, std::memory_order_relaxed);
}

void Topic::AppendViews(std::span<const ProduceView> records) {
  if (records.empty()) {
    return;
  }
  uint64_t bytes = 0;
  for (const auto& record : records) {
    bytes += record.payload.size();
  }
  if (partitions_.size() == 1) {
    Partition& partition = partitions_[0];
    std::lock_guard<std::mutex> lock(partition.mu);
    EnsureIndexCapacity(partition, records.size());
    for (const auto& record : records) {
      AppendLocked(partition, record.key, record.payload,
                   record.timestamp_ms);
    }
  } else {
    // Route once into a reused thread-local scratch (amortized
    // allocation-free), then take each partition lock once. Partition count
    // is bounded by the scratch element type.
    static thread_local std::vector<uint8_t> routes;
    static thread_local std::vector<uint32_t> counts;
    routes.clear();
    routes.reserve(records.size());
    counts.assign(partitions_.size(), 0);
    for (const auto& record : records) {
      const uint8_t p = static_cast<uint8_t>(PartitionOf(record.key));
      routes.push_back(p);
      ++counts[p];
    }
    for (size_t p = 0; p < partitions_.size(); ++p) {
      if (counts[p] == 0) {
        continue;
      }
      Partition& partition = partitions_[p];
      std::lock_guard<std::mutex> lock(partition.mu);
      EnsureIndexCapacity(partition, counts[p]);
      for (size_t i = 0; i < records.size(); ++i) {
        if (routes[i] == p) {
          AppendLocked(partition, records[i].key, records[i].payload,
                       records[i].timestamp_ms);
        }
      }
    }
  }
  records_in_.fetch_add(records.size(), std::memory_order_relaxed);
  bytes_in_.fetch_add(bytes, std::memory_order_relaxed);
}

void Topic::Reserve(size_t partition_index, size_t records,
                    size_t payload_bytes) {
  if (partition_index >= partitions_.size()) {
    throw std::out_of_range("Topic::Reserve: bad partition");
  }
  Partition& partition = partitions_[partition_index];
  std::lock_guard<std::mutex> lock(partition.mu);
  EnsureIndexCapacity(partition, records);
  if (payload_bytes > 0 &&
      (partition.slabs.empty() ||
       partition.slabs.back().cap - partition.slabs.back().used <
           payload_bytes)) {
    const size_t cap =
        payload_bytes > kSlabChunkBytes ? payload_bytes : kSlabChunkBytes;
    partition.slabs.push_back(Slab{std::make_unique<uint8_t[]>(cap), 0, cap});
  }
}

std::vector<Record> Topic::Read(size_t partition_index, uint64_t offset,
                                size_t max_records) const {
  std::vector<Record> out;
  ReadInto(partition_index, offset, max_records, out);
  return out;
}

void Topic::ReadInto(size_t partition_index, uint64_t offset,
                     size_t max_records, std::vector<Record>& out) const {
  if (partition_index >= partitions_.size()) {
    throw std::out_of_range("Topic::Read: bad partition");
  }
  const Partition& partition = partitions_[partition_index];
  size_t count = 0;
  size_t bytes = 0;
  {
    std::lock_guard<std::mutex> lock(partition.mu);
    const uint64_t end = partition.base + partition.index.size();
    for (uint64_t i = std::max(offset, partition.base);
         i < end && count < max_records; ++i, ++count) {
      const IndexEntry& entry =
          partition.index[static_cast<size_t>(i - partition.base)];
      out.push_back(Record{
          i, entry.timestamp_ms, entry.key,
          std::vector<uint8_t>(entry.payload,
                               entry.payload + entry.payload_len)});
      bytes += entry.payload_len;
    }
  }
  records_out_.fetch_add(count, std::memory_order_relaxed);
  bytes_out_.fetch_add(bytes, std::memory_order_relaxed);
}

void Topic::ReadViews(size_t partition_index, uint64_t offset,
                      size_t max_records, std::vector<RecordView>& out) const {
  if (partition_index >= partitions_.size()) {
    throw std::out_of_range("Topic::ReadViews: bad partition");
  }
  const Partition& partition = partitions_[partition_index];
  size_t count = 0;
  size_t bytes = 0;
  {
    std::lock_guard<std::mutex> lock(partition.mu);
    const uint64_t end = partition.base + partition.index.size();
    for (uint64_t i = std::max(offset, partition.base);
         i < end && count < max_records; ++i, ++count) {
      const IndexEntry& entry =
          partition.index[static_cast<size_t>(i - partition.base)];
      out.push_back(RecordView{i, entry.timestamp_ms, entry.key,
                               entry.payload, entry.payload_len});
      bytes += entry.payload_len;
    }
  }
  records_out_.fetch_add(count, std::memory_order_relaxed);
  bytes_out_.fetch_add(bytes, std::memory_order_relaxed);
}

uint64_t Topic::EndOffset(size_t partition_index) const {
  if (partition_index >= partitions_.size()) {
    throw std::out_of_range("Topic::EndOffset: bad partition");
  }
  const Partition& partition = partitions_[partition_index];
  std::lock_guard<std::mutex> lock(partition.mu);
  return partition.base + partition.index.size();
}

size_t Topic::AdvanceWatermark(size_t partition_index, uint64_t offset) {
  if (partition_index >= partitions_.size()) {
    throw std::out_of_range("Topic::AdvanceWatermark: bad partition");
  }
  Partition& partition = partitions_[partition_index];
  std::lock_guard<std::mutex> lock(partition.mu);
  if (partition.log == nullptr) {
    return 0;
  }
  // Never trim past what exists — a watermark from a confused consumer must
  // not delete the active segment's future.
  const uint64_t end = partition.base + partition.index.size();
  return partition.log->TrimBelow(std::min(offset, end));
}

void Topic::SyncDurable() {
  for (Partition& partition : partitions_) {
    std::lock_guard<std::mutex> lock(partition.mu);
    if (partition.log != nullptr) {
      partition.log->Sync();
    }
  }
}

DurableStats Topic::durable_stats() const {
  DurableStats stats;
  for (const Partition& partition : partitions_) {
    std::lock_guard<std::mutex> lock(partition.mu);
    if (partition.log == nullptr) {
      continue;
    }
    const storage::PartitionLogStats log_stats = partition.log->stats();
    stats.segments += log_stats.segments;
    stats.bytes += log_stats.bytes;
    stats.fsyncs += log_stats.fsyncs;
    stats.recovered_records += log_stats.recovered_records;
    stats.truncated_tails += log_stats.truncated_tails;
  }
  return stats;
}

TopicMetrics Topic::metrics() const {
  TopicMetrics metrics;
  metrics.records_in = records_in_.load(std::memory_order_relaxed);
  metrics.records_out = records_out_.load(std::memory_order_relaxed);
  metrics.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  metrics.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return metrics;
}

SlabStats Topic::slab_stats() const {
  SlabStats stats;
  for (const Partition& partition : partitions_) {
    std::lock_guard<std::mutex> lock(partition.mu);
    stats.slabs += partition.slabs.size();
    for (const Slab& slab : partition.slabs) {
      stats.allocated_bytes += slab.cap;
      stats.used_bytes += slab.used;
    }
  }
  return stats;
}

}  // namespace privapprox::broker
