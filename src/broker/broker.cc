#include "broker/broker.h"

#include <stdexcept>

namespace privapprox::broker {

Topic& Broker::CreateTopic(const std::string& name, size_t num_partitions) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      topics_.emplace(name, std::make_unique<Topic>(name, num_partitions));
  if (!inserted) {
    throw std::invalid_argument("Broker::CreateTopic: topic '" + name +
                                "' already exists");
  }
  return *it->second;
}

Topic& Broker::EnsureTopic(const std::string& name, size_t num_partitions) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = topics_.find(name);
  if (it != topics_.end()) {
    if (it->second->num_partitions() != num_partitions) {
      throw std::invalid_argument(
          "Broker::EnsureTopic: topic '" + name +
          "' exists with a different partition count");
    }
    return *it->second;
  }
  return *topics_.emplace(name, std::make_unique<Topic>(name, num_partitions))
              .first->second;
}

bool Broker::HasTopic(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return topics_.contains(name);
}

Topic& Broker::GetTopic(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = topics_.find(name);
  if (it == topics_.end()) {
    throw std::invalid_argument("Broker::GetTopic: no topic '" + name + "'");
  }
  return *it->second;
}

const Topic& Broker::GetTopic(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = topics_.find(name);
  if (it == topics_.end()) {
    throw std::invalid_argument("Broker::GetTopic: no topic '" + name + "'");
  }
  return *it->second;
}

void Broker::Produce(const std::string& topic, uint64_t key,
                     std::vector<uint8_t> payload, int64_t timestamp_ms) {
  GetTopic(topic).Append(key, std::move(payload), timestamp_ms);
}

void Broker::ProduceBatch(const std::string& topic,
                          std::vector<ProduceRecord> records) {
  GetTopic(topic).AppendBatch(std::move(records));
}

void Broker::ProduceViews(const std::string& topic,
                          std::span<const ProduceView> records) {
  GetTopic(topic).AppendViews(records);
}

std::vector<std::string> Broker::TopicNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(topics_.size());
  for (const auto& [name, topic] : topics_) {
    names.push_back(name);
  }
  return names;
}

Consumer::Consumer(Topic& topic)
    : topic_(topic), offsets_(topic.num_partitions(), 0) {}

std::vector<Record> Consumer::Poll(size_t max_records) {
  std::vector<Record> out;
  for (size_t p = 0; p < offsets_.size() && out.size() < max_records; ++p) {
    // ReadInto appends straight into `out` — no per-partition staging
    // vector and no Record moves.
    const size_t before = out.size();
    topic_.ReadInto(p, offsets_[p], max_records - out.size(), out);
    const size_t pulled = out.size() - before;
    offsets_[p] += pulled;
    consumed_ += pulled;
  }
  return out;
}

size_t Consumer::PollViews(size_t max_records, std::vector<RecordView>& out) {
  const size_t start = out.size();
  for (size_t p = 0; p < offsets_.size() && out.size() - start < max_records;
       ++p) {
    const size_t before = out.size();
    topic_.ReadViews(p, offsets_[p], max_records - (out.size() - start), out);
    const size_t pulled = out.size() - before;
    offsets_[p] += pulled;
    consumed_ += pulled;
  }
  return out.size() - start;
}

std::vector<Record> Consumer::PollPartitions(
    const std::vector<uint32_t>& counts) {
  if (counts.size() != offsets_.size()) {
    throw std::invalid_argument(
        "Consumer::PollPartitions: partition count mismatch");
  }
  size_t total = 0;
  for (uint32_t count : counts) {
    total += count;
  }
  std::vector<Record> out;
  out.reserve(total);
  for (size_t p = 0; p < offsets_.size(); ++p) {
    if (counts[p] == 0) {
      continue;
    }
    std::vector<Record> batch = topic_.Read(p, offsets_[p], counts[p]);
    if (batch.size() != counts[p]) {
      throw std::logic_error(
          "Consumer::PollPartitions: promised records not available");
    }
    offsets_[p] += batch.size();
    consumed_ += batch.size();
    for (auto& record : batch) {
      out.push_back(std::move(record));
    }
  }
  return out;
}

size_t Consumer::PollPartitionsViews(const std::vector<uint32_t>& counts,
                                     std::vector<RecordView>& out) {
  if (counts.size() != offsets_.size()) {
    throw std::invalid_argument(
        "Consumer::PollPartitions: partition count mismatch");
  }
  const size_t start = out.size();
  for (size_t p = 0; p < offsets_.size(); ++p) {
    if (counts[p] == 0) {
      continue;
    }
    const size_t before = out.size();
    topic_.ReadViews(p, offsets_[p], counts[p], out);
    const size_t pulled = out.size() - before;
    if (pulled != counts[p]) {
      throw std::logic_error(
          "Consumer::PollPartitions: promised records not available");
    }
    offsets_[p] += pulled;
    consumed_ += pulled;
  }
  return out.size() - start;
}

bool Consumer::CaughtUp() const {
  for (size_t p = 0; p < offsets_.size(); ++p) {
    if (offsets_[p] < topic_.EndOffset(p)) {
      return false;
    }
  }
  return true;
}

}  // namespace privapprox::broker
