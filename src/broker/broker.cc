#include "broker/broker.h"

#include <algorithm>
#include <stdexcept>

namespace privapprox::broker {

void Broker::EnableDurability(BrokerDurability durability) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!topics_.empty()) {
    throw std::logic_error(
        "Broker::EnableDurability: topics already exist — enable durability "
        "before creating any");
  }
  durability_ = std::move(durability);
}

bool Broker::durable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durability_.has_value();
}

std::unique_ptr<Topic> Broker::MakeTopic(const std::string& name,
                                         size_t num_partitions) const {
  if (!durability_.has_value()) {
    return std::make_unique<Topic>(name, num_partitions);
  }
  return std::make_unique<Topic>(
      name, num_partitions,
      TopicDurability{durability_->data_dir / name, durability_->log});
}

std::vector<std::string> Broker::RecoverTopics() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!durability_.has_value()) {
    throw std::logic_error("Broker::RecoverTopics: durability not enabled");
  }
  std::vector<std::string> recovered;
  std::error_code ec;
  std::filesystem::directory_iterator dir(durability_->data_dir, ec);
  if (ec) {
    return recovered;  // fresh data_dir: nothing to recover
  }
  for (const auto& entry : dir) {
    if (!entry.is_directory()) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    if (topics_.contains(name)) {
      continue;
    }
    // Partition count = number of p<k> subdirectories. A topic directory
    // with none is not a topic (ignore it).
    size_t num_partitions = 0;
    while (std::filesystem::is_directory(
        entry.path() / ("p" + std::to_string(num_partitions)))) {
      ++num_partitions;
    }
    if (num_partitions == 0) {
      continue;
    }
    topics_.emplace(name, MakeTopic(name, num_partitions));
    recovered.push_back(name);
  }
  std::sort(recovered.begin(), recovered.end());
  return recovered;
}

DurableStats Broker::durable_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DurableStats stats;
  for (const auto& [name, topic] : topics_) {
    const DurableStats topic_stats = topic->durable_stats();
    stats.segments += topic_stats.segments;
    stats.bytes += topic_stats.bytes;
    stats.fsyncs += topic_stats.fsyncs;
    stats.recovered_records += topic_stats.recovered_records;
    stats.truncated_tails += topic_stats.truncated_tails;
  }
  return stats;
}

Topic& Broker::CreateTopic(const std::string& name, size_t num_partitions) {
  std::lock_guard<std::mutex> lock(mu_);
  if (topics_.contains(name)) {
    throw std::invalid_argument("Broker::CreateTopic: topic '" + name +
                                "' already exists");
  }
  return *topics_.emplace(name, MakeTopic(name, num_partitions))
              .first->second;
}

Topic& Broker::EnsureTopic(const std::string& name, size_t num_partitions) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = topics_.find(name);
  if (it != topics_.end()) {
    if (it->second->num_partitions() != num_partitions) {
      throw std::invalid_argument(
          "Broker::EnsureTopic: topic '" + name +
          "' exists with a different partition count");
    }
    return *it->second;
  }
  return *topics_.emplace(name, MakeTopic(name, num_partitions))
              .first->second;
}

bool Broker::HasTopic(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return topics_.contains(name);
}

Topic& Broker::GetTopic(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = topics_.find(name);
  if (it == topics_.end()) {
    throw std::invalid_argument("Broker::GetTopic: no topic '" + name + "'");
  }
  return *it->second;
}

const Topic& Broker::GetTopic(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = topics_.find(name);
  if (it == topics_.end()) {
    throw std::invalid_argument("Broker::GetTopic: no topic '" + name + "'");
  }
  return *it->second;
}

void Broker::Produce(const std::string& topic, uint64_t key,
                     std::vector<uint8_t> payload, int64_t timestamp_ms) {
  GetTopic(topic).Append(key, std::move(payload), timestamp_ms);
}

std::vector<std::string> Broker::TopicNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(topics_.size());
  for (const auto& [name, topic] : topics_) {
    names.push_back(name);
  }
  return names;
}

Consumer::Consumer(Topic& topic)
    : topic_(topic), offsets_(topic.num_partitions(), 0) {}

std::vector<Record> Consumer::Poll(size_t max_records) {
  std::vector<Record> out;
  for (size_t p = 0; p < offsets_.size() && out.size() < max_records; ++p) {
    // ReadInto appends straight into `out` — no per-partition staging
    // vector and no Record moves.
    const size_t before = out.size();
    topic_.ReadInto(p, offsets_[p], max_records - out.size(), out);
    const size_t pulled = out.size() - before;
    offsets_[p] += pulled;
    consumed_ += pulled;
  }
  return out;
}

bool Consumer::CaughtUp() const {
  for (size_t p = 0; p < offsets_.size(); ++p) {
    if (offsets_[p] < topic_.EndOffset(p)) {
      return false;
    }
  }
  return true;
}

}  // namespace privapprox::broker
