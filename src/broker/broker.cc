#include "broker/broker.h"

#include <stdexcept>

namespace privapprox::broker {

Topic& Broker::CreateTopic(const std::string& name, size_t num_partitions) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      topics_.emplace(name, std::make_unique<Topic>(name, num_partitions));
  if (!inserted) {
    throw std::invalid_argument("Broker::CreateTopic: topic '" + name +
                                "' already exists");
  }
  return *it->second;
}

Topic& Broker::EnsureTopic(const std::string& name, size_t num_partitions) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = topics_.find(name);
  if (it != topics_.end()) {
    if (it->second->num_partitions() != num_partitions) {
      throw std::invalid_argument(
          "Broker::EnsureTopic: topic '" + name +
          "' exists with a different partition count");
    }
    return *it->second;
  }
  return *topics_.emplace(name, std::make_unique<Topic>(name, num_partitions))
              .first->second;
}

bool Broker::HasTopic(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return topics_.contains(name);
}

Topic& Broker::GetTopic(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = topics_.find(name);
  if (it == topics_.end()) {
    throw std::invalid_argument("Broker::GetTopic: no topic '" + name + "'");
  }
  return *it->second;
}

const Topic& Broker::GetTopic(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = topics_.find(name);
  if (it == topics_.end()) {
    throw std::invalid_argument("Broker::GetTopic: no topic '" + name + "'");
  }
  return *it->second;
}

void Broker::Produce(const std::string& topic, uint64_t key,
                     std::vector<uint8_t> payload, int64_t timestamp_ms) {
  GetTopic(topic).Append(key, std::move(payload), timestamp_ms);
}

std::vector<std::string> Broker::TopicNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(topics_.size());
  for (const auto& [name, topic] : topics_) {
    names.push_back(name);
  }
  return names;
}

Consumer::Consumer(Topic& topic)
    : topic_(topic), offsets_(topic.num_partitions(), 0) {}

std::vector<Record> Consumer::Poll(size_t max_records) {
  std::vector<Record> out;
  for (size_t p = 0; p < offsets_.size() && out.size() < max_records; ++p) {
    // ReadInto appends straight into `out` — no per-partition staging
    // vector and no Record moves.
    const size_t before = out.size();
    topic_.ReadInto(p, offsets_[p], max_records - out.size(), out);
    const size_t pulled = out.size() - before;
    offsets_[p] += pulled;
    consumed_ += pulled;
  }
  return out;
}

bool Consumer::CaughtUp() const {
  for (size_t p = 0; p < offsets_.size(); ++p) {
    if (offsets_[p] < topic_.EndOffset(p)) {
      return false;
    }
  }
  return true;
}

}  // namespace privapprox::broker
