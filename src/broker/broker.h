// The broker: topic management plus producer/consumer facades. Consumers
// track per-partition offsets, so independent consumer groups (e.g. the
// aggregator's join stage and the historical-analytics sink) can read the
// same streams at their own pace.

#ifndef PRIVAPPROX_BROKER_BROKER_H_
#define PRIVAPPROX_BROKER_BROKER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "broker/topic.h"

namespace privapprox::broker {

class Broker {
 public:
  // Creates a topic; throws if it exists.
  Topic& CreateTopic(const std::string& name, size_t num_partitions);

  bool HasTopic(const std::string& name) const;
  Topic& GetTopic(const std::string& name);
  const Topic& GetTopic(const std::string& name) const;

  // Produce one record to a topic.
  void Produce(const std::string& topic, uint64_t key,
               std::vector<uint8_t> payload, int64_t timestamp_ms);

  // Produce a batch in one call: one topic lookup and one lock acquisition
  // per touched partition (see Topic::AppendBatch).
  void ProduceBatch(const std::string& topic,
                    std::vector<ProduceRecord> records);

  std::vector<std::string> TopicNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Topic>> topics_;
};

// A polling consumer over one topic, reading all partitions round-robin and
// remembering its offsets.
class Consumer {
 public:
  explicit Consumer(Topic& topic);

  // Pulls up to `max_records` available records across partitions.
  std::vector<Record> Poll(size_t max_records);

  // Pulls exactly `counts[p]` records from each partition p, in partition
  // order. The streaming epoch pipeline uses this to consume precisely one
  // forwarded shard batch: the producer reports how many records it
  // appended per partition, so the read is deterministic even while later
  // batches are being appended concurrently. Throws std::invalid_argument
  // on a partition-count mismatch and std::logic_error if a partition does
  // not (yet) hold the promised records — callers must only request counts
  // that were appended before the call.
  std::vector<Record> PollPartitions(const std::vector<uint32_t>& counts);

  // Total records consumed so far.
  uint64_t consumed() const { return consumed_; }

  // True when the consumer has caught up with every partition.
  bool CaughtUp() const;

 private:
  Topic& topic_;
  std::vector<uint64_t> offsets_;
  uint64_t consumed_ = 0;
};

}  // namespace privapprox::broker

#endif  // PRIVAPPROX_BROKER_BROKER_H_
