// The broker: topic management. Producing and consuming go through the
// span-first transport::MessageBus contract (transport/message_bus.h) —
// InProcessBus wraps a Broker directly; TcpBusClient reaches one in another
// process. The produce/poll method families that used to live here
// (owning, batched, and view-based triplets) collapsed into that single
// contract; what remains below are the topic registry and two thin owning
// adapters kept for one release.

#ifndef PRIVAPPROX_BROKER_BROKER_H_
#define PRIVAPPROX_BROKER_BROKER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "broker/topic.h"

namespace privapprox::broker {

class Broker {
 public:
  // Creates a topic; throws if it exists.
  Topic& CreateTopic(const std::string& name, size_t num_partitions);

  // Returns the topic, creating it if absent. An existing topic must have
  // the same partition count (std::invalid_argument otherwise). Used where
  // two producers legitimately share one topic — a standby proxy routes
  // into its primary's outbound topic so the aggregator's n-source join is
  // untouched by failover.
  Topic& EnsureTopic(const std::string& name, size_t num_partitions);

  bool HasTopic(const std::string& name) const;
  Topic& GetTopic(const std::string& name);
  const Topic& GetTopic(const std::string& name) const;

  // DEPRECATED one-release adapter: produce one owning record. New code
  // produces through transport::MessageBus::Produce (span-first, batched).
  void Produce(const std::string& topic, uint64_t key,
               std::vector<uint8_t> payload, int64_t timestamp_ms);

  std::vector<std::string> TopicNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Topic>> topics_;
};

// DEPRECATED one-release adapter: an owning polling consumer over one
// topic, reading all partitions round-robin and remembering its offsets.
// New code consumes through transport::BusConsumer, whose view-based
// PollInto/PollExactInto replace the copy- and view-poll families that
// previously lived here.
class Consumer {
 public:
  explicit Consumer(Topic& topic);

  // Pulls up to `max_records` available records across partitions, copying
  // payloads.
  std::vector<Record> Poll(size_t max_records);

  // Total records consumed so far.
  uint64_t consumed() const { return consumed_; }

  // True when the consumer has caught up with every partition.
  bool CaughtUp() const;

 private:
  Topic& topic_;
  std::vector<uint64_t> offsets_;
  uint64_t consumed_ = 0;
};

}  // namespace privapprox::broker

#endif  // PRIVAPPROX_BROKER_BROKER_H_
