// The broker: topic management plus producer/consumer facades. Consumers
// track per-partition offsets, so independent consumer groups (e.g. the
// aggregator's join stage and the historical-analytics sink) can read the
// same streams at their own pace.

#ifndef PRIVAPPROX_BROKER_BROKER_H_
#define PRIVAPPROX_BROKER_BROKER_H_

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "broker/topic.h"

namespace privapprox::broker {

class Broker {
 public:
  // Creates a topic; throws if it exists.
  Topic& CreateTopic(const std::string& name, size_t num_partitions);

  // Returns the topic, creating it if absent. An existing topic must have
  // the same partition count (std::invalid_argument otherwise). Used where
  // two producers legitimately share one topic — a standby proxy routes
  // into its primary's outbound topic so the aggregator's n-source join is
  // untouched by failover.
  Topic& EnsureTopic(const std::string& name, size_t num_partitions);

  bool HasTopic(const std::string& name) const;
  Topic& GetTopic(const std::string& name);
  const Topic& GetTopic(const std::string& name) const;

  // Produce one record to a topic.
  void Produce(const std::string& topic, uint64_t key,
               std::vector<uint8_t> payload, int64_t timestamp_ms);

  // Produce a batch in one call: one topic lookup and one lock acquisition
  // per touched partition (see Topic::AppendBatch).
  void ProduceBatch(const std::string& topic,
                    std::vector<ProduceRecord> records);
  // Zero-copy batch produce (see Topic::AppendViews). Spans only need to
  // stay valid for the duration of the call.
  void ProduceViews(const std::string& topic,
                    std::span<const ProduceView> records);

  std::vector<std::string> TopicNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Topic>> topics_;
};

// A polling consumer over one topic, reading all partitions round-robin and
// remembering its offsets.
class Consumer {
 public:
  explicit Consumer(Topic& topic);

  // Pulls up to `max_records` available records across partitions.
  std::vector<Record> Poll(size_t max_records);
  // Zero-copy poll: appends slab-backed views into `out` (capacity is
  // reused across calls) and returns the number of records pulled. Views
  // stay valid for the topic's lifetime.
  size_t PollViews(size_t max_records, std::vector<RecordView>& out);

  // Pulls exactly `counts[p]` records from each partition p, in partition
  // order. The streaming epoch pipeline uses this to consume precisely one
  // forwarded shard batch: the producer reports how many records it
  // appended per partition, so the read is deterministic even while later
  // batches are being appended concurrently. Throws std::invalid_argument
  // on a partition-count mismatch and std::logic_error if a partition does
  // not (yet) hold the promised records — callers must only request counts
  // that were appended before the call.
  std::vector<Record> PollPartitions(const std::vector<uint32_t>& counts);
  // Zero-copy variant of PollPartitions: same promised-count semantics and
  // exceptions, appending views into `out` instead of copying payloads.
  // Returns the number of records pulled.
  size_t PollPartitionsViews(const std::vector<uint32_t>& counts,
                             std::vector<RecordView>& out);

  // Total records consumed so far.
  uint64_t consumed() const { return consumed_; }

  // True when the consumer has caught up with every partition.
  bool CaughtUp() const;

 private:
  Topic& topic_;
  std::vector<uint64_t> offsets_;
  uint64_t consumed_ = 0;
};

}  // namespace privapprox::broker

#endif  // PRIVAPPROX_BROKER_BROKER_H_
