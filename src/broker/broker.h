// The broker: topic management. Producing and consuming go through the
// span-first transport::MessageBus contract (transport/message_bus.h) —
// InProcessBus wraps a Broker directly; TcpBusClient reaches one in another
// process. The produce/poll method families that used to live here
// (owning, batched, and view-based triplets) collapsed into that single
// contract; what remains below are the topic registry and two thin owning
// adapters kept for one release.

#ifndef PRIVAPPROX_BROKER_BROKER_H_
#define PRIVAPPROX_BROKER_BROKER_H_

#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "broker/topic.h"

namespace privapprox::broker {

// Broker-wide durability: every topic created after EnableDurability spills
// its partitions to <data_dir>/<topic name>/p<k>, and RecoverTopics
// re-creates (and replays) every topic a previous incarnation left there.
struct BrokerDurability {
  std::filesystem::path data_dir;
  storage::PartitionLogOptions log;
};

class Broker {
 public:
  // Turns on durable spill for every topic created from now on. Must be
  // called before any topic exists (std::logic_error otherwise) — a broker
  // whose topics straddle the durability boundary could not recover
  // coherently.
  void EnableDurability(BrokerDurability durability);
  bool durable() const;

  // Re-creates every topic found under the durability data_dir — directory
  // name = topic name, partition count = number of p<k> subdirectories —
  // replaying each partition's log into memory. Topics that already exist
  // in this broker are skipped. Returns the names recovered (sorted).
  // std::logic_error if durability is not enabled.
  std::vector<std::string> RecoverTopics();

  // privapprox_storage_* sources summed over every durable topic (all zero
  // when durability is off). Collection-time only.
  DurableStats durable_stats() const;

  // Creates a topic; throws if it exists.
  Topic& CreateTopic(const std::string& name, size_t num_partitions);

  // Returns the topic, creating it if absent. An existing topic must have
  // the same partition count (std::invalid_argument otherwise). Used where
  // two producers legitimately share one topic — a standby proxy routes
  // into its primary's outbound topic so the aggregator's n-source join is
  // untouched by failover.
  Topic& EnsureTopic(const std::string& name, size_t num_partitions);

  bool HasTopic(const std::string& name) const;
  Topic& GetTopic(const std::string& name);
  const Topic& GetTopic(const std::string& name) const;

  // DEPRECATED one-release adapter: produce one owning record. New code
  // produces through transport::MessageBus::Produce (span-first, batched).
  void Produce(const std::string& topic, uint64_t key,
               std::vector<uint8_t> payload, int64_t timestamp_ms);

  std::vector<std::string> TopicNames() const;

 private:
  // Requires mu_ held.
  std::unique_ptr<Topic> MakeTopic(const std::string& name,
                                   size_t num_partitions) const;

  mutable std::mutex mu_;
  std::optional<BrokerDurability> durability_;
  std::map<std::string, std::unique_ptr<Topic>> topics_;
};

// DEPRECATED one-release adapter: an owning polling consumer over one
// topic, reading all partitions round-robin and remembering its offsets.
// New code consumes through transport::BusConsumer, whose view-based
// PollInto/PollExactInto replace the copy- and view-poll families that
// previously lived here.
class Consumer {
 public:
  explicit Consumer(Topic& topic);

  // Pulls up to `max_records` available records across partitions, copying
  // payloads.
  std::vector<Record> Poll(size_t max_records);

  // Total records consumed so far.
  uint64_t consumed() const { return consumed_; }

  // True when the consumer has caught up with every partition.
  bool CaughtUp() const;

 private:
  Topic& topic_;
  std::vector<uint64_t> offsets_;
  uint64_t consumed_ = 0;
};

}  // namespace privapprox::broker

#endif  // PRIVAPPROX_BROKER_BROKER_H_
