// A generic record-oriented partition log — the durable half of a broker
// topic partition, and the base layer the historical answer log
// (segment_log.h) shares its framing and recovery rules with.
//
// Records append to size-bounded segment files under one directory. Each
// segment is named by the offset of its first record
// ("seg-<base offset, 20 digits>.log"), so the on-disk layout *is* the
// offset index. Each record is length-prefixed and CRC-32 protected:
//
//   [u32 len][u32 crc][u64 key][i64 timestamp_ms][payload bytes]
//             \______ crc covers key..payload (len = 16 + payload) ______/
//
// Recovery invariants (enforced by the constructor):
//   * Sealed segments (all but the newest) must parse end to end; a corrupt
//     record in one throws SegmentLogError — it means lost history, not a
//     crash artifact.
//   * The newest segment may end in one torn record (crash mid-append);
//     Open truncates it and counts a truncated tail.
//   * Segment bases must be contiguous: base[i] + records[i] == base[i+1].
//     A gap means a segment went missing and replay would silently skip
//     offsets, so it throws.
//
// Retention: TrimBelow(watermark) deletes whole sealed segments whose
// records all sit below the consumer low-watermark; the active segment is
// never deleted, so base_offset() only moves forward in whole-segment steps.
//
// Durability: writes go through a POSIX fd; the fsync policy decides when
// the log pays for an fsync (never / sealing a segment on rotation / every
// N records / every record). One exclusive flock per directory (DirLock)
// makes double-opening the same log — from this or another process — a
// clear SegmentLogError instead of silently interleaved appends.

#ifndef PRIVAPPROX_STORAGE_PARTITION_LOG_H_
#define PRIVAPPROX_STORAGE_PARTITION_LOG_H_

#include <cstdint>
#include <filesystem>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace privapprox::storage {

class SegmentLogError : public std::runtime_error {
 public:
  explicit SegmentLogError(const std::string& message)
      : std::runtime_error(message) {}
};

// When appends reach the disk.
enum class FsyncPolicy {
  kNever,          // OS decides (page cache only)
  kOnRotate,       // fsync a segment once, when it is sealed
  kEveryNRecords,  // fsync after every fsync_every_n appends
  kAlways,         // fsync after every append
};

// Parses "never" | "on_rotate" | "every_n_records" | "always"; throws
// SegmentLogError on anything else. Name() is the inverse (flag echoing,
// bench row tags).
FsyncPolicy ParseFsyncPolicy(const std::string& name);
const char* FsyncPolicyName(FsyncPolicy policy);

struct PartitionLogOptions {
  // Rotate to a new segment once the active one reaches this size.
  uint64_t max_segment_bytes = 4 * 1024 * 1024;
  FsyncPolicy fsync = FsyncPolicy::kNever;
  // Only read under kEveryNRecords (values below 1 clamp to 1).
  uint64_t fsync_every_n = 256;
};

// Feeds privapprox_storage_* gauges; plain counters so storage keeps zero
// metrics-layer dependencies.
struct PartitionLogStats {
  uint64_t segments = 0;           // live segment files
  uint64_t bytes = 0;              // bytes across live segments
  uint64_t fsyncs = 0;             // fsync calls issued so far
  uint64_t recovered_records = 0;  // valid records replayed at open
  uint64_t truncated_tails = 0;    // torn tail records truncated at open
};

// Exclusive advisory lock on a log directory, held for the lifetime of the
// object. flock-based, so a SIGKILLed owner releases it with its fds — no
// stale-lockfile recovery dance — while a live second opener (same or other
// process) gets a SegmentLogError naming the directory.
class DirLock {
 public:
  DirLock() = default;
  ~DirLock();

  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

  // Takes <directory>/.lock exclusively; `owner` labels the error message.
  void Acquire(const std::filesystem::path& directory,
               const std::string& owner);
  void Release();
  bool held() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

class PartitionLog {
 public:
  // Opens (creating if needed) the log under `directory`, validating every
  // segment per the recovery invariants above. Throws SegmentLogError on IO
  // failure, unrecoverable corruption, offset discontinuity, or a directory
  // already locked by another instance.
  PartitionLog(std::filesystem::path directory, PartitionLogOptions options);
  ~PartitionLog();

  PartitionLog(const PartitionLog&) = delete;
  PartitionLog& operator=(const PartitionLog&) = delete;

  // Appends one record and returns its assigned offset (== end_offset()
  // before the call). Durability per the fsync policy.
  uint64_t Append(uint64_t key, int64_t timestamp_ms,
                  std::span<const uint8_t> payload);

  // Forces the active segment to disk regardless of policy.
  void Sync();

  // Offset of the oldest record still on disk / next offset to assign.
  uint64_t base_offset() const;
  uint64_t end_offset() const { return end_offset_; }

  // Replays every record on disk, oldest first, in offset order. The
  // payload span is only valid for the duration of the callback.
  using ReplayFn = std::function<void(uint64_t offset, uint64_t key,
                                      int64_t timestamp_ms,
                                      std::span<const uint8_t> payload)>;
  void Replay(const ReplayFn& fn) const;

  // Deletes every sealed segment whose records all sit below `watermark`
  // (i.e. base + records <= watermark). The active segment survives even
  // when fully consumed. Returns segments deleted.
  size_t TrimBelow(uint64_t watermark);

  PartitionLogStats stats() const;
  size_t num_segments() const { return segments_.size(); }
  const std::filesystem::path& directory() const { return directory_; }

 private:
  struct Segment {
    uint64_t base = 0;     // offset of the segment's first record
    uint64_t records = 0;  // valid records in the segment
    uint64_t bytes = 0;    // valid bytes (post torn-tail truncation)
    std::string name;
  };

  void OpenActive();
  void RotateIfNeeded();
  void DoFsync();

  std::filesystem::path directory_;
  PartitionLogOptions options_;
  DirLock lock_;
  std::vector<Segment> segments_;  // oldest first; back() is active
  int fd_ = -1;                    // active segment, O_APPEND
  uint64_t end_offset_ = 0;
  uint64_t records_since_sync_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t recovered_records_ = 0;
  uint64_t truncated_tails_ = 0;
  std::vector<uint8_t> scratch_;  // record framing buffer, reused
};

}  // namespace privapprox::storage

#endif  // PRIVAPPROX_STORAGE_PARTITION_LOG_H_
