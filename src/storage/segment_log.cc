#include "storage/segment_log.h"

#include <algorithm>
#include <cstring>

#include "storage/crc32.h"

namespace privapprox::storage {
namespace {

constexpr char kSegmentPrefix[] = "answers-";
constexpr char kSegmentSuffix[] = ".log";

std::string SegmentName(size_t index) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%s%06zu%s", kSegmentPrefix, index,
                kSegmentSuffix);
  return buffer;
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

SegmentedAnswerLog::SegmentedAnswerLog(std::filesystem::path directory)
    : SegmentedAnswerLog(std::move(directory), Options{}) {}

SegmentedAnswerLog::SegmentedAnswerLog(std::filesystem::path directory,
                                       Options options)
    : directory_(std::move(directory)), options_(options) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    throw SegmentLogError("cannot create log directory: " + ec.message());
  }
  lock_.Acquire(directory_, "SegmentedAnswerLog");
  // Discover existing segments (sorted by name == by index).
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with(kSegmentPrefix) && name.ends_with(kSegmentSuffix)) {
      segment_names_.push_back(name);
    }
  }
  std::sort(segment_names_.begin(), segment_names_.end());
  // Validate all segments and count records; recover a torn tail in the
  // newest segment by truncating.
  for (size_t i = 0; i < segment_names_.size(); ++i) {
    const auto path = directory_ / segment_names_[i];
    size_t records = 0;
    const uint64_t valid_bytes =
        ScanSegment(path, nullptr, INT64_MIN, INT64_MAX, &records);
    const uint64_t file_size = std::filesystem::file_size(path);
    if (valid_bytes != file_size) {
      if (i + 1 != segment_names_.size()) {
        throw SegmentLogError("corrupt record in sealed segment " +
                              segment_names_[i]);
      }
      std::filesystem::resize_file(path, valid_bytes);
    }
    num_records_ += records;
  }
  if (segment_names_.empty()) {
    segment_names_.push_back(SegmentName(0));
  }
  OpenActiveSegment();
}

SegmentedAnswerLog::~SegmentedAnswerLog() { Sync(); }

void SegmentedAnswerLog::OpenActiveSegment() {
  const auto path = directory_ / segment_names_.back();
  active_.open(path, std::ios::binary | std::ios::app);
  if (!active_) {
    throw SegmentLogError("cannot open segment " + path.string());
  }
  std::error_code ec;
  active_bytes_ = std::filesystem::exists(path, ec)
                      ? std::filesystem::file_size(path, ec)
                      : 0;
}

void SegmentedAnswerLog::RotateIfNeeded() {
  if (active_bytes_ < options_.max_segment_bytes) {
    return;
  }
  active_.flush();
  active_.close();
  segment_names_.push_back(SegmentName(segment_names_.size()));
  OpenActiveSegment();
}

void SegmentedAnswerLog::Append(int64_t timestamp_ms,
                                const BitVector& answer) {
  RotateIfNeeded();
  std::vector<uint8_t> body;
  body.reserve(12 + answer.ByteSize());
  PutU64(body, static_cast<uint64_t>(timestamp_ms));
  PutU32(body, static_cast<uint32_t>(answer.size()));
  body.insert(body.end(), answer.bytes().begin(), answer.bytes().end());

  std::vector<uint8_t> record;
  record.reserve(8 + body.size());
  PutU32(record, static_cast<uint32_t>(body.size()));
  PutU32(record, Crc32(body.data(), body.size()));
  record.insert(record.end(), body.begin(), body.end());

  active_.write(reinterpret_cast<const char*>(record.data()),
                static_cast<std::streamsize>(record.size()));
  if (!active_) {
    throw SegmentLogError("append failed");
  }
  active_bytes_ += record.size();
  ++num_records_;
}

void SegmentedAnswerLog::Sync() {
  if (active_.is_open()) {
    active_.flush();
  }
}

uint64_t SegmentedAnswerLog::ScanSegment(const std::filesystem::path& path,
                                         ResponseStore* store,
                                         int64_t from_ms, int64_t to_ms,
                                         size_t* records_seen) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SegmentLogError("cannot read segment " + path.string());
  }
  uint64_t offset = 0;
  for (;;) {
    uint8_t header[8];
    in.read(reinterpret_cast<char*>(header), sizeof(header));
    if (in.gcount() == 0) {
      break;  // clean end
    }
    if (in.gcount() < static_cast<std::streamsize>(sizeof(header))) {
      return offset;  // torn header
    }
    const uint32_t len = GetU32(header);
    const uint32_t crc = GetU32(header + 4);
    if (len < 12 || len > (1u << 24)) {
      return offset;  // implausible length: treat as torn/corrupt
    }
    std::vector<uint8_t> body(len);
    in.read(reinterpret_cast<char*>(body.data()), len);
    if (in.gcount() < static_cast<std::streamsize>(len)) {
      return offset;  // torn body
    }
    if (Crc32(body.data(), body.size()) != crc) {
      return offset;  // corrupt body
    }
    const int64_t timestamp = static_cast<int64_t>(GetU64(body.data()));
    const uint32_t num_bits = GetU32(body.data() + 8);
    const size_t answer_bytes = (static_cast<size_t>(num_bits) + 7) / 8;
    if (12 + answer_bytes != body.size()) {
      return offset;
    }
    if (records_seen != nullptr) {
      ++*records_seen;
    }
    if (store != nullptr && timestamp >= from_ms && timestamp < to_ms) {
      store->Append(timestamp,
                    BitVector::FromBytes(
                        std::vector<uint8_t>(body.begin() + 12, body.end()),
                        num_bits));
    }
    offset += 8 + len;
  }
  return offset;
}

ResponseStore SegmentedAnswerLog::LoadRange(int64_t from_ms,
                                                        int64_t to_ms) {
  Sync();
  ResponseStore store;
  for (const std::string& name : segment_names_) {
    size_t seen = 0;
    ScanSegment(directory_ / name, &store, from_ms, to_ms, &seen);
  }
  return store;
}

}  // namespace privapprox::storage
