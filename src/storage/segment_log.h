// Durable, segmented answer log — the HDFS stand-in of the historical
// analytics pipeline (paper §3.3.1: "analyze users' responses stored in a
// fault-tolerant distributed storage (e.g., HDFS) at the aggregator").
//
// Joined randomized answers append to size-bounded segment files under one
// directory. Each record is length-prefixed and CRC-32 protected:
//
//   [u32 payload_len][u32 crc][i64 timestamp][u32 num_bits][answer bytes]
//    \_____________ crc covers timestamp..answer bytes ______________/
//
// A crash can leave at most one torn record at the tail of the newest
// segment; Open() detects it (short read or CRC mismatch), truncates it,
// and continues appending. Older segments are immutable, so batch analytics
// can scan them while the stream keeps appending to the active one.

#ifndef PRIVAPPROX_STORAGE_SEGMENT_LOG_H_
#define PRIVAPPROX_STORAGE_SEGMENT_LOG_H_

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "storage/partition_log.h"  // SegmentLogError, DirLock
#include "storage/response_store.h"

namespace privapprox::storage {

class SegmentedAnswerLog {
 public:
  struct Options {
    // Rotate to a new segment once the active one exceeds this size.
    uint64_t max_segment_bytes = 4 * 1024 * 1024;
  };

  // Opens (creating if needed) the log under `directory`. Recovers from a
  // torn tail record by truncating it. Throws SegmentLogError on IO
  // failures, unrecoverable corruption (a bad record that is not at the
  // tail of the newest segment), or a directory already held by another
  // live instance — two logs appending to one directory would silently
  // interleave records, so the directory is exclusively flock'd.
  explicit SegmentedAnswerLog(std::filesystem::path directory);
  SegmentedAnswerLog(std::filesystem::path directory, Options options);
  ~SegmentedAnswerLog();

  SegmentedAnswerLog(const SegmentedAnswerLog&) = delete;
  SegmentedAnswerLog& operator=(const SegmentedAnswerLog&) = delete;

  // Appends one answer; buffered, call Sync() to force it to disk.
  void Append(int64_t timestamp_ms, const BitVector& answer);

  // Flushes the active segment.
  void Sync();

  size_t num_records() const { return num_records_; }
  size_t num_segments() const { return segment_names_.size(); }
  const std::filesystem::path& directory() const { return directory_; }

  // Loads every record with timestamp in [from_ms, to_ms) into an in-memory
  // ResponseStore for batch analytics. Reads through the OS cache; the
  // active segment is flushed first.
  ResponseStore LoadRange(int64_t from_ms, int64_t to_ms);

 private:
  void OpenActiveSegment();
  void RotateIfNeeded();
  // Scans one segment; appends its valid records to `store` (filtered to
  // the time range). Returns the byte offset of the first invalid record,
  // or the file size if all records are valid.
  uint64_t ScanSegment(const std::filesystem::path& path,
                       ResponseStore* store, int64_t from_ms,
                       int64_t to_ms, size_t* records_seen) const;

  std::filesystem::path directory_;
  Options options_;
  DirLock lock_;
  std::vector<std::string> segment_names_;  // sorted, oldest first
  std::ofstream active_;
  uint64_t active_bytes_ = 0;
  size_t num_records_ = 0;
};

}  // namespace privapprox::storage

#endif  // PRIVAPPROX_STORAGE_SEGMENT_LOG_H_
