// CRC-32 (IEEE 802.3 polynomial, reflected, table-driven) — integrity
// checksum for the durable answer log's records.

#ifndef PRIVAPPROX_STORAGE_CRC32_H_
#define PRIVAPPROX_STORAGE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace privapprox::storage {

// CRC of `len` bytes starting at `data`, with standard init/final xor.
uint32_t Crc32(const void* data, size_t len);

// Incremental form: continue a CRC previously returned by Crc32/Crc32Update.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

}  // namespace privapprox::storage

#endif  // PRIVAPPROX_STORAGE_CRC32_H_
