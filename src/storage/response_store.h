// In-memory time-ordered store of joined randomized answers — the working
// set of historical analytics (§3.3.1). The durable SegmentedAnswerLog
// loads ranges of itself into one of these for batch processing.

#ifndef PRIVAPPROX_STORAGE_RESPONSE_STORE_H_
#define PRIVAPPROX_STORAGE_RESPONSE_STORE_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"

namespace privapprox::storage {

class ResponseStore {
 public:
  void Append(int64_t timestamp_ms, const BitVector& answer);

  size_t size() const { return entries_.size(); }

  struct Entry {
    int64_t timestamp_ms;
    BitVector answer;
  };
  // Entries with timestamp in [from_ms, to_ms).
  std::vector<const Entry*> Range(int64_t from_ms, int64_t to_ms) const;

 private:
  std::vector<Entry> entries_;  // append order == time order
};

}  // namespace privapprox::storage

#endif  // PRIVAPPROX_STORAGE_RESPONSE_STORE_H_
