#include "storage/response_store.h"

namespace privapprox::storage {

void ResponseStore::Append(int64_t timestamp_ms, const BitVector& answer) {
  entries_.push_back(Entry{timestamp_ms, answer});
}

std::vector<const ResponseStore::Entry*> ResponseStore::Range(
    int64_t from_ms, int64_t to_ms) const {
  std::vector<const Entry*> out;
  for (const Entry& entry : entries_) {
    if (entry.timestamp_ms >= from_ms && entry.timestamp_ms < to_ms) {
      out.push_back(&entry);
    }
  }
  return out;
}

}  // namespace privapprox::storage
