#include "storage/partition_log.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "storage/crc32.h"

namespace privapprox::storage {
namespace {

constexpr char kSegmentPrefix[] = "seg-";
constexpr char kSegmentSuffix[] = ".log";
constexpr char kLockName[] = ".lock";
// Record body is [u64 key][i64 ts][payload] — at least 16 bytes.
constexpr uint32_t kMinBodyBytes = 16;
// Implausible-length guard for the scanner: one record never exceeds the
// transport's 64 MiB frame cap.
constexpr uint32_t kMaxBodyBytes = 64 * 1024 * 1024;

std::string SegmentName(uint64_t base_offset) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%s%020llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(base_offset), kSegmentSuffix);
  return buffer;
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

void WriteAll(int fd, const uint8_t* data, size_t len,
              const std::filesystem::path& path) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw SegmentLogError("write failed on " + path.string() + ": " +
                            std::strerror(errno));
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
}

struct ScanResult {
  uint64_t valid_bytes = 0;
  uint64_t records = 0;
};

// Walks one segment record by record, stopping at the first byte offset
// that does not hold a complete, CRC-valid record. If `fn` is set it is
// called for every valid record with offsets starting at `base_offset`.
ScanResult ScanSegment(const std::filesystem::path& path,
                       uint64_t base_offset,
                       const PartitionLog::ReplayFn* fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SegmentLogError("cannot read segment " + path.string());
  }
  ScanResult result;
  std::vector<uint8_t> body;
  for (;;) {
    uint8_t header[8];
    in.read(reinterpret_cast<char*>(header), sizeof(header));
    if (in.gcount() == 0) {
      break;  // clean end
    }
    if (in.gcount() < static_cast<std::streamsize>(sizeof(header))) {
      break;  // torn header
    }
    const uint32_t len = GetU32(header);
    const uint32_t crc = GetU32(header + 4);
    if (len < kMinBodyBytes || len > kMaxBodyBytes) {
      break;  // implausible length: treat as torn/corrupt
    }
    body.resize(len);
    in.read(reinterpret_cast<char*>(body.data()), len);
    if (in.gcount() < static_cast<std::streamsize>(len)) {
      break;  // torn body
    }
    if (Crc32(body.data(), body.size()) != crc) {
      break;  // corrupt body
    }
    if (fn != nullptr) {
      (*fn)(base_offset + result.records, GetU64(body.data()),
            static_cast<int64_t>(GetU64(body.data() + 8)),
            std::span<const uint8_t>(body.data() + 16, body.size() - 16));
    }
    ++result.records;
    result.valid_bytes += 8 + len;
  }
  return result;
}

}  // namespace

FsyncPolicy ParseFsyncPolicy(const std::string& name) {
  if (name == "never") {
    return FsyncPolicy::kNever;
  }
  if (name == "on_rotate") {
    return FsyncPolicy::kOnRotate;
  }
  if (name == "every_n_records") {
    return FsyncPolicy::kEveryNRecords;
  }
  if (name == "always") {
    return FsyncPolicy::kAlways;
  }
  throw SegmentLogError(
      "unknown fsync policy '" + name +
      "' (want never|on_rotate|every_n_records|always)");
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kOnRotate:
      return "on_rotate";
    case FsyncPolicy::kEveryNRecords:
      return "every_n_records";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "unknown";
}

DirLock::~DirLock() { Release(); }

void DirLock::Acquire(const std::filesystem::path& directory,
                      const std::string& owner) {
  Release();
  const std::filesystem::path path = directory / kLockName;
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw SegmentLogError("cannot open lockfile " + path.string() + ": " +
                          std::strerror(errno));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    const int err = errno;
    ::close(fd);
    throw SegmentLogError(owner + ": directory " + directory.string() +
                          " is already locked by another instance (" +
                          std::strerror(err) + ")");
  }
  fd_ = fd;
}

void DirLock::Release() {
  if (fd_ >= 0) {
    ::close(fd_);  // releases the flock
    fd_ = -1;
  }
}

PartitionLog::PartitionLog(std::filesystem::path directory,
                           PartitionLogOptions options)
    : directory_(std::move(directory)), options_(options) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    throw SegmentLogError("cannot create log directory " +
                          directory_.string() + ": " + ec.message());
  }
  lock_.Acquire(directory_, "PartitionLog");

  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with(kSegmentPrefix) || !name.ends_with(kSegmentSuffix)) {
      continue;
    }
    const std::string digits = name.substr(
        sizeof(kSegmentPrefix) - 1,
        name.size() - (sizeof(kSegmentPrefix) - 1) - (sizeof(kSegmentSuffix) - 1));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      throw SegmentLogError("unparseable segment name " + name);
    }
    Segment segment;
    segment.base = std::stoull(digits);
    segment.name = name;
    segments_.push_back(std::move(segment));
  }
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) { return a.base < b.base; });

  for (size_t i = 0; i < segments_.size(); ++i) {
    Segment& segment = segments_[i];
    if (i > 0 && segments_[i - 1].base + segments_[i - 1].records !=
                     segment.base) {
      throw SegmentLogError("segment offset discontinuity at " + segment.name +
                            " in " + directory_.string());
    }
    const auto path = directory_ / segment.name;
    const ScanResult scan = ScanSegment(path, segment.base, nullptr);
    const uint64_t file_size = std::filesystem::file_size(path);
    if (scan.valid_bytes != file_size) {
      if (i + 1 != segments_.size()) {
        throw SegmentLogError("corrupt record in sealed segment " +
                              segment.name + " in " + directory_.string());
      }
      std::filesystem::resize_file(path, scan.valid_bytes);
      ++truncated_tails_;
    }
    segment.records = scan.records;
    segment.bytes = scan.valid_bytes;
    recovered_records_ += scan.records;
  }
  if (segments_.empty()) {
    segments_.push_back(Segment{0, 0, 0, SegmentName(0)});
  }
  end_offset_ = segments_.back().base + segments_.back().records;
  OpenActive();
}

PartitionLog::~PartitionLog() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void PartitionLog::OpenActive() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  const auto path = directory_ / segments_.back().name;
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw SegmentLogError("cannot open segment " + path.string() + ": " +
                          std::strerror(errno));
  }
}

void PartitionLog::DoFsync() {
  if (::fsync(fd_) != 0) {
    throw SegmentLogError("fsync failed on " +
                          (directory_ / segments_.back().name).string() +
                          ": " + std::strerror(errno));
  }
  ++fsyncs_;
  records_since_sync_ = 0;
}

void PartitionLog::RotateIfNeeded() {
  if (segments_.back().bytes < options_.max_segment_bytes) {
    return;
  }
  // Seal the active segment. Every policy but kNever pays one fsync here so
  // a sealed segment is durable before appends move past it.
  if (options_.fsync != FsyncPolicy::kNever) {
    DoFsync();
  }
  ::close(fd_);
  fd_ = -1;
  segments_.push_back(Segment{end_offset_, 0, 0, SegmentName(end_offset_)});
  OpenActive();  // creates the file eagerly — recovery tolerates it empty
  if (options_.fsync != FsyncPolicy::kNever) {
    // Make the new file's directory entry durable too.
    const int dir_fd = ::open(directory_.c_str(), O_RDONLY | O_CLOEXEC);
    if (dir_fd >= 0) {
      ::fsync(dir_fd);
      ::close(dir_fd);
      ++fsyncs_;
    }
  }
}

uint64_t PartitionLog::Append(uint64_t key, int64_t timestamp_ms,
                              std::span<const uint8_t> payload) {
  RotateIfNeeded();
  scratch_.clear();
  scratch_.reserve(24 + payload.size());
  PutU32(scratch_, static_cast<uint32_t>(16 + payload.size()));
  PutU32(scratch_, 0);  // crc patched below
  PutU64(scratch_, key);
  PutU64(scratch_, static_cast<uint64_t>(timestamp_ms));
  scratch_.insert(scratch_.end(), payload.begin(), payload.end());
  const uint32_t crc = Crc32(scratch_.data() + 8, scratch_.size() - 8);
  for (int i = 0; i < 4; ++i) {
    scratch_[4 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  WriteAll(fd_, scratch_.data(), scratch_.size(),
           directory_ / segments_.back().name);

  Segment& active = segments_.back();
  active.bytes += scratch_.size();
  ++active.records;
  const uint64_t offset = end_offset_++;

  switch (options_.fsync) {
    case FsyncPolicy::kAlways:
      DoFsync();
      break;
    case FsyncPolicy::kEveryNRecords:
      if (++records_since_sync_ >=
          std::max<uint64_t>(1, options_.fsync_every_n)) {
        DoFsync();
      }
      break;
    case FsyncPolicy::kNever:
    case FsyncPolicy::kOnRotate:
      break;
  }
  return offset;
}

void PartitionLog::Sync() {
  if (fd_ >= 0) {
    DoFsync();
  }
}

uint64_t PartitionLog::base_offset() const {
  return segments_.empty() ? 0 : segments_.front().base;
}

void PartitionLog::Replay(const ReplayFn& fn) const {
  for (const Segment& segment : segments_) {
    const ScanResult scan =
        ScanSegment(directory_ / segment.name, segment.base, &fn);
    if (scan.records != segment.records) {
      throw SegmentLogError("segment " + segment.name +
                            " changed under replay in " + directory_.string());
    }
  }
}

size_t PartitionLog::TrimBelow(uint64_t watermark) {
  size_t removed = 0;
  while (segments_.size() > 1 &&
         segments_.front().base + segments_.front().records <= watermark) {
    std::error_code ec;
    std::filesystem::remove(directory_ / segments_.front().name, ec);
    if (ec) {
      throw SegmentLogError("cannot remove segment " +
                            segments_.front().name + ": " + ec.message());
    }
    segments_.erase(segments_.begin());
    ++removed;
  }
  return removed;
}

PartitionLogStats PartitionLog::stats() const {
  PartitionLogStats stats;
  stats.segments = segments_.size();
  for (const Segment& segment : segments_) {
    stats.bytes += segment.bytes;
  }
  stats.fsyncs = fsyncs_;
  stats.recovered_records = recovered_records_;
  stats.truncated_tails = truncated_tails_;
  return stats;
}

}  // namespace privapprox::storage
