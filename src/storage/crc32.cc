#include "storage/crc32.h"

#include <array>

namespace privapprox::storage {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;  // reflected 0x04C11DB7

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t len) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ Table()[(crc ^ bytes[i]) & 0xFF];
  }
  return ~crc;
}

uint32_t Crc32(const void* data, size_t len) {
  return Crc32Update(0, data, len);
}

}  // namespace privapprox::storage
