#include "core/query_wire.h"

#include <cmath>
#include <cstring>
#include <limits>

namespace privapprox::core {
namespace {

constexpr uint32_t kMagic = 0x50415851;  // "PAXQ"
constexpr uint16_t kVersion = 1;

enum class BucketTag : uint8_t { kNumeric = 0, kExact = 1, kWildcard = 2 };

class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(v); }
  void U16(uint16_t v) {
    for (int i = 0; i < 2; ++i) {
      out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  std::vector<uint8_t> Take() { return std::move(out_); }

 private:
  std::vector<uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  uint8_t U8() { return bytes_[Need(1)]; }
  uint16_t U16() {
    const size_t at = Need(2);
    return static_cast<uint16_t>(bytes_[at] | (bytes_[at + 1] << 8));
  }
  uint32_t U32() {
    const size_t at = Need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(bytes_[at + i]) << (8 * i);
    }
    return v;
  }
  uint64_t U64() {
    const size_t at = Need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(bytes_[at + i]) << (8 * i);
    }
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    const uint32_t len = U32();
    const size_t at = Need(len);
    return std::string(bytes_.begin() + static_cast<long>(at),
                       bytes_.begin() + static_cast<long>(at + len));
  }

 private:
  size_t Need(size_t n) {
    if (bytes_.size() - pos_ < n) {
      throw WireError("announcement truncated");
    }
    const size_t at = pos_;
    pos_ += n;
    return at;
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> SerializeAnnouncement(const QueryAnnouncement& ann) {
  Writer w;
  w.U32(kMagic);
  w.U16(kVersion);
  const Query& query = ann.query;
  w.U64(query.query_id);
  w.U64(query.analyst_id);
  w.U64(query.signature);
  w.Str(query.sql);
  w.I64(query.answer_frequency_ms);
  w.I64(query.window_length_ms);
  w.I64(query.sliding_interval_ms);
  w.U32(static_cast<uint32_t>(query.answer_format.num_buckets()));
  for (const Bucket& bucket : query.answer_format.buckets()) {
    if (const auto* numeric = std::get_if<NumericBucket>(&bucket)) {
      w.U8(static_cast<uint8_t>(BucketTag::kNumeric));
      w.F64(numeric->lo);
      w.F64(numeric->hi);
    } else {
      const auto& match = std::get<MatchBucket>(bucket);
      w.U8(static_cast<uint8_t>(match.is_wildcard ? BucketTag::kWildcard
                                                  : BucketTag::kExact));
      w.Str(match.pattern);
    }
  }
  w.F64(ann.params.sampling_fraction);
  w.F64(ann.params.randomization.p);
  w.F64(ann.params.randomization.q);
  return w.Take();
}

QueryAnnouncement DeserializeAnnouncement(std::span<const uint8_t> bytes) {
  Reader r(bytes);
  if (r.U32() != kMagic) {
    throw WireError("bad announcement magic");
  }
  if (r.U16() != kVersion) {
    throw WireError("unsupported announcement version");
  }
  QueryAnnouncement ann;
  Query& query = ann.query;
  query.query_id = r.U64();
  query.analyst_id = r.U64();
  query.signature = r.U64();
  query.sql = r.Str();
  query.answer_frequency_ms = r.I64();
  query.window_length_ms = r.I64();
  query.sliding_interval_ms = r.I64();
  const uint32_t num_buckets = r.U32();
  if (num_buckets > 1u << 20) {
    throw WireError("implausible bucket count");
  }
  std::vector<Bucket> buckets;
  buckets.reserve(num_buckets);
  for (uint32_t i = 0; i < num_buckets; ++i) {
    const uint8_t tag = r.U8();
    switch (static_cast<BucketTag>(tag)) {
      case BucketTag::kNumeric: {
        NumericBucket bucket;
        bucket.lo = r.F64();
        bucket.hi = r.F64();
        if (std::isnan(bucket.lo) || std::isnan(bucket.hi)) {
          throw WireError("NaN bucket bound");
        }
        buckets.push_back(bucket);
        break;
      }
      case BucketTag::kExact:
        buckets.push_back(MatchBucket{r.Str(), false});
        break;
      case BucketTag::kWildcard:
        buckets.push_back(MatchBucket{r.Str(), true});
        break;
      default:
        throw WireError("unknown bucket tag");
    }
  }
  query.answer_format = AnswerFormat(std::move(buckets));
  ann.params.sampling_fraction = r.F64();
  ann.params.randomization.p = r.F64();
  ann.params.randomization.q = r.F64();
  return ann;
}

std::vector<uint8_t> SerializeTaggedShare(
    uint64_t query_id, std::span<const uint8_t> lane_record) {
  if (lane_record.size() < 8) {
    throw WireError("lane record shorter than its MID header");
  }
  std::vector<uint8_t> out;
  out.reserve(8 + lane_record.size());
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(query_id >> (8 * i)));
  }
  out.insert(out.end(), lane_record.begin(), lane_record.end());
  return out;
}

TaggedShareView ParseTaggedShare(std::span<const uint8_t> bytes) {
  if (bytes.size() < 16) {
    throw WireError("tagged share truncated");
  }
  TaggedShareView view;
  for (int i = 0; i < 8; ++i) {
    view.query_id |= static_cast<uint64_t>(bytes[i]) << (8 * i);
    view.message_id |= static_cast<uint64_t>(bytes[8 + i]) << (8 * i);
  }
  view.payload = bytes.subspan(16);
  view.lane_record = bytes.subspan(8);
  return view;
}

}  // namespace privapprox::core
