// The analyst query model (paper §2.2, §3.1).
//
// Query := <QID, SQL, A[n], f, w, delta>  (Eq 1)
//
// Results of a query are always counts within histogram buckets: the answer
// format A[n] is an n-bit vector, one bit per bucket. Buckets are either
// numeric ranges [lo, hi) or non-numeric matching rules (exact string or a
// simple '*'/'?' wildcard pattern).

#ifndef PRIVAPPROX_CORE_QUERY_H_
#define PRIVAPPROX_CORE_QUERY_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace privapprox::core {

// A numeric bucket covers [lo, hi). Use +/-infinity for open ends.
struct NumericBucket {
  double lo = 0.0;
  double hi = 0.0;
  bool Contains(double value) const { return value >= lo && value < hi; }
};

// A non-numeric bucket matches strings: exact match, or a wildcard pattern
// where '*' matches any run and '?' any single character.
struct MatchBucket {
  std::string pattern;
  bool is_wildcard = false;
  bool Contains(const std::string& value) const;
};

using Bucket = std::variant<NumericBucket, MatchBucket>;

// The answer format A[n]: an ordered list of buckets.
class AnswerFormat {
 public:
  AnswerFormat() = default;
  explicit AnswerFormat(std::vector<Bucket> buckets)
      : buckets_(std::move(buckets)) {}

  // Equi-width numeric buckets over [lo, hi) plus optional overflow bucket
  // [hi, +inf).
  static AnswerFormat UniformNumeric(double lo, double hi, size_t num_buckets,
                                     bool with_overflow = false);

  size_t num_buckets() const { return buckets_.size(); }
  const std::vector<Bucket>& buckets() const { return buckets_; }

  // Index of the bucket containing `value`; nullopt if none matches.
  std::optional<size_t> BucketOf(double value) const;
  std::optional<size_t> BucketOf(const std::string& value) const;

  // Human-readable label of bucket i ("[0, 1)", "pattern").
  std::string BucketLabel(size_t index) const;

 private:
  std::vector<Bucket> buckets_;
};

// A streaming query (Eq 1). `sql` is executed against each client's local
// database; `answer_format` maps the result value to the bit-vector answer.
struct Query {
  uint64_t query_id = 0;          // QID
  std::string sql;                // SQL text run at clients
  AnswerFormat answer_format;     // A[n]
  int64_t answer_frequency_ms = 1000;  // f: how often clients answer
  int64_t window_length_ms = 60000;    // w: sliding window length
  int64_t sliding_interval_ms = 10000; // delta: slide interval
  uint64_t analyst_id = 0;
  // Non-repudiation stand-in: analysts sign queries; the simulation carries
  // a checksum the aggregator verifies (a full signature scheme is out of
  // scope for the reproduced experiments).
  uint64_t signature = 0;

  // Computes/validates the stand-in signature over the query fields.
  uint64_t ComputeSignature() const;
  void Sign() { signature = ComputeSignature(); }
  bool VerifySignature() const { return signature == ComputeSignature(); }
};

// Builder with validation, so examples read declaratively.
class QueryBuilder {
 public:
  QueryBuilder& WithId(uint64_t id);
  QueryBuilder& WithAnalyst(uint64_t analyst_id);
  QueryBuilder& WithSql(std::string sql);
  QueryBuilder& WithAnswerFormat(AnswerFormat format);
  QueryBuilder& WithFrequencyMs(int64_t f_ms);
  QueryBuilder& WithWindowMs(int64_t w_ms);
  QueryBuilder& WithSlideMs(int64_t delta_ms);

  // Validates (non-empty SQL, >= 1 bucket, positive periods, slide <= window)
  // and signs. Throws std::invalid_argument on violations.
  Query Build() const;

 private:
  Query query_;
};

}  // namespace privapprox::core

#endif  // PRIVAPPROX_CORE_QUERY_H_
