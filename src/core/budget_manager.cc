#include "core/budget_manager.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/privacy.h"

namespace privapprox::core {

PrivacyBudgetManager::PrivacyBudgetManager(BudgetManagerConfig config)
    : config_(config) {
  if (std::isnan(config_.max_epsilon_zk) || config_.max_epsilon_zk <= 0.0) {
    throw std::invalid_argument(
        "PrivacyBudgetManager: max_epsilon_zk must be positive");
  }
  if (!(config_.min_sampling_fraction > 0.0 &&
        config_.min_sampling_fraction <= 1.0)) {
    throw std::invalid_argument(
        "PrivacyBudgetManager: min_sampling_fraction must be in (0, 1]");
  }
}

BudgetAdmission PrivacyBudgetManager::Admit(uint64_t query_id,
                                            const ExecutionParams& params) {
  if (query_id == 0) {
    throw std::invalid_argument("PrivacyBudgetManager: query id 0");
  }
  if (Has(query_id)) {
    throw std::invalid_argument("PrivacyBudgetManager: duplicate query id " +
                                std::to_string(query_id));
  }
  params.Validate();

  BudgetAdmission admission;
  admission.params = params;

  if (!std::isfinite(config_.max_epsilon_zk)) {
    // Unlimited fleet: record the (possibly infinite) cost and admit as-is.
    admission.epsilon_zk = EpsilonZk(params.randomization,
                                     params.sampling_fraction);
    admission.remaining = std::numeric_limits<double>::infinity();
    spend_.emplace(query_id, admission.epsilon_zk);
    return admission;
  }

  const double budget_left = remaining();
  const double cost =
      EpsilonZk(params.randomization, params.sampling_fraction);
  if (cost <= budget_left) {
    admission.epsilon_zk = cost;
    spend_.emplace(query_id, cost);
    admission.remaining = remaining();
    return admission;
  }

  // Over cap as requested. With p = 1 the base mechanism has infinite
  // eps_dp, so no sampling fraction yields a finite eps_zk — refuse.
  const bool infinite_base = !std::isfinite(EpsilonDp(params.randomization));
  if (!config_.downsample_to_fit || infinite_base || budget_left <= 0.0) {
    throw BudgetExceededError(
        "query " + std::to_string(query_id) + " needs eps_zk " +
        std::to_string(cost) + " but only " + std::to_string(budget_left) +
        " of " + std::to_string(config_.max_epsilon_zk) + " remains");
  }

  // eps_zk is monotone in s for fixed (p, q); find the s that exactly
  // spends the residual budget and shrink to it.
  const double s_fit =
      SamplingFractionForEpsilonZk(params.randomization, budget_left);
  const double s_new = std::min(params.sampling_fraction, s_fit);
  if (s_new < config_.min_sampling_fraction) {
    throw BudgetExceededError(
        "query " + std::to_string(query_id) + " fits only at s=" +
        std::to_string(s_new) + ", below the floor " +
        std::to_string(config_.min_sampling_fraction));
  }
  admission.params.sampling_fraction = s_new;
  admission.downsampled = true;
  admission.epsilon_zk =
      EpsilonZk(admission.params.randomization, s_new);
  spend_.emplace(query_id, admission.epsilon_zk);
  admission.remaining = remaining();
  return admission;
}

BudgetAdmission PrivacyBudgetManager::Update(uint64_t query_id,
                                             const ExecutionParams& params) {
  const auto it = spend_.find(query_id);
  if (it == spend_.end()) {
    throw std::invalid_argument("PrivacyBudgetManager: unknown query id " +
                                std::to_string(query_id));
  }
  const double previous = it->second;
  spend_.erase(it);
  try {
    return Admit(query_id, params);
  } catch (...) {
    spend_.emplace(query_id, previous);
    throw;
  }
}

void PrivacyBudgetManager::Release(uint64_t query_id) {
  if (spend_.erase(query_id) == 0) {
    throw std::invalid_argument("PrivacyBudgetManager: unknown query id " +
                                std::to_string(query_id));
  }
}

double PrivacyBudgetManager::spent() const {
  double total = 0.0;
  for (const auto& [qid, eps] : spend_) {
    total += eps;
  }
  return total;
}

double PrivacyBudgetManager::remaining() const {
  if (!std::isfinite(config_.max_epsilon_zk)) {
    return std::numeric_limits<double>::infinity();
  }
  return std::max(0.0, config_.max_epsilon_zk - spent());
}

}  // namespace privapprox::core
