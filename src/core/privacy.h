// Privacy accounting (paper §4; tech report Eq 19).
//
// Randomized response alone is eps_dp-differentially private with
//   eps_dp = ln( (p + (1-p)q) / ((1-p)q) )                       (Eq 8).
//
// Two derived quantities appear in the evaluation:
//
// 1. The *differential privacy* level after client-side sampling — the
//    standard privacy amplification by subsampling:
//      eps_s = ln( 1 + s * (e^{eps_dp} - 1) ),
//    which Fig 5c plots (RAPPOR at s = 1 vs PrivApprox at s < 1).
//
// 2. The *zero-knowledge privacy* level of the combined pipeline — the
//    tech report's Eq 19, which Table 1 and Fig 7b report:
//      eps_zk = ln( (1 + s(2-s) * (e^{eps_dp} - 1)) / (1 - s) ).
//    (Table 1's epsilon column is exactly this at s = 0.6.) Note eps_zk
//    accounts for the aggregate-information adversary of the
//    zero-knowledge definition and diverges as s -> 1: with everyone
//    sampled, the mechanism is only as strong as plain randomized response
//    and the zero-knowledge bound becomes vacuous.

#ifndef PRIVAPPROX_CORE_PRIVACY_H_
#define PRIVAPPROX_CORE_PRIVACY_H_

#include "core/randomized_response.h"

namespace privapprox::core {

// Eq 8: differential-privacy level of randomized response with (p, q).
// p == 1 (no randomization) yields +infinity.
double EpsilonDp(const RandomizationParams& params);

// Privacy amplification by subsampling: the epsilon achieved when a base
// eps-DP mechanism is applied only to a fraction `s` of the population.
double AmplifyBySampling(double epsilon, double sampling_fraction);

// Tech report Eq 19: the zero-knowledge privacy level of the combined
// sampling (s) + randomized response (p, q) pipeline. Returns +infinity at
// s = 1 (see header comment).
double EpsilonZk(const RandomizationParams& params, double sampling_fraction);

// Inverse of EpsilonZk in s for fixed (p, q): the sampling fraction that
// achieves `target_epsilon_zk`. Used by the Fig 7 sweep, where the paper
// derives s from the target privacy level via Eq 19.
double SamplingFractionForEpsilonZk(const RandomizationParams& params,
                                    double target_epsilon_zk);

// Inverse of AmplifyBySampling in s: the sampling fraction required to reach
// `target_epsilon` given the base randomized-response epsilon. Returns a
// value clamped to (0, 1].
double SamplingFractionForEpsilon(double base_epsilon, double target_epsilon);

// Solves for the first-coin probability p that achieves `target_epsilon`
// for a fixed q at sampling fraction s = 1 (used by the budget initializer).
// Returns p in (0, 1).
double FirstCoinForEpsilon(double q, double target_epsilon);

}  // namespace privapprox::core

#endif  // PRIVAPPROX_CORE_PRIVACY_H_
