// Client-side simple random sampling (paper §3.2.1, Step I).
//
// The aggregator passes the sampling parameter s to clients as the
// probability of participating in the query answering process; each client
// flips a coin locally and decides whether to answer in this epoch. Sampling
// at the data source — not at a central collector — is what lets PrivApprox
// shed load at the very first stage of the pipeline and what turns
// differential privacy into zero-knowledge privacy (§4).

#ifndef PRIVAPPROX_CORE_SAMPLING_H_
#define PRIVAPPROX_CORE_SAMPLING_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace privapprox::core {

class SamplingPolicy {
 public:
  // `fraction` = s in (0, 1].
  explicit SamplingPolicy(double fraction);

  double fraction() const { return fraction_; }

  // The client-side coin flip for one epoch.
  bool ShouldParticipate(Xoshiro256& rng) const;

  // Simulation helper: draws the participation decision for `population`
  // clients, returning the participant indices.
  std::vector<size_t> SampleParticipants(size_t population,
                                         Xoshiro256& rng) const;

 private:
  double fraction_;
};

}  // namespace privapprox::core

#endif  // PRIVAPPROX_CORE_SAMPLING_H_
