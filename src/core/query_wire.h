// Wire serialization of queries and execution parameters (paper §3.1).
//
// The submission phase ships <Query, (s, p, q)> from the analyst through
// the aggregator and proxies to every client. This is that wire format: a
// versioned, length-prefixed binary encoding with explicit little-endian
// integer layout, so a malformed or truncated query blob is rejected
// instead of misparsed.

#ifndef PRIVAPPROX_CORE_QUERY_WIRE_H_
#define PRIVAPPROX_CORE_QUERY_WIRE_H_

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/budget.h"
#include "core/query.h"

namespace privapprox::core {

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& message)
      : std::runtime_error(message) {}
};

// The unit that travels from the aggregator to clients.
struct QueryAnnouncement {
  Query query;
  ExecutionParams params;

  bool operator==(const QueryAnnouncement& other) const = default;
};

inline bool operator==(const Query& a, const Query& b) {
  return a.query_id == b.query_id && a.sql == b.sql &&
         a.analyst_id == b.analyst_id && a.signature == b.signature &&
         a.answer_frequency_ms == b.answer_frequency_ms &&
         a.window_length_ms == b.window_length_ms &&
         a.sliding_interval_ms == b.sliding_interval_ms &&
         a.answer_format.num_buckets() == b.answer_format.num_buckets();
}

inline bool operator==(const ExecutionParams& a, const ExecutionParams& b) {
  return a.sampling_fraction == b.sampling_fraction &&
         a.randomization.p == b.randomization.p &&
         a.randomization.q == b.randomization.q;
}

// Serializes an announcement; never throws for valid inputs.
std::vector<uint8_t> SerializeAnnouncement(const QueryAnnouncement& ann);

// Parses an announcement. Throws WireError on truncation, bad magic, an
// unsupported version, or malformed bucket specs. Does NOT verify the
// analyst signature — clients do that themselves (Client::Subscribe).
// Takes a non-owning view; the vector overload exists for brace-init
// call sites.
QueryAnnouncement DeserializeAnnouncement(std::span<const uint8_t> bytes);
inline QueryAnnouncement DeserializeAnnouncement(
    const std::vector<uint8_t>& bytes) {
  return DeserializeAnnouncement(std::span<const uint8_t>(bytes));
}

// Self-describing multi-query share framing:
//   QID (8 bytes LE) | MID (8 bytes LE) | payload.
// On the hot path the per-(query, proxy) lane topic implies the QID, so
// share records there stay <MID, payload> and never pay these 8 bytes. The
// tagged frame exists for shares that leave their lane — today the fault
// layer's deferred-replay buffer, which must remember which lane a delayed
// share belongs to across epochs.
struct TaggedShareView {
  uint64_t query_id = 0;
  uint64_t message_id = 0;
  // The encrypted share payload (everything after the two headers).
  std::span<const uint8_t> payload;
  // The lane wire record <MID, payload> — the tagged frame minus the QID
  // header — ready to hand to a per-lane Receive path.
  std::span<const uint8_t> lane_record;
};

// Frames one share by prepending the QID header to a lane wire record
// <MID (8 B LE), payload>. Throws WireError if the record is shorter than
// its own MID header.
std::vector<uint8_t> SerializeTaggedShare(uint64_t query_id,
                                          std::span<const uint8_t> lane_record);

// Parses a tagged frame. Throws WireError when shorter than the two
// headers. The returned spans alias `bytes`.
TaggedShareView ParseTaggedShare(std::span<const uint8_t> bytes);

}  // namespace privapprox::core

#endif  // PRIVAPPROX_CORE_QUERY_WIRE_H_
