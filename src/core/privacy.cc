#include "core/privacy.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace privapprox::core {

double EpsilonDp(const RandomizationParams& params) {
  params.Validate();
  if (params.p >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double forced_yes = (1.0 - params.p) * params.q;
  return std::log((params.p + forced_yes) / forced_yes);
}

double AmplifyBySampling(double epsilon, double sampling_fraction) {
  if (!(sampling_fraction > 0.0 && sampling_fraction <= 1.0)) {
    throw std::invalid_argument(
        "AmplifyBySampling: sampling_fraction must be in (0, 1]");
  }
  if (epsilon < 0.0) {
    throw std::invalid_argument("AmplifyBySampling: epsilon must be >= 0");
  }
  return std::log1p(sampling_fraction * std::expm1(epsilon));
}

double EpsilonZk(const RandomizationParams& params, double sampling_fraction) {
  if (!(sampling_fraction > 0.0 && sampling_fraction <= 1.0)) {
    throw std::invalid_argument("EpsilonZk: sampling_fraction must be in (0, 1]");
  }
  const double eps_dp = EpsilonDp(params);
  if (std::isinf(eps_dp) || sampling_fraction >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double s = sampling_fraction;
  // Tech report Eq 19 (reproduces Table 1's epsilon column at s = 0.6).
  return std::log((1.0 + s * (2.0 - s) * std::expm1(eps_dp)) / (1.0 - s));
}

double SamplingFractionForEpsilonZk(const RandomizationParams& params,
                                    double target_epsilon_zk) {
  const double eps_dp = EpsilonDp(params);
  if (std::isinf(eps_dp)) {
    throw std::invalid_argument(
        "SamplingFractionForEpsilonZk: p = 1 has no finite zk level");
  }
  if (target_epsilon_zk <= 0.0) {
    throw std::invalid_argument(
        "SamplingFractionForEpsilonZk: target must be > 0");
  }
  // eps_zk is strictly increasing in s on (0, 1); bisect.
  double lo = 1e-9, hi = 1.0 - 1e-9;
  if (EpsilonZk(params, lo) >= target_epsilon_zk) {
    return lo;
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (EpsilonZk(params, mid) < target_epsilon_zk) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double SamplingFractionForEpsilon(double base_epsilon, double target_epsilon) {
  if (base_epsilon <= 0.0) {
    throw std::invalid_argument(
        "SamplingFractionForEpsilon: base_epsilon must be > 0");
  }
  if (target_epsilon >= base_epsilon) {
    return 1.0;  // no subsampling needed
  }
  if (target_epsilon <= 0.0) {
    throw std::invalid_argument(
        "SamplingFractionForEpsilon: target_epsilon must be > 0");
  }
  // Invert eps = ln(1 + s(e^base - 1)).
  const double s = std::expm1(target_epsilon) / std::expm1(base_epsilon);
  return std::min(1.0, std::max(std::numeric_limits<double>::min(), s));
}

double FirstCoinForEpsilon(double q, double target_epsilon) {
  if (!(q > 0.0 && q < 1.0)) {
    throw std::invalid_argument("FirstCoinForEpsilon: q must be in (0, 1)");
  }
  if (target_epsilon <= 0.0) {
    throw std::invalid_argument(
        "FirstCoinForEpsilon: target_epsilon must be > 0");
  }
  // Solve eps = ln((p + (1-p)q) / ((1-p)q)) for p:
  //   p = q (e^eps - 1) / (1 + q (e^eps - 1)).
  const double k = q * std::expm1(target_epsilon);
  return k / (1.0 + k);
}

}  // namespace privapprox::core
