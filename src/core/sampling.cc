#include "core/sampling.h"

#include <stdexcept>

namespace privapprox::core {

SamplingPolicy::SamplingPolicy(double fraction) : fraction_(fraction) {
  if (!(fraction > 0.0 && fraction <= 1.0)) {
    throw std::invalid_argument("SamplingPolicy: fraction must be in (0, 1]");
  }
}

bool SamplingPolicy::ShouldParticipate(Xoshiro256& rng) const {
  return rng.NextBernoulli(fraction_);
}

std::vector<size_t> SamplingPolicy::SampleParticipants(size_t population,
                                                       Xoshiro256& rng) const {
  std::vector<size_t> participants;
  participants.reserve(
      static_cast<size_t>(static_cast<double>(population) * fraction_) + 16);
  for (size_t i = 0; i < population; ++i) {
    if (ShouldParticipate(rng)) {
      participants.push_back(i);
    }
  }
  return participants;
}

}  // namespace privapprox::core
