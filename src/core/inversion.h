// Query inversion (paper §3.3.2).
//
// Utility of the de-biased result degrades when the truthful "yes" fraction
// is far from the second-coin parameter q (Fig 5a). When it is, the analyst
// can invert the query — count truthful "No" answers instead — which moves
// the counted fraction to 1 - y, closer to q, and recover the "Yes" count as
// N - E_no.

#ifndef PRIVAPPROX_CORE_INVERSION_H_
#define PRIVAPPROX_CORE_INVERSION_H_

#include "common/bitvector.h"
#include "core/randomized_response.h"

namespace privapprox::core {

// True when inverting brings the counted fraction closer to q, i.e.
// |(1 - y) - q| < |y - q| for the (estimated) yes-fraction y.
bool ShouldInvertQuery(double yes_fraction, double q);

// Client-side inversion of a truthful answer: each bucket bit is flipped, so
// a "1" now means "my answer is NOT in this bucket".
BitVector InvertAnswer(const BitVector& truthful);

// Recovers the estimated "Yes" count from a de-biased "No" count estimate
// over `total` answers.
double YesCountFromInverted(double estimated_no, double total);

}  // namespace privapprox::core

#endif  // PRIVAPPROX_CORE_INVERSION_H_
