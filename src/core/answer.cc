#include "core/answer.h"

#include <stdexcept>

namespace privapprox::core {

BitVector EncodeAnswer(const AnswerFormat& format, double value) {
  BitVector answer(format.num_buckets());
  if (const auto bucket = format.BucketOf(value); bucket.has_value()) {
    answer.Set(*bucket, true);
  }
  return answer;
}

BitVector EncodeAnswer(const AnswerFormat& format, const std::string& value) {
  BitVector answer(format.num_buckets());
  if (const auto bucket = format.BucketOf(value); bucket.has_value()) {
    answer.Set(*bucket, true);
  }
  return answer;
}

BitVector EmptyAnswer(const AnswerFormat& format) {
  return BitVector(format.num_buckets());
}

void AnswerAccumulator::Add(const BitVector& answer) {
  if (answer.size() != histogram_.num_buckets()) {
    throw std::invalid_argument("AnswerAccumulator::Add: width mismatch");
  }
  for (size_t i = 0; i < answer.size(); ++i) {
    if (answer.Get(i)) {
      histogram_.Add(i);
    }
  }
  ++num_answers_;
}

void AnswerAccumulator::Merge(const AnswerAccumulator& other) {
  histogram_.Merge(other.histogram_);
  num_answers_ += other.num_answers_;
}

}  // namespace privapprox::core
