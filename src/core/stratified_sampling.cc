#include "core/stratified_sampling.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special_functions.h"

namespace privapprox::core {

StratifiedExecutionPlan::StratifiedExecutionPlan(std::vector<Stratum> strata)
    : strata_(std::move(strata)) {
  if (strata_.empty()) {
    throw std::invalid_argument("StratifiedExecutionPlan: no strata");
  }
  for (const Stratum& stratum : strata_) {
    if (stratum.population == 0) {
      throw std::invalid_argument("StratifiedExecutionPlan: empty stratum");
    }
    if (!(stratum.sampling_fraction > 0.0 &&
          stratum.sampling_fraction <= 1.0)) {
      throw std::invalid_argument(
          "StratifiedExecutionPlan: s_h must be in (0, 1]");
    }
  }
}

StratifiedExecutionPlan StratifiedExecutionPlan::Proportional(
    const std::vector<size_t>& stratum_sizes, size_t total_answer_budget) {
  size_t population = 0;
  for (size_t size : stratum_sizes) {
    population += size;
  }
  if (population == 0) {
    throw std::invalid_argument(
        "StratifiedExecutionPlan::Proportional: empty population");
  }
  const double fraction = std::min(
      1.0, static_cast<double>(total_answer_budget) /
               static_cast<double>(population));
  std::vector<Stratum> strata;
  strata.reserve(stratum_sizes.size());
  for (size_t size : stratum_sizes) {
    strata.push_back(Stratum{size, std::max(fraction, 1e-9)});
  }
  return StratifiedExecutionPlan(std::move(strata));
}

const Stratum& StratifiedExecutionPlan::stratum(size_t h) const {
  if (h >= strata_.size()) {
    throw std::out_of_range("StratifiedExecutionPlan: bad stratum");
  }
  return strata_[h];
}

bool StratifiedExecutionPlan::ShouldParticipate(size_t h,
                                                Xoshiro256& rng) const {
  return rng.NextBernoulli(stratum(h).sampling_fraction);
}

double StratifiedExecutionPlan::ExpectedAnswers() const {
  double expected = 0.0;
  for (const Stratum& stratum : strata_) {
    expected += stratum.sampling_fraction *
                static_cast<double>(stratum.population);
  }
  return expected;
}

StratifiedQueryEstimator::StratifiedQueryEstimator(
    const StratifiedExecutionPlan& plan, RandomizationParams randomization,
    double confidence)
    : plan_(plan), rr_(randomization), confidence_(confidence) {
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument(
        "StratifiedQueryEstimator: confidence must be in (0, 1)");
  }
}

std::vector<stats::Estimate> StratifiedQueryEstimator::Estimate(
    const std::vector<StratumWindow>& windows) const {
  if (windows.size() != plan_.num_strata()) {
    throw std::invalid_argument(
        "StratifiedQueryEstimator: window count != strata count");
  }
  size_t num_buckets = 0;
  for (const StratumWindow& window : windows) {
    num_buckets = std::max(num_buckets, window.randomized_counts.num_buckets());
  }
  std::vector<stats::Estimate> estimates(num_buckets);
  for (size_t b = 0; b < num_buckets; ++b) {
    double value = 0.0;
    double variance = 0.0;
    double min_df = 1e18;
    size_t total_participants = 0;
    for (size_t h = 0; h < windows.size(); ++h) {
      const StratumWindow& window = windows[h];
      if (window.participants == 0) {
        continue;
      }
      if (b >= window.randomized_counts.num_buckets()) {
        throw std::invalid_argument(
            "StratifiedQueryEstimator: ragged bucket counts");
      }
      const double n_h = static_cast<double>(window.participants);
      const double u_h = static_cast<double>(plan_.stratum(h).population);
      total_participants += window.participants;
      const double debiased =
          rr_.DebiasCount(window.randomized_counts.Count(b), n_h);
      const double fraction = std::clamp(debiased / n_h, 0.0, 1.0);
      value += debiased * (u_h / n_h);
      // Sampling variance within the stratum (Eq 4, Bernoulli variance).
      if (window.participants < plan_.stratum(h).population) {
        variance += (u_h * u_h / n_h) * fraction * (1.0 - fraction) *
                    (u_h - n_h) / u_h;
      }
      // Randomization variance, scaled to the stratum population.
      const double sd_rr = rr_.DebiasStdDev(fraction, n_h) * (u_h / n_h);
      variance += sd_rr * sd_rr;
      min_df = std::min(min_df, n_h - 1.0);
    }
    stats::Estimate& est = estimates[b];
    est.value = value;
    est.confidence = confidence_;
    est.sample_size = total_participants;
    if (total_participants >= 2 && min_df >= 1.0) {
      const double t = stats::StudentTCriticalValue(confidence_, min_df);
      est.error = t * std::sqrt(std::max(0.0, variance));
    }
  }
  return estimates;
}

}  // namespace privapprox::core
