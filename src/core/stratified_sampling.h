// Client-side stratified sampling — the tech-report extension of §3.2.1 for
// populations whose clients' data streams follow different distributions
// ("we further extend our sampling mechanism with the stratified sampling
// technique to deal with varying distributions of data streams").
//
// The population is partitioned into strata by a coarse public attribute
// (region, device class). The plan assigns each stratum its own sampling
// fraction s_h — proportional allocation by default, or budget-driven —
// and the estimator combines per-stratum de-biased counts with the
// stratified variance, which beats plain SRS whenever stratum means differ
// (see bench_ablation_stratified).
//
// Stratum membership is treated as public metadata: clients tag their
// answers with the stratum index only (never an identity), so the
// aggregator can aggregate per stratum without linking answers to clients.

#ifndef PRIVAPPROX_CORE_STRATIFIED_SAMPLING_H_
#define PRIVAPPROX_CORE_STRATIFIED_SAMPLING_H_

#include <cstddef>
#include <vector>

#include "common/histogram.h"
#include "core/budget.h"
#include "core/randomized_response.h"
#include "stats/srs.h"

namespace privapprox::core {

struct Stratum {
  size_t population = 0;         // U_h
  double sampling_fraction = 1.0;  // s_h
};

class StratifiedExecutionPlan {
 public:
  // Explicit per-stratum fractions.
  explicit StratifiedExecutionPlan(std::vector<Stratum> strata);

  // Proportional allocation: spread a total per-epoch answer budget over
  // the strata in proportion to their sizes (each stratum sampled at the
  // same fraction, capped at 1), matching the tech report's default.
  static StratifiedExecutionPlan Proportional(
      const std::vector<size_t>& stratum_sizes, size_t total_answer_budget);

  size_t num_strata() const { return strata_.size(); }
  const Stratum& stratum(size_t h) const;

  // The sampling coin for a client in stratum h.
  bool ShouldParticipate(size_t h, Xoshiro256& rng) const;

  // Expected number of answers per epoch across all strata.
  double ExpectedAnswers() const;

 private:
  std::vector<Stratum> strata_;
};

// Combines per-stratum randomized per-bucket counts into population
// estimates: de-bias each stratum with Eq 5, scale by U_h / n_h, and add
// the per-stratum variances (stats::StratifiedSumEstimator semantics).
class StratifiedQueryEstimator {
 public:
  StratifiedQueryEstimator(const StratifiedExecutionPlan& plan,
                           RandomizationParams randomization,
                           double confidence = 0.95);

  struct StratumWindow {
    Histogram randomized_counts;  // per-bucket randomized yes counts
    size_t participants = 0;      // n_h
  };

  // One estimate per bucket; `windows` must have one entry per stratum.
  std::vector<stats::Estimate> Estimate(
      const std::vector<StratumWindow>& windows) const;

 private:
  const StratifiedExecutionPlan& plan_;
  RandomizedResponse rr_;
  double confidence_;
};

}  // namespace privapprox::core

#endif  // PRIVAPPROX_CORE_STRATIFIED_SAMPLING_H_
