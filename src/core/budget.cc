#include "core/budget.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/privacy.h"

namespace privapprox::core {
namespace {

constexpr double kMinSampling = 0.01;
constexpr double kDefaultP = 0.9;

double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

}  // namespace

void ExecutionParams::Validate() const {
  if (!(sampling_fraction > 0.0 && sampling_fraction <= 1.0)) {
    throw std::invalid_argument(
        "ExecutionParams: sampling_fraction must be in (0, 1]");
  }
  randomization.Validate();
}

double PredictAccuracyLoss(const ExecutionParams& params, size_t population,
                           double yes_fraction) {
  if (population == 0) {
    throw std::invalid_argument("PredictAccuracyLoss: empty population");
  }
  yes_fraction = Clamp(yes_fraction, 1e-6, 1.0 - 1e-6);
  const double u = static_cast<double>(population);
  const double s = params.sampling_fraction;
  const double n = std::max(1.0, s * u);  // expected participants
  const double p = params.randomization.p;
  const double q = params.randomization.q;
  const double y = yes_fraction;

  // Sampling standard error of the scaled count (U/N * sum of indicators):
  // Var = U^2/N * y(1-y) * (U-N)/U.
  const double var_sampling = (u * u / n) * y * (1.0 - y) * (u - n) / u;
  // Randomized-response standard error after de-biasing and scaling, with
  // the per-class Bernoulli variance (see RandomizedResponse::DebiasStdDev).
  const double pi_yes = p + (1.0 - p) * q;
  const double pi_no = (1.0 - p) * q;
  const double per_answer = y * pi_yes * (1.0 - pi_yes) +
                            (1.0 - y) * pi_no * (1.0 - pi_no);
  const double var_rr = (u * u) * per_answer / (n * p * p);

  const double stddev = std::sqrt(var_sampling + var_rr);
  const double truthful_count = u * y;
  // Expected |error| of a normal is sqrt(2/pi) * sigma.
  return std::sqrt(2.0 / M_PI) * stddev / truthful_count;
}

ExecutionParams BudgetInitializer::Convert(
    const QueryBudget& budget, const PopulationInfo& population) const {
  if (population.num_clients == 0) {
    throw std::invalid_argument("BudgetInitializer: empty population");
  }
  ExecutionParams params;
  // 1. Utility heuristic: center q on the expected yes-fraction (§6 #I shows
  //    accuracy loss is minimized when q matches the yes-fraction).
  params.randomization.q = Clamp(population.expected_yes_fraction, 0.1, 0.9);
  params.randomization.p = kDefaultP;
  params.sampling_fraction = 1.0;

  // 2. Privacy cap.
  if (budget.max_epsilon.has_value()) {
    const double target = *budget.max_epsilon;
    const double eps_default = EpsilonDp(params.randomization);
    if (eps_default > target) {
      // First try to meet it with p alone (bounded below to keep utility).
      const double p_needed =
          FirstCoinForEpsilon(params.randomization.q, target);
      params.randomization.p = Clamp(p_needed, 0.3, kDefaultP);
      const double eps_base = EpsilonDp(params.randomization);
      if (eps_base > target) {
        params.sampling_fraction = Clamp(
            SamplingFractionForEpsilon(eps_base, target), kMinSampling, 1.0);
      }
    }
  }

  // 3. Latency / resource caps bound s from above.
  const double u = static_cast<double>(population.num_clients);
  if (budget.max_latency_ms.has_value()) {
    const double max_answers = budget.answers_per_ms * *budget.max_latency_ms;
    params.sampling_fraction = std::min(
        params.sampling_fraction, Clamp(max_answers / u, kMinSampling, 1.0));
  }
  if (budget.max_answers.has_value()) {
    const double cap = static_cast<double>(*budget.max_answers);
    params.sampling_fraction = std::min(
        params.sampling_fraction, Clamp(cap / u, kMinSampling, 1.0));
  }

  // 4. Accuracy cap bounds s from below — never loosen the caps above.
  if (budget.max_accuracy_loss.has_value()) {
    const double target = *budget.max_accuracy_loss;
    double lo = kMinSampling;
    double hi = params.sampling_fraction;
    ExecutionParams probe = params;
    probe.sampling_fraction = hi;
    if (PredictAccuracyLoss(probe, population.num_clients,
                            population.expected_yes_fraction) <= target) {
      // Binary search for the cheapest s that still meets the target.
      for (int iter = 0; iter < 40; ++iter) {
        const double mid = 0.5 * (lo + hi);
        probe.sampling_fraction = mid;
        if (PredictAccuracyLoss(probe, population.num_clients,
                                population.expected_yes_fraction) <= target) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      params.sampling_fraction = hi;
    }
    // else: caps conflict; keep the capped s (privacy/resources win).
  }

  params.Validate();
  return params;
}

FeedbackController::FeedbackController(ExecutionParams initial,
                                       double target_accuracy_loss,
                                       std::optional<double> max_epsilon)
    : params_(initial), target_(target_accuracy_loss),
      max_epsilon_(max_epsilon) {
  params_.Validate();
  if (target_accuracy_loss <= 0.0) {
    throw std::invalid_argument("FeedbackController: target must be > 0");
  }
}

const ExecutionParams& FeedbackController::OnEpochCompleted(
    double measured_accuracy_loss) {
  if (measured_accuracy_loss > target_) {
    // Error too high: sample more aggressively next epoch.
    params_.sampling_fraction =
        std::min(1.0, params_.sampling_fraction * 1.5);
  } else if (measured_accuracy_loss < 0.5 * target_) {
    // Comfortably within budget: decay to save resources.
    params_.sampling_fraction =
        std::max(kMinSampling, params_.sampling_fraction * 0.9);
  }
  // Higher s weakens the subsampling amplification, so a privacy cap bounds
  // how far the feedback loop may raise s.
  if (max_epsilon_.has_value()) {
    const double eps_base = EpsilonDp(params_.randomization);
    if (eps_base > *max_epsilon_) {
      const double s_cap =
          SamplingFractionForEpsilon(eps_base, *max_epsilon_);
      params_.sampling_fraction = std::min(params_.sampling_fraction, s_cap);
    }
  }
  return params_;
}

}  // namespace privapprox::core
