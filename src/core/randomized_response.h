// Two-coin randomized response (paper §3.2.2, Eqs 5-8).
//
// For each answer bit: flip the first coin (heads with probability p). Heads
// -> report the truthful bit. Tails -> flip the second coin (heads with
// probability q) and report heads as "1"/tails as "0". The aggregator never
// sees a truthful answer it can rely on — privacy comes from plausible
// deniability — yet the aggregate de-biases exactly:
//
//   Ey = (Ry - (1-p) * q * N) / p                                (Eq 5)
//
// and the mechanism is eps-differentially private with
//
//   eps = ln( (p + (1-p)q) / ((1-p)q) )                          (Eq 8).

#ifndef PRIVAPPROX_CORE_RANDOMIZED_RESPONSE_H_
#define PRIVAPPROX_CORE_RANDOMIZED_RESPONSE_H_

#include <cstddef>

#include "common/bitvector.h"
#include "common/histogram.h"
#include "common/rng.h"

namespace privapprox::core {

struct RandomizationParams {
  double p = 0.9;  // probability of answering truthfully
  double q = 0.6;  // probability of a forced "yes"

  // Validates p in (0, 1], q in (0, 1); p == 1 means "no randomization"
  // (used to isolate the sampling error in Fig 4b).
  void Validate() const;
};

class RandomizedResponse {
 public:
  explicit RandomizedResponse(RandomizationParams params);

  const RandomizationParams& params() const { return params_; }

  // Randomizes a single truthful bit.
  bool RandomizeBit(bool truthful, Xoshiro256& rng) const;

  // Randomizes each bucket bit of a truthful answer independently.
  BitVector RandomizeAnswer(const BitVector& truthful, Xoshiro256& rng) const;

  // Eq 5: de-biased estimate of the truthful "yes" count from `randomized_yes`
  // observed among `total` randomized answers. Can be negative for small
  // counts; the caller decides whether to clamp (the estimators do not, to
  // keep the estimate unbiased).
  double DebiasCount(double randomized_yes, double total) const;

  // Applies Eq 5 bucket-wise: `randomized` holds per-bucket randomized "yes"
  // counts out of `total` answers.
  Histogram DebiasHistogram(const Histogram& randomized, double total) const;

  // Standard deviation of the de-biased estimate of one bucket count, given
  // the (approximate) truthful yes-fraction y. Each randomized bit is
  // Bernoulli(p + (1-p)q) for truthful-yes clients and Bernoulli((1-p)q)
  // for truthful-no clients, so
  //   Var(Ey) = N * [y*piY(1-piY) + (1-y)*piN(1-piN)] / p^2,
  // which correctly vanishes at p = 1 (no randomization).
  double DebiasStdDev(double yes_fraction, double total) const;

 private:
  RandomizationParams params_;
};

// Eq 6: accuracy loss eta = |actual - estimated| / actual. Returns 0 when
// the actual count is 0 (no reference to compare against).
double AccuracyLoss(double actual, double estimated);

}  // namespace privapprox::core

#endif  // PRIVAPPROX_CORE_RANDOMIZED_RESPONSE_H_
