// Query execution budget and the initializer that converts it into system
// parameters (paper §2.1, §3.1, §5).
//
// "The query execution budget can either be in the form of latency
// guarantees/SLAs, output quality/accuracy, or the computing resources for
// query processing." The aggregator's initializer module converts the budget
// into the sampling parameter (s) and randomization parameters (p, q) before
// distributing the query. A feedback controller re-tunes the parameters
// between epochs when the measured error exceeds the target (§5).

#ifndef PRIVAPPROX_CORE_BUDGET_H_
#define PRIVAPPROX_CORE_BUDGET_H_

#include <cstddef>
#include <optional>

#include "core/randomized_response.h"

namespace privapprox::core {

// The (s, p, q) triple every client receives along with the query.
struct ExecutionParams {
  double sampling_fraction = 1.0;  // s
  RandomizationParams randomization;  // p, q

  void Validate() const;
};

// What the analyst is willing to pay / requires. All fields optional; the
// initializer satisfies the tightest constraint set it can.
struct QueryBudget {
  // Privacy requirement: upper bound on the differential-privacy level after
  // sampling amplification (eps_s = ln(1 + s(e^eps_dp - 1))).
  std::optional<double> max_epsilon;
  // Utility requirement: upper bound on expected relative accuracy loss.
  std::optional<double> max_accuracy_loss;
  // Latency SLA: upper bound on per-epoch processing latency, paired with
  // the system's measured per-answer processing rate.
  std::optional<double> max_latency_ms;
  double answers_per_ms = 1000.0;  // calibrated processing rate
  // Resource cap: maximum number of client answers per epoch.
  std::optional<size_t> max_answers;
};

// Environment facts the initializer needs.
struct PopulationInfo {
  size_t num_clients = 0;
  // Analyst's prior for the per-bucket truthful yes-fraction; used both to
  // center q (utility is best when q is close to the yes fraction, §6 #I)
  // and to predict the accuracy loss analytically.
  double expected_yes_fraction = 0.5;
};

// Analytic prediction of the expected relative accuracy loss of one bucket
// count under (s, p, q) for a population of U clients with yes-fraction y.
// Combines the sampling and randomized-response standard errors the same way
// the error estimator does (they are independent, §6 #II).
double PredictAccuracyLoss(const ExecutionParams& params, size_t population,
                           double yes_fraction);

class BudgetInitializer {
 public:
  // Converts the analyst budget into execution parameters. Resolution order:
  //   1. q is centered on the expected yes-fraction (clamped to [0.1, 0.9]).
  //   2. A privacy cap fixes p (at s=1) and then tightens s further if the
  //      cap is still not met with the default p.
  //   3. Latency / resource caps bound s from above (s <= rate*T/U, n/U).
  //   4. An accuracy cap bounds s from below via PredictAccuracyLoss;
  //      if it conflicts with (2)/(3) the privacy and resource caps win and
  //      the result reports the achievable loss.
  // Throws std::invalid_argument for an empty population.
  ExecutionParams Convert(const QueryBudget& budget,
                          const PopulationInfo& population) const;
};

// Per-epoch feedback re-tuning (§5): if the measured error exceeds the
// target, raise the sampling fraction multiplicatively; if it is comfortably
// below, decay s to save budget. Never violates a privacy cap.
class FeedbackController {
 public:
  FeedbackController(ExecutionParams initial, double target_accuracy_loss,
                     std::optional<double> max_epsilon = std::nullopt);

  const ExecutionParams& params() const { return params_; }

  // Feeds the accuracy loss measured in the finished epoch; returns the
  // parameters to use for the next epoch.
  const ExecutionParams& OnEpochCompleted(double measured_accuracy_loss);

 private:
  ExecutionParams params_;
  double target_;
  std::optional<double> max_epsilon_;
};

}  // namespace privapprox::core

#endif  // PRIVAPPROX_CORE_BUDGET_H_
