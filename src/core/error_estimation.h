// Error-bound estimation for aggregate query results (paper §3.2.4).
//
// The accuracy loss has two statistically independent sources — sampling and
// randomized response (§6 #II) — so PrivApprox estimates each separately and
// adds them. Sampling error uses the SRS theory (Eqs 2-4, t-distribution
// margins); randomized-response error is either derived analytically from
// the de-biasing variance or calibrated empirically by running the
// randomization without sampling, exactly like the paper's micro-benchmark
// method.

#ifndef PRIVAPPROX_CORE_ERROR_ESTIMATION_H_
#define PRIVAPPROX_CORE_ERROR_ESTIMATION_H_

#include <cstddef>
#include <vector>

#include "common/histogram.h"
#include "core/budget.h"
#include "core/randomized_response.h"
#include "stats/srs.h"

namespace privapprox::core {

// One bucket of a query result: estimated truthful population count with a
// confidence bound.
struct BucketEstimate {
  stats::Estimate estimate;
  double randomized_count = 0.0;  // raw per-bucket count pre-debias
};

// A full windowed query result.
struct QueryResult {
  std::vector<BucketEstimate> buckets;
  size_t participants = 0;   // U' (answers aggregated in this window)
  size_t population = 0;     // U
  // Answers that should have reached this window but were lost to faults
  // (dropped/corrupted shares, expired join groups). A non-zero count
  // widens every bucket's error bound — see ErrorEstimator::Estimate.
  size_t lost_to_faults = 0;
  double confidence = 0.95;
  // The sampling fraction the estimate was computed under. Surfaces
  // budget-manager down-sampling in the result itself: a query admitted at
  // a reduced s reports that s (and the matching wider error bounds) here.
  double sampling_fraction = 1.0;

  // Per-bucket point estimates as a histogram.
  Histogram PointEstimates() const;
  // Mean relative accuracy loss against an exact reference histogram
  // (unweighted Eq 6 per bucket — sensitive to near-empty tail buckets).
  double AccuracyLossAgainst(const Histogram& exact) const;
  // Mass-weighted loss: sum_b |est_b - exact_b| / sum_b exact_b (normalized
  // L1 distance). The distribution-level metric the feedback loop steers
  // on, since it is not dominated by tail buckets.
  double WeightedAccuracyLossAgainst(const Histogram& exact) const;
};

class ErrorEstimator {
 public:
  ErrorEstimator(ExecutionParams params, size_t population,
                 double confidence = 0.95);

  // Turns the aggregator's raw per-bucket randomized counts (out of
  // `participants` answers) into de-biased, population-scaled estimates with
  // combined error bounds.
  //
  // `lost_to_faults` = answers the window should have held but that faults
  // removed before the join. Losing L answers at random from the intended
  // sample of n+L leaves the estimator with the smaller effective sample n;
  // the population-scaled variance grows by ~(n+L)/n, so each bucket's
  // margin widens by sqrt((n+L)/n) — the same sampling-error model as
  // Eq 4, applied to the fault-shrunk sample. L = 0 leaves every double
  // bit-identical to the two-argument call.
  QueryResult Estimate(const Histogram& randomized_counts, size_t participants,
                       size_t lost_to_faults = 0) const;

  // The two error components for one bucket, exposed for Fig 4b's
  // decomposition bench: stddev of the population-scaled count.
  double SamplingStdDev(double debiased_fraction, size_t participants) const;
  double RandomizationStdDev(double debiased_fraction,
                             size_t participants) const;

 private:
  ExecutionParams params_;
  size_t population_;
  double confidence_;
  RandomizedResponse rr_;
};

// Empirical calibration of the randomized-response accuracy loss, following
// the paper: "We run several micro-benchmarks at the beginning of the query
// answering process (without performing the sampling process) to estimate
// the accuracy loss caused by randomized response."
class RrCalibrator {
 public:
  RrCalibrator(RandomizationParams params, size_t num_answers,
               double yes_fraction);

  // Runs `trials` randomization rounds and returns the mean accuracy loss
  // (Eq 6) of the de-biased estimate.
  double MeasureAccuracyLoss(size_t trials, Xoshiro256& rng) const;

 private:
  RandomizationParams params_;
  size_t num_answers_;
  double yes_fraction_;
};

}  // namespace privapprox::core

#endif  // PRIVAPPROX_CORE_ERROR_ESTIMATION_H_
