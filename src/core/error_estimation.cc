#include "core/error_estimation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special_functions.h"

namespace privapprox::core {

Histogram QueryResult::PointEstimates() const {
  Histogram hist(buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) {
    hist.SetCount(i, buckets[i].estimate.value);
  }
  return hist;
}

double QueryResult::AccuracyLossAgainst(const Histogram& exact) const {
  return PointEstimates().MeanRelativeError(exact);
}

double QueryResult::WeightedAccuracyLossAgainst(const Histogram& exact) const {
  if (exact.num_buckets() != buckets.size()) {
    throw std::invalid_argument(
        "QueryResult::WeightedAccuracyLossAgainst: bucket count mismatch");
  }
  const double total = exact.Total();
  if (total <= 0.0) {
    return 0.0;
  }
  double abs_error = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    abs_error += std::fabs(buckets[i].estimate.value - exact.Count(i));
  }
  return abs_error / total;
}

ErrorEstimator::ErrorEstimator(ExecutionParams params, size_t population,
                               double confidence)
    : params_(params),
      population_(population),
      confidence_(confidence),
      rr_(params.randomization) {
  params_.Validate();
  if (population == 0) {
    throw std::invalid_argument("ErrorEstimator: empty population");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("ErrorEstimator: confidence must be in (0,1)");
  }
}

double ErrorEstimator::SamplingStdDev(double debiased_fraction,
                                      size_t participants) const {
  const double u = static_cast<double>(population_);
  const double n = static_cast<double>(participants);
  if (participants == 0 || participants >= population_) {
    return 0.0;  // no sampling (s = 1) contributes no sampling error
  }
  const double y = std::clamp(debiased_fraction, 0.0, 1.0);
  // Eq 4 with Bernoulli sample variance y(1-y).
  const double variance = (u * u / n) * y * (1.0 - y) * (u - n) / u;
  return std::sqrt(std::max(0.0, variance));
}

double ErrorEstimator::RandomizationStdDev(double debiased_fraction,
                                           size_t participants) const {
  if (participants == 0) {
    return 0.0;
  }
  const double n = static_cast<double>(participants);
  const double u = static_cast<double>(population_);
  const double y = std::clamp(debiased_fraction, 0.0, 1.0);
  // Stddev of the de-biased count among participants, scaled to population.
  const double sd_participants = rr_.DebiasStdDev(y, n);
  return sd_participants * (u / n);
}

QueryResult ErrorEstimator::Estimate(const Histogram& randomized_counts,
                                     size_t participants,
                                     size_t lost_to_faults) const {
  QueryResult result;
  result.participants = participants;
  result.population = population_;
  result.lost_to_faults = lost_to_faults;
  result.confidence = confidence_;
  result.sampling_fraction = params_.sampling_fraction;
  result.buckets.resize(randomized_counts.num_buckets());

  if (participants == 0) {
    return result;  // empty window: all-zero estimates, zero confidence info
  }
  const double n = static_cast<double>(participants);
  const double u = static_cast<double>(population_);
  // t critical value per Eq 3; for n == 1 fall back to the normal quantile.
  const double t =
      participants >= 2
          ? stats::StudentTCriticalValue(confidence_, n - 1.0)
          : stats::NormalQuantile(1.0 - (1.0 - confidence_) / 2.0);

  for (size_t i = 0; i < randomized_counts.num_buckets(); ++i) {
    BucketEstimate& bucket = result.buckets[i];
    bucket.randomized_count = randomized_counts.Count(i);
    const double debiased = rr_.DebiasCount(bucket.randomized_count, n);
    const double fraction = debiased / n;
    bucket.estimate.value = debiased * (u / n);  // scale to population (Eq 2)
    bucket.estimate.confidence = confidence_;
    bucket.estimate.sample_size = participants;
    const double sd_sampling = SamplingStdDev(fraction, participants);
    const double sd_rr = RandomizationStdDev(fraction, participants);
    // Independent components (§6 #II): variances add.
    bucket.estimate.error =
        t * std::sqrt(sd_sampling * sd_sampling + sd_rr * sd_rr);
  }
  if (lost_to_faults > 0) {
    // Fault widening: the intended sample was n + L answers; losing L of
    // them at random scales the estimator variance by (n + L) / n (see the
    // header). Applied only when L > 0 so fault-free estimates stay
    // bit-identical.
    const double widen = std::sqrt((n + static_cast<double>(lost_to_faults)) /
                                   n);
    for (auto& bucket : result.buckets) {
      bucket.estimate.error *= widen;
    }
  }
  return result;
}

RrCalibrator::RrCalibrator(RandomizationParams params, size_t num_answers,
                           double yes_fraction)
    : params_(params), num_answers_(num_answers), yes_fraction_(yes_fraction) {
  params_.Validate();
  if (num_answers == 0) {
    throw std::invalid_argument("RrCalibrator: num_answers must be > 0");
  }
  if (yes_fraction < 0.0 || yes_fraction > 1.0) {
    throw std::invalid_argument("RrCalibrator: yes_fraction must be in [0,1]");
  }
}

double RrCalibrator::MeasureAccuracyLoss(size_t trials,
                                         Xoshiro256& rng) const {
  const RandomizedResponse rr(params_);
  const double actual_yes =
      yes_fraction_ * static_cast<double>(num_answers_);
  const size_t yes_count = static_cast<size_t>(std::llround(actual_yes));
  double total_loss = 0.0;
  for (size_t trial = 0; trial < trials; ++trial) {
    size_t randomized_yes = 0;
    for (size_t i = 0; i < num_answers_; ++i) {
      const bool truthful = i < yes_count;
      if (rr.RandomizeBit(truthful, rng)) {
        ++randomized_yes;
      }
    }
    const double estimated =
        rr.DebiasCount(static_cast<double>(randomized_yes),
                       static_cast<double>(num_answers_));
    total_loss += AccuracyLoss(static_cast<double>(yes_count), estimated);
  }
  return trials == 0 ? 0.0 : total_loss / static_cast<double>(trials);
}

}  // namespace privapprox::core
