#include "core/inversion.h"

#include <cmath>

namespace privapprox::core {

bool ShouldInvertQuery(double yes_fraction, double q) {
  return std::fabs((1.0 - yes_fraction) - q) < std::fabs(yes_fraction - q);
}

BitVector InvertAnswer(const BitVector& truthful) {
  BitVector inverted(truthful.size());
  for (size_t i = 0; i < truthful.size(); ++i) {
    inverted.Set(i, !truthful.Get(i));
  }
  return inverted;
}

double YesCountFromInverted(double estimated_no, double total) {
  return total - estimated_no;
}

}  // namespace privapprox::core
