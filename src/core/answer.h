// Truthful answer encoding: value -> one-hot bucket bit vector (§2.2).
//
// "each query answer is represented in the form of binary buckets, where
// each bucket stores a value '1' or '0' depending on whether or not the
// answer falls into the value range represented by that bucket."

#ifndef PRIVAPPROX_CORE_ANSWER_H_
#define PRIVAPPROX_CORE_ANSWER_H_

#include <optional>
#include <string>

#include "common/bitvector.h"
#include "common/histogram.h"
#include "core/query.h"

namespace privapprox::core {

// Encodes a numeric query result as the one-hot answer vector. Values that
// fall into no bucket yield an all-zero vector (the client "has no answer"
// but still participates, so its absence cannot be inferred).
BitVector EncodeAnswer(const AnswerFormat& format, double value);

// Non-numeric variant.
BitVector EncodeAnswer(const AnswerFormat& format, const std::string& value);

// An all-zero answer of the right width (non-participating shape).
BitVector EmptyAnswer(const AnswerFormat& format);

// Accumulates per-bucket counts from (randomized or truthful) answers.
class AnswerAccumulator {
 public:
  explicit AnswerAccumulator(size_t num_buckets)
      : histogram_(num_buckets) {}

  void Add(const BitVector& answer);
  void Merge(const AnswerAccumulator& other);

  size_t num_answers() const { return num_answers_; }
  const Histogram& histogram() const { return histogram_; }

 private:
  Histogram histogram_;
  size_t num_answers_ = 0;
};

}  // namespace privapprox::core

#endif  // PRIVAPPROX_CORE_ANSWER_H_
