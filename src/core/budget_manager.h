// Fleet-wide privacy-budget ledger for the multi-query runtime.
//
// Every client answers every registered query, so the privacy cost a client
// pays is the *composition* of all live queries' mechanisms. Each query's
// per-epoch spend is its zero-knowledge privacy level eps_zk(s, p, q)
// (tech report Eq 19, core/privacy.h); queries draw independent
// randomized-response coins, so sequential composition applies and the
// cumulative spend is the sum over registered queries. The manager admits a
// query only while that sum stays under the configured fleet cap —
// refusing it outright, or (when allowed) down-sampling its `s` until the
// residual budget covers it. Down-sampling trades accuracy for admission:
// the reduced s widens the query's error bounds, which the estimator
// reports per result via QueryResult::sampling_fraction.
//
// The default cap is +infinity (admission never refused) so single-query
// deployments and exact-mode tests (p = 1, where eps is infinite by
// construction) keep working unchanged; the arithmetic only engages for a
// finite cap.

#ifndef PRIVAPPROX_CORE_BUDGET_MANAGER_H_
#define PRIVAPPROX_CORE_BUDGET_MANAGER_H_

#include <cstdint>
#include <limits>
#include <map>
#include <stdexcept>

#include "core/budget.h"

namespace privapprox::core {

// Thrown when a query cannot be admitted without blowing the fleet cap
// (and down-sampling is disabled, impossible, or insufficient).
class BudgetExceededError : public std::runtime_error {
 public:
  explicit BudgetExceededError(const std::string& message)
      : std::runtime_error(message) {}
};

struct BudgetManagerConfig {
  // Fleet-wide cap on the summed eps_zk across registered queries.
  // +infinity (the default) admits everything.
  double max_epsilon_zk = std::numeric_limits<double>::infinity();
  // When a query does not fit as requested, shrink its sampling fraction
  // until it does instead of refusing. Refusal still happens when even the
  // floor below cannot fit, or when eps_dp is infinite (p = 1), where no
  // finite sampling fraction has a finite cost.
  bool downsample_to_fit = true;
  // Floor under down-sampling: an s below this would make the query's
  // answers statistically useless, so refuse instead.
  double min_sampling_fraction = 1e-3;
};

// Outcome of an admission: the (possibly down-sampled) parameters the
// query must run with, plus the ledger arithmetic behind the decision.
struct BudgetAdmission {
  ExecutionParams params;
  bool downsampled = false;
  // eps_zk cost recorded for this query (may be +infinity under an
  // infinite cap).
  double epsilon_zk = 0.0;
  // Budget left after this admission (+infinity when the cap is).
  double remaining = 0.0;
};

class PrivacyBudgetManager {
 public:
  explicit PrivacyBudgetManager(BudgetManagerConfig config = {});

  // Admits `query_id` at `params`, down-sampling `s` if allowed and
  // needed. Throws std::invalid_argument for QID 0 or a QID already
  // registered, BudgetExceededError when the query cannot fit.
  BudgetAdmission Admit(uint64_t query_id, const ExecutionParams& params);

  // Re-prices an already-admitted query (the §5 feedback loop re-tunes
  // (s, p, q) between epochs). Equivalent to Release + Admit, atomically:
  // on refusal the previous registration is restored untouched.
  BudgetAdmission Update(uint64_t query_id, const ExecutionParams& params);

  // Removes a query from the ledger, returning its budget.
  void Release(uint64_t query_id);

  bool Has(uint64_t query_id) const { return spend_.count(query_id) != 0; }
  size_t num_queries() const { return spend_.size(); }
  // Summed eps_zk across registered queries.
  double spent() const;
  // max(0, cap - spent); +infinity when the cap is infinite.
  double remaining() const;
  const BudgetManagerConfig& config() const { return config_; }

 private:
  BudgetManagerConfig config_;
  std::map<uint64_t, double> spend_;  // QID -> admitted eps_zk
};

}  // namespace privapprox::core

#endif  // PRIVAPPROX_CORE_BUDGET_MANAGER_H_
