#include "core/randomized_response.h"

#include <cmath>
#include <stdexcept>

namespace privapprox::core {

void RandomizationParams::Validate() const {
  if (!(p > 0.0 && p <= 1.0)) {
    throw std::invalid_argument("RandomizationParams: p must be in (0, 1]");
  }
  if (!(q > 0.0 && q < 1.0)) {
    throw std::invalid_argument("RandomizationParams: q must be in (0, 1)");
  }
}

RandomizedResponse::RandomizedResponse(RandomizationParams params)
    : params_(params) {
  params_.Validate();
}

bool RandomizedResponse::RandomizeBit(bool truthful, Xoshiro256& rng) const {
  if (rng.NextBernoulli(params_.p)) {
    return truthful;  // first coin heads: answer truthfully
  }
  return rng.NextBernoulli(params_.q);  // second coin decides
}

BitVector RandomizedResponse::RandomizeAnswer(const BitVector& truthful,
                                              Xoshiro256& rng) const {
  BitVector randomized(truthful.size());
  for (size_t i = 0; i < truthful.size(); ++i) {
    randomized.Set(i, RandomizeBit(truthful.Get(i), rng));
  }
  return randomized;
}

double RandomizedResponse::DebiasCount(double randomized_yes,
                                       double total) const {
  // Eq 5.
  return (randomized_yes - (1.0 - params_.p) * params_.q * total) / params_.p;
}

Histogram RandomizedResponse::DebiasHistogram(const Histogram& randomized,
                                              double total) const {
  Histogram debiased(randomized.num_buckets());
  for (size_t i = 0; i < randomized.num_buckets(); ++i) {
    debiased.SetCount(i, DebiasCount(randomized.Count(i), total));
  }
  return debiased;
}

double RandomizedResponse::DebiasStdDev(double yes_fraction,
                                        double total) const {
  // Each randomized bit is Bernoulli with parameter pi_yes = p + (1-p)q for
  // truthful-yes clients and pi_no = (1-p)q for truthful-no clients, so
  //   Var(Ry) = N * [ y*pi_yes(1-pi_yes) + (1-y)*pi_no(1-pi_no) ]
  // (NOT the mixture-mean Bernoulli variance, which would wrongly report
  // noise even at p = 1, where responses are deterministic).
  const double pi_yes = params_.p + (1.0 - params_.p) * params_.q;
  const double pi_no = (1.0 - params_.p) * params_.q;
  const double per_answer = yes_fraction * pi_yes * (1.0 - pi_yes) +
                            (1.0 - yes_fraction) * pi_no * (1.0 - pi_no);
  const double variance = total * per_answer / (params_.p * params_.p);
  return std::sqrt(std::max(0.0, variance));
}

double AccuracyLoss(double actual, double estimated) {
  if (actual == 0.0) {
    return 0.0;
  }
  return std::fabs(actual - estimated) / std::fabs(actual);
}

}  // namespace privapprox::core
