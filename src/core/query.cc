#include "core/query.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace privapprox::core {
namespace {

// FNV-1a over a byte range, used by the signature stand-in.
uint64_t Fnv1a(uint64_t hash, const void* data, size_t len) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

bool WildcardMatch(const std::string& pattern, const std::string& text) {
  // Iterative glob matching with backtracking over the last '*'.
  size_t p = 0, t = 0;
  size_t star = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

}  // namespace

bool MatchBucket::Contains(const std::string& value) const {
  if (is_wildcard) {
    return WildcardMatch(pattern, value);
  }
  return pattern == value;
}

AnswerFormat AnswerFormat::UniformNumeric(double lo, double hi,
                                          size_t num_buckets,
                                          bool with_overflow) {
  if (num_buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("AnswerFormat::UniformNumeric: bad range");
  }
  std::vector<Bucket> buckets;
  buckets.reserve(num_buckets + (with_overflow ? 1 : 0));
  const double width = (hi - lo) / static_cast<double>(num_buckets);
  for (size_t i = 0; i < num_buckets; ++i) {
    buckets.push_back(NumericBucket{lo + width * static_cast<double>(i),
                                    lo + width * static_cast<double>(i + 1)});
  }
  if (with_overflow) {
    buckets.push_back(
        NumericBucket{hi, std::numeric_limits<double>::infinity()});
  }
  return AnswerFormat(std::move(buckets));
}

std::optional<size_t> AnswerFormat::BucketOf(double value) const {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (const auto* numeric = std::get_if<NumericBucket>(&buckets_[i]);
        numeric != nullptr && numeric->Contains(value)) {
      return i;
    }
  }
  return std::nullopt;
}

std::optional<size_t> AnswerFormat::BucketOf(const std::string& value) const {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (const auto* match = std::get_if<MatchBucket>(&buckets_[i]);
        match != nullptr && match->Contains(value)) {
      return i;
    }
  }
  return std::nullopt;
}

std::string AnswerFormat::BucketLabel(size_t index) const {
  if (index >= buckets_.size()) {
    throw std::out_of_range("AnswerFormat::BucketLabel: bad index");
  }
  std::ostringstream out;
  if (const auto* numeric = std::get_if<NumericBucket>(&buckets_[index])) {
    out << "[" << numeric->lo << ", ";
    if (std::isinf(numeric->hi)) {
      out << "+inf";
    } else {
      out << numeric->hi;
    }
    out << ")";
  } else {
    out << std::get<MatchBucket>(buckets_[index]).pattern;
  }
  return out.str();
}

uint64_t Query::ComputeSignature() const {
  uint64_t hash = 0xCBF29CE484222325ULL;
  hash = Fnv1a(hash, &query_id, sizeof(query_id));
  hash = Fnv1a(hash, &analyst_id, sizeof(analyst_id));
  hash = Fnv1a(hash, sql.data(), sql.size());
  hash = Fnv1a(hash, &answer_frequency_ms, sizeof(answer_frequency_ms));
  hash = Fnv1a(hash, &window_length_ms, sizeof(window_length_ms));
  hash = Fnv1a(hash, &sliding_interval_ms, sizeof(sliding_interval_ms));
  const uint64_t buckets = answer_format.num_buckets();
  hash = Fnv1a(hash, &buckets, sizeof(buckets));
  return hash;
}

QueryBuilder& QueryBuilder::WithId(uint64_t id) {
  query_.query_id = id;
  return *this;
}

QueryBuilder& QueryBuilder::WithAnalyst(uint64_t analyst_id) {
  query_.analyst_id = analyst_id;
  return *this;
}

QueryBuilder& QueryBuilder::WithSql(std::string sql) {
  query_.sql = std::move(sql);
  return *this;
}

QueryBuilder& QueryBuilder::WithAnswerFormat(AnswerFormat format) {
  query_.answer_format = std::move(format);
  return *this;
}

QueryBuilder& QueryBuilder::WithFrequencyMs(int64_t f_ms) {
  query_.answer_frequency_ms = f_ms;
  return *this;
}

QueryBuilder& QueryBuilder::WithWindowMs(int64_t w_ms) {
  query_.window_length_ms = w_ms;
  return *this;
}

QueryBuilder& QueryBuilder::WithSlideMs(int64_t delta_ms) {
  query_.sliding_interval_ms = delta_ms;
  return *this;
}

Query QueryBuilder::Build() const {
  if (query_.sql.empty()) {
    throw std::invalid_argument("QueryBuilder: SQL must be non-empty");
  }
  if (query_.answer_format.num_buckets() == 0) {
    throw std::invalid_argument("QueryBuilder: need at least one bucket");
  }
  if (query_.answer_frequency_ms <= 0 || query_.window_length_ms <= 0 ||
      query_.sliding_interval_ms <= 0) {
    throw std::invalid_argument("QueryBuilder: periods must be positive");
  }
  if (query_.sliding_interval_ms > query_.window_length_ms) {
    throw std::invalid_argument(
        "QueryBuilder: sliding interval must not exceed window length");
  }
  if (query_.query_id == 0) {
    // QID 0 is the wire default; letting it through would make an
    // unregistered announcement indistinguishable from a real one, and the
    // multi-query runtime uses 0 as "no lane".
    throw std::invalid_argument("QueryBuilder: query id must be non-zero");
  }
  Query query = query_;
  query.Sign();
  return query;
}

}  // namespace privapprox::core
