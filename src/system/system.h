// End-to-end wiring: clients + proxies + aggregator + analyst interface
// (paper Figure 3). This is the facade examples and case-study benches use.
//
// The driving model is discrete epochs: the harness feeds client databases,
// then calls RunEpoch(now) once per answer period. Each epoch runs the full
// pipeline — sampling/randomization/splitting at every client, transmission
// through every proxy, join/decrypt/window at the aggregator — and window
// results surface through the analyst callback once the event-time
// watermark passes their end.

#ifndef PRIVAPPROX_SYSTEM_SYSTEM_H_
#define PRIVAPPROX_SYSTEM_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "aggregator/aggregator.h"
#include "aggregator/historical.h"
#include "broker/broker.h"
#include "client/client.h"
#include "common/arena.h"
#include "common/thread_pool.h"
#include "core/budget.h"
#include "core/query.h"
#include "proxy/proxy.h"
#include "storage/segment_log.h"

namespace privapprox::system {

// How RunEpoch executes the answer path.
enum class EpochPipelineMode {
  // Four globally barriered phases: answer all clients, merge, forward all
  // proxies, drain. Simple, but no phase overlaps another.
  kBarrier,
  // Stage/channel dataflow (common/channel.h): client shards, per-proxy
  // forwarding, and aggregator decode run as concurrent stages connected by
  // bounded channels. A shard's share batch flows to the proxies the moment
  // it is produced; proxies forward while later shards are still answering;
  // the aggregator decodes and joins batches as they arrive, with a reorder
  // buffer keeping the join feed order deterministic. Results are
  // bit-identical to kBarrier (tests/parallel_epoch_test.cc).
  kStreaming,
};

struct SystemConfig {
  size_t num_clients = 100;
  size_t num_proxies = 2;
  uint64_t seed = 42;
  double confidence = 0.95;
  // Tee joined answers into the historical store (§3.3.1).
  bool enable_historical = false;
  // When non-empty (and historical is enabled), persist the historical
  // store to a durable segmented log under this directory — the HDFS
  // stand-in — instead of keeping it only in memory. RunHistorical then
  // reads back from disk.
  std::string historical_dir;
  // Clients answer the inverted query (§3.3.2).
  bool invert_answers = false;
  // Worker threads for the epoch pipeline (client answering, per-proxy
  // forwarding, per-source aggregator decode). 0 = hardware_concurrency.
  // Results are byte-identical for every value: workers fill per-client
  // slots and the merge into proxy topics happens in client-id order.
  size_t num_worker_threads = 0;
  // Answer-path execution shape (see EpochPipelineMode). Streaming is the
  // default; kBarrier remains for comparison benchmarks and as the
  // reference semantics.
  EpochPipelineMode pipeline_mode = EpochPipelineMode::kStreaming;
  // Streaming mode: capacity (in shard batches) of each inter-stage
  // channel — the backpressure knob. Larger values let fast stages run
  // further ahead; 1 degenerates to near-lockstep hand-off.
  size_t pipeline_depth = 8;
  // Streaming mode: clients per shard batch. Fixed (not derived from the
  // worker count) so the dataflow — and therefore every byte in the broker
  // and every join feed position — is identical at any thread count.
  // 0 = default (1024).
  size_t stream_shard_size = 0;
};

struct EpochStats {
  size_t participants = 0;   // clients that passed the sampling coin
  uint64_t shares_sent = 0;  // client -> proxy messages
  uint64_t shares_forwarded = 0;
  uint64_t shares_consumed = 0;
  // Records dropped this epoch because they failed to decode (truncated
  // share or garbage plaintext after the join) — the aggregator counts
  // them; this surfaces the per-epoch delta to RunEpoch callers.
  uint64_t malformed_dropped = 0;
};

class PrivApproxSystem {
 public:
  explicit PrivApproxSystem(SystemConfig config);
  ~PrivApproxSystem();

  size_t num_clients() const { return clients_.size(); }
  client::Client& client(size_t index) { return *clients_[index]; }

  // Analyst entry point: converts the budget into execution parameters via
  // the initializer and distributes the query to all clients. Returns the
  // chosen parameters.
  core::ExecutionParams SubmitQuery(const core::Query& query,
                                    const core::QueryBudget& budget,
                                    double expected_yes_fraction = 0.5);

  // Variant with explicit parameters (micro-benchmarks sweep them directly).
  void SubmitQuery(const core::Query& query,
                   const core::ExecutionParams& params);

  // Redistributes re-tuned execution parameters for the active query (§5
  // feedback loop) without disturbing in-flight window state: a fresh
  // announcement reaches every client and the aggregator's estimator
  // switches to the new (s, p, q).
  void UpdateParams(const core::ExecutionParams& params);

  // Runs one answering epoch at `now_ms`. Dispatches on
  // SystemConfig::pipeline_mode; both modes produce bit-identical results,
  // topic contents, and stats.
  EpochStats RunEpoch(int64_t now_ms);

  // Advances the watermark; fires completed windows into results().
  void AdvanceWatermark(int64_t watermark_ms);
  // Fires everything pending (end of run).
  void Flush();

  const std::vector<aggregator::WindowedResult>& results() const {
    return results_;
  }
  std::vector<aggregator::WindowedResult> TakeResults();

  // Bytes produced by clients into proxy inbound topics so far — the
  // client->proxy network traffic of Fig 9a.
  uint64_t ClientToProxyBytes() const;

  // Historical analytics over everything collected so far (§3.3.1);
  // requires enable_historical.
  core::QueryResult RunHistorical(int64_t from_ms, int64_t to_ms,
                                  const aggregator::BatchQueryBudget& budget);

  broker::Broker& broker() { return broker_; }
  aggregator::Aggregator& aggregator() { return *aggregator_; }
  size_t num_worker_threads() const { return pool_->num_threads(); }

 private:
  EpochStats RunEpochBarrier(int64_t now_ms);
  EpochStats RunEpochStreaming(int64_t now_ms);

  SystemConfig config_;
  broker::Broker broker_;
  // Share-encoding arenas, recycled across shards and epochs. Every
  // ArenaRef handed out lives only within one RunEpoch call, so the pool
  // (declared before the pipeline users) safely outlives them.
  ArenaPool arena_pool_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<client::Client>> clients_;
  std::vector<std::unique_ptr<proxy::Proxy>> proxies_;
  std::unique_ptr<aggregator::Aggregator> aggregator_;
  std::optional<core::Query> query_;
  std::optional<core::ExecutionParams> params_;
  std::vector<aggregator::WindowedResult> results_;
  aggregator::ResponseStore historical_store_;
  std::unique_ptr<storage::SegmentedAnswerLog> historical_log_;
  Xoshiro256 historical_rng_;
};

}  // namespace privapprox::system

#endif  // PRIVAPPROX_SYSTEM_SYSTEM_H_
