// End-to-end wiring: clients + proxies + aggregator + analyst interface
// (paper Figure 3). This is the facade examples and case-study benches use.
//
// The driving model is discrete epochs: the harness feeds client databases,
// then calls RunEpoch(now) once per answer period. Each epoch runs the full
// pipeline — sampling/randomization/splitting at every client, transmission
// through every proxy, join/decrypt/window at the aggregator — and window
// results surface through the analyst callback once the event-time
// watermark passes their end.
//
// Multi-query: one system hosts N concurrent queries over a single client
// fleet, broker, proxy tier, and aggregator. Each submitted query gets its
// own per-(query, proxy) broker lanes, its own aggregator lane (join +
// window + estimator), and a per-query slice of every epoch: clients answer
// all subscribed queries in one pass with a shared sampling draw but
// independent per-query randomization, so each query's results are
// bit-identical to a run where it is the only query. Admission runs through
// a fleet-wide privacy-budget manager (core/budget_manager.h): a query that
// would push the summed zero-knowledge-privacy spend past the configured
// cap is refused or down-sampled.
//
// Observability: the system owns a metrics::Registry. The core pipeline
// counters (epochs, participants, shares sent/forwarded/consumed, malformed
// drops) are always on — EpochStats is a per-epoch delta snapshot of them —
// while stage latency histograms, per-proxy and per-query families, channel
// depth high-watermarks, broker topic gauges, and the EpochTimeline trace
// are gated behind SystemConfig::metrics.

#ifndef PRIVAPPROX_SYSTEM_SYSTEM_H_
#define PRIVAPPROX_SYSTEM_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "aggregator/aggregator.h"
#include "aggregator/historical.h"
#include "broker/broker.h"
#include "client/client.h"
#include "common/arena.h"
#include "common/thread_pool.h"
#include "core/budget.h"
#include "core/budget_manager.h"
#include "core/query.h"
#include "fault/fault.h"
#include "metrics/metrics.h"
#include "metrics/timeline.h"
#include "proxy/proxy.h"
#include "storage/partition_log.h"
#include "storage/segment_log.h"
#include "transport/inproc_bus.h"

namespace privapprox::system {

// How RunEpoch executes the answer path.
enum class EpochPipelineMode {
  // Four globally barriered phases: answer all clients, merge, forward all
  // proxies, drain. Simple, but no phase overlaps another.
  kBarrier,
  // Stage/channel dataflow (common/channel.h): client shards, per-proxy
  // forwarding, and aggregator decode run as concurrent stages connected by
  // bounded channels. A shard's share batch flows to the proxies the moment
  // it is produced; proxies forward while later shards are still answering;
  // the aggregator decodes and joins batches as they arrive, with a reorder
  // buffer keeping the join feed order deterministic. Results are
  // bit-identical to kBarrier (tests/parallel_epoch_test.cc).
  kStreaming,
};

// Epoch pipeline execution knobs.
struct PipelineOptions {
  // Worker threads for the epoch pipeline (client answering, per-proxy
  // forwarding, per-source aggregator decode). 0 = hardware_concurrency.
  // Results are byte-identical for every value: workers fill per-client
  // slots and the merge into proxy topics happens in client-id order.
  size_t num_worker_threads = 0;
  // Answer-path execution shape (see EpochPipelineMode). Streaming is the
  // default; kBarrier remains for comparison benchmarks and as the
  // reference semantics.
  EpochPipelineMode mode = EpochPipelineMode::kStreaming;
  // Streaming mode: capacity (in shard batches) of each inter-stage
  // channel — the backpressure knob. Larger values let fast stages run
  // further ahead; 1 degenerates to near-lockstep hand-off.
  size_t depth = 8;
  // Streaming mode: clients per shard batch. Fixed (not derived from the
  // worker count) so the dataflow — and therefore every byte in the broker
  // and every join feed position — is identical at any thread count.
  // 0 = default (1024).
  size_t shard_size = 0;
};

// Aggregator scale-out knobs.
struct AggregatorOptions {
  // Join/window shards per query lane inside the aggregator: shares route
  // to shard hash(MID) % num_shards, feeding in parallel on the worker
  // pool with a deterministic shard-order merge at window-fire time.
  // Results are bit-identical for every value. 0 = one shard per worker
  // thread.
  size_t num_shards = 0;
};

// Historical analytics store (§3.3.1).
struct HistoricalOptions {
  // Tee joined answers into the historical store.
  bool enabled = false;
  // When non-empty (and the store is enabled), persist the historical store
  // to a durable segmented log under this directory — the HDFS stand-in —
  // instead of keeping it only in memory. RunHistorical then reads back
  // from disk.
  std::string dir;
};

// Observability knobs (see the header comment). Core counters stay on even
// when `enabled` is false — they are what EpochStats snapshots.
struct MetricsOptions {
  // Stage latency histograms, per-proxy/per-client/per-query families,
  // channel depth high-watermarks, and the broker topic collector.
  bool enabled = true;
  // Per-stage spans recorded into the EpochTimeline (dump via
  // TimelineJson() as chrome://tracing JSON). Off by default: spans cost a
  // mutexed append per shard batch.
  bool timeline = false;
};

// Durable topic spill. Empty data_dir (the default) keeps every broker
// topic memory-only — byte-identical to previous releases; non-empty roots
// per-partition segment logs at <data_dir>/<topic>/p<k> and the system's
// broker recovers whatever a previous incarnation left there before any
// component attaches.
struct BrokerOptions {
  std::string data_dir;
  storage::PartitionLogOptions log;
};

// Fleet-wide privacy-budget knobs (core/budget_manager.h). The default cap
// is infinite, so single-query configs and exact-mode tests admit
// unconditionally; set max_epsilon_zk to enforce composition across
// queries.
struct BudgetOptions {
  double max_epsilon_zk = std::numeric_limits<double>::infinity();
  bool downsample_to_fit = true;
  double min_sampling_fraction = 1e-3;
};

struct SystemConfig {
  size_t num_clients = 100;
  size_t num_proxies = 2;
  uint64_t seed = 42;
  double confidence = 0.95;
  // Clients answer the inverted query (§3.3.2).
  bool invert_answers = false;

  // Queries to register at construction, in order (equivalent to calling
  // SubmitQuery for each right after the constructor). More can be
  // submitted later; all run concurrently over the same fleet.
  struct QuerySpec {
    core::Query query;
    core::ExecutionParams params;
  };
  std::vector<QuerySpec> queries;
  BudgetOptions budget;

  PipelineOptions pipeline;
  AggregatorOptions aggregator;
  BrokerOptions broker;
  HistoricalOptions historical;
  MetricsOptions metrics;
  // Deterministic fault injection + recovery (src/fault/fault.h). Unset
  // means no injector is built and every epoch is byte-identical to a
  // build without the fault layer — results, broker topic contents, and
  // EpochStats (the bit-identity invariant tests/fault_test.cc pins).
  // A set plan derives every fault from (plan.seed, QID, MID, proxy)
  // hashes, so both pipeline modes see identical faults at any worker
  // count and every query gets an independent replayable fault sequence.
  std::optional<fault::FaultPlan> fault;

  // --- Deprecated aliases (pre-observability flat names) ----------------
  // Kept for one release so existing call sites keep compiling; a value
  // set here is folded into the nested struct by Resolved() unless the
  // nested field was itself changed from its default (nested wins). Use
  // `historical.*`, `pipeline.*` instead.
  bool enable_historical = false;            // -> historical.enabled
  std::string historical_dir;                // -> historical.dir
  size_t num_worker_threads = 0;             // -> pipeline.num_worker_threads
  EpochPipelineMode pipeline_mode =
      EpochPipelineMode::kStreaming;         // -> pipeline.mode
  size_t pipeline_depth = 8;                 // -> pipeline.depth
  size_t stream_shard_size = 0;              // -> pipeline.shard_size

  // Returns a copy with every legacy alias folded into its nested field.
  // PrivApproxSystem resolves its config on construction; call this
  // directly when reading a config that may still use the flat names.
  SystemConfig Resolved() const;
};

struct EpochStats {
  // (client, query) pairs that passed the sampling coin this epoch. With
  // one query this is exactly the classic "clients that participated".
  size_t participants = 0;
  uint64_t shares_sent = 0;  // client -> proxy messages
  uint64_t shares_forwarded = 0;
  uint64_t shares_consumed = 0;
  // Records dropped this epoch because they failed to decode (truncated
  // share or garbage plaintext after the join) — the aggregator counts
  // them; this surfaces the per-epoch delta to RunEpoch callers.
  uint64_t malformed_dropped = 0;
  // Fault-injection and recovery deltas (all zero when SystemConfig::fault
  // is unset). Per-epoch deltas of the privapprox_fault_* /
  // privapprox_recovery_* registry counters.
  uint64_t fault_shares_dropped = 0;
  uint64_t fault_shares_corrupted = 0;
  uint64_t fault_shares_duplicated = 0;
  uint64_t fault_shares_delayed = 0;
  uint64_t fault_forward_timeouts = 0;
  uint64_t fault_proxy_crashes = 0;
  uint64_t fault_lost_mids = 0;  // (QID, MID) pairs that can never join
  uint64_t recovery_retries = 0;
  uint64_t recovery_failovers = 0;
  uint64_t recovery_late_delivered = 0;  // deferred shares replayed
};

class PrivApproxSystem {
 public:
  explicit PrivApproxSystem(SystemConfig config);
  ~PrivApproxSystem();

  size_t num_clients() const { return clients_.size(); }
  client::Client& client(size_t index) { return *clients_[index]; }

  // Analyst entry point: converts the budget into execution parameters via
  // the initializer, runs privacy-budget admission, and distributes the
  // query to all clients. Returns the parameters actually admitted (the
  // budget manager may have down-sampled `s`).
  core::ExecutionParams SubmitQuery(const core::Query& query,
                                    const core::QueryBudget& budget,
                                    double expected_yes_fraction = 0.5);

  // Variant with explicit parameters (micro-benchmarks sweep them
  // directly). Also returns the admitted parameters. Throws
  // core::BudgetExceededError when the query cannot fit under
  // SystemConfig::budget, std::invalid_argument for a duplicate QID.
  core::ExecutionParams SubmitQuery(const core::Query& query,
                                    const core::ExecutionParams& params);

  // Redistributes re-tuned execution parameters for one query (§5
  // feedback loop) without disturbing in-flight window state: the budget
  // manager re-prices the query, a fresh announcement reaches every
  // client, and the query's estimator switches to the admitted (s, p, q).
  // Returns the admitted parameters. The QID-less overload is the
  // single-query shim.
  core::ExecutionParams UpdateParams(uint64_t query_id,
                                     const core::ExecutionParams& params);
  core::ExecutionParams UpdateParams(const core::ExecutionParams& params);

  size_t num_queries() const { return active_.size(); }
  // Registered QIDs in ascending order.
  std::vector<uint64_t> query_ids() const;
  // The admitted execution parameters a query currently runs with.
  const core::ExecutionParams& query_params(uint64_t query_id) const;
  core::PrivacyBudgetManager& budget_manager() { return budget_manager_; }

  // Runs one answering epoch at `now_ms`, driving every registered query.
  // Dispatches on SystemConfig::pipeline.mode; both modes produce
  // bit-identical results, topic contents, and stats. The returned stats
  // are the epoch's delta of the registry's core pipeline counters.
  EpochStats RunEpoch(int64_t now_ms);

  // Advances the watermark on every query lane; fires completed windows
  // into results().
  void AdvanceWatermark(int64_t watermark_ms);
  // Fires everything pending (end of run), all queries.
  void Flush();

  const std::vector<aggregator::WindowedResult>& results() const {
    return results_;
  }
  std::vector<aggregator::WindowedResult> TakeResults();

  // Bytes produced by clients into proxy inbound topics (all lanes) so far
  // — the client->proxy network traffic of Fig 9a.
  uint64_t ClientToProxyBytes() const;

  // Historical analytics over everything collected so far (§3.3.1);
  // requires historical.enabled and exactly one registered query (the
  // store is not QID-partitioned).
  core::QueryResult RunHistorical(int64_t from_ms, int64_t to_ms,
                                  const aggregator::BatchQueryBudget& budget);

  // --- Observability ----------------------------------------------------
  metrics::Registry& metrics_registry() { return registry_; }
  metrics::EpochTimeline& timeline() { return timeline_; }
  // Prometheus-style text exposition of every registered family — the
  // `/metrics` dump (README quickstart).
  std::string MetricsText() { return registry_.RenderText(); }
  std::string MetricsJson() { return registry_.RenderJson(); }
  // chrome://tracing JSON of the spans recorded so far (empty trace unless
  // SystemConfig::metrics.timeline is on).
  std::string TimelineJson() const { return timeline_.ToChromeTracingJson(); }

  broker::Broker& broker() { return broker_; }
  // The in-process transport every component speaks — the deterministic
  // counterpart of the daemons' TCP buses.
  transport::InProcessBus& bus() { return bus_; }
  aggregator::Aggregator& aggregator() { return *aggregator_; }
  size_t num_worker_threads() const { return pool_->num_threads(); }

 private:
  // One registered query's system-side state.
  struct ActiveQuery {
    core::Query query;
    core::ExecutionParams params;  // admitted (possibly down-sampled)
    // Per-query labeled instruments; null unless metrics.enabled.
    metrics::Counter* participants_total = nullptr;
    metrics::Counter* shares_sent_total = nullptr;
  };

  void RunEpochBarrier(int64_t now_ms);
  void RunEpochStreaming(int64_t now_ms);
  void ReplayDeferredShares();
  void DistributeAnnouncement(const core::Query& query,
                              const core::ExecutionParams& params,
                              const char* failure_what);
  ActiveQuery& GetActive(uint64_t query_id, const char* caller);
  const ActiveQuery& SingleActive(const char* caller) const;

  SystemConfig config_;
  // Declared before every pipeline component: proxies, clients, and the
  // aggregator hold bare pointers to registry instruments, so the registry
  // must outlive them (members destroy in reverse declaration order).
  metrics::Registry registry_;
  metrics::EpochTimeline timeline_;
  // Always-on core pipeline counters backing EpochStats (owned by the
  // registry; registered once at construction).
  struct CoreCounters {
    metrics::Counter* epochs = nullptr;
    metrics::Counter* participants = nullptr;
    metrics::Counter* shares_sent = nullptr;
    metrics::Counter* shares_forwarded = nullptr;
    metrics::Counter* shares_consumed = nullptr;
    metrics::Counter* malformed = nullptr;
  };
  CoreCounters counters_;
  // Stage latency histograms; null unless metrics.enabled.
  struct StageHistograms {
    metrics::Histogram* answer_shard_ns = nullptr;
    metrics::Histogram* proxy_forward_ns = nullptr;
    metrics::Histogram* agg_consume_ns = nullptr;
    metrics::Histogram* epoch_ns = nullptr;
  };
  StageHistograms stage_ns_;
  broker::Broker broker_;
  // The single in-process MessageBus all proxies, the aggregator, and
  // announcement distribution run over (declared right after the broker it
  // wraps, before every component holding a reference to it).
  transport::InProcessBus bus_{broker_};
  // Share-encoding arenas, recycled across shards and epochs. Every
  // ArenaRef handed out lives only within one RunEpoch call, so the pool
  // (declared before the pipeline users) safely outlives them.
  ArenaPool arena_pool_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<client::Client>> clients_;
  std::vector<std::unique_ptr<proxy::Proxy>> proxies_;
  // Fault layer (null/empty unless SystemConfig::fault is set). Standby
  // proxy j shares primary j's outbound lane topics, so failover is
  // invisible to the aggregator's n-source join.
  fault::FaultCounters fault_counters_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<std::unique_ptr<proxy::Proxy>> standby_proxies_;
  uint64_t epoch_index_ = 0;  // keys the per-epoch proxy crash draw
  core::PrivacyBudgetManager budget_manager_;
  std::unique_ptr<aggregator::Aggregator> aggregator_;
  std::map<uint64_t, ActiveQuery> active_;  // QID -> query, ascending
  std::vector<aggregator::WindowedResult> results_;
  aggregator::ResponseStore historical_store_;
  std::unique_ptr<storage::SegmentedAnswerLog> historical_log_;
  Xoshiro256 historical_rng_;
};

}  // namespace privapprox::system

#endif  // PRIVAPPROX_SYSTEM_SYSTEM_H_
