#include "system/system.h"

#include "common/channel.h"
#include "common/simd_dispatch.h"
#include "core/query_wire.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>

namespace privapprox::system {

SystemConfig SystemConfig::Resolved() const {
  SystemConfig resolved = *this;
  // Fold each legacy alias into its nested field unless the nested field
  // was itself changed from its default (nested wins over legacy).
  if (enable_historical && !resolved.historical.enabled) {
    resolved.historical.enabled = true;
  }
  if (!historical_dir.empty() && resolved.historical.dir.empty()) {
    resolved.historical.dir = historical_dir;
  }
  if (num_worker_threads != 0 && resolved.pipeline.num_worker_threads == 0) {
    resolved.pipeline.num_worker_threads = num_worker_threads;
  }
  if (pipeline_mode != EpochPipelineMode::kStreaming &&
      resolved.pipeline.mode == EpochPipelineMode::kStreaming) {
    resolved.pipeline.mode = pipeline_mode;
  }
  if (pipeline_depth != 8 && resolved.pipeline.depth == 8) {
    resolved.pipeline.depth = pipeline_depth;
  }
  if (stream_shard_size != 0 && resolved.pipeline.shard_size == 0) {
    resolved.pipeline.shard_size = stream_shard_size;
  }
  // Mirror back so code reading either name sees the resolved value.
  resolved.enable_historical = resolved.historical.enabled;
  resolved.historical_dir = resolved.historical.dir;
  resolved.num_worker_threads = resolved.pipeline.num_worker_threads;
  resolved.pipeline_mode = resolved.pipeline.mode;
  resolved.pipeline_depth = resolved.pipeline.depth;
  resolved.stream_shard_size = resolved.pipeline.shard_size;
  return resolved;
}

namespace {

// Times one pipeline stage into an optional histogram and, when tracing is
// on, records it as a timeline span. Reads the clock only when at least one
// sink is active, so disabled metrics keep the hot path clock-free.
class StageScope {
 public:
  StageScope(const char* name, metrics::Histogram* hist,
             metrics::EpochTimeline& timeline)
      : name_(name),
        hist_(hist),
        timeline_(timeline.enabled() ? &timeline : nullptr) {
    if (hist_ != nullptr || timeline_ != nullptr) {
      start_ns_ = metrics::EpochTimeline::NowNs();
    }
  }
  ~StageScope() {
    if (hist_ == nullptr && timeline_ == nullptr) {
      return;
    }
    const int64_t end_ns = metrics::EpochTimeline::NowNs();
    if (hist_ != nullptr) {
      hist_->Observe(static_cast<uint64_t>(end_ns - start_ns_));
    }
    if (timeline_ != nullptr) {
      timeline_->Record(name_, start_ns_, end_ns);
    }
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  const char* name_;
  metrics::Histogram* hist_;
  metrics::EpochTimeline* timeline_;
  int64_t start_ns_ = 0;
};

}  // namespace

PrivApproxSystem::PrivApproxSystem(SystemConfig config)
    : config_(config.Resolved()),
      timeline_(config_.metrics.timeline),
      budget_manager_(core::BudgetManagerConfig{
          config_.budget.max_epsilon_zk, config_.budget.downsample_to_fit,
          config_.budget.min_sampling_fraction}),
      historical_rng_(config.seed ^ 0xA5A5A5A5ULL) {
  if (config_.num_clients == 0) {
    throw std::invalid_argument("PrivApproxSystem: need >= 1 client");
  }
  if (config_.num_proxies < 2) {
    throw std::invalid_argument("PrivApproxSystem: need >= 2 proxies");
  }

  // Durability must precede every topic: the proxies below create theirs in
  // their constructors, and a recovered topic must replay before anything
  // attaches to it.
  if (!config_.broker.data_dir.empty()) {
    broker_.EnableDurability(
        {config_.broker.data_dir, config_.broker.log});
    broker_.RecoverTopics();
  }

  // The crypto hot path's SIMD tier, decided once per process
  // (PRIVAPPROX_SIMD override; common/simd_dispatch.h) — surfaced so bench
  // artifacts and scrapes record which kernels produced the numbers.
  registry_
      .GetGauge("privapprox_simd_isa",
                "Active SIMD dispatch tier for the ChaCha20/XOR hot path "
                "(1 = the labeled ISA is active)",
                {{"isa", simd::IsaName(simd::ActiveIsa())}})
      .Set(1);

  // Always-on core counters: EpochStats is a per-epoch delta of these.
  counters_.epochs = &registry_.GetCounter(
      "privapprox_epochs_total", "Answering epochs run");
  counters_.participants = &registry_.GetCounter(
      "privapprox_participants_total",
      "(client, query) pairs that passed the sampling coin, summed over "
      "epochs");
  counters_.shares_sent = &registry_.GetCounter(
      "privapprox_shares_sent_total", "Client -> proxy share messages");
  counters_.shares_forwarded = &registry_.GetCounter(
      "privapprox_shares_forwarded_total",
      "Shares moved proxy inbound -> outbound");
  counters_.shares_consumed = &registry_.GetCounter(
      "privapprox_shares_consumed_total",
      "Records consumed by the aggregator (including malformed)");
  counters_.malformed = &registry_.GetCounter(
      "privapprox_malformed_dropped_total",
      "Records dropped as undecodable (truncated share or garbage "
      "plaintext)");
  if (config_.metrics.enabled) {
    const std::string stage_help =
        "Stage latency in nanoseconds (one observation per stage execution)";
    stage_ns_.answer_shard_ns = &registry_.GetHistogram(
        "privapprox_stage_ns", stage_help, {{"stage", "answer_shard"}});
    stage_ns_.proxy_forward_ns = &registry_.GetHistogram(
        "privapprox_stage_ns", stage_help, {{"stage", "proxy_forward"}});
    stage_ns_.agg_consume_ns = &registry_.GetHistogram(
        "privapprox_stage_ns", stage_help, {{"stage", "agg_consume"}});
    stage_ns_.epoch_ns = &registry_.GetHistogram(
        "privapprox_stage_ns", stage_help, {{"stage", "epoch"}});
  }

  const size_t threads =
      config_.pipeline.num_worker_threads != 0
          ? config_.pipeline.num_worker_threads
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  pool_ = std::make_unique<ThreadPool>(threads);

  proxies_.reserve(config_.num_proxies);
  for (size_t i = 0; i < config_.num_proxies; ++i) {
    proxy::ProxyConfig proxy_config;
    proxy_config.proxy_index = i;
    proxy_config.num_partitions = 4;
    const metrics::Labels labels{{"proxy", std::to_string(i)}};
    proxy_config.received_total = &registry_.GetCounter(
        "privapprox_proxy_received_total",
        "Records accepted into each proxy's inbound topic", labels);
    proxy_config.forwarded_total = &registry_.GetCounter(
        "privapprox_proxy_forwarded_total",
        "Records each proxy moved inbound -> outbound", labels);
    if (config_.metrics.enabled) {
      proxy_config.forward_ns = &registry_.GetHistogram(
          "privapprox_proxy_forward_ns",
          "Per-call proxy forward latency in nanoseconds", labels);
    }
    proxies_.push_back(
        std::make_unique<proxy::Proxy>(proxy_config, bus_));
  }

  if (config_.fault.has_value()) {
    const fault::FaultPlan& plan = *config_.fault;
    plan.Validate();
    fault_counters_.shares_dropped = &registry_.GetCounter(
        "privapprox_fault_shares_dropped_total",
        "Shares dropped in transit by the fault injector");
    fault_counters_.shares_corrupted = &registry_.GetCounter(
        "privapprox_fault_shares_corrupted_total",
        "Shares truncated below the MID header by the fault injector");
    fault_counters_.shares_duplicated = &registry_.GetCounter(
        "privapprox_fault_shares_duplicated_total",
        "Shares delivered twice by the fault injector");
    fault_counters_.shares_delayed = &registry_.GetCounter(
        "privapprox_fault_shares_delayed_total",
        "Shares deferred to the next epoch by the degraded link");
    fault_counters_.forward_timeouts = &registry_.GetCounter(
        "privapprox_fault_forward_timeouts_total",
        "Client -> proxy forward attempts that timed out");
    fault_counters_.proxy_crashes = &registry_.GetCounter(
        "privapprox_fault_proxy_crashes_total",
        "Proxy-epochs spent crashed (restart at the next epoch)");
    fault_counters_.lost_mids = &registry_.GetCounter(
        "privapprox_fault_lost_mids_total",
        "Distinct (query, MID) pairs the injector knows can never join");
    fault_counters_.retries = &registry_.GetCounter(
        "privapprox_recovery_retries_total",
        "Forward attempts retried after a timeout");
    fault_counters_.failovers = &registry_.GetCounter(
        "privapprox_recovery_failovers_total",
        "Shares delivered via a standby proxy after retries were exhausted");
    fault_counters_.late_delivered = &registry_.GetCounter(
        "privapprox_recovery_late_delivered_total",
        "Deferred shares replayed at the start of a later epoch");
    fault_counters_.backoff_ms = &registry_.GetHistogram(
        "privapprox_recovery_backoff_ms",
        "Simulated retry backoff per timed-out forward in milliseconds");
    // Standbys exist only for plans that can time a forward out — an
    // always-reachable plan must not alter the broker topic set.
    const bool standby = plan.standby_proxies && plan.CanTimeOut();
    if (standby) {
      standby_proxies_.reserve(config_.num_proxies);
      for (size_t i = 0; i < config_.num_proxies; ++i) {
        proxy::ProxyConfig standby_config;
        standby_config.proxy_index = i;
        standby_config.num_partitions = 4;
        standby_config.topic_prefix = "standby" + std::to_string(i);
        standby_config.out_topic = proxies_[i]->out_topic();
        // Lane outbound topics must also be the primary's, so failover
        // shares land in the per-query streams the aggregator joins.
        standby_config.out_prefix = "proxy" + std::to_string(i);
        const metrics::Labels labels{{"proxy", std::to_string(i)}};
        standby_config.received_total = &registry_.GetCounter(
            "privapprox_standby_received_total",
            "Records accepted into each standby proxy's inbound topic",
            labels);
        standby_config.forwarded_total = &registry_.GetCounter(
            "privapprox_standby_forwarded_total",
            "Records each standby proxy moved inbound -> outbound", labels);
        standby_proxies_.push_back(
            std::make_unique<proxy::Proxy>(standby_config, bus_));
      }
    }
    injector_ = std::make_unique<fault::FaultInjector>(plan, fault_counters_,
                                                       standby);
  }

  metrics::Counter* client_answers = nullptr;
  metrics::Counter* client_skips = nullptr;
  if (config_.metrics.enabled) {
    client_answers = &registry_.GetCounter(
        "privapprox_client_answers_total",
        "Client (query, epoch) pairs answered (sampling coin heads)");
    client_skips = &registry_.GetCounter(
        "privapprox_client_skips_total",
        "Client (query, epoch) pairs skipped (sampling coin tails)");
  }
  clients_.reserve(config_.num_clients);
  for (size_t i = 0; i < config_.num_clients; ++i) {
    client::ClientConfig client_config;
    client_config.client_id = i;
    client_config.num_proxies = config_.num_proxies;
    client_config.seed = config_.seed;
    client_config.invert_answers = config_.invert_answers;
    client_config.answers_total = client_answers;
    client_config.skips_total = client_skips;
    clients_.push_back(std::make_unique<client::Client>(client_config));
  }

  // The aggregator coordinator exists from construction; queries add lanes
  // to it as they are submitted.
  aggregator::AggregatorConfig agg_config;
  agg_config.num_proxies = config_.num_proxies;
  agg_config.population = clients_.size();
  agg_config.confidence = config_.confidence;
  agg_config.answers_inverted = config_.invert_answers;
  agg_config.num_shards = config_.aggregator.num_shards != 0
                              ? config_.aggregator.num_shards
                              : pool_->num_threads();
  agg_config.pool = pool_.get();
  agg_config.malformed_total = counters_.malformed;
  if (injector_ != nullptr) {
    agg_config.track_fault_losses = true;
    agg_config.expired_mids_total = &registry_.GetCounter(
        "privapprox_fault_expired_mids_total",
        "Incomplete join groups expired at the watermark");
  }
  if (config_.metrics.enabled) {
    agg_config.decode_ns = &registry_.GetHistogram(
        "privapprox_agg_decode_ns",
        "Aggregator poll+decode pass latency in nanoseconds");
    agg_config.join_ns = &registry_.GetHistogram(
        "privapprox_agg_join_ns",
        "Aggregator join feed pass latency in nanoseconds");
    agg_config.window_ns = &registry_.GetHistogram(
        "privapprox_agg_window_ns",
        "Window fire (de-bias + error estimation) latency in nanoseconds");
  }
  aggregator_ = std::make_unique<aggregator::Aggregator>(
      agg_config, bus_,
      [this](const aggregator::WindowedResult& result) {
        results_.push_back(result);
      });
  if (config_.historical.enabled) {
    if (!config_.historical.dir.empty()) {
      historical_log_ = std::make_unique<storage::SegmentedAnswerLog>(
          std::filesystem::path(config_.historical.dir));
    }
    aggregator_->set_answer_tap(
        [this](int64_t timestamp_ms, const BitVector& answer) {
          if (historical_log_ != nullptr) {
            historical_log_->Append(timestamp_ms, answer);
          } else {
            historical_store_.Append(timestamp_ms, answer);
          }
        });
  }

  if (config_.metrics.enabled) {
    // Exposition-time collector: pulls broker topic counters and slab
    // occupancy into gauges, so the broker hot path never touches the
    // registry.
    registry_.AddCollector([this] {
      for (const std::string& name : broker_.TopicNames()) {
        const broker::Topic& topic =
            static_cast<const broker::Broker&>(broker_).GetTopic(name);
        const metrics::Labels labels{{"topic", name}};
        const broker::TopicMetrics m = topic.metrics();
        registry_
            .GetGauge("privapprox_topic_records_in",
                      "Records appended to the topic", labels)
            .Set(static_cast<int64_t>(m.records_in));
        registry_
            .GetGauge("privapprox_topic_records_out",
                      "Records read from the topic", labels)
            .Set(static_cast<int64_t>(m.records_out));
        registry_
            .GetGauge("privapprox_topic_bytes_in",
                      "Payload bytes appended to the topic", labels)
            .Set(static_cast<int64_t>(m.bytes_in));
        registry_
            .GetGauge("privapprox_topic_bytes_out",
                      "Payload bytes read from the topic", labels)
            .Set(static_cast<int64_t>(m.bytes_out));
        const broker::SlabStats slabs = topic.slab_stats();
        registry_
            .GetGauge("privapprox_topic_slab_allocated_bytes",
                      "Slab bytes allocated for the topic's payloads", labels)
            .Set(static_cast<int64_t>(slabs.allocated_bytes));
        registry_
            .GetGauge("privapprox_topic_slab_used_bytes",
                      "Slab bytes holding payload data", labels)
            .Set(static_cast<int64_t>(slabs.used_bytes));
      }
      if (broker_.durable()) {
        const broker::DurableStats s = broker_.durable_stats();
        registry_
            .GetGauge("privapprox_storage_segments",
                      "Live log segments, all durable topics")
            .Set(static_cast<int64_t>(s.segments));
        registry_
            .GetGauge("privapprox_storage_bytes",
                      "Bytes held in live log segments")
            .Set(static_cast<int64_t>(s.bytes));
        registry_
            .GetGauge("privapprox_storage_fsyncs",
                      "fsync calls issued by partition logs")
            .Set(static_cast<int64_t>(s.fsyncs));
        registry_
            .GetGauge("privapprox_storage_recovered_records",
                      "Records replayed from disk at startup")
            .Set(static_cast<int64_t>(s.recovered_records));
        registry_
            .GetGauge("privapprox_storage_truncated_tails",
                      "Torn record tails truncated during recovery")
            .Set(static_cast<int64_t>(s.truncated_tails));
      }
    });
  }

  for (const SystemConfig::QuerySpec& spec : config_.queries) {
    SubmitQuery(spec.query, spec.params);
  }
}

PrivApproxSystem::~PrivApproxSystem() = default;

core::ExecutionParams PrivApproxSystem::SubmitQuery(
    const core::Query& query, const core::QueryBudget& budget,
    double expected_yes_fraction) {
  const core::BudgetInitializer initializer;
  const core::ExecutionParams params = initializer.Convert(
      budget,
      core::PopulationInfo{clients_.size(), expected_yes_fraction});
  return SubmitQuery(query, params);
}

core::ExecutionParams PrivApproxSystem::SubmitQuery(
    const core::Query& query, const core::ExecutionParams& params) {
  params.Validate();
  if (!query.VerifySignature()) {
    throw std::invalid_argument("PrivApproxSystem: query signature invalid");
  }
  if (active_.count(query.query_id) != 0) {
    throw std::invalid_argument(
        "PrivApproxSystem: query id already submitted");
  }

  // Admission: the budget manager may down-sample `s` to fit the fleet cap
  // (or refuse the query outright). Everything downstream — announcement,
  // estimator, ledger — uses the admitted parameters.
  const core::BudgetAdmission admission =
      budget_manager_.Admit(query.query_id, params);
  try {
    // Submission phase (§3.1): the announcement travels aggregator -> proxy
    // query topics -> clients as opaque bytes; every client re-parses and
    // re-verifies it locally.
    DistributeAnnouncement(query, admission.params,
                           "query distribution failed");

    // Per-(query, proxy) lanes on every primary and standby, plus the
    // aggregator lane consuming them.
    for (auto& proxy : proxies_) {
      proxy->EnsureLane(query.query_id);
    }
    for (auto& standby : standby_proxies_) {
      standby->EnsureLane(query.query_id);
    }
    aggregator::QueryLaneOptions lane;
    lane.source_topics.reserve(proxies_.size());
    for (auto& proxy : proxies_) {
      lane.source_topics.push_back(proxy->lane_out_topic(query.query_id));
    }
    ActiveQuery active;
    active.query = query;
    active.params = admission.params;
    if (config_.metrics.enabled) {
      const std::string qid = std::to_string(query.query_id);
      const metrics::Labels query_labels{{"query", qid}};
      active.participants_total = &registry_.GetCounter(
          "privapprox_query_participants_total",
          "Clients that passed this query's sampling coin, summed over "
          "epochs",
          query_labels);
      active.shares_sent_total = &registry_.GetCounter(
          "privapprox_query_shares_sent_total",
          "Client -> proxy share messages for this query", query_labels);
      for (size_t s = 0; s < aggregator_->num_shards(); ++s) {
        const metrics::Labels labels = {{"query", qid},
                                        {"shard", std::to_string(s)}};
        lane.shard_shares_total.push_back(&registry_.GetCounter(
            "privapprox_agg_shard_shares_total",
            "Shares routed to this aggregator join shard", labels));
        lane.shard_joined_total.push_back(&registry_.GetCounter(
            "privapprox_agg_shard_joined_total",
            "Answers completed by this aggregator join shard", labels));
      }
      lane.shard_imbalance_milli = &registry_.GetGauge(
          "privapprox_agg_shard_imbalance_milli",
          "Max-shard routed shares over the per-shard mean, x1000 "
          "(1000 = perfectly balanced)",
          query_labels);
    }
    aggregator_->RegisterQuery(query, admission.params, std::move(lane));
    active_.emplace(query.query_id, std::move(active));
  } catch (...) {
    budget_manager_.Release(query.query_id);
    throw;
  }
  return admission.params;
}

core::ExecutionParams PrivApproxSystem::UpdateParams(
    uint64_t query_id, const core::ExecutionParams& params) {
  ActiveQuery& active = GetActive(query_id, "UpdateParams");
  params.Validate();
  // Re-price atomically: on refusal the previous registration (and the
  // parameters every client runs with) stays untouched.
  const core::BudgetAdmission admission =
      budget_manager_.Update(query_id, params);
  DistributeAnnouncement(active.query, admission.params,
                         "parameter update failed");
  aggregator_->UpdateParams(query_id, admission.params);
  active.params = admission.params;
  return admission.params;
}

core::ExecutionParams PrivApproxSystem::UpdateParams(
    const core::ExecutionParams& params) {
  return UpdateParams(SingleActive("UpdateParams").query.query_id, params);
}

std::vector<uint64_t> PrivApproxSystem::query_ids() const {
  std::vector<uint64_t> ids;
  ids.reserve(active_.size());
  for (const auto& [qid, active] : active_) {
    ids.push_back(qid);
  }
  return ids;
}

const core::ExecutionParams& PrivApproxSystem::query_params(
    uint64_t query_id) const {
  const auto it = active_.find(query_id);
  if (it == active_.end()) {
    throw std::logic_error(
        "PrivApproxSystem::query_params: unknown query id");
  }
  return it->second.params;
}

PrivApproxSystem::ActiveQuery& PrivApproxSystem::GetActive(
    uint64_t query_id, const char* caller) {
  const auto it = active_.find(query_id);
  if (it == active_.end()) {
    throw std::logic_error(std::string("PrivApproxSystem::") + caller +
                           ": unknown query id");
  }
  return it->second;
}

const PrivApproxSystem::ActiveQuery& PrivApproxSystem::SingleActive(
    const char* caller) const {
  if (active_.empty()) {
    throw std::logic_error(std::string("PrivApproxSystem::") + caller +
                           ": no active query");
  }
  if (active_.size() != 1) {
    throw std::logic_error(std::string("PrivApproxSystem::") + caller +
                           ": ambiguous with multiple queries; pass a "
                           "query id");
  }
  return active_.begin()->second;
}

void PrivApproxSystem::DistributeAnnouncement(
    const core::Query& query, const core::ExecutionParams& params,
    const char* failure_what) {
  const std::vector<uint8_t> announcement =
      core::SerializeAnnouncement(core::QueryAnnouncement{query, params});
  for (auto& proxy : proxies_) {
    proxy->AnnounceQuery(announcement, /*timestamp_ms=*/0);
    proxy->ForwardQueries();
  }
  for (size_t p = 0; p < proxies_.size(); ++p) {
    transport::BusConsumer consumer(bus_,
                                    proxies_[p]->query_out_topic());
    std::vector<broker::RecordView> records;
    while (consumer.PollInto(64, records) != 0) {
    }
    if (records.empty()) {
      throw std::logic_error(std::string("PrivApproxSystem: ") +
                             failure_what);
    }
    // The freshest announcement on the topic is the one just published.
    const broker::RecordView& last = records.back();
    const std::vector<uint8_t> bytes(last.payload,
                                     last.payload + last.payload_len);
    for (size_t i = p; i < clients_.size(); i += proxies_.size()) {
      clients_[i]->OnAnnouncement(bytes);
    }
  }
}

EpochStats PrivApproxSystem::RunEpoch(int64_t now_ms) {
  if (active_.empty()) {
    throw std::logic_error("PrivApproxSystem::RunEpoch: no query submitted");
  }
  const uint64_t participants_before = counters_.participants->Value();
  const uint64_t sent_before = counters_.shares_sent->Value();
  const uint64_t forwarded_before = counters_.shares_forwarded->Value();
  const uint64_t consumed_before = counters_.shares_consumed->Value();
  const uint64_t malformed_before = counters_.malformed->Value();
  struct FaultSnapshot {
    uint64_t dropped = 0, corrupted = 0, duplicated = 0, delayed = 0;
    uint64_t timeouts = 0, crashes = 0, lost = 0;
    uint64_t retries = 0, failovers = 0, late = 0;
  };
  const auto snapshot_faults = [this] {
    FaultSnapshot s;
    if (injector_ != nullptr) {
      s.dropped = fault_counters_.shares_dropped->Value();
      s.corrupted = fault_counters_.shares_corrupted->Value();
      s.duplicated = fault_counters_.shares_duplicated->Value();
      s.delayed = fault_counters_.shares_delayed->Value();
      s.timeouts = fault_counters_.forward_timeouts->Value();
      s.crashes = fault_counters_.proxy_crashes->Value();
      s.lost = fault_counters_.lost_mids->Value();
      s.retries = fault_counters_.retries->Value();
      s.failovers = fault_counters_.failovers->Value();
      s.late = fault_counters_.late_delivered->Value();
    }
    return s;
  };
  const FaultSnapshot fault_before = snapshot_faults();
  {
    StageScope epoch_scope("epoch", stage_ns_.epoch_ns, timeline_);
    if (injector_ != nullptr) {
      ReplayDeferredShares();
      for (size_t j = 0; j < proxies_.size(); ++j) {
        if (injector_->ProxyCrashes(epoch_index_, j)) {
          fault_counters_.proxy_crashes->Increment();
        }
      }
    }
    if (config_.pipeline.mode == EpochPipelineMode::kStreaming) {
      RunEpochStreaming(now_ms);
    } else {
      RunEpochBarrier(now_ms);
    }
  }
  if (injector_ != nullptr) {
    // Hand the epoch's unjoinable (query, MID) pairs to each query's lane
    // so every window covering now_ms widens its error bound (paper Eq. 2
    // with the lost answers removed from the effective sample). The drain
    // is sorted by (QID, MID), so one pass groups per lane.
    const std::vector<std::pair<uint64_t, uint64_t>> lost =
        injector_->TakeLostMids();
    std::vector<uint64_t> mids;
    for (size_t i = 0; i < lost.size();) {
      const uint64_t qid = lost[i].first;
      mids.clear();
      for (; i < lost.size() && lost[i].first == qid; ++i) {
        mids.push_back(lost[i].second);
      }
      aggregator_->NoteFaultLostMids(qid, mids, now_ms);
    }
  }
  ++epoch_index_;
  counters_.epochs->Increment();
  EpochStats stats;
  stats.participants = static_cast<size_t>(counters_.participants->Value() -
                                           participants_before);
  stats.shares_sent = counters_.shares_sent->Value() - sent_before;
  stats.shares_forwarded =
      counters_.shares_forwarded->Value() - forwarded_before;
  stats.shares_consumed = counters_.shares_consumed->Value() - consumed_before;
  stats.malformed_dropped = counters_.malformed->Value() - malformed_before;
  if (injector_ != nullptr) {
    const FaultSnapshot after = snapshot_faults();
    stats.fault_shares_dropped = after.dropped - fault_before.dropped;
    stats.fault_shares_corrupted = after.corrupted - fault_before.corrupted;
    stats.fault_shares_duplicated = after.duplicated - fault_before.duplicated;
    stats.fault_shares_delayed = after.delayed - fault_before.delayed;
    stats.fault_forward_timeouts = after.timeouts - fault_before.timeouts;
    stats.fault_proxy_crashes = after.crashes - fault_before.crashes;
    stats.fault_lost_mids = after.lost - fault_before.lost;
    stats.recovery_retries = after.retries - fault_before.retries;
    stats.recovery_failovers = after.failovers - fault_before.failovers;
    stats.recovery_late_delivered = after.late - fault_before.late;
  }
  return stats;
}

// Delivers the shares the degraded link held back, at the start of the next
// epoch: they land at the head of each lane's inbound topic (before this
// epoch's shards) with their original event time, so both pipeline modes
// forward them first and the join sees them in the same order. The deferred
// buffer is sorted by (proxy, QID, MID), so one pass batches per lane; each
// record is a QID-tagged frame whose tag is stripped back off here — lane
// topics carry plain <MID, payload> records.
void PrivApproxSystem::ReplayDeferredShares() {
  const std::vector<fault::DeferredShare> deferred = injector_->TakeDeferred();
  std::vector<broker::ProduceView> batch;
  for (size_t i = 0; i < deferred.size();) {
    const size_t proxy = deferred[i].proxy;
    const uint64_t qid = deferred[i].query_id;
    batch.clear();
    for (; i < deferred.size() && deferred[i].proxy == proxy &&
           deferred[i].query_id == qid;
         ++i) {
      const core::TaggedShareView tagged =
          core::ParseTaggedShare(deferred[i].record);
      batch.push_back(broker::ProduceView{deferred[i].message_id,
                                          tagged.lane_record,
                                          deferred[i].timestamp_ms});
    }
    proxies_[proxy]->Receive(qid, batch);
  }
}

void PrivApproxSystem::RunEpochBarrier(int64_t now_ms) {
  const size_t num_clients = clients_.size();
  const size_t num_proxies = proxies_.size();
  const std::vector<uint64_t> qids = query_ids();
  const size_t num_queries = qids.size();

  // Phase 1 (parallel answering): shard clients across the pool. Each client
  // owns its RNG and database, so answering is embarrassingly parallel;
  // workers encode each client's shares for every subscribed query into an
  // arena acquired per pool chunk and publish views into the client's
  // private slots (views[(i * nq + k) * np + j] = client i's share for
  // query k / proxy j, queries in ascending-QID order). The chunk arenas
  // are kept alive until phase 2 has copied every view into broker slabs.
  std::vector<crypto::ShareView> views(num_clients * num_queries *
                                       num_proxies);
  std::vector<uint8_t> answered(num_clients * num_queries, 0);
  std::vector<ArenaRef> chunk_arenas;
  std::mutex chunk_arenas_mu;
  {
    StageScope scope("barrier_answer", stage_ns_.answer_shard_ns, timeline_);
    pool_->ParallelFor(num_clients, [&](size_t begin, size_t end) {
      ArenaRef arena = arena_pool_.Acquire();
      std::vector<uint64_t> answered_qids;
      for (size_t i = begin; i < end; ++i) {
        std::span<crypto::ShareView> slot(
            &views[i * num_queries * num_proxies], num_queries * num_proxies);
        clients_[i]->AnswerSubscribedInto(now_ms, *arena, slot,
                                          answered_qids);
        size_t k = 0;
        for (const uint64_t qid : answered_qids) {
          while (qids[k] != qid) {
            ++k;
          }
          answered[i * num_queries + k] = 1;
        }
      }
      std::lock_guard<std::mutex> lock(chunk_arenas_mu);
      chunk_arenas.push_back(std::move(arena));
    });
  }

  // Phase 2 (ordered merge): concatenate the slots in client-id order into
  // one batch per (query, proxy) lane — exactly the append order a
  // sequential loop would produce, so topic contents are byte-identical for
  // any worker count.
  uint64_t participants = 0;
  std::vector<uint64_t> per_query(num_queries, 0);
  for (size_t i = 0; i < num_clients; ++i) {
    for (size_t k = 0; k < num_queries; ++k) {
      if (answered[i * num_queries + k] != 0) {
        ++participants;
        ++per_query[k];
      }
    }
  }
  counters_.participants->Increment(participants);
  counters_.shares_sent->Increment(participants * num_proxies);
  {
    size_t k = 0;
    for (auto& [qid, active] : active_) {
      if (active.participants_total != nullptr && per_query[k] != 0) {
        active.participants_total->Increment(per_query[k]);
        active.shares_sent_total->Increment(per_query[k] * num_proxies);
      }
      ++k;
    }
  }
  {
    StageScope scope("barrier_merge", nullptr, timeline_);
    std::vector<broker::ProduceView> batch;
    std::vector<broker::ProduceView> standby_batch;
    for (size_t k = 0; k < num_queries; ++k) {
      const uint64_t qid = qids[k];
      for (size_t j = 0; j < num_proxies; ++j) {
        batch.clear();
        standby_batch.clear();
        batch.reserve(per_query[k]);
        for (size_t i = 0; i < num_clients; ++i) {
          if (answered[i * num_queries + k] == 0) {
            continue;
          }
          const crypto::ShareView& view =
              views[(i * num_queries + k) * num_proxies + j];
          if (injector_ == nullptr) {
            batch.push_back(
                broker::ProduceView{view.message_id, view.bytes(), now_ms});
            continue;
          }
          // Fault path: route each share through the injector. Same code as
          // the streaming answer stage — decisions are (QID, MID, proxy)
          // hashes, so both modes inject identical faults.
          const std::span<const uint8_t> record = view.bytes();
          const fault::ShareOutcome outcome = injector_->RouteShare(
              qid, view.message_id, j, epoch_index_, record.size());
          if (outcome.route == fault::ShareRoute::kLost) {
            continue;
          }
          if (outcome.route == fault::ShareRoute::kDeferred) {
            injector_->Defer(qid, j, view.message_id, record, now_ms);
            continue;
          }
          const std::span<const uint8_t> payload =
              outcome.corrupt_to != SIZE_MAX ? record.first(outcome.corrupt_to)
                                             : record;
          auto& dest = outcome.route == fault::ShareRoute::kStandby
                           ? standby_batch
                           : batch;
          dest.push_back(broker::ProduceView{view.message_id, payload, now_ms});
          if (outcome.duplicate) {
            dest.push_back(
                broker::ProduceView{view.message_id, payload, now_ms});
          }
        }
        proxies_[j]->Receive(qid, batch);
        if (!standby_proxies_.empty()) {
          standby_proxies_[j]->Receive(qid, standby_batch);
        }
      }
    }
    chunk_arenas.clear();  // appends done: recycle the encode arenas
  }

  // Phase 3 (parallel forwarding): each proxy moves its own lanes' inbound
  // topics to their outbound topics — disjoint state, one task per proxy.
  {
    StageScope scope("barrier_forward", stage_ns_.proxy_forward_ns, timeline_);
    std::vector<uint64_t> forwarded(num_proxies, 0);
    pool_->ParallelFor(num_proxies, [&](size_t begin, size_t end) {
      for (size_t j = begin; j < end; ++j) {
        forwarded[j] = proxies_[j]->ForwardLanes();
        // Standby j shares primary j's outbound lane topics — forwarding it
        // from the same task keeps the append interleave deterministic.
        if (!standby_proxies_.empty()) {
          forwarded[j] += standby_proxies_[j]->ForwardLanes();
        }
      }
    });
    for (uint64_t count : forwarded) {
      counters_.shares_forwarded->Increment(count);
    }
  }

  // Phase 4: drain every lane (parallel per-source decode + sequential join
  // inside, lanes in ascending-QID order).
  StageScope scope("barrier_drain", stage_ns_.agg_consume_ns, timeline_);
  counters_.shares_consumed->Increment(aggregator_->Drain());
}

namespace {

constexpr size_t kDefaultStreamShardSize = 1024;

// One contiguous client range to answer, tagged with its position in the
// epoch's shard sequence.
struct ShardTask {
  uint64_t seq = 0;
  size_t begin = 0;
  size_t end = 0;
};

// One shard's shares for one (query, proxy) lane: primary-bound records
// plus the ones failed over to the proxy's standby (empty without a fault
// plan).
struct LaneRecords {
  std::vector<broker::ProduceView> records;
  std::vector<broker::ProduceView> standby;
};

// One shard's shares for one proxy across every query lane (indexed like
// the system's ascending QID list), still tagged with the shard sequence so
// the proxy stage can restore client-id append order. The batch shares
// ownership of the arena holding the encoded share records: each view
// points into it, and when the last proxy's batch for a shard is dropped
// (after its records were copied into broker slabs) the arena resets and
// returns to the pool — so backpressure from the bounded channels also
// bounds the number of live arenas.
struct TaggedBatch {
  uint64_t seq = 0;
  std::vector<LaneRecords> lanes;
  ArenaRef arena;
};

// "Proxy `source` forwarded shard `seq` on query `query_id`'s lane; consume
// exactly these counts per outbound partition."
struct ShardNotice {
  uint64_t query_id = 0;
  size_t source = 0;
  uint64_t seq = 0;
  std::vector<uint32_t> partition_counts;
};

}  // namespace

// The streaming epoch: the same work as the barrier path, reshaped into
// producer→transform→consumer stages over bounded channels.
//
//   [main] --ShardTask--> [answer xW] --TaggedBatch--> [proxy j x1] (n of
//   them) --ShardNotice--> [aggregator x1]
//
// A shard's batch reaches its proxies the moment its clients finish
// answering; each proxy appends + forwards every query lane while later
// shards are still being answered; the aggregator decodes and joins
// forwarded batches as notices arrive. Determinism: per-proxy reorder
// buffers replay batches in shard order (so lane topic logs stay in
// client-id order, identical to the barrier merge), and each aggregator
// lane's reorder buffer feeds its MID join in (shard, source) order (see
// Aggregator::ConsumeShardBatch).
void PrivApproxSystem::RunEpochStreaming(int64_t now_ms) {
  const size_t num_clients = clients_.size();
  const size_t num_proxies = proxies_.size();
  const std::vector<uint64_t> qids = query_ids();
  const size_t num_queries = qids.size();
  const size_t shard_size = config_.pipeline.shard_size != 0
                                ? config_.pipeline.shard_size
                                : kDefaultStreamShardSize;
  const size_t depth = std::max<size_t>(1, config_.pipeline.depth);
  const size_t answer_workers = pool_->num_threads();

  Channel<ShardTask> tasks(depth);
  std::vector<std::unique_ptr<Channel<TaggedBatch>>> to_proxy;
  to_proxy.reserve(num_proxies);
  for (size_t j = 0; j < num_proxies; ++j) {
    to_proxy.push_back(std::make_unique<Channel<TaggedBatch>>(depth));
  }
  Channel<ShardNotice> notices(depth * num_proxies * num_queries);
  if (config_.metrics.enabled) {
    // Backpressure visibility: high-watermark of each channel's depth.
    const std::string help = "Channel depth high-watermark (shard batches)";
    tasks.set_depth_gauge(&registry_.GetGauge("privapprox_channel_depth_hwm",
                                              help, {{"channel", "tasks"}}));
    for (size_t j = 0; j < num_proxies; ++j) {
      to_proxy[j]->set_depth_gauge(&registry_.GetGauge(
          "privapprox_channel_depth_hwm", help,
          {{"channel", "to_proxy" + std::to_string(j)}}));
    }
    notices.set_depth_gauge(&registry_.GetGauge(
        "privapprox_channel_depth_hwm", help, {{"channel", "notices"}}));
  }

  // Consumer stage: single worker — each lane's join and window state are
  // sequential by design, exactly as in the barrier drain.
  Stage<ShardNotice> aggregator_stage(
      notices, 1, [&](ShardNotice&& notice) {
        StageScope scope("agg_consume", stage_ns_.agg_consume_ns, timeline_);
        counters_.shares_consumed->Increment(aggregator_->ConsumeShardBatch(
            notice.query_id, notice.source, notice.seq,
            notice.partition_counts));
      });

  // Per-proxy forward stages: one worker each (a proxy owns its lane
  // consumer offsets). Answer workers finish shards out of order, so each
  // stage reorders to shard order before appending — keeping every lane's
  // inbound topic in client-id order, byte-identical to the barrier merge.
  // The reorder map is small: tasks are handed out in shard order, so at
  // most ~(answer workers + channel depth) shards are in flight.
  std::vector<std::unique_ptr<Stage<TaggedBatch>>> proxy_stages;
  proxy_stages.reserve(num_proxies);
  for (size_t j = 0; j < num_proxies; ++j) {
    auto reorder = std::make_shared<std::map<uint64_t, TaggedBatch>>();
    auto next_seq = std::make_shared<uint64_t>(0);
    proxy_stages.push_back(std::make_unique<Stage<TaggedBatch>>(
        *to_proxy[j], 1, [&, j, reorder, next_seq](TaggedBatch&& batch) {
          (*reorder)[batch.seq] = std::move(batch);
          for (auto it = reorder->find(*next_seq); it != reorder->end();
               it = reorder->find(*next_seq)) {
            TaggedBatch head = std::move(it->second);
            reorder->erase(it);
            StageScope scope("proxy_forward", stage_ns_.proxy_forward_ns,
                             timeline_);
            uint64_t forwarded = 0;
            for (size_t k = 0; k < num_queries; ++k) {
              std::vector<uint32_t> counts =
                  proxies_[j]->ReceiveAndForwardShard(qids[k],
                                                      head.lanes[k].records);
              if (!standby_proxies_.empty()) {
                // The standby appends to the same lane outbound topic;
                // merging the per-partition counts keeps the aggregator's
                // promised-read contract exact.
                const std::vector<uint32_t> standby_counts =
                    standby_proxies_[j]->ReceiveAndForwardShard(
                        qids[k], head.lanes[k].standby);
                for (size_t p = 0; p < counts.size(); ++p) {
                  counts[p] += standby_counts[p];
                }
              }
              for (uint32_t count : counts) {
                forwarded += count;
              }
              notices.Push(ShardNotice{qids[k], j, *next_seq,
                                       std::move(counts)});
            }
            // `head` (and with it this proxy's arena reference) dies here —
            // the records are now in the broker's slabs.
            counters_.shares_forwarded->Increment(forwarded);
            ++*next_seq;
          }
        }));
  }

  // Producer stage: workers answer one shard's clients across every
  // subscribed query and ship the resulting per-proxy batches downstream
  // immediately. Every random decision draws from per-client RNG state, so
  // which worker answers a shard cannot change any byte. Empty batches are
  // shipped too — the shard sequence must be gapless for the reorder
  // buffers to advance.
  Stage<ShardTask> answer_stage(tasks, answer_workers, [&](ShardTask&& task) {
    StageScope scope("answer_shard", stage_ns_.answer_shard_ns, timeline_);
    ArenaRef arena = arena_pool_.Acquire();
    std::vector<std::vector<LaneRecords>> per_proxy(num_proxies);
    for (auto& lanes : per_proxy) {
      lanes.resize(num_queries);
      for (auto& lane : lanes) {
        lane.records.reserve(task.end - task.begin);
      }
    }
    std::vector<crypto::ShareView> views(num_queries * num_proxies);
    std::vector<uint64_t> answered_qids;
    std::vector<uint64_t> local_per_query(num_queries, 0);
    uint64_t local_participants = 0;
    uint64_t local_shares = 0;
    for (size_t i = task.begin; i < task.end; ++i) {
      clients_[i]->AnswerSubscribedInto(now_ms, *arena, views,
                                        answered_qids);
      size_t k = 0;
      for (const uint64_t qid : answered_qids) {
        while (qids[k] != qid) {
          ++k;
        }
        ++local_participants;
        ++local_per_query[k];
        local_shares += num_proxies;
        for (size_t j = 0; j < num_proxies; ++j) {
          const crypto::ShareView& view = views[k * num_proxies + j];
          if (injector_ == nullptr) {
            per_proxy[j][k].records.push_back(broker::ProduceView{
                view.message_id, view.bytes(), now_ms});
            continue;
          }
          // Fault path — mirror of the barrier merge: (QID, MID,
          // proxy)-hashed decisions, so faults are identical across modes
          // and worker counts. Defer copies the record into a QID-tagged
          // frame (the arena recycles at shard end); corrupted views stay
          // arena-backed, truncation is just a shorter span.
          const std::span<const uint8_t> record = view.bytes();
          const fault::ShareOutcome outcome = injector_->RouteShare(
              qid, view.message_id, j, epoch_index_, record.size());
          if (outcome.route == fault::ShareRoute::kLost) {
            continue;
          }
          if (outcome.route == fault::ShareRoute::kDeferred) {
            injector_->Defer(qid, j, view.message_id, record, now_ms);
            continue;
          }
          const std::span<const uint8_t> payload =
              outcome.corrupt_to != SIZE_MAX
                  ? record.first(outcome.corrupt_to)
                  : record;
          auto& dest = outcome.route == fault::ShareRoute::kStandby
                           ? per_proxy[j][k].standby
                           : per_proxy[j][k].records;
          dest.push_back(
              broker::ProduceView{view.message_id, payload, now_ms});
          if (outcome.duplicate) {
            dest.push_back(
                broker::ProduceView{view.message_id, payload, now_ms});
          }
        }
      }
    }
    counters_.participants->Increment(local_participants);
    counters_.shares_sent->Increment(local_shares);
    {
      size_t k = 0;
      for (auto& [qid, active] : active_) {
        if (active.participants_total != nullptr && local_per_query[k] != 0) {
          active.participants_total->Increment(local_per_query[k]);
          active.shares_sent_total->Increment(local_per_query[k] *
                                              num_proxies);
        }
        ++k;
      }
    }
    for (size_t j = 0; j < num_proxies; ++j) {
      // Each batch carries a reference to the shard's arena; the arena
      // recycles once every proxy has slab-copied its batch.
      to_proxy[j]->Push(TaggedBatch{task.seq, std::move(per_proxy[j]), arena});
    }
  });

  // Feed the pipeline, then shut it down stage by stage: close input, join
  // stage, close the next channel. Join errors are collected so the
  // shutdown sequence always completes (a failed stage drains its input,
  // so nothing upstream stays blocked).
  std::exception_ptr error;
  auto join_stage = [&error](auto& stage) {
    try {
      stage.Join();
    } catch (...) {
      if (error == nullptr) {
        error = std::current_exception();
      }
    }
  };
  uint64_t seq = 0;
  for (size_t begin = 0; begin < num_clients; begin += shard_size, ++seq) {
    tasks.Push(ShardTask{seq, begin, std::min(begin + shard_size, num_clients)});
  }
  tasks.Close();
  join_stage(answer_stage);
  for (auto& channel : to_proxy) {
    channel->Close();
  }
  for (auto& stage : proxy_stages) {
    join_stage(*stage);
  }
  notices.Close();
  join_stage(aggregator_stage);
  if (error != nullptr) {
    try {
      aggregator_->FinishStream();  // reset reorder state; expected to throw
    } catch (...) {
    }
    std::rethrow_exception(error);
  }
  aggregator_->FinishStream();
}

void PrivApproxSystem::AdvanceWatermark(int64_t watermark_ms) {
  aggregator_->AdvanceWatermark(watermark_ms);
}

void PrivApproxSystem::Flush() {
  aggregator_->Flush();
}

std::vector<aggregator::WindowedResult> PrivApproxSystem::TakeResults() {
  std::vector<aggregator::WindowedResult> out = std::move(results_);
  results_.clear();
  return out;
}

uint64_t PrivApproxSystem::ClientToProxyBytes() const {
  uint64_t bytes = 0;
  for (const auto& proxy : proxies_) {
    // Legacy single-query topic (untrafficked in lane mode) plus every
    // query lane.
    bytes += broker_.GetTopic(proxy->in_topic()).metrics().bytes_in;
    for (const auto& [qid, active] : active_) {
      bytes += broker_.GetTopic(proxy->lane_in_topic(qid)).metrics().bytes_in;
    }
  }
  return bytes;
}

core::QueryResult PrivApproxSystem::RunHistorical(
    int64_t from_ms, int64_t to_ms,
    const aggregator::BatchQueryBudget& budget) {
  if (!config_.historical.enabled) {
    throw std::logic_error(
        "PrivApproxSystem::RunHistorical: historical store disabled");
  }
  // The historical store tees joined answers without a QID partition, so
  // batch analytics only has well-defined semantics for a single query.
  const ActiveQuery& active = SingleActive("RunHistorical");
  if (historical_log_ != nullptr) {
    // Durable path: read back from the segmented log on disk.
    const aggregator::ResponseStore store =
        historical_log_->LoadRange(from_ms, to_ms);
    const aggregator::HistoricalAnalytics analytics(
        store, active.params, clients_.size(), config_.confidence);
    return analytics.Run(from_ms, to_ms, budget, historical_rng_,
                         active.query.answer_format.num_buckets());
  }
  const aggregator::HistoricalAnalytics analytics(
      historical_store_, active.params, clients_.size(), config_.confidence);
  return analytics.Run(from_ms, to_ms, budget, historical_rng_,
                       active.query.answer_format.num_buckets());
}

}  // namespace privapprox::system
