// The analyst runtime (the fourth component of Figure 1).
//
// An analyst formulates signed queries, submits them with an execution
// budget, consumes the windowed results, tracks the measured accuracy
// loss (against a reference the analyst supplies, e.g. a public prior), and
// drives the §5 feedback loop: when the error drifts past the budgeted
// target, re-tuned parameters are redistributed to clients before the next
// epoch.

#ifndef PRIVAPPROX_ANALYST_ANALYST_H_
#define PRIVAPPROX_ANALYST_ANALYST_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/budget.h"
#include "core/query.h"
#include "system/system.h"

namespace privapprox::analyst {

struct AnalystConfig {
  uint64_t analyst_id = 1;
  // Target accuracy loss the feedback loop steers toward; taken from the
  // budget when it has one, else this default.
  double default_accuracy_target = 0.05;
};

class Analyst {
 public:
  explicit Analyst(AnalystConfig config);

  uint64_t id() const { return config_.analyst_id; }

  // A builder pre-stamped with this analyst's identity and a fresh serial
  // query id (QID = analyst id concatenated with a serial, §3.1).
  core::QueryBuilder NewQuery();

  // Submits to a system; the initializer converts the budget. Returns the
  // chosen parameters and arms the feedback controller.
  core::ExecutionParams Submit(system::PrivApproxSystem& sys,
                               const core::Query& query,
                               const core::QueryBudget& budget,
                               double expected_yes_fraction = 0.5);

  // Variant with explicit starting parameters (the analyst picks the
  // opening bid; the controller takes over from there). `accuracy_target`
  // is the loss the loop steers toward; `max_epsilon` optionally caps the
  // amplified differential-privacy level the loop may spend.
  void Submit(system::PrivApproxSystem& sys, const core::Query& query,
              const core::ExecutionParams& params, double accuracy_target,
              std::optional<double> max_epsilon = std::nullopt);

  // Runs one epoch and collects any windows that completed. When a
  // reference histogram provider is installed the measured loss feeds the
  // controller, and changed parameters are redistributed (re-submitted)
  // before returning.
  using ReferenceFn = std::function<Histogram(const engine::Window&)>;
  void set_reference(ReferenceFn reference) {
    reference_ = std::move(reference);
  }

  std::vector<aggregator::WindowedResult> RunEpoch(
      system::PrivApproxSystem& sys, int64_t now_ms);

  const core::ExecutionParams& current_params() const;
  const std::vector<double>& loss_history() const { return loss_history_; }

 private:
  AnalystConfig config_;
  uint64_t next_serial_ = 1;
  std::optional<core::Query> query_;
  std::optional<core::ExecutionParams> params_;
  std::optional<core::FeedbackController> feedback_;
  ReferenceFn reference_;
  std::vector<double> loss_history_;
};

}  // namespace privapprox::analyst

#endif  // PRIVAPPROX_ANALYST_ANALYST_H_
