// The aggregator runtime (paper §3.2.4, §5).
//
// Consumes the n proxy share streams, joins shares by MID, XOR-decrypts,
// deserializes the randomized answers, assigns them to sliding windows, and
// per fired window de-biases the per-bucket counts and attaches the combined
// error bound (sampling + randomized response). Results reach the analyst
// via a callback; joined randomized answers are optionally teed into the
// historical store (§3.3.1).
//
// Multi-query: the aggregator is a coordinator over per-query *lanes*. A
// lane owns everything one query needs — its n source-topic consumers, its
// MID joiner + window shards, its error estimator, its stream watermark and
// reorder buffer, its fault-loss ledger — so queries share nothing but the
// broker and the worker pool, and each query's results are bit-identical to
// a run where it is the only query registered. Lanes are processed in
// ascending-QID order everywhere order is observable.
//
// The join + window stage is sharded by hash(MID): each shard owns an
// independent MidJoiner and per-window accumulators, so feeding shards can
// run in parallel with no shared mutable state, and per-window results are
// merged deterministically in shard order at fire time (see DESIGN.md §6g
// for why the merge is order-free and the N-shard result is bit-identical
// to the single-shard run).

#ifndef PRIVAPPROX_AGGREGATOR_AGGREGATOR_H_
#define PRIVAPPROX_AGGREGATOR_AGGREGATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "broker/broker.h"
#include "common/thread_pool.h"
#include "core/answer.h"
#include "core/budget.h"
#include "core/error_estimation.h"
#include "core/query.h"
#include "engine/join.h"
#include "engine/watermark.h"
#include "engine/window.h"
#include "metrics/metrics.h"
#include "proxy/proxy.h"
#include "transport/inproc_bus.h"
#include "transport/message_bus.h"

namespace privapprox::aggregator {

struct AggregatorConfig {
  size_t num_proxies = 2;
  size_t population = 0;       // U, for scaling estimates
  double confidence = 0.95;
  int64_t join_timeout_ms = 60000;
  // Bound for the stream-driven watermark (AdvanceWatermarkToStream): how
  // far out of order shares may arrive across the proxy paths.
  int64_t watermark_out_of_orderness_ms = 1000;
  // De-invert results produced under query inversion (§3.3.2).
  bool answers_inverted = false;
  // Join/window shards per lane: shares route to shard hash(MID) %
  // num_shards, each with its own MidJoiner and window accumulators. 1 =
  // the classic sequential aggregator. Any N produces bit-identical
  // results; N > 1 only goes parallel when `pool` is also set.
  size_t num_shards = 1;
  // Optional worker pool (not owned). When set, Drain polls and decodes the
  // n proxy streams in parallel — one task per source topic — and both
  // consume paths feed the join shards in parallel (one task per shard).
  // Null keeps everything sequential.
  ThreadPool* pool = nullptr;
  // Optional instruments, not owned (null = uninstrumented). Wired by
  // PrivApproxSystem from its metrics registry. malformed_total mirrors
  // malformed_dropped() so the registry exposition matches EpochStats.
  metrics::Counter* malformed_total = nullptr;
  metrics::Histogram* decode_ns = nullptr;  // per poll+decode pass
  metrics::Histogram* join_ns = nullptr;    // per join feed pass
  metrics::Histogram* window_ns = nullptr;  // per fired window
  // Per-shard instruments, indexed by shard (empty or size num_shards):
  // shares routed to the shard and answers its joiner completed. The
  // imbalance gauge holds max-shard-routed * 1000 / mean-shard-routed
  // (1000 = perfectly balanced), updated after every feed pass. These
  // config-level instruments serve lanes that do not bring their own
  // (QueryLaneOptions) — i.e. the single-query compatibility path.
  std::vector<metrics::Counter*> shard_shares_total;
  std::vector<metrics::Counter*> shard_joined_total;
  metrics::Gauge* shard_imbalance_milli = nullptr;
  // Fault-loss accounting (wired by PrivApproxSystem when a FaultPlan is
  // configured). When true, MIDs reported lost by the fault injector
  // (NoteFaultLostMids) and incomplete MIDs expired from the join at the
  // watermark widen the confidence interval of every window containing
  // their event time (ErrorEstimator::Estimate's lost_to_faults). False
  // keeps the estimate path bit-identical to a fault-free build.
  bool track_fault_losses = false;
  metrics::Counter* expired_mids_total = nullptr;  // join groups expired at
                                                   // the watermark
};

// Per-query registration options. source_topics empty = the legacy
// "proxy<i>.out" topics; the multi-query system passes the query's lane
// outbound topics. The shard instruments (empty/null = fall back to the
// config-level ones) let the system label shard families per query.
struct QueryLaneOptions {
  std::vector<std::string> source_topics;
  std::vector<metrics::Counter*> shard_shares_total;
  std::vector<metrics::Counter*> shard_joined_total;
  metrics::Gauge* shard_imbalance_milli = nullptr;
};

struct WindowedResult {
  uint64_t query_id = 0;
  engine::Window window;
  core::QueryResult result;
};

class Aggregator {
 public:
  using ResultFn = std::function<void(const WindowedResult&)>;
  // Optional tee of every joined randomized answer (for historical
  // analytics): (timestamp, answer bit-vector).
  using AnswerTapFn = std::function<void(int64_t, const BitVector&)>;

  // Coordinator with no lanes yet; add queries with RegisterQuery. The bus
  // must outlive the aggregator; in a daemon it is a TopicRouterBus over
  // the TcpBusClients dialed at each proxy daemon.
  Aggregator(AggregatorConfig config, transport::MessageBus& bus,
             ResultFn on_result);
  // In-process convenience: wraps `broker` in an internally owned
  // InProcessBus.
  Aggregator(AggregatorConfig config, broker::Broker& broker,
             ResultFn on_result);

  // Single-query compatibility: coordinator plus one lane for `query` over
  // the legacy "proxy<i>.out" topics, using the config-level shard
  // instruments.
  Aggregator(AggregatorConfig config, const core::Query& query,
             const core::ExecutionParams& params, broker::Broker& broker,
             ResultFn on_result);

  // Adds a lane for `query`. Throws std::invalid_argument for QID 0, a QID
  // already registered, or options.source_topics of the wrong cardinality.
  void RegisterQuery(const core::Query& query,
                     const core::ExecutionParams& params,
                     QueryLaneOptions options = {});

  bool HasQuery(uint64_t query_id) const {
    return lanes_.count(query_id) != 0;
  }
  size_t num_queries() const { return lanes_.size(); }

  void set_answer_tap(AnswerTapFn tap) { answer_tap_ = std::move(tap); }

  // Applies re-tuned execution parameters (§5 feedback loop): future
  // windows de-bias and error-estimate with the new (s, p, q). Windows
  // already buffered keep their answers; their estimates use the new
  // parameters, which is the correct choice once clients have switched.
  // The QID-less overload is the single-lane shim.
  void UpdateParams(uint64_t query_id, const core::ExecutionParams& params);
  void UpdateParams(const core::ExecutionParams& params);

  // Drains every lane's source topics through join -> decrypt -> window,
  // lanes in ascending-QID order. Returns the number of shares consumed.
  //
  // Retry-lossless under transport failures: if a source's poll throws
  // (e.g. its TCP peer died mid-drain), the records every source had
  // already committed — consumer offsets advance on successful polls — are
  // still decoded and fed to the join before the first failure is rethrown,
  // so a caller that retries Drain after the peer returns never loses a
  // committed record.
  uint64_t Drain();

  // (topic, per-partition committed offsets) for every lane source
  // consumer, lanes in ascending-QID order — the retention low-watermarks
  // an operator plumbs back to the proxy daemons (advance_watermark) so
  // their durable out-topic segments below these offsets can be deleted.
  std::vector<std::pair<std::string, std::vector<uint64_t>>> SourceOffsets()
      const;

  // --- Streaming-mode consumption (system/system.cc) -------------------
  //
  // The streaming epoch pipeline calls ConsumeShardBatch from its single
  // aggregator-stage thread, once per (query, shard, proxy) as forward
  // notifications arrive. It reads exactly the records proxy `source`
  // appended to the query's lane for shard `shard_seq`
  // (per-outbound-partition counts as reported by
  // Proxy::ReceiveAndForwardShard), decodes them, and parks the batch in
  // the lane's reorder buffer keyed by shard sequence number. Whenever the
  // buffer's head shard has a batch from every source, those batches are
  // fed to the MID join in (shard_seq, source) order — so the join feed
  // order is deterministic per lane for every worker count, channel depth,
  // and thread interleaving. Returns records consumed (incl. malformed).
  //
  // Not thread-safe; not to be interleaved with Drain() mid-epoch. (The
  // internal fan-out to join shards may borrow the pool, but callers see a
  // single-threaded surface.) The QID-less overload is the single-lane
  // shim.
  uint64_t ConsumeShardBatch(uint64_t query_id, size_t source,
                             uint64_t shard_seq,
                             const std::vector<uint32_t>& partition_counts);
  uint64_t ConsumeShardBatch(size_t source, uint64_t shard_seq,
                             const std::vector<uint32_t>& partition_counts);

  // Ends one streaming epoch: resets every lane's shard sequence
  // expectation for the next epoch. Throws std::logic_error if shard
  // batches are still parked in any lane (a gap in the sequence — pipeline
  // bug); the buffers are cleared first so the aggregator stays usable
  // after the throw.
  void FinishStream();

  // Fault-recovery input (requires track_fault_losses): the system reports
  // the MIDs its injector knows can never join (dropped or corrupted
  // shares, failed failovers) at the end of each epoch, per query. Each
  // (query, MID) is counted once — a later join-group expiry of the same
  // MID does not double-widen. The QID-less overload is the single-lane
  // shim.
  void NoteFaultLostMids(uint64_t query_id, std::span<const uint64_t> mids,
                         int64_t now_ms);
  void NoteFaultLostMids(std::span<const uint64_t> mids, int64_t now_ms);

  // Advances the event-time watermark on every lane: evicts stale join
  // groups and fires complete windows, shard by shard in shard order,
  // merging same-window accumulators across shards before emitting each
  // result. Lanes fire in ascending-QID order; windows within a lane in
  // ascending window order.
  void AdvanceWatermark(int64_t watermark_ms);

  // Stream-driven alternative: advances each lane to the
  // bounded-out-of-orderness watermark derived from the event times that
  // lane has seen so far (engine/watermark.h). Lanes run independent
  // watermarks, so a stalled query never holds back another's windows.
  void AdvanceWatermarkToStream();
  int64_t StreamWatermark() const;  // single-lane shim

  // Fires everything left (end of stream), all lanes.
  void Flush();

  // Join statistics summed across lanes and shards (recomputed per call).
  const engine::JoinStats& join_stats() const;
  size_t pending_join_groups() const;
  uint64_t malformed_dropped() const { return malformed_dropped_; }
  uint64_t wrong_query_dropped() const;
  size_t num_shards() const { return config_.num_shards; }

 private:
  // One join/window shard. Owns every piece of mutable state its joiner
  // emit path touches, so shards feed in parallel without synchronization;
  // the cross-shard deltas (malformed, wrong_query, max event time, tap)
  // are folded into the coordinator sequentially after the parallel region.
  struct Shard {
    explicit Shard(const engine::SlidingWindowAssigner& assigner)
        : windows(assigner) {}
    std::unique_ptr<engine::MidJoiner> joiner;
    engine::AccumulatingWindowBuffer<core::AnswerAccumulator> windows;
    // Deltas since the last MergeShardDeltas:
    uint64_t malformed = 0;      // joined plaintexts that failed to parse
    uint64_t wrong_query = 0;    // parsed answers for the wrong query/width
    uint64_t shares_fed = 0;     // shares routed to this shard
    int64_t max_event_ms = INT64_MIN;  // max valid-answer event time
    std::vector<std::pair<int64_t, BitVector>> tap;  // buffered answer tap
    // Lifetime counters for metrics deltas / imbalance:
    uint64_t last_joined = 0;    // joiner stats().joined at last merge
    uint64_t routed_total = 0;   // lifetime shares routed
  };

  // One shard's decoded batches, one slot per source stream. Decoded share
  // payloads point into broker slab storage (valid for the topic's
  // lifetime), so parking them here costs no payload copies.
  struct StreamSlot {
    std::vector<proxy::Proxy::DecodedShares> per_source;
    size_t filled = 0;
  };

  // Everything one registered query owns. unique_ptr'd in lanes_ so the
  // Lane* captured by its shards' joiner callbacks stays stable.
  struct Lane {
    core::Query query;
    core::ExecutionParams params;
    core::ErrorEstimator estimator;
    std::vector<std::unique_ptr<transport::BusConsumer>> consumers;
    // unique_ptr for stable addresses: each shard's joiner emit callback
    // captures its Shard*.
    std::vector<std::unique_ptr<Shard>> shards;
    engine::BoundedOutOfOrdernessWatermark stream_watermark;
    // Streaming-mode reorder buffer: shards decoded but not yet fed to the
    // join, keyed by shard sequence number. Bounded in practice by the
    // pipeline's channel capacities (upstream backpressure).
    std::map<uint64_t, StreamSlot> stream_pending;
    uint64_t stream_next_seq = 0;
    uint64_t wrong_query_dropped = 0;
    // Fault-loss bookkeeping (track_fault_losses): MID -> event time of
    // each loss, deduplicating injector reports against join-group
    // expiries. A sliding window counts the losses whose event time it
    // covers when it fires; entries too old to reach any future window are
    // pruned as the watermark advances. Lane-level: evictions run
    // shard-by-shard in shard order, and each MID belongs to exactly one
    // shard, so the map's content is independent of shard count.
    std::unordered_map<uint64_t, int64_t> fault_lost_mids;
    // Effective shard instruments (lane options or config-level fallback).
    std::vector<metrics::Counter*> shard_shares_total;
    std::vector<metrics::Counter*> shard_joined_total;
    metrics::Gauge* shard_imbalance_milli = nullptr;

    Lane(const core::Query& q, const core::ExecutionParams& p,
         const AggregatorConfig& config)
        : query(q),
          params(p),
          estimator(p, config.population, config.confidence),
          stream_watermark(config.watermark_out_of_orderness_ms) {}
  };

  Lane& SingleLane(const char* caller);
  const Lane& SingleLane(const char* caller) const;
  Lane& GetLane(uint64_t query_id, const char* caller);
  size_t ShardOf(uint64_t mid) const;
  uint64_t DrainLane(Lane& lane);
  // Feeds every decoded batch (indexed by source) to the lane's join
  // shards — in parallel via the pool when num_shards > 1 and a pool is
  // wired, sequentially otherwise — then folds shard deltas into the
  // coordinator in shard order.
  void FeedShards(Lane& lane,
                  std::span<const proxy::Proxy::DecodedShares> per_source);
  void MergeShardDeltas(Lane& lane);
  // Fires the lane's windows up to `watermark_ms` (or everything when
  // `flush`): drains each shard's completed windows in shard order, merges
  // accumulators per window, then emits results in ascending window order.
  void FireWindows(Lane& lane, int64_t watermark_ms, bool flush);
  void AdvanceLaneWatermark(Lane& lane, int64_t watermark_ms);
  void OnJoinedShard(Lane& lane, Shard& shard, uint64_t mid,
                     std::vector<uint8_t> plaintext, int64_t timestamp_ms);
  void OnWindowFired(Lane& lane, const engine::Window& window,
                     const core::AnswerAccumulator& acc);
  void NoteMalformed(uint64_t n);
  void NoteLostMid(Lane& lane, uint64_t mid, int64_t ts);
  size_t CountLossesInWindow(const Lane& lane,
                             const engine::Window& window) const;

  AggregatorConfig config_;
  // Set only by the Broker& convenience constructors; declared before bus_
  // so the pointer below can bind to it.
  std::unique_ptr<transport::InProcessBus> owned_bus_;
  transport::MessageBus* bus_ = nullptr;  // never null after construction
  ResultFn on_result_;
  AnswerTapFn answer_tap_;
  std::map<uint64_t, std::unique_ptr<Lane>> lanes_;  // QID -> lane, ascending
  // Consumption scratch, reused across calls and lanes (lanes are always
  // processed sequentially) so steady-state draining and shard consumption
  // perform no heap allocation. drain_* are indexed by source (one slot per
  // consumer, so the parallel Drain path stays synchronization-free);
  // shard_views_ backs the single-threaded ConsumeShardBatch poll;
  // fired_/merged_scratch_ back the per-watermark window merge.
  std::vector<std::vector<broker::RecordView>> drain_views_;
  std::vector<proxy::Proxy::DecodedShares> drain_decoded_;
  std::vector<broker::RecordView> shard_views_;
  std::vector<std::pair<engine::Window, core::AnswerAccumulator>>
      fired_scratch_;
  std::map<engine::Window, core::AnswerAccumulator> merged_scratch_;
  mutable engine::JoinStats merged_join_stats_;
  uint64_t malformed_dropped_ = 0;
};

}  // namespace privapprox::aggregator

#endif  // PRIVAPPROX_AGGREGATOR_AGGREGATOR_H_
