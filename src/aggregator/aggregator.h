// The aggregator runtime (paper §3.2.4, §5).
//
// Consumes the n proxy share streams, joins shares by MID, XOR-decrypts,
// deserializes the randomized answers, assigns them to sliding windows, and
// per fired window de-biases the per-bucket counts and attaches the combined
// error bound (sampling + randomized response). Results reach the analyst
// via a callback; joined randomized answers are optionally teed into the
// historical store (§3.3.1).
//
// The join + window stage is sharded by hash(MID): each shard owns an
// independent MidJoiner and per-window accumulators, so feeding shards can
// run in parallel with no shared mutable state, and per-window results are
// merged deterministically in shard order at fire time (see DESIGN.md §6g
// for why the merge is order-free and the N-shard result is bit-identical
// to the single-shard run).

#ifndef PRIVAPPROX_AGGREGATOR_AGGREGATOR_H_
#define PRIVAPPROX_AGGREGATOR_AGGREGATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "broker/broker.h"
#include "common/thread_pool.h"
#include "core/answer.h"
#include "core/budget.h"
#include "core/error_estimation.h"
#include "core/query.h"
#include "engine/join.h"
#include "engine/watermark.h"
#include "engine/window.h"
#include "metrics/metrics.h"
#include "proxy/proxy.h"

namespace privapprox::aggregator {

struct AggregatorConfig {
  size_t num_proxies = 2;
  size_t population = 0;       // U, for scaling estimates
  double confidence = 0.95;
  int64_t join_timeout_ms = 60000;
  // Bound for the stream-driven watermark (AdvanceWatermarkToStream): how
  // far out of order shares may arrive across the proxy paths.
  int64_t watermark_out_of_orderness_ms = 1000;
  // De-invert results produced under query inversion (§3.3.2).
  bool answers_inverted = false;
  // Join/window shards: shares route to shard hash(MID) % num_shards, each
  // with its own MidJoiner and window accumulators. 1 = the classic
  // sequential aggregator. Any N produces bit-identical results; N > 1 only
  // goes parallel when `pool` is also set.
  size_t num_shards = 1;
  // Optional worker pool (not owned). When set, Drain polls and decodes the
  // n proxy streams in parallel — one task per source topic — and both
  // consume paths feed the join shards in parallel (one task per shard).
  // Null keeps everything sequential.
  ThreadPool* pool = nullptr;
  // Optional instruments, not owned (null = uninstrumented). Wired by
  // PrivApproxSystem from its metrics registry. malformed_total mirrors
  // malformed_dropped() so the registry exposition matches EpochStats.
  metrics::Counter* malformed_total = nullptr;
  metrics::Histogram* decode_ns = nullptr;  // per poll+decode pass
  metrics::Histogram* join_ns = nullptr;    // per join feed pass
  metrics::Histogram* window_ns = nullptr;  // per fired window
  // Per-shard instruments, indexed by shard (empty or size num_shards):
  // shares routed to the shard and answers its joiner completed. The
  // imbalance gauge holds max-shard-routed * 1000 / mean-shard-routed
  // (1000 = perfectly balanced), updated after every feed pass.
  std::vector<metrics::Counter*> shard_shares_total;
  std::vector<metrics::Counter*> shard_joined_total;
  metrics::Gauge* shard_imbalance_milli = nullptr;
  // Fault-loss accounting (wired by PrivApproxSystem when a FaultPlan is
  // configured). When true, MIDs reported lost by the fault injector
  // (NoteFaultLostMids) and incomplete MIDs expired from the join at the
  // watermark widen the confidence interval of every window containing
  // their event time (ErrorEstimator::Estimate's lost_to_faults). False
  // keeps the estimate path bit-identical to a fault-free build.
  bool track_fault_losses = false;
  metrics::Counter* expired_mids_total = nullptr;  // join groups expired at
                                                   // the watermark
};

struct WindowedResult {
  engine::Window window;
  core::QueryResult result;
};

class Aggregator {
 public:
  using ResultFn = std::function<void(const WindowedResult&)>;
  // Optional tee of every joined randomized answer (for historical
  // analytics): (timestamp, answer bit-vector).
  using AnswerTapFn = std::function<void(int64_t, const BitVector&)>;

  Aggregator(AggregatorConfig config, const core::Query& query,
             const core::ExecutionParams& params, broker::Broker& broker,
             ResultFn on_result);

  void set_answer_tap(AnswerTapFn tap) { answer_tap_ = std::move(tap); }

  // Applies re-tuned execution parameters (§5 feedback loop): future
  // windows de-bias and error-estimate with the new (s, p, q). Windows
  // already buffered keep their answers; their estimates use the new
  // parameters, which is the correct choice once clients have switched.
  void UpdateParams(const core::ExecutionParams& params);

  // Drains all proxy outbound topics through join -> decrypt -> window.
  // Returns the number of shares consumed.
  uint64_t Drain();

  // --- Streaming-mode consumption (system/system.cc) -------------------
  //
  // The streaming epoch pipeline calls ConsumeShardBatch from its single
  // aggregator-stage thread, once per (shard, proxy) as forward
  // notifications arrive. It reads exactly the records proxy `source`
  // appended for shard `shard_seq` (per-outbound-partition counts as
  // reported by Proxy::ReceiveAndForwardShard), decodes them, and parks
  // the batch in a reorder buffer keyed by shard sequence number. Whenever
  // the buffer's head shard has a batch from every source, those batches
  // are fed to the MID join in (shard_seq, source) order — so the join
  // feed order is deterministic for every worker count, channel depth, and
  // thread interleaving. Returns records consumed (incl. malformed).
  //
  // Not thread-safe; not to be interleaved with Drain() mid-epoch. (The
  // internal fan-out to join shards may borrow the pool, but callers see a
  // single-threaded surface.)
  uint64_t ConsumeShardBatch(size_t source, uint64_t shard_seq,
                             const std::vector<uint32_t>& partition_counts);

  // Ends one streaming epoch: resets the shard sequence expectation for the
  // next epoch. Throws std::logic_error if shard batches are still parked
  // (a gap in the sequence — pipeline bug); the buffer is cleared first so
  // the aggregator stays usable after the throw.
  void FinishStream();

  // Fault-recovery input (requires track_fault_losses): the system reports
  // the MIDs its injector knows can never join (dropped or corrupted
  // shares, failed failovers) at the end of each epoch. Each MID is counted
  // once — a later join-group expiry of the same MID does not double-widen.
  void NoteFaultLostMids(std::span<const uint64_t> mids, int64_t now_ms);

  // Advances the event-time watermark: evicts stale join groups and fires
  // complete windows, shard by shard in shard order, merging same-window
  // accumulators across shards before emitting each result.
  void AdvanceWatermark(int64_t watermark_ms);

  // Stream-driven alternative: advances to the bounded-out-of-orderness
  // watermark derived from the event times seen so far (engine/watermark.h).
  void AdvanceWatermarkToStream();
  int64_t StreamWatermark() const { return stream_watermark_.Current(); }

  // Fires everything left (end of stream).
  void Flush();

  // Join statistics summed across shards (recomputed per call).
  const engine::JoinStats& join_stats() const;
  size_t pending_join_groups() const;
  uint64_t malformed_dropped() const { return malformed_dropped_; }
  uint64_t wrong_query_dropped() const { return wrong_query_dropped_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  // One join/window shard. Owns every piece of mutable state its joiner
  // emit path touches, so shards feed in parallel without synchronization;
  // the cross-shard deltas (malformed, wrong_query, max event time, tap)
  // are folded into the coordinator sequentially after the parallel region.
  struct Shard {
    explicit Shard(const engine::SlidingWindowAssigner& assigner)
        : windows(assigner) {}
    std::unique_ptr<engine::MidJoiner> joiner;
    engine::AccumulatingWindowBuffer<core::AnswerAccumulator> windows;
    // Deltas since the last MergeShardDeltas:
    uint64_t malformed = 0;      // joined plaintexts that failed to parse
    uint64_t wrong_query = 0;    // parsed answers for the wrong query/width
    uint64_t shares_fed = 0;     // shares routed to this shard
    int64_t max_event_ms = INT64_MIN;  // max valid-answer event time
    std::vector<std::pair<int64_t, BitVector>> tap;  // buffered answer tap
    // Lifetime counters for metrics deltas / imbalance:
    uint64_t last_joined = 0;    // joiner stats().joined at last merge
    uint64_t routed_total = 0;   // lifetime shares routed
  };

  // One shard's decoded batches, one slot per source stream. Decoded share
  // payloads point into broker slab storage (valid for the topic's
  // lifetime), so parking them here costs no payload copies.
  struct StreamSlot {
    std::vector<proxy::Proxy::DecodedShares> per_source;
    size_t filled = 0;
  };

  size_t ShardOf(uint64_t mid) const;
  // Feeds every decoded batch (indexed by source) to the join shards — in
  // parallel via the pool when num_shards > 1 and a pool is wired,
  // sequentially otherwise — then folds shard deltas into the coordinator
  // in shard order.
  void FeedShards(std::span<const proxy::Proxy::DecodedShares> per_source);
  void MergeShardDeltas();
  // Fires windows up to `watermark_ms` (or everything when `flush`):
  // drains each shard's completed windows in shard order, merges
  // accumulators per window, then emits results in ascending window order.
  void FireWindows(int64_t watermark_ms, bool flush);
  void OnJoinedShard(Shard& shard, uint64_t mid,
                     std::vector<uint8_t> plaintext, int64_t timestamp_ms);
  void OnWindowFired(const engine::Window& window,
                     const core::AnswerAccumulator& acc);
  void NoteMalformed(uint64_t n);
  void NoteLostMid(uint64_t mid, int64_t ts);
  size_t CountLossesInWindow(const engine::Window& window) const;

  AggregatorConfig config_;
  core::Query query_;
  core::ExecutionParams params_;
  broker::Broker& broker_;
  ResultFn on_result_;
  AnswerTapFn answer_tap_;
  std::vector<std::unique_ptr<broker::Consumer>> consumers_;
  // unique_ptr for stable addresses: each shard's joiner emit callback
  // captures its Shard*.
  std::vector<std::unique_ptr<Shard>> shards_;
  core::ErrorEstimator estimator_;
  engine::BoundedOutOfOrdernessWatermark stream_watermark_{1000};
  // Streaming-mode reorder buffer: shards decoded but not yet fed to the
  // join, keyed by shard sequence number. Bounded in practice by the
  // pipeline's channel capacities (upstream backpressure).
  std::map<uint64_t, StreamSlot> stream_pending_;
  // Consumption scratch, reused across calls so steady-state draining and
  // shard consumption perform no heap allocation. drain_* are indexed by
  // source (one slot per consumer, so the parallel Drain path stays
  // synchronization-free); shard_views_ backs the single-threaded
  // ConsumeShardBatch poll; fired_/merged_scratch_ back the per-watermark
  // window merge.
  std::vector<std::vector<broker::RecordView>> drain_views_;
  std::vector<proxy::Proxy::DecodedShares> drain_decoded_;
  std::vector<broker::RecordView> shard_views_;
  std::vector<std::pair<engine::Window, core::AnswerAccumulator>>
      fired_scratch_;
  std::map<engine::Window, core::AnswerAccumulator> merged_scratch_;
  mutable engine::JoinStats merged_join_stats_;
  uint64_t stream_next_seq_ = 0;
  uint64_t malformed_dropped_ = 0;
  uint64_t wrong_query_dropped_ = 0;
  // Fault-loss bookkeeping (track_fault_losses): MID -> event time of each
  // loss, deduplicating injector reports against join-group expiries. A
  // sliding window counts the losses whose event time it covers when it
  // fires; entries too old to reach any future window are pruned as the
  // watermark advances. Coordinator-level: evictions run shard-by-shard in
  // shard order, and each MID belongs to exactly one shard, so the map's
  // content is independent of shard count.
  std::unordered_map<uint64_t, int64_t> fault_lost_mids_;
};

}  // namespace privapprox::aggregator

#endif  // PRIVAPPROX_AGGREGATOR_AGGREGATOR_H_
