// Historical ("batch") analytics over stored responses (paper §3.3.1).
//
// The aggregator tees every joined randomized answer into a fault-tolerant
// store (HDFS in the prototype; an in-memory time-indexed log here). An
// analyst can later run a batch query over any past time range. To keep the
// batch computation within a query budget, a second round of sampling runs
// at the aggregator over the stored responses — that second sampling round
// composes with the client-side round and the error estimator accounts for
// the reduced sample.

#ifndef PRIVAPPROX_AGGREGATOR_HISTORICAL_H_
#define PRIVAPPROX_AGGREGATOR_HISTORICAL_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/rng.h"
#include "core/budget.h"
#include "core/error_estimation.h"
#include "storage/response_store.h"

namespace privapprox::aggregator {

// The store lives in the storage module (the durable log loads into it);
// re-exported here because it is the aggregator's historical working set.
using storage::ResponseStore;

struct BatchQueryBudget {
  // Fraction of stored responses to process (second-round sampling); 1.0
  // processes everything. Spot-market style budgets map to this directly.
  double aggregator_sampling_fraction = 1.0;
};

class HistoricalAnalytics {
 public:
  // `client_params` are the parameters the stored answers were produced
  // under (needed to de-bias); `population` is U.
  HistoricalAnalytics(const ResponseStore& store,
                      core::ExecutionParams client_params, size_t population,
                      double confidence = 0.95);

  // Runs the batch query over [from_ms, to_ms) under `budget`; the second
  // sampling round uses `rng`.
  core::QueryResult Run(int64_t from_ms, int64_t to_ms,
                        const BatchQueryBudget& budget, Xoshiro256& rng,
                        size_t num_buckets) const;

 private:
  const ResponseStore& store_;
  core::ExecutionParams client_params_;
  size_t population_;
  double confidence_;
};

}  // namespace privapprox::aggregator

#endif  // PRIVAPPROX_AGGREGATOR_HISTORICAL_H_
