#include "aggregator/aggregator.h"

#include <chrono>
#include <stdexcept>

#include "common/histogram.h"
#include "core/answer.h"
#include "core/inversion.h"
#include "crypto/message.h"
#include "proxy/proxy.h"

namespace privapprox::aggregator {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Times one scope into an optional histogram: reads the clock only when the
// instrument is wired.
class ScopedTimer {
 public:
  explicit ScopedTimer(metrics::Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) {
      start_ns_ = NowNs();
    }
  }
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Observe(static_cast<uint64_t>(NowNs() - start_ns_));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  metrics::Histogram* hist_;
  int64_t start_ns_ = 0;
};

}  // namespace

Aggregator::Aggregator(AggregatorConfig config, const core::Query& query,
                       const core::ExecutionParams& params,
                       broker::Broker& broker, ResultFn on_result)
    : config_(config),
      query_(query),
      params_(params),
      broker_(broker),
      on_result_(std::move(on_result)),
      estimator_(params, config.population, config.confidence),
      stream_watermark_(config.watermark_out_of_orderness_ms) {
  if (config.num_proxies < 2) {
    throw std::invalid_argument("Aggregator: need at least two proxies");
  }
  if (config.population == 0) {
    throw std::invalid_argument("Aggregator: population must be > 0");
  }
  for (size_t i = 0; i < config.num_proxies; ++i) {
    const std::string topic = "proxy" + std::to_string(i) + ".out";
    consumers_.push_back(
        std::make_unique<broker::Consumer>(broker_.GetTopic(topic)));
  }
  joiner_ = std::make_unique<engine::MidJoiner>(
      config.num_proxies, config.join_timeout_ms,
      [this](uint64_t mid, std::vector<uint8_t> plaintext, int64_t ts) {
        OnJoined(mid, std::move(plaintext), ts);
      });
  if (config_.track_fault_losses) {
    // Attribute every watermark-expired join group to its window for CI
    // widening. Wired only under a fault plan so the fault-free estimate
    // path stays bit-identical.
    joiner_->set_evict_fn([this](uint64_t mid, int64_t first_seen_ms) {
      if (config_.expired_mids_total != nullptr) {
        config_.expired_mids_total->Increment();
      }
      NoteLostMid(mid, first_seen_ms);
    });
  }
  windows_ = std::make_unique<engine::WindowBuffer<BitVector>>(
      engine::SlidingWindowAssigner(query_.window_length_ms,
                                    query_.sliding_interval_ms),
      [this](const engine::Window& window,
             const std::vector<BitVector>& answers) {
        OnWindowFired(window, answers);
      });
}

void Aggregator::UpdateParams(const core::ExecutionParams& params) {
  params.Validate();
  params_ = params;
  estimator_ = core::ErrorEstimator(params, config_.population,
                                    config_.confidence);
}

uint64_t Aggregator::Drain() {
  // Phase 1: poll + decode each proxy stream, one independent task per
  // source topic. Decoding only touches that source's consumer and local
  // scratch slot, so sources parallelize without synchronization. Polls and
  // decodes are view-based: payloads stay in the broker's slabs and only
  // the 8-byte MID header is parsed here.
  const size_t num_sources = consumers_.size();
  drain_views_.resize(num_sources);
  drain_decoded_.resize(num_sources);
  const auto drain_source = [&](size_t source) {
    broker::Consumer& consumer = *consumers_[source];
    drain_decoded_[source].Clear();
    std::vector<broker::RecordView>& views = drain_views_[source];
    for (;;) {
      views.clear();
      if (consumer.PollViews(4096, views) == 0) {
        break;
      }
      proxy::Proxy::DecodeShares(views, drain_decoded_[source]);
    }
  };
  {
    ScopedTimer timer(config_.decode_ns);
    if (config_.pool != nullptr && num_sources > 1) {
      config_.pool->ParallelFor(num_sources, [&](size_t begin, size_t end) {
        for (size_t source = begin; source < end; ++source) {
          drain_source(source);
        }
      });
    } else {
      for (size_t source = 0; source < num_sources; ++source) {
        drain_source(source);
      }
    }
  }
  // Phase 2: sequential join in source order — the same order the fully
  // sequential path fed the joiner, so emission order (and therefore every
  // downstream result) is identical.
  ScopedTimer timer(config_.join_ns);
  uint64_t consumed = 0;
  for (size_t source = 0; source < num_sources; ++source) {
    const proxy::Proxy::DecodedShares& batch = drain_decoded_[source];
    consumed += batch.shares.size() + batch.malformed;
    NoteMalformed(batch.malformed);
    for (const auto& share : batch.shares) {
      joiner_->Add(share.message_id, share.payload, share.timestamp_ms,
                   source);
    }
  }
  return consumed;
}

void Aggregator::NoteLostMid(uint64_t mid, int64_t ts) {
  // Dedup: a MID the injector already reported lost also lingers as a
  // partial join group until eviction — count it once.
  fault_lost_mids_.try_emplace(mid, ts);
}

size_t Aggregator::CountLossesInWindow(const engine::Window& window) const {
  size_t lost = 0;
  for (const auto& [mid, ts] : fault_lost_mids_) {
    if (ts >= window.start_ms && ts < window.end_ms) {
      ++lost;
    }
  }
  return lost;
}

void Aggregator::NoteFaultLostMids(std::span<const uint64_t> mids,
                                   int64_t now_ms) {
  if (!config_.track_fault_losses) {
    throw std::logic_error(
        "Aggregator::NoteFaultLostMids: track_fault_losses is off");
  }
  for (const uint64_t mid : mids) {
    NoteLostMid(mid, now_ms);
  }
}

void Aggregator::NoteMalformed(uint64_t n) {
  if (n == 0) {
    return;
  }
  malformed_dropped_ += n;
  if (config_.malformed_total != nullptr) {
    config_.malformed_total->Increment(n);
  }
}

uint64_t Aggregator::ConsumeShardBatch(
    size_t source, uint64_t shard_seq,
    const std::vector<uint32_t>& partition_counts) {
  if (source >= consumers_.size()) {
    throw std::out_of_range("Aggregator::ConsumeShardBatch: bad source");
  }
  uint64_t consumed = 0;
  {
    ScopedTimer timer(config_.decode_ns);
    shard_views_.clear();
    consumed =
        consumers_[source]->PollPartitionsViews(partition_counts, shard_views_);
    StreamSlot& slot = stream_pending_[shard_seq];
    if (slot.per_source.empty()) {
      slot.per_source.resize(consumers_.size());
    }
    proxy::Proxy::DecodeShares(shard_views_, slot.per_source[source]);
    ++slot.filled;
  }
  // Advance the reorder buffer: feed every complete shard at the head, in
  // (shard_seq, source) order — the streaming pipeline's canonical join
  // feed order.
  ScopedTimer timer(config_.join_ns);
  while (!stream_pending_.empty()) {
    auto head = stream_pending_.begin();
    if (head->first != stream_next_seq_ ||
        head->second.filled != consumers_.size()) {
      break;
    }
    for (size_t s = 0; s < consumers_.size(); ++s) {
      const proxy::Proxy::DecodedShares& batch = head->second.per_source[s];
      NoteMalformed(batch.malformed);
      for (const auto& share : batch.shares) {
        joiner_->Add(share.message_id, share.payload, share.timestamp_ms, s);
      }
    }
    stream_pending_.erase(head);
    ++stream_next_seq_;
  }
  return consumed;
}

void Aggregator::FinishStream() {
  const bool incomplete = !stream_pending_.empty();
  stream_pending_.clear();
  stream_next_seq_ = 0;
  if (incomplete) {
    throw std::logic_error(
        "Aggregator::FinishStream: shard batches missing from the stream");
  }
}

void Aggregator::OnJoined(uint64_t /*mid*/, std::vector<uint8_t> plaintext,
                          int64_t timestamp_ms) {
  crypto::AnswerMessage message;
  try {
    message = crypto::AnswerMessage::Deserialize(plaintext);
  } catch (const std::invalid_argument&) {
    NoteMalformed(1);
    return;
  }
  if (message.query_id != query_.query_id ||
      message.answer.size() != query_.answer_format.num_buckets()) {
    ++wrong_query_dropped_;
    return;
  }
  if (answer_tap_) {
    answer_tap_(timestamp_ms, message.answer);
  }
  stream_watermark_.Observe(timestamp_ms);
  windows_->Add(timestamp_ms, message.answer);
}

void Aggregator::OnWindowFired(const engine::Window& window,
                               const std::vector<BitVector>& answers) {
  ScopedTimer timer(config_.window_ns);
  core::AnswerAccumulator acc(query_.answer_format.num_buckets());
  for (const BitVector& answer : answers) {
    acc.Add(answer);
  }
  const size_t lost_in_window =
      config_.track_fault_losses ? CountLossesInWindow(window) : 0;
  core::QueryResult result =
      estimator_.Estimate(acc.histogram(), acc.num_answers(), lost_in_window);
  if (config_.answers_inverted) {
    // De-invert: yes-count = participants - no-count, bucket-wise, scaled to
    // the population.
    const double scaled_total = static_cast<double>(config_.population);
    for (auto& bucket : result.buckets) {
      bucket.estimate.value =
          core::YesCountFromInverted(bucket.estimate.value, scaled_total);
    }
  }
  on_result_(WindowedResult{window, std::move(result)});
}

void Aggregator::AdvanceWatermark(int64_t watermark_ms) {
  joiner_->EvictStale(watermark_ms);
  windows_->AdvanceWatermark(watermark_ms);
  if (config_.track_fault_losses && !fault_lost_mids_.empty()) {
    // Losses too old to fall into any window still unfired can go: every
    // window containing their event time ended at or before the watermark.
    const int64_t cutoff = watermark_ms - query_.window_length_ms;
    for (auto it = fault_lost_mids_.begin(); it != fault_lost_mids_.end();) {
      it = it->second < cutoff ? fault_lost_mids_.erase(it) : std::next(it);
    }
  }
}

void Aggregator::AdvanceWatermarkToStream() {
  const int64_t watermark = stream_watermark_.Current();
  if (watermark != INT64_MIN) {
    AdvanceWatermark(watermark);
  }
}

void Aggregator::Flush() { windows_->Flush(); }

const engine::JoinStats& Aggregator::join_stats() const {
  return joiner_->stats();
}

size_t Aggregator::pending_join_groups() const {
  return joiner_->pending_groups();
}

}  // namespace privapprox::aggregator
