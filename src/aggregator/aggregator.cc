#include "aggregator/aggregator.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <iterator>
#include <mutex>
#include <stdexcept>

#include "common/histogram.h"
#include "core/inversion.h"
#include "crypto/message.h"

namespace privapprox::aggregator {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Times one scope into an optional histogram: reads the clock only when the
// instrument is wired.
class ScopedTimer {
 public:
  explicit ScopedTimer(metrics::Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) {
      start_ns_ = NowNs();
    }
  }
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Observe(static_cast<uint64_t>(NowNs() - start_ns_));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  metrics::Histogram* hist_;
  int64_t start_ns_ = 0;
};

// SplitMix64 finalizer: MIDs are drawn from client RNGs but may share
// low-bit structure; the mix spreads them uniformly so `mix % num_shards`
// balances shards for any shard count, not just powers of two.
uint64_t MixMid(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

namespace {

void ValidateAggregatorConfig(const AggregatorConfig& config) {
  if (config.num_proxies < 2) {
    throw std::invalid_argument("Aggregator: need at least two proxies");
  }
  if (config.population == 0) {
    throw std::invalid_argument("Aggregator: population must be > 0");
  }
  if (config.num_shards == 0) {
    throw std::invalid_argument("Aggregator: num_shards must be > 0");
  }
}

}  // namespace

Aggregator::Aggregator(AggregatorConfig config, transport::MessageBus& bus,
                       ResultFn on_result)
    : config_(config), bus_(&bus), on_result_(std::move(on_result)) {
  ValidateAggregatorConfig(config_);
}

Aggregator::Aggregator(AggregatorConfig config, broker::Broker& broker,
                       ResultFn on_result)
    : config_(config),
      owned_bus_(std::make_unique<transport::InProcessBus>(broker)),
      bus_(owned_bus_.get()),
      on_result_(std::move(on_result)) {
  ValidateAggregatorConfig(config_);
}

Aggregator::Aggregator(AggregatorConfig config, const core::Query& query,
                       const core::ExecutionParams& params,
                       broker::Broker& broker, ResultFn on_result)
    : Aggregator(config, broker, std::move(on_result)) {
  RegisterQuery(query, params);
}

void Aggregator::RegisterQuery(const core::Query& query,
                               const core::ExecutionParams& params,
                               QueryLaneOptions options) {
  if (query.query_id == 0) {
    throw std::invalid_argument("Aggregator::RegisterQuery: query id 0");
  }
  if (lanes_.count(query.query_id) != 0) {
    throw std::invalid_argument(
        "Aggregator::RegisterQuery: duplicate query id " +
        std::to_string(query.query_id));
  }
  if (options.source_topics.empty()) {
    // Single-query compatibility: the legacy per-proxy outbound topics.
    for (size_t i = 0; i < config_.num_proxies; ++i) {
      options.source_topics.push_back("proxy" + std::to_string(i) + ".out");
    }
  }
  if (options.source_topics.size() != config_.num_proxies) {
    throw std::invalid_argument(
        "Aggregator::RegisterQuery: need one source topic per proxy");
  }
  auto lane_ptr = std::make_unique<Lane>(query, params, config_);
  Lane* lane = lane_ptr.get();
  for (const std::string& topic : options.source_topics) {
    lane->consumers.push_back(
        std::make_unique<transport::BusConsumer>(*bus_, topic));
  }
  lane->shard_shares_total = options.shard_shares_total.empty()
                                 ? config_.shard_shares_total
                                 : std::move(options.shard_shares_total);
  lane->shard_joined_total = options.shard_joined_total.empty()
                                 ? config_.shard_joined_total
                                 : std::move(options.shard_joined_total);
  lane->shard_imbalance_milli = options.shard_imbalance_milli != nullptr
                                    ? options.shard_imbalance_milli
                                    : config_.shard_imbalance_milli;
  const engine::SlidingWindowAssigner assigner(query.window_length_ms,
                                               query.sliding_interval_ms);
  for (size_t s = 0; s < config_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>(assigner);
    Shard* sp = shard.get();
    sp->joiner = std::make_unique<engine::MidJoiner>(
        config_.num_proxies, config_.join_timeout_ms,
        [this, lane, sp](uint64_t mid, std::vector<uint8_t> plaintext,
                         int64_t ts) {
          OnJoinedShard(*lane, *sp, mid, std::move(plaintext), ts);
        });
    if (config_.track_fault_losses) {
      // Attribute every watermark-expired join group to its window for CI
      // widening. Wired only under a fault plan so the fault-free estimate
      // path stays bit-identical. Evictions only run from AdvanceWatermark's
      // sequential shard loop, so touching lane state here is safe.
      sp->joiner->set_evict_fn([this, lane](uint64_t mid,
                                            int64_t first_seen_ms) {
        if (config_.expired_mids_total != nullptr) {
          config_.expired_mids_total->Increment();
        }
        NoteLostMid(*lane, mid, first_seen_ms);
      });
    }
    lane->shards.push_back(std::move(shard));
  }
  lanes_.emplace(query.query_id, std::move(lane_ptr));
}

Aggregator::Lane& Aggregator::GetLane(uint64_t query_id, const char* caller) {
  const auto it = lanes_.find(query_id);
  if (it == lanes_.end()) {
    throw std::invalid_argument(std::string(caller) +
                                ": unknown query id " +
                                std::to_string(query_id));
  }
  return *it->second;
}

const Aggregator::Lane& Aggregator::SingleLane(const char* caller) const {
  if (lanes_.size() != 1) {
    throw std::logic_error(std::string(caller) +
                           ": requires exactly one registered query (have " +
                           std::to_string(lanes_.size()) +
                           "); pass a query id");
  }
  return *lanes_.begin()->second;
}

Aggregator::Lane& Aggregator::SingleLane(const char* caller) {
  return const_cast<Lane&>(
      static_cast<const Aggregator*>(this)->SingleLane(caller));
}

void Aggregator::UpdateParams(uint64_t query_id,
                              const core::ExecutionParams& params) {
  params.Validate();
  Lane& lane = GetLane(query_id, "Aggregator::UpdateParams");
  lane.params = params;
  lane.estimator =
      core::ErrorEstimator(params, config_.population, config_.confidence);
}

void Aggregator::UpdateParams(const core::ExecutionParams& params) {
  UpdateParams(SingleLane("Aggregator::UpdateParams").query.query_id, params);
}

size_t Aggregator::ShardOf(uint64_t mid) const {
  if (config_.num_shards == 1) {
    return 0;
  }
  return static_cast<size_t>(MixMid(mid) % config_.num_shards);
}

uint64_t Aggregator::Drain() {
  uint64_t consumed = 0;
  for (auto& [qid, lane] : lanes_) {
    consumed += DrainLane(*lane);
  }
  return consumed;
}

uint64_t Aggregator::DrainLane(Lane& lane) {
  // Phase 1: poll + decode each proxy stream, one independent task per
  // source topic. Decoding only touches that source's consumer and local
  // scratch slot, so sources parallelize without synchronization. Polls and
  // decodes are view-based: payloads stay in the broker's slabs and only
  // the 8-byte MID header is parsed here.
  const size_t num_sources = lane.consumers.size();
  drain_views_.resize(num_sources);
  drain_decoded_.resize(num_sources);
  // First poll failure across sources; rethrown only after everything
  // already committed has been fed downstream. Consumer offsets advance on
  // each successful poll, so a record sitting in `views` when a later poll
  // throws is committed — dropping it here would skip it forever.
  std::exception_ptr drain_error;
  std::mutex drain_error_mu;
  const auto drain_source = [&](size_t source) {
    transport::BusConsumer& consumer = *lane.consumers[source];
    drain_decoded_[source].Clear();
    std::vector<broker::RecordView>& views = drain_views_[source];
    try {
      for (;;) {
        views.clear();
        if (consumer.PollInto(4096, views) == 0) {
          break;
        }
        proxy::Proxy::DecodeShares(views, drain_decoded_[source]);
      }
    } catch (...) {
      // Keep whatever this source committed before the failure (PollInto
      // may have appended records whose offsets are already advanced).
      proxy::Proxy::DecodeShares(views, drain_decoded_[source]);
      std::lock_guard<std::mutex> lock(drain_error_mu);
      if (drain_error == nullptr) {
        drain_error = std::current_exception();
      }
    }
  };
  {
    ScopedTimer timer(config_.decode_ns);
    if (config_.pool != nullptr && num_sources > 1) {
      config_.pool->ParallelFor(num_sources, [&](size_t begin, size_t end) {
        for (size_t source = begin; source < end; ++source) {
          drain_source(source);
        }
      });
    } else {
      for (size_t source = 0; source < num_sources; ++source) {
        drain_source(source);
      }
    }
  }
  // Phase 2: feed the join shards. Decode-level malformed records are the
  // coordinator's to count (they never reach a shard).
  uint64_t consumed = 0;
  for (size_t source = 0; source < num_sources; ++source) {
    const proxy::Proxy::DecodedShares& batch = drain_decoded_[source];
    consumed += batch.shares.size() + batch.malformed;
    NoteMalformed(batch.malformed);
  }
  FeedShards(lane, drain_decoded_);
  if (drain_error != nullptr) {
    std::rethrow_exception(drain_error);
  }
  return consumed;
}

std::vector<std::pair<std::string, std::vector<uint64_t>>>
Aggregator::SourceOffsets() const {
  std::vector<std::pair<std::string, std::vector<uint64_t>>> out;
  for (const auto& [qid, lane] : lanes_) {
    for (const auto& consumer : lane->consumers) {
      std::vector<uint64_t> offsets;
      offsets.reserve(consumer->num_partitions());
      for (size_t p = 0; p < consumer->num_partitions(); ++p) {
        offsets.push_back(consumer->offset(p));
      }
      out.emplace_back(consumer->topic(), std::move(offsets));
    }
  }
  return out;
}

void Aggregator::FeedShards(
    Lane& lane, std::span<const proxy::Proxy::DecodedShares> per_source) {
  ScopedTimer timer(config_.join_ns);
  // Each shard scans every batch and picks out its own MIDs, so a shard's
  // joiner (and everything its emit path mutates) is touched by exactly one
  // task. Within a shard the feed order is (source, record) order — the
  // same order a single shard would see its subset in, which keeps
  // per-shard join stats and emission order canonical.
  const auto feed_shard = [&](size_t shard_index) {
    Shard& shard = *lane.shards[shard_index];
    for (size_t source = 0; source < per_source.size(); ++source) {
      for (const auto& share : per_source[source].shares) {
        if (ShardOf(share.message_id) != shard_index) {
          continue;
        }
        ++shard.shares_fed;
        shard.joiner->Add(share.message_id, share.payload, share.timestamp_ms,
                          source);
      }
    }
  };
  if (config_.pool != nullptr && lane.shards.size() > 1) {
    config_.pool->ParallelFor(lane.shards.size(),
                              [&](size_t begin, size_t end) {
                                for (size_t s = begin; s < end; ++s) {
                                  feed_shard(s);
                                }
                              });
  } else {
    for (size_t s = 0; s < lane.shards.size(); ++s) {
      feed_shard(s);
    }
  }
  MergeShardDeltas(lane);
}

void Aggregator::MergeShardDeltas(Lane& lane) {
  // Sequential, in shard order. Every fold below is a sum, max, or
  // insertion keyed by data the shards partition disjointly, so the merged
  // totals are independent of how work interleaved inside the parallel
  // region — only this loop's fixed order shows up in observable output
  // (the answer-tap order).
  uint64_t routed_max = 0;
  uint64_t routed_sum = 0;
  for (size_t s = 0; s < lane.shards.size(); ++s) {
    Shard& shard = *lane.shards[s];
    NoteMalformed(shard.malformed);
    shard.malformed = 0;
    lane.wrong_query_dropped += shard.wrong_query;
    shard.wrong_query = 0;
    if (shard.max_event_ms != INT64_MIN) {
      lane.stream_watermark.Observe(shard.max_event_ms);
      shard.max_event_ms = INT64_MIN;
    }
    if (answer_tap_) {
      for (const auto& [ts, answer] : shard.tap) {
        answer_tap_(ts, answer);
      }
    }
    shard.tap.clear();
    if (!lane.shard_shares_total.empty() && shard.shares_fed > 0) {
      lane.shard_shares_total[s]->Increment(shard.shares_fed);
    }
    const uint64_t joined = shard.joiner->stats().joined;
    if (!lane.shard_joined_total.empty() && joined > shard.last_joined) {
      lane.shard_joined_total[s]->Increment(joined - shard.last_joined);
    }
    shard.last_joined = joined;
    shard.routed_total += shard.shares_fed;
    shard.shares_fed = 0;
    routed_max = std::max(routed_max, shard.routed_total);
    routed_sum += shard.routed_total;
  }
  if (lane.shard_imbalance_milli != nullptr && routed_sum > 0) {
    const double mean = static_cast<double>(routed_sum) /
                        static_cast<double>(lane.shards.size());
    lane.shard_imbalance_milli->Set(
        static_cast<int64_t>(static_cast<double>(routed_max) * 1000.0 / mean));
  }
}

void Aggregator::NoteLostMid(Lane& lane, uint64_t mid, int64_t ts) {
  // Dedup: a MID the injector already reported lost also lingers as a
  // partial join group until eviction — count it once.
  lane.fault_lost_mids.try_emplace(mid, ts);
}

size_t Aggregator::CountLossesInWindow(const Lane& lane,
                                       const engine::Window& window) const {
  size_t lost = 0;
  for (const auto& [mid, ts] : lane.fault_lost_mids) {
    if (ts >= window.start_ms && ts < window.end_ms) {
      ++lost;
    }
  }
  return lost;
}

void Aggregator::NoteFaultLostMids(uint64_t query_id,
                                   std::span<const uint64_t> mids,
                                   int64_t now_ms) {
  if (!config_.track_fault_losses) {
    throw std::logic_error(
        "Aggregator::NoteFaultLostMids: track_fault_losses is off");
  }
  Lane& lane = GetLane(query_id, "Aggregator::NoteFaultLostMids");
  for (const uint64_t mid : mids) {
    NoteLostMid(lane, mid, now_ms);
  }
}

void Aggregator::NoteFaultLostMids(std::span<const uint64_t> mids,
                                   int64_t now_ms) {
  NoteFaultLostMids(SingleLane("Aggregator::NoteFaultLostMids").query.query_id,
                    mids, now_ms);
}

void Aggregator::NoteMalformed(uint64_t n) {
  if (n == 0) {
    return;
  }
  malformed_dropped_ += n;
  if (config_.malformed_total != nullptr) {
    config_.malformed_total->Increment(n);
  }
}

uint64_t Aggregator::ConsumeShardBatch(
    uint64_t query_id, size_t source, uint64_t shard_seq,
    const std::vector<uint32_t>& partition_counts) {
  Lane& lane = GetLane(query_id, "Aggregator::ConsumeShardBatch");
  if (source >= lane.consumers.size()) {
    throw std::out_of_range("Aggregator::ConsumeShardBatch: bad source");
  }
  uint64_t consumed = 0;
  {
    ScopedTimer timer(config_.decode_ns);
    shard_views_.clear();
    consumed = lane.consumers[source]->PollExactInto(partition_counts,
                                                     shard_views_);
    StreamSlot& slot = lane.stream_pending[shard_seq];
    if (slot.per_source.empty()) {
      slot.per_source.resize(lane.consumers.size());
    }
    proxy::Proxy::DecodeShares(shard_views_, slot.per_source[source]);
    ++slot.filled;
  }
  // Advance the reorder buffer: feed every complete shard at the head, in
  // (shard_seq, source) order — the streaming pipeline's canonical join
  // feed order.
  while (!lane.stream_pending.empty()) {
    auto head = lane.stream_pending.begin();
    if (head->first != lane.stream_next_seq ||
        head->second.filled != lane.consumers.size()) {
      break;
    }
    for (const proxy::Proxy::DecodedShares& batch : head->second.per_source) {
      NoteMalformed(batch.malformed);
    }
    FeedShards(lane, head->second.per_source);
    lane.stream_pending.erase(head);
    ++lane.stream_next_seq;
  }
  return consumed;
}

uint64_t Aggregator::ConsumeShardBatch(
    size_t source, uint64_t shard_seq,
    const std::vector<uint32_t>& partition_counts) {
  return ConsumeShardBatch(
      SingleLane("Aggregator::ConsumeShardBatch").query.query_id, source,
      shard_seq, partition_counts);
}

void Aggregator::FinishStream() {
  bool incomplete = false;
  for (auto& [qid, lane] : lanes_) {
    incomplete = incomplete || !lane->stream_pending.empty();
    lane->stream_pending.clear();
    lane->stream_next_seq = 0;
  }
  if (incomplete) {
    throw std::logic_error(
        "Aggregator::FinishStream: shard batches missing from the stream");
  }
}

void Aggregator::OnJoinedShard(Lane& lane, Shard& shard, uint64_t /*mid*/,
                               std::vector<uint8_t> plaintext,
                               int64_t timestamp_ms) {
  crypto::AnswerMessage message;
  try {
    message = crypto::AnswerMessage::Deserialize(plaintext);
  } catch (const std::invalid_argument&) {
    ++shard.malformed;
    return;
  }
  if (message.query_id != lane.query.query_id ||
      message.answer.size() != lane.query.answer_format.num_buckets()) {
    ++shard.wrong_query;
    return;
  }
  shard.max_event_ms = std::max(shard.max_event_ms, timestamp_ms);
  shard.windows.Fold(timestamp_ms, message.answer, [&lane] {
    return core::AnswerAccumulator(lane.query.answer_format.num_buckets());
  });
  if (answer_tap_) {
    shard.tap.emplace_back(timestamp_ms, std::move(message.answer));
  }
}

void Aggregator::FireWindows(Lane& lane, int64_t watermark_ms, bool flush) {
  // Drain each shard's completed windows in shard order and merge
  // accumulators per window. The element-wise histogram add is exact (every
  // count is a whole number of 1.0 increments, far below 2^53), so the
  // merged accumulator is bit-identical to the one a single shard would
  // have built — shard count and merge order cannot change a result.
  for (auto& shard : lane.shards) {
    fired_scratch_.clear();
    if (flush) {
      shard->windows.DrainAll(fired_scratch_);
    } else {
      shard->windows.DrainFired(watermark_ms, fired_scratch_);
    }
    for (auto& [window, acc] : fired_scratch_) {
      auto it = merged_scratch_.find(window);
      if (it == merged_scratch_.end()) {
        merged_scratch_.emplace(window, std::move(acc));
      } else {
        it->second.Merge(acc);
      }
    }
  }
  fired_scratch_.clear();
  // Emit in ascending window order — the same order the single-shard
  // WindowBuffer fired in.
  for (const auto& [window, acc] : merged_scratch_) {
    OnWindowFired(lane, window, acc);
  }
  merged_scratch_.clear();
}

void Aggregator::OnWindowFired(Lane& lane, const engine::Window& window,
                               const core::AnswerAccumulator& acc) {
  ScopedTimer timer(config_.window_ns);
  const size_t lost_in_window =
      config_.track_fault_losses ? CountLossesInWindow(lane, window) : 0;
  core::QueryResult result = lane.estimator.Estimate(
      acc.histogram(), acc.num_answers(), lost_in_window);
  if (config_.answers_inverted) {
    // De-invert: yes-count = participants - no-count, bucket-wise, scaled to
    // the population.
    const double scaled_total = static_cast<double>(config_.population);
    for (auto& bucket : result.buckets) {
      bucket.estimate.value =
          core::YesCountFromInverted(bucket.estimate.value, scaled_total);
    }
  }
  on_result_(
      WindowedResult{lane.query.query_id, window, std::move(result)});
}

void Aggregator::AdvanceLaneWatermark(Lane& lane, int64_t watermark_ms) {
  // Evictions run shard by shard in shard order; each MID lives in exactly
  // one shard, so the lane-side loss map and expired counter end up
  // identical for every shard count.
  for (auto& shard : lane.shards) {
    shard->joiner->EvictStale(watermark_ms);
  }
  FireWindows(lane, watermark_ms, /*flush=*/false);
  if (config_.track_fault_losses && !lane.fault_lost_mids.empty()) {
    // Losses too old to fall into any window still unfired can go: every
    // window containing their event time ended at or before the watermark.
    const int64_t cutoff = watermark_ms - lane.query.window_length_ms;
    for (auto it = lane.fault_lost_mids.begin();
         it != lane.fault_lost_mids.end();) {
      it = it->second < cutoff ? lane.fault_lost_mids.erase(it)
                               : std::next(it);
    }
  }
}

void Aggregator::AdvanceWatermark(int64_t watermark_ms) {
  for (auto& [qid, lane] : lanes_) {
    AdvanceLaneWatermark(*lane, watermark_ms);
  }
}

void Aggregator::AdvanceWatermarkToStream() {
  for (auto& [qid, lane] : lanes_) {
    const int64_t watermark = lane->stream_watermark.Current();
    if (watermark != INT64_MIN) {
      AdvanceLaneWatermark(*lane, watermark);
    }
  }
}

int64_t Aggregator::StreamWatermark() const {
  return SingleLane("Aggregator::StreamWatermark")
      .stream_watermark.Current();
}

void Aggregator::Flush() {
  for (auto& [qid, lane] : lanes_) {
    FireWindows(*lane, 0, /*flush=*/true);
  }
}

const engine::JoinStats& Aggregator::join_stats() const {
  merged_join_stats_ = {};
  for (const auto& [qid, lane] : lanes_) {
    for (const auto& shard : lane->shards) {
      const engine::JoinStats& s = shard->joiner->stats();
      merged_join_stats_.joined += s.joined;
      merged_join_stats_.duplicates_dropped += s.duplicates_dropped;
      merged_join_stats_.evicted_partial += s.evicted_partial;
      merged_join_stats_.late_dropped += s.late_dropped;
    }
  }
  return merged_join_stats_;
}

size_t Aggregator::pending_join_groups() const {
  size_t pending = 0;
  for (const auto& [qid, lane] : lanes_) {
    for (const auto& shard : lane->shards) {
      pending += shard->joiner->pending_groups();
    }
  }
  return pending;
}

uint64_t Aggregator::wrong_query_dropped() const {
  uint64_t total = 0;
  for (const auto& [qid, lane] : lanes_) {
    total += lane->wrong_query_dropped;
  }
  return total;
}

}  // namespace privapprox::aggregator
