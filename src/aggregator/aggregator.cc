#include "aggregator/aggregator.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <stdexcept>

#include "common/histogram.h"
#include "core/inversion.h"
#include "crypto/message.h"

namespace privapprox::aggregator {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Times one scope into an optional histogram: reads the clock only when the
// instrument is wired.
class ScopedTimer {
 public:
  explicit ScopedTimer(metrics::Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) {
      start_ns_ = NowNs();
    }
  }
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Observe(static_cast<uint64_t>(NowNs() - start_ns_));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  metrics::Histogram* hist_;
  int64_t start_ns_ = 0;
};

// SplitMix64 finalizer: MIDs are drawn from client RNGs but may share
// low-bit structure; the mix spreads them uniformly so `mix % num_shards`
// balances shards for any shard count, not just powers of two.
uint64_t MixMid(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

Aggregator::Aggregator(AggregatorConfig config, const core::Query& query,
                       const core::ExecutionParams& params,
                       broker::Broker& broker, ResultFn on_result)
    : config_(config),
      query_(query),
      params_(params),
      broker_(broker),
      on_result_(std::move(on_result)),
      estimator_(params, config.population, config.confidence),
      stream_watermark_(config.watermark_out_of_orderness_ms) {
  if (config.num_proxies < 2) {
    throw std::invalid_argument("Aggregator: need at least two proxies");
  }
  if (config.population == 0) {
    throw std::invalid_argument("Aggregator: population must be > 0");
  }
  if (config.num_shards == 0) {
    throw std::invalid_argument("Aggregator: num_shards must be > 0");
  }
  for (size_t i = 0; i < config.num_proxies; ++i) {
    const std::string topic = "proxy" + std::to_string(i) + ".out";
    consumers_.push_back(
        std::make_unique<broker::Consumer>(broker_.GetTopic(topic)));
  }
  const engine::SlidingWindowAssigner assigner(query_.window_length_ms,
                                               query_.sliding_interval_ms);
  for (size_t s = 0; s < config.num_shards; ++s) {
    auto shard = std::make_unique<Shard>(assigner);
    Shard* sp = shard.get();
    sp->joiner = std::make_unique<engine::MidJoiner>(
        config.num_proxies, config.join_timeout_ms,
        [this, sp](uint64_t mid, std::vector<uint8_t> plaintext, int64_t ts) {
          OnJoinedShard(*sp, mid, std::move(plaintext), ts);
        });
    if (config_.track_fault_losses) {
      // Attribute every watermark-expired join group to its window for CI
      // widening. Wired only under a fault plan so the fault-free estimate
      // path stays bit-identical. Evictions only run from AdvanceWatermark's
      // sequential shard loop, so touching coordinator state here is safe.
      sp->joiner->set_evict_fn([this](uint64_t mid, int64_t first_seen_ms) {
        if (config_.expired_mids_total != nullptr) {
          config_.expired_mids_total->Increment();
        }
        NoteLostMid(mid, first_seen_ms);
      });
    }
    shards_.push_back(std::move(shard));
  }
}

void Aggregator::UpdateParams(const core::ExecutionParams& params) {
  params.Validate();
  params_ = params;
  estimator_ = core::ErrorEstimator(params, config_.population,
                                    config_.confidence);
}

size_t Aggregator::ShardOf(uint64_t mid) const {
  if (shards_.size() == 1) {
    return 0;
  }
  return static_cast<size_t>(MixMid(mid) % shards_.size());
}

uint64_t Aggregator::Drain() {
  // Phase 1: poll + decode each proxy stream, one independent task per
  // source topic. Decoding only touches that source's consumer and local
  // scratch slot, so sources parallelize without synchronization. Polls and
  // decodes are view-based: payloads stay in the broker's slabs and only
  // the 8-byte MID header is parsed here.
  const size_t num_sources = consumers_.size();
  drain_views_.resize(num_sources);
  drain_decoded_.resize(num_sources);
  const auto drain_source = [&](size_t source) {
    broker::Consumer& consumer = *consumers_[source];
    drain_decoded_[source].Clear();
    std::vector<broker::RecordView>& views = drain_views_[source];
    for (;;) {
      views.clear();
      if (consumer.PollViews(4096, views) == 0) {
        break;
      }
      proxy::Proxy::DecodeShares(views, drain_decoded_[source]);
    }
  };
  {
    ScopedTimer timer(config_.decode_ns);
    if (config_.pool != nullptr && num_sources > 1) {
      config_.pool->ParallelFor(num_sources, [&](size_t begin, size_t end) {
        for (size_t source = begin; source < end; ++source) {
          drain_source(source);
        }
      });
    } else {
      for (size_t source = 0; source < num_sources; ++source) {
        drain_source(source);
      }
    }
  }
  // Phase 2: feed the join shards. Decode-level malformed records are the
  // coordinator's to count (they never reach a shard).
  uint64_t consumed = 0;
  for (size_t source = 0; source < num_sources; ++source) {
    const proxy::Proxy::DecodedShares& batch = drain_decoded_[source];
    consumed += batch.shares.size() + batch.malformed;
    NoteMalformed(batch.malformed);
  }
  FeedShards(drain_decoded_);
  return consumed;
}

void Aggregator::FeedShards(
    std::span<const proxy::Proxy::DecodedShares> per_source) {
  ScopedTimer timer(config_.join_ns);
  // Each shard scans every batch and picks out its own MIDs, so a shard's
  // joiner (and everything its emit path mutates) is touched by exactly one
  // task. Within a shard the feed order is (source, record) order — the
  // same order a single shard would see its subset in, which keeps
  // per-shard join stats and emission order canonical.
  const auto feed_shard = [&](size_t shard_index) {
    Shard& shard = *shards_[shard_index];
    for (size_t source = 0; source < per_source.size(); ++source) {
      for (const auto& share : per_source[source].shares) {
        if (ShardOf(share.message_id) != shard_index) {
          continue;
        }
        ++shard.shares_fed;
        shard.joiner->Add(share.message_id, share.payload, share.timestamp_ms,
                          source);
      }
    }
  };
  if (config_.pool != nullptr && shards_.size() > 1) {
    config_.pool->ParallelFor(shards_.size(), [&](size_t begin, size_t end) {
      for (size_t s = begin; s < end; ++s) {
        feed_shard(s);
      }
    });
  } else {
    for (size_t s = 0; s < shards_.size(); ++s) {
      feed_shard(s);
    }
  }
  MergeShardDeltas();
}

void Aggregator::MergeShardDeltas() {
  // Sequential, in shard order. Every fold below is a sum, max, or
  // insertion keyed by data the shards partition disjointly, so the merged
  // totals are independent of how work interleaved inside the parallel
  // region — only this loop's fixed order shows up in observable output
  // (the answer-tap order).
  uint64_t routed_max = 0;
  uint64_t routed_sum = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    NoteMalformed(shard.malformed);
    shard.malformed = 0;
    wrong_query_dropped_ += shard.wrong_query;
    shard.wrong_query = 0;
    if (shard.max_event_ms != INT64_MIN) {
      stream_watermark_.Observe(shard.max_event_ms);
      shard.max_event_ms = INT64_MIN;
    }
    if (answer_tap_) {
      for (const auto& [ts, answer] : shard.tap) {
        answer_tap_(ts, answer);
      }
    }
    shard.tap.clear();
    if (!config_.shard_shares_total.empty() && shard.shares_fed > 0) {
      config_.shard_shares_total[s]->Increment(shard.shares_fed);
    }
    const uint64_t joined = shard.joiner->stats().joined;
    if (!config_.shard_joined_total.empty() && joined > shard.last_joined) {
      config_.shard_joined_total[s]->Increment(joined - shard.last_joined);
    }
    shard.last_joined = joined;
    shard.routed_total += shard.shares_fed;
    shard.shares_fed = 0;
    routed_max = std::max(routed_max, shard.routed_total);
    routed_sum += shard.routed_total;
  }
  if (config_.shard_imbalance_milli != nullptr && routed_sum > 0) {
    const double mean =
        static_cast<double>(routed_sum) / static_cast<double>(shards_.size());
    config_.shard_imbalance_milli->Set(
        static_cast<int64_t>(static_cast<double>(routed_max) * 1000.0 / mean));
  }
}

void Aggregator::NoteLostMid(uint64_t mid, int64_t ts) {
  // Dedup: a MID the injector already reported lost also lingers as a
  // partial join group until eviction — count it once.
  fault_lost_mids_.try_emplace(mid, ts);
}

size_t Aggregator::CountLossesInWindow(const engine::Window& window) const {
  size_t lost = 0;
  for (const auto& [mid, ts] : fault_lost_mids_) {
    if (ts >= window.start_ms && ts < window.end_ms) {
      ++lost;
    }
  }
  return lost;
}

void Aggregator::NoteFaultLostMids(std::span<const uint64_t> mids,
                                   int64_t now_ms) {
  if (!config_.track_fault_losses) {
    throw std::logic_error(
        "Aggregator::NoteFaultLostMids: track_fault_losses is off");
  }
  for (const uint64_t mid : mids) {
    NoteLostMid(mid, now_ms);
  }
}

void Aggregator::NoteMalformed(uint64_t n) {
  if (n == 0) {
    return;
  }
  malformed_dropped_ += n;
  if (config_.malformed_total != nullptr) {
    config_.malformed_total->Increment(n);
  }
}

uint64_t Aggregator::ConsumeShardBatch(
    size_t source, uint64_t shard_seq,
    const std::vector<uint32_t>& partition_counts) {
  if (source >= consumers_.size()) {
    throw std::out_of_range("Aggregator::ConsumeShardBatch: bad source");
  }
  uint64_t consumed = 0;
  {
    ScopedTimer timer(config_.decode_ns);
    shard_views_.clear();
    consumed =
        consumers_[source]->PollPartitionsViews(partition_counts, shard_views_);
    StreamSlot& slot = stream_pending_[shard_seq];
    if (slot.per_source.empty()) {
      slot.per_source.resize(consumers_.size());
    }
    proxy::Proxy::DecodeShares(shard_views_, slot.per_source[source]);
    ++slot.filled;
  }
  // Advance the reorder buffer: feed every complete shard at the head, in
  // (shard_seq, source) order — the streaming pipeline's canonical join
  // feed order.
  while (!stream_pending_.empty()) {
    auto head = stream_pending_.begin();
    if (head->first != stream_next_seq_ ||
        head->second.filled != consumers_.size()) {
      break;
    }
    for (const proxy::Proxy::DecodedShares& batch : head->second.per_source) {
      NoteMalformed(batch.malformed);
    }
    FeedShards(head->second.per_source);
    stream_pending_.erase(head);
    ++stream_next_seq_;
  }
  return consumed;
}

void Aggregator::FinishStream() {
  const bool incomplete = !stream_pending_.empty();
  stream_pending_.clear();
  stream_next_seq_ = 0;
  if (incomplete) {
    throw std::logic_error(
        "Aggregator::FinishStream: shard batches missing from the stream");
  }
}

void Aggregator::OnJoinedShard(Shard& shard, uint64_t /*mid*/,
                               std::vector<uint8_t> plaintext,
                               int64_t timestamp_ms) {
  crypto::AnswerMessage message;
  try {
    message = crypto::AnswerMessage::Deserialize(plaintext);
  } catch (const std::invalid_argument&) {
    ++shard.malformed;
    return;
  }
  if (message.query_id != query_.query_id ||
      message.answer.size() != query_.answer_format.num_buckets()) {
    ++shard.wrong_query;
    return;
  }
  shard.max_event_ms = std::max(shard.max_event_ms, timestamp_ms);
  shard.windows.Fold(timestamp_ms, message.answer, [this] {
    return core::AnswerAccumulator(query_.answer_format.num_buckets());
  });
  if (answer_tap_) {
    shard.tap.emplace_back(timestamp_ms, std::move(message.answer));
  }
}

void Aggregator::FireWindows(int64_t watermark_ms, bool flush) {
  // Drain each shard's completed windows in shard order and merge
  // accumulators per window. The element-wise histogram add is exact (every
  // count is a whole number of 1.0 increments, far below 2^53), so the
  // merged accumulator is bit-identical to the one a single shard would
  // have built — shard count and merge order cannot change a result.
  for (auto& shard : shards_) {
    fired_scratch_.clear();
    if (flush) {
      shard->windows.DrainAll(fired_scratch_);
    } else {
      shard->windows.DrainFired(watermark_ms, fired_scratch_);
    }
    for (auto& [window, acc] : fired_scratch_) {
      auto it = merged_scratch_.find(window);
      if (it == merged_scratch_.end()) {
        merged_scratch_.emplace(window, std::move(acc));
      } else {
        it->second.Merge(acc);
      }
    }
  }
  fired_scratch_.clear();
  // Emit in ascending window order — the same order the single-shard
  // WindowBuffer fired in.
  for (const auto& [window, acc] : merged_scratch_) {
    OnWindowFired(window, acc);
  }
  merged_scratch_.clear();
}

void Aggregator::OnWindowFired(const engine::Window& window,
                               const core::AnswerAccumulator& acc) {
  ScopedTimer timer(config_.window_ns);
  const size_t lost_in_window =
      config_.track_fault_losses ? CountLossesInWindow(window) : 0;
  core::QueryResult result =
      estimator_.Estimate(acc.histogram(), acc.num_answers(), lost_in_window);
  if (config_.answers_inverted) {
    // De-invert: yes-count = participants - no-count, bucket-wise, scaled to
    // the population.
    const double scaled_total = static_cast<double>(config_.population);
    for (auto& bucket : result.buckets) {
      bucket.estimate.value =
          core::YesCountFromInverted(bucket.estimate.value, scaled_total);
    }
  }
  on_result_(WindowedResult{window, std::move(result)});
}

void Aggregator::AdvanceWatermark(int64_t watermark_ms) {
  // Evictions run shard by shard in shard order; each MID lives in exactly
  // one shard, so the coordinator-side loss map and expired counter end up
  // identical for every shard count.
  for (auto& shard : shards_) {
    shard->joiner->EvictStale(watermark_ms);
  }
  FireWindows(watermark_ms, /*flush=*/false);
  if (config_.track_fault_losses && !fault_lost_mids_.empty()) {
    // Losses too old to fall into any window still unfired can go: every
    // window containing their event time ended at or before the watermark.
    const int64_t cutoff = watermark_ms - query_.window_length_ms;
    for (auto it = fault_lost_mids_.begin(); it != fault_lost_mids_.end();) {
      it = it->second < cutoff ? fault_lost_mids_.erase(it) : std::next(it);
    }
  }
}

void Aggregator::AdvanceWatermarkToStream() {
  const int64_t watermark = stream_watermark_.Current();
  if (watermark != INT64_MIN) {
    AdvanceWatermark(watermark);
  }
}

void Aggregator::Flush() { FireWindows(0, /*flush=*/true); }

const engine::JoinStats& Aggregator::join_stats() const {
  merged_join_stats_ = {};
  for (const auto& shard : shards_) {
    const engine::JoinStats& s = shard->joiner->stats();
    merged_join_stats_.joined += s.joined;
    merged_join_stats_.duplicates_dropped += s.duplicates_dropped;
    merged_join_stats_.evicted_partial += s.evicted_partial;
    merged_join_stats_.late_dropped += s.late_dropped;
  }
  return merged_join_stats_;
}

size_t Aggregator::pending_join_groups() const {
  size_t pending = 0;
  for (const auto& shard : shards_) {
    pending += shard->joiner->pending_groups();
  }
  return pending;
}

}  // namespace privapprox::aggregator
