#include "aggregator/historical.h"

#include <stdexcept>

#include "core/answer.h"

namespace privapprox::aggregator {

HistoricalAnalytics::HistoricalAnalytics(const ResponseStore& store,
                                         core::ExecutionParams client_params,
                                         size_t population, double confidence)
    : store_(store),
      client_params_(client_params),
      population_(population),
      confidence_(confidence) {
  client_params_.Validate();
  if (population == 0) {
    throw std::invalid_argument("HistoricalAnalytics: population must be > 0");
  }
}

core::QueryResult HistoricalAnalytics::Run(int64_t from_ms, int64_t to_ms,
                                           const BatchQueryBudget& budget,
                                           Xoshiro256& rng,
                                           size_t num_buckets) const {
  if (!(budget.aggregator_sampling_fraction > 0.0 &&
        budget.aggregator_sampling_fraction <= 1.0)) {
    throw std::invalid_argument(
        "HistoricalAnalytics: sampling fraction must be in (0, 1]");
  }
  core::AnswerAccumulator acc(num_buckets);
  for (const ResponseStore::Entry* entry : store_.Range(from_ms, to_ms)) {
    if (budget.aggregator_sampling_fraction < 1.0 &&
        !rng.NextBernoulli(budget.aggregator_sampling_fraction)) {
      continue;
    }
    if (entry->answer.size() != num_buckets) {
      continue;  // answers from a different query shape
    }
    acc.Add(entry->answer);
  }
  // The second sampling round composes multiplicatively with the client
  // round: the effective sampling fraction the estimator must use is
  // s_client * s_aggregator.
  core::ExecutionParams effective = client_params_;
  effective.sampling_fraction *= budget.aggregator_sampling_fraction;
  const core::ErrorEstimator estimator(effective, population_, confidence_);
  return estimator.Estimate(acc.histogram(), acc.num_answers());
}

}  // namespace privapprox::aggregator
