// Paillier additively homomorphic encryption — comparator for Table 2
// ("Paillier [66]", the scheme used by Rastogi & Nath, SIGMOD'10, for
// differentially private aggregation of distributed time series).
//
// Keygen: n = p*q, g = n + 1, lambda = lcm(p-1, q-1),
//         mu = (L(g^lambda mod n^2))^-1 mod n where L(u) = (u - 1) / n.
// Encrypt(m): c = g^m * r^n mod n^2 = (1 + m*n) * r^n mod n^2.
// Decrypt(c): m = L(c^lambda mod n^2) * mu mod n.
// Homomorphism: Enc(a) * Enc(b) mod n^2 = Enc(a + b mod n).

#ifndef PRIVAPPROX_CRYPTO_PAILLIER_H_
#define PRIVAPPROX_CRYPTO_PAILLIER_H_

#include <cstddef>
#include <memory>

#include "bignum/biguint.h"
#include "bignum/modular.h"
#include "common/rng.h"

namespace privapprox::crypto {

class PaillierKeyPair {
 public:
  static PaillierKeyPair Generate(Xoshiro256& rng, size_t modulus_bits);

  const bignum::BigUint& modulus() const { return n_; }

  // c = (1 + m*n) * r^n mod n^2. Requires m < n.
  bignum::BigUint Encrypt(const bignum::BigUint& m, Xoshiro256& rng) const;

  // m = L(c^lambda mod n^2) * mu mod n.
  bignum::BigUint Decrypt(const bignum::BigUint& c) const;

  // Enc(a + b mod n) from Enc(a), Enc(b).
  bignum::BigUint HomomorphicAdd(const bignum::BigUint& c1,
                                 const bignum::BigUint& c2) const;

  // Enc(k * a mod n) from Enc(a) and plaintext scalar k.
  bignum::BigUint HomomorphicScale(const bignum::BigUint& c,
                                   const bignum::BigUint& k) const;

 private:
  PaillierKeyPair() = default;

  bignum::BigUint n_, n_squared_, lambda_, mu_;
  std::shared_ptr<bignum::MontgomeryContext> ctx_n2_;
};

}  // namespace privapprox::crypto

#endif  // PRIVAPPROX_CRYPTO_PAILLIER_H_
