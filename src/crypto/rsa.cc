#include "crypto/rsa.h"

#include <stdexcept>

#include "bignum/prime.h"

namespace privapprox::crypto {

using bignum::BigUint;

RsaKeyPair RsaKeyPair::Generate(Xoshiro256& rng, size_t modulus_bits) {
  if (modulus_bits < 64) {
    throw std::invalid_argument("RsaKeyPair: modulus too small");
  }
  RsaKeyPair key;
  key.e_ = BigUint(65537);
  for (;;) {
    key.p_ = bignum::RandomPrime(rng, modulus_bits / 2);
    key.q_ = bignum::RandomPrime(rng, modulus_bits - modulus_bits / 2);
    if (key.p_ == key.q_) {
      continue;
    }
    const BigUint p1 = key.p_ - BigUint::One();
    const BigUint q1 = key.q_ - BigUint::One();
    const BigUint phi = p1 * q1;
    auto d = bignum::ModInverse(key.e_, phi);
    if (!d.has_value()) {
      continue;  // gcd(e, phi) != 1; rare — redraw primes
    }
    key.n_ = key.p_ * key.q_;
    key.d_ = std::move(*d);
    key.d_p_ = key.d_ % p1;
    key.d_q_ = key.d_ % q1;
    key.q_inv_ = *bignum::ModInverse(key.q_, key.p_);
    key.ctx_n_ = std::make_shared<bignum::MontgomeryContext>(key.n_);
    key.ctx_p_ = std::make_shared<bignum::MontgomeryContext>(key.p_);
    key.ctx_q_ = std::make_shared<bignum::MontgomeryContext>(key.q_);
    return key;
  }
}

BigUint RsaKeyPair::Encrypt(const BigUint& m) const {
  if (m >= n_) {
    throw std::invalid_argument("RsaKeyPair::Encrypt: message >= modulus");
  }
  return ctx_n_->Exp(m, e_);
}

BigUint RsaKeyPair::Decrypt(const BigUint& c) const {
  if (c >= n_) {
    throw std::invalid_argument("RsaKeyPair::Decrypt: ciphertext >= modulus");
  }
  // CRT: m_p = c^{d_p} mod p, m_q = c^{d_q} mod q,
  // h = q_inv * (m_p - m_q) mod p, m = m_q + h * q.
  const BigUint m_p = ctx_p_->Exp(c % p_, d_p_);
  const BigUint m_q = ctx_q_->Exp(c % q_, d_q_);
  const BigUint diff = bignum::ModSub(m_p, m_q, p_);
  const BigUint h = bignum::ModMul(q_inv_, diff, p_);
  return m_q + h * q_;
}

}  // namespace privapprox::crypto
