// Multi-block ChaCha20 keystream engine with runtime SIMD dispatch.
//
// ChaCha20 in counter mode is embarrassingly parallel: block i depends only
// on (key, nonce, counter + i), so a vector register can run W independent
// blocks "vertically" — each of the 16 state words held as a W-lane vector,
// the 20 rounds executed once for all W blocks, and the result transposed
// back into W contiguous 64-byte blocks. This file is the engine behind
// ChaCha20Rng::FillBytes: 8 blocks per AVX2 step, 4 per SSE2/NEON step,
// scalar otherwise, all bit-identical to repeated ChaCha20Block calls.
//
// Kernel selection follows simd::ActiveIsa() (PRIVAPPROX_SIMD override,
// logged once at startup); the AVX2 kernel lives in its own translation
// unit (chacha20_simd_avx2.cc, compiled with -mavx2) so the rest of the
// tree stays baseline ISA.

#ifndef PRIVAPPROX_CRYPTO_CHACHA20_SIMD_H_
#define PRIVAPPROX_CRYPTO_CHACHA20_SIMD_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/simd_dispatch.h"

namespace privapprox::crypto {

// Writes `nblocks` consecutive 64-byte keystream blocks — counters
// `counter`, `counter + 1`, ... (mod 2^32, matching scalar uint32_t
// wraparound) — into `out` (>= nblocks * 64 bytes). Uses the kernel chosen
// by simd::ActiveIsa(); output is ISA-independent.
void ChaCha20BlocksInto(uint8_t* out, const std::array<uint8_t, 32>& key,
                        const std::array<uint8_t, 12>& nonce, uint32_t counter,
                        size_t nblocks);

// Same, but forcing a specific kernel — the per-ISA hook the RFC-vector
// tests and the Table 2 keystream bench iterate over. Throws
// std::invalid_argument if `isa` is not available on this host/build
// (simd::IsaAvailable).
void ChaCha20BlocksIntoWith(simd::Isa isa, uint8_t* out,
                            const std::array<uint8_t, 32>& key,
                            const std::array<uint8_t, 12>& nonce,
                            uint32_t counter, size_t nblocks);

namespace internal {

// Expands (key, nonce, counter) into the 16-word RFC 8439 initial state.
// Shared by the scalar block function and every vector kernel.
void BuildChaChaState(uint32_t state[16], const std::array<uint8_t, 32>& key,
                      const std::array<uint8_t, 12>& nonce, uint32_t counter);

// The scalar block core (20 rounds + feed-forward from a prebuilt state):
// the single-definition round function behind ChaCha20BlockInto, the scalar
// multi-block loop, and every vector kernel's remainder handling.
void ChaCha20BlockFromState(uint8_t* out, const uint32_t state[16]);

#if defined(PRIVAPPROX_HAVE_AVX2_TU)
// 8 blocks per call; defined in chacha20_simd_avx2.cc (-mavx2). `state` is
// the block-`counter` initial state; lanes run counters state[12]..+7.
void ChaCha20Blocks8Avx2(uint8_t* out, const uint32_t state[16]);
#endif

}  // namespace internal

}  // namespace privapprox::crypto

#endif  // PRIVAPPROX_CRYPTO_CHACHA20_SIMD_H_
