// ChaCha20-based cryptographic PRNG.
//
// §3.2.3: each client generates its (n-1) one-time-pad key strings "using a
// cryptographic pseudo-random number generator (PRNG) seeded with a
// cryptographically strong random number". This is that PRNG: the ChaCha20
// block function (RFC 8439) run in counter mode as a keystream generator.

#ifndef PRIVAPPROX_CRYPTO_CHACHA20_H_
#define PRIVAPPROX_CRYPTO_CHACHA20_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace privapprox::crypto {

// Raw ChaCha20 block function: computes one 64-byte keystream block for the
// given 256-bit key, 96-bit nonce, and 32-bit block counter (RFC 8439 §2.3).
std::array<uint8_t, 64> ChaCha20Block(const std::array<uint8_t, 32>& key,
                                      const std::array<uint8_t, 12>& nonce,
                                      uint32_t counter);

// Same block function, written into caller-provided storage (>= 64 bytes).
// The zero-copy keystream path (ChaCha20Rng::FillBytes) uses this to
// generate whole blocks straight into the destination buffer with no staged
// memcpy.
void ChaCha20BlockInto(uint8_t* out, const std::array<uint8_t, 32>& key,
                       const std::array<uint8_t, 12>& nonce, uint32_t counter);

// Stream RNG over the ChaCha20 keystream. Satisfies
// UniformRandomBitGenerator. Distinct (key, stream_id) pairs give independent
// streams — each simulated client gets its own stream_id.
class ChaCha20Rng {
 public:
  using result_type = uint64_t;

  ChaCha20Rng(const std::array<uint8_t, 32>& key, uint64_t stream_id);

  // Convenience: derives the 256-bit key from a 64-bit seed (test/simulation
  // use; production callers should supply full-entropy keys).
  static ChaCha20Rng FromSeed(uint64_t seed, uint64_t stream_id = 0);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return NextUint64(); }

  // Next 8 keystream bytes as a little-endian word. Reads straight from the
  // staged block when it holds 8 bytes (the randomized-response coin-draw
  // fast path); stream position and output stay bit-identical to assembling
  // the word from single-byte reads.
  uint64_t NextUint64();
  // Fills `out` with the next `len` keystream bytes. Full 64-byte spans are
  // generated directly into `out` as one multi-block run through the
  // runtime-dispatched SIMD engine (crypto/chacha20_simd.h); the staging
  // buffer is only used for whatever was left over from a previous call and
  // for the tail that does not fill a whole block. Byte-for-byte identical
  // to repeated single-byte reads of the same stream.
  void FillBytes(uint8_t* out, size_t len);
  std::vector<uint8_t> Bytes(size_t len);
  // Resizes `out` to `len` and fills it with keystream. Reuses the vector's
  // capacity, so hot loops (one pad per share per epoch) avoid reallocating.
  void Bytes(std::vector<uint8_t>& out, size_t len);

 private:
  void Refill();

  std::array<uint8_t, 32> key_;
  std::array<uint8_t, 12> nonce_;
  uint32_t counter_ = 0;
  std::array<uint8_t, 64> block_{};
  size_t offset_ = 64;  // forces refill on first use
};

}  // namespace privapprox::crypto

#endif  // PRIVAPPROX_CRYPTO_CHACHA20_H_
