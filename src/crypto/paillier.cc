#include "crypto/paillier.h"

#include <stdexcept>

#include "bignum/prime.h"

namespace privapprox::crypto {

using bignum::BigUint;

PaillierKeyPair PaillierKeyPair::Generate(Xoshiro256& rng,
                                          size_t modulus_bits) {
  if (modulus_bits < 64) {
    throw std::invalid_argument("PaillierKeyPair: modulus too small");
  }
  PaillierKeyPair key;
  for (;;) {
    const BigUint p = bignum::RandomPrime(rng, modulus_bits / 2);
    const BigUint q = bignum::RandomPrime(rng, modulus_bits - modulus_bits / 2);
    if (p == q) {
      continue;
    }
    key.n_ = p * q;
    key.n_squared_ = key.n_ * key.n_;
    const BigUint p1 = p - BigUint::One();
    const BigUint q1 = q - BigUint::One();
    key.lambda_ = (p1 * q1) / bignum::Gcd(p1, q1);  // lcm(p-1, q-1)
    key.ctx_n2_ = std::make_shared<bignum::MontgomeryContext>(key.n_squared_);
    // mu = (L(g^lambda mod n^2))^-1 mod n, with g = n + 1.
    const BigUint g = key.n_ + BigUint::One();
    const BigUint u = key.ctx_n2_->Exp(g, key.lambda_);
    const BigUint l = (u - BigUint::One()) / key.n_;
    auto mu = bignum::ModInverse(l, key.n_);
    if (!mu.has_value()) {
      continue;  // degenerate key; redraw
    }
    key.mu_ = std::move(*mu);
    return key;
  }
}

BigUint PaillierKeyPair::Encrypt(const BigUint& m, Xoshiro256& rng) const {
  if (m >= n_) {
    throw std::invalid_argument("PaillierKeyPair::Encrypt: message >= n");
  }
  BigUint r;
  do {
    r = BigUint::RandomBelow(rng, n_);
  } while (r.IsZero() || bignum::Gcd(r, n_) != BigUint::One());
  // g^m = (1 + n)^m = 1 + m*n (mod n^2): one multiplication, no modexp.
  const BigUint g_m = (BigUint::One() + m * n_) % n_squared_;
  const BigUint r_n = ctx_n2_->Exp(r, n_);
  return bignum::ModMul(g_m, r_n, n_squared_);
}

BigUint PaillierKeyPair::Decrypt(const BigUint& c) const {
  if (c >= n_squared_) {
    throw std::invalid_argument("PaillierKeyPair::Decrypt: ciphertext >= n^2");
  }
  const BigUint u = ctx_n2_->Exp(c, lambda_);
  const BigUint l = (u - BigUint::One()) / n_;
  return bignum::ModMul(l, mu_, n_);
}

BigUint PaillierKeyPair::HomomorphicAdd(const BigUint& c1,
                                        const BigUint& c2) const {
  return bignum::ModMul(c1, c2, n_squared_);
}

BigUint PaillierKeyPair::HomomorphicScale(const BigUint& c,
                                          const BigUint& k) const {
  return ctx_n2_->Exp(c, k);
}

}  // namespace privapprox::crypto
