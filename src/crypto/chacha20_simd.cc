// Baseline-ISA half of the multi-block ChaCha20 engine: state expansion,
// the scalar block core (shared with chacha20.cc), the 4-way SSE2 and NEON
// kernels (both baseline on their platforms), and the dispatcher. The AVX2
// kernel needs non-baseline codegen and lives in chacha20_simd_avx2.cc.

#include "crypto/chacha20_simd.h"

#include <cstring>
#include <stdexcept>
#include <string>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace privapprox::crypto {
namespace internal {
namespace {

inline uint32_t Load32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline void Store32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d ^= a;
  d = Rotl32(d, 16);
  c += d;
  b ^= c;
  b = Rotl32(b, 12);
  a += b;
  d ^= a;
  d = Rotl32(d, 8);
  c += d;
  b ^= c;
  b = Rotl32(b, 7);
}

}  // namespace

void BuildChaChaState(uint32_t state[16], const std::array<uint8_t, 32>& key,
                      const std::array<uint8_t, 12>& nonce, uint32_t counter) {
  // "expand 32-byte k"
  state[0] = 0x61707865;
  state[1] = 0x3320646E;
  state[2] = 0x79622D32;
  state[3] = 0x6B206574;
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = Load32(key.data() + 4 * i);
  }
  state[12] = counter;
  for (int i = 0; i < 3; ++i) {
    state[13 + i] = Load32(nonce.data() + 4 * i);
  }
}

void ChaCha20BlockFromState(uint8_t* out, const uint32_t state[16]) {
  uint32_t working[16];
  std::memcpy(working, state, 16 * sizeof(uint32_t));
  for (int round = 0; round < 10; ++round) {
    // Column rounds.
    QuarterRound(working[0], working[4], working[8], working[12]);
    QuarterRound(working[1], working[5], working[9], working[13]);
    QuarterRound(working[2], working[6], working[10], working[14]);
    QuarterRound(working[3], working[7], working[11], working[15]);
    // Diagonal rounds.
    QuarterRound(working[0], working[5], working[10], working[15]);
    QuarterRound(working[1], working[6], working[11], working[12]);
    QuarterRound(working[2], working[7], working[8], working[13]);
    QuarterRound(working[3], working[4], working[9], working[14]);
  }
  for (int i = 0; i < 16; ++i) {
    Store32(out + 4 * i, working[i] + state[i]);
  }
}

}  // namespace internal

namespace {

#if defined(__SSE2__)

template <int K>
inline __m128i RotlSse2(__m128i x) {
  return _mm_or_si128(_mm_slli_epi32(x, K), _mm_srli_epi32(x, 32 - K));
}

#define PRIVAPPROX_QR_SSE2(a, b, c, d)              \
  do {                                              \
    (a) = _mm_add_epi32((a), (b));                  \
    (d) = RotlSse2<16>(_mm_xor_si128((d), (a)));    \
    (c) = _mm_add_epi32((c), (d));                  \
    (b) = RotlSse2<12>(_mm_xor_si128((b), (c)));    \
    (a) = _mm_add_epi32((a), (b));                  \
    (d) = RotlSse2<8>(_mm_xor_si128((d), (a)));     \
    (c) = _mm_add_epi32((c), (d));                  \
    (b) = RotlSse2<7>(_mm_xor_si128((b), (c)));     \
  } while (0)

// 4 blocks vertically: v[w] lane j holds word w of block (counter + j).
void ChaCha20Blocks4Sse2(uint8_t* out, const uint32_t state[16]) {
  __m128i init[16];
  __m128i v[16];
  for (int i = 0; i < 16; ++i) {
    init[i] = _mm_set1_epi32(static_cast<int>(state[i]));
  }
  init[12] = _mm_add_epi32(init[12], _mm_setr_epi32(0, 1, 2, 3));
  for (int i = 0; i < 16; ++i) {
    v[i] = init[i];
  }
  for (int round = 0; round < 10; ++round) {
    PRIVAPPROX_QR_SSE2(v[0], v[4], v[8], v[12]);
    PRIVAPPROX_QR_SSE2(v[1], v[5], v[9], v[13]);
    PRIVAPPROX_QR_SSE2(v[2], v[6], v[10], v[14]);
    PRIVAPPROX_QR_SSE2(v[3], v[7], v[11], v[15]);
    PRIVAPPROX_QR_SSE2(v[0], v[5], v[10], v[15]);
    PRIVAPPROX_QR_SSE2(v[1], v[6], v[11], v[12]);
    PRIVAPPROX_QR_SSE2(v[2], v[7], v[8], v[13]);
    PRIVAPPROX_QR_SSE2(v[3], v[4], v[9], v[14]);
  }
  for (int i = 0; i < 16; ++i) {
    v[i] = _mm_add_epi32(v[i], init[i]);
  }
  // Transpose each 4-word group from (word, block) to (block, word) order
  // and store: block b gets its 16-byte word group g at out + 64b + 16g.
  for (int g = 0; g < 4; ++g) {
    const __m128i t0 = _mm_unpacklo_epi32(v[4 * g + 0], v[4 * g + 1]);
    const __m128i t1 = _mm_unpacklo_epi32(v[4 * g + 2], v[4 * g + 3]);
    const __m128i t2 = _mm_unpackhi_epi32(v[4 * g + 0], v[4 * g + 1]);
    const __m128i t3 = _mm_unpackhi_epi32(v[4 * g + 2], v[4 * g + 3]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 64 * 0 + 16 * g),
                     _mm_unpacklo_epi64(t0, t1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 64 * 1 + 16 * g),
                     _mm_unpackhi_epi64(t0, t1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 64 * 2 + 16 * g),
                     _mm_unpacklo_epi64(t2, t3));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 64 * 3 + 16 * g),
                     _mm_unpackhi_epi64(t2, t3));
  }
}

#undef PRIVAPPROX_QR_SSE2

#endif  // __SSE2__

#if defined(__ARM_NEON)

template <int K>
inline uint32x4_t RotlNeon(uint32x4_t x) {
  return vorrq_u32(vshlq_n_u32(x, K), vshrq_n_u32(x, 32 - K));
}

#define PRIVAPPROX_QR_NEON(a, b, c, d)            \
  do {                                            \
    (a) = vaddq_u32((a), (b));                    \
    (d) = RotlNeon<16>(veorq_u32((d), (a)));      \
    (c) = vaddq_u32((c), (d));                    \
    (b) = RotlNeon<12>(veorq_u32((b), (c)));      \
    (a) = vaddq_u32((a), (b));                    \
    (d) = RotlNeon<8>(veorq_u32((d), (a)));       \
    (c) = vaddq_u32((c), (d));                    \
    (b) = RotlNeon<7>(veorq_u32((b), (c)));       \
  } while (0)

void ChaCha20Blocks4Neon(uint8_t* out, const uint32_t state[16]) {
  uint32x4_t init[16];
  uint32x4_t v[16];
  for (int i = 0; i < 16; ++i) {
    init[i] = vdupq_n_u32(state[i]);
  }
  const uint32_t lane_offsets[4] = {0, 1, 2, 3};
  init[12] = vaddq_u32(init[12], vld1q_u32(lane_offsets));
  for (int i = 0; i < 16; ++i) {
    v[i] = init[i];
  }
  for (int round = 0; round < 10; ++round) {
    PRIVAPPROX_QR_NEON(v[0], v[4], v[8], v[12]);
    PRIVAPPROX_QR_NEON(v[1], v[5], v[9], v[13]);
    PRIVAPPROX_QR_NEON(v[2], v[6], v[10], v[14]);
    PRIVAPPROX_QR_NEON(v[3], v[7], v[11], v[15]);
    PRIVAPPROX_QR_NEON(v[0], v[5], v[10], v[15]);
    PRIVAPPROX_QR_NEON(v[1], v[6], v[11], v[12]);
    PRIVAPPROX_QR_NEON(v[2], v[7], v[8], v[13]);
    PRIVAPPROX_QR_NEON(v[3], v[4], v[9], v[14]);
  }
  for (int i = 0; i < 16; ++i) {
    v[i] = vaddq_u32(v[i], init[i]);
  }
  for (int g = 0; g < 4; ++g) {
    const uint32x4x2_t t01 = vtrnq_u32(v[4 * g + 0], v[4 * g + 1]);
    const uint32x4x2_t t23 = vtrnq_u32(v[4 * g + 2], v[4 * g + 3]);
    const uint32x4_t c0 = vcombine_u32(vget_low_u32(t01.val[0]),
                                       vget_low_u32(t23.val[0]));
    const uint32x4_t c1 = vcombine_u32(vget_low_u32(t01.val[1]),
                                       vget_low_u32(t23.val[1]));
    const uint32x4_t c2 = vcombine_u32(vget_high_u32(t01.val[0]),
                                       vget_high_u32(t23.val[0]));
    const uint32x4_t c3 = vcombine_u32(vget_high_u32(t01.val[1]),
                                       vget_high_u32(t23.val[1]));
    vst1q_u8(out + 64 * 0 + 16 * g, vreinterpretq_u8_u32(c0));
    vst1q_u8(out + 64 * 1 + 16 * g, vreinterpretq_u8_u32(c1));
    vst1q_u8(out + 64 * 2 + 16 * g, vreinterpretq_u8_u32(c2));
    vst1q_u8(out + 64 * 3 + 16 * g, vreinterpretq_u8_u32(c3));
  }
}

#undef PRIVAPPROX_QR_NEON

#endif  // __ARM_NEON

// A wide kernel emits `width` blocks per call from a prebuilt state whose
// counter word advances between calls. width 1 = scalar (fn unused).
struct Kernel {
  void (*wide)(uint8_t*, const uint32_t[16]) = nullptr;
  size_t width = 1;
};

Kernel KernelFor(simd::Isa isa) {
  switch (isa) {
    case simd::Isa::kScalar:
      break;
#if defined(__SSE2__)
    case simd::Isa::kSse2:
      return {&ChaCha20Blocks4Sse2, 4};
#endif
#if defined(PRIVAPPROX_HAVE_AVX2_TU)
    case simd::Isa::kAvx2:
      return {&internal::ChaCha20Blocks8Avx2, 8};
#endif
#if defined(__ARM_NEON)
    case simd::Isa::kNeon:
      return {&ChaCha20Blocks4Neon, 4};
#endif
    default:
      break;
  }
  return {};
}

void BlocksWithKernel(const Kernel& kernel, uint8_t* out,
                      const std::array<uint8_t, 32>& key,
                      const std::array<uint8_t, 12>& nonce, uint32_t counter,
                      size_t nblocks) {
  uint32_t state[16];
  internal::BuildChaChaState(state, key, nonce, counter);
  while (kernel.width > 1 && nblocks >= kernel.width) {
    kernel.wide(out, state);
    state[12] += static_cast<uint32_t>(kernel.width);
    out += 64 * kernel.width;
    nblocks -= kernel.width;
  }
  while (nblocks > 0) {
    internal::ChaCha20BlockFromState(out, state);
    ++state[12];
    out += 64;
    --nblocks;
  }
}

}  // namespace

void ChaCha20BlocksInto(uint8_t* out, const std::array<uint8_t, 32>& key,
                        const std::array<uint8_t, 12>& nonce, uint32_t counter,
                        size_t nblocks) {
  static const Kernel kernel = KernelFor(simd::ActiveIsa());
  BlocksWithKernel(kernel, out, key, nonce, counter, nblocks);
}

void ChaCha20BlocksIntoWith(simd::Isa isa, uint8_t* out,
                            const std::array<uint8_t, 32>& key,
                            const std::array<uint8_t, 12>& nonce,
                            uint32_t counter, size_t nblocks) {
  if (!simd::IsaAvailable(isa)) {
    throw std::invalid_argument(
        std::string("ChaCha20BlocksIntoWith: ISA not available: ") +
        simd::IsaName(isa));
  }
  BlocksWithKernel(KernelFor(isa), out, key, nonce, counter, nblocks);
}

}  // namespace privapprox::crypto
