// XOR-based one-time-pad share splitting (paper §3.2.3, Eqs 10-12).
//
// To send message M through n mutually non-colluding proxies, the client
// draws (n-1) random key strings MK_2..MK_n from a cryptographic PRNG,
// forms MK = MK_2 xor ... xor MK_n (Eq 10), computes ME = M xor MK (Eq 11),
// and ships <MID, ME> to proxy 1 and <MID, MK_i> to proxy i (Eq 12). The
// aggregator XORs all n received payloads to recover M — it need not know
// which share was ME.
//
// This is the entire "crypto" on the client hot path, which is why Table 2's
// XOR row beats the public-key schemes by 3-5 orders of magnitude.

#ifndef PRIVAPPROX_CRYPTO_XOR_CIPHER_H_
#define PRIVAPPROX_CRYPTO_XOR_CIPHER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/arena.h"
#include "crypto/chacha20.h"
#include "crypto/message.h"

namespace privapprox::crypto {

class XorSplitter {
 public:
  // `num_shares` = n >= 2 (the paper requires at least two proxies).
  // `rng` supplies both the message identifiers and the pad key material.
  XorSplitter(size_t num_shares, ChaCha20Rng rng);

  size_t num_shares() const { return num_shares_; }

  // Splits `plaintext` into n equal-length shares under a fresh random MID.
  // Share 0 carries ME; shares 1..n-1 carry the key strings. All payloads
  // are the same length and individually uniformly random. Taken by value:
  // pass an rvalue to move the message into share 0 without a copy.
  std::vector<MessageShare> Split(std::vector<uint8_t> plaintext);

  // Zero-copy variant: serializes `message` and encodes all n shares
  // contiguously into `arena`, each as its full wire record (8-byte MID
  // header followed by the payload), writing one ShareView per share into
  // `out` (out.size() must be num_shares()). Pad keystream is generated
  // directly into the arena slots (multi-block ChaCha20, no staging copy)
  // and XORed into share 0 in place, so a warm arena makes the entire
  // encode allocation-free. Draws MID and pad bytes from the RNG in exactly
  // the order Split does, so the emitted bytes match Split +
  // Proxy::EncodeShare bit for bit.
  void SplitMessageInto(const AnswerMessage& message, EpochArena& arena,
                        std::span<ShareView> out);

  // Recombines shares (any order): XOR of all payloads. Throws
  // std::invalid_argument on mismatched MIDs or lengths, or fewer than two
  // shares. The caller is responsible for presenting exactly the n shares of
  // one message (the aggregator joins by MID first).
  static std::vector<uint8_t> Combine(const std::vector<MessageShare>& shares);

 private:
  size_t num_shares_;
  ChaCha20Rng rng_;
};

}  // namespace privapprox::crypto

#endif  // PRIVAPPROX_CRYPTO_XOR_CIPHER_H_
