#include "crypto/message.h"

#include <cstring>
#include <stdexcept>

namespace privapprox::crypto {

std::vector<uint8_t> AnswerMessage::Serialize() const {
  std::vector<uint8_t> out(WireSize(answer.size()));
  SerializeInto(out.data());
  return out;
}

void AnswerMessage::SerializeInto(uint8_t* out) const {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>(query_id >> (8 * i));
  }
  const uint32_t bits = static_cast<uint32_t>(answer.size());
  for (int i = 0; i < 4; ++i) {
    out[8 + i] = static_cast<uint8_t>(bits >> (8 * i));
  }
  const auto& bytes = answer.bytes();
  if (!bytes.empty()) {
    std::memcpy(out + 12, bytes.data(), bytes.size());
  }
}

AnswerMessage AnswerMessage::Deserialize(std::span<const uint8_t> bytes) {
  if (bytes.size() < 12) {
    throw std::invalid_argument("AnswerMessage::Deserialize: truncated header");
  }
  AnswerMessage msg;
  for (int i = 0; i < 8; ++i) {
    msg.query_id |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  }
  uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    bits |= static_cast<uint32_t>(bytes[8 + i]) << (8 * i);
  }
  const size_t answer_bytes = (static_cast<size_t>(bits) + 7) / 8;
  if (bytes.size() < 12 + answer_bytes) {
    throw std::invalid_argument("AnswerMessage::Deserialize: truncated answer");
  }
  msg.answer = BitVector::FromBytes(
      std::vector<uint8_t>(bytes.begin() + 12,
                           bytes.begin() + 12 + static_cast<long>(answer_bytes)),
      bits);
  return msg;
}

size_t AnswerMessage::WireSize(size_t answer_bits) {
  return 12 + (answer_bits + 7) / 8;
}

}  // namespace privapprox::crypto
