// Message framing for the answer path (paper Eqs 9-12).
//
// A client's randomized answer is concatenated with the query identifier to
// form M = <QID, RandomizedAnswer> (Eq 9), split into n shares via the XOR
// one-time pad, and each share is sent as <MID, payload> to a distinct proxy
// (Eq 12). MID is a random unique message identifier that lets the
// aggregator re-join the shares; the payloads themselves are
// computationally indistinguishable from random so a proxy cannot tell
// ciphertext from key material.

#ifndef PRIVAPPROX_CRYPTO_MESSAGE_H_
#define PRIVAPPROX_CRYPTO_MESSAGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvector.h"

namespace privapprox::crypto {

// The plaintext message M = <QID, RandomizedAnswer> (Eq 9).
struct AnswerMessage {
  uint64_t query_id = 0;
  BitVector answer;

  // Wire format: QID (8 bytes LE) | answer bit count (4 bytes LE) | answer
  // bytes. Deserialize takes a non-owning view so callers can parse
  // sub-ranges of larger buffers without materializing a temporary vector.
  std::vector<uint8_t> Serialize() const;
  // Writes the wire format into caller-provided storage of at least
  // WireSize(answer.size()) bytes — the arena-backed encode path uses this
  // to serialize straight into share 0's slot with no temporary vector.
  void SerializeInto(uint8_t* out) const;
  static AnswerMessage Deserialize(std::span<const uint8_t> bytes);
  static AnswerMessage Deserialize(const std::vector<uint8_t>& bytes) {
    return Deserialize(std::span<const uint8_t>(bytes));
  }

  bool operator==(const AnswerMessage& other) const = default;

  // Serialized size for an answer of `answer_bits` bits.
  static size_t WireSize(size_t answer_bits);
};

// One share of a split message: <MID, payload> (Eq 12). `payload` is either
// the encrypted message ME or one of the key strings MKi — indistinguishable
// by design, so the struct deliberately does not say which.
struct MessageShare {
  uint64_t message_id = 0;
  std::vector<uint8_t> payload;

  bool operator==(const MessageShare& other) const = default;
};

// A non-owning view of one encoded share: `data` points at the full wire
// record — MID (8 bytes LE) followed by the payload — living in an
// EpochArena (client side) or a broker slab (consumer side). Valid only as
// long as its backing storage: until the arena resets, or for the topic's
// lifetime. This is the type that travels the zero-copy path
// Client -> MessageBus::Produce -> Proxy::ReceiveAndForwardShard in place
// of std::vector<uint8_t> payloads.
struct ShareView {
  uint64_t message_id = 0;
  // QID of the query this share answers. Carried out-of-band (the payload is
  // ciphertext/pad material), so the multi-query pipeline can route shares
  // to per-(query, proxy) topics without decrypting anything.
  uint64_t query_id = 0;
  const uint8_t* data = nullptr;
  size_t size = 0;

  std::span<const uint8_t> bytes() const { return {data, size}; }
  std::span<const uint8_t> payload() const { return {data + 8, size - 8}; }
};

}  // namespace privapprox::crypto

#endif  // PRIVAPPROX_CRYPTO_MESSAGE_H_
