#include "crypto/goldwasser_micali.h"

#include <stdexcept>

#include "bignum/prime.h"

namespace privapprox::crypto {

using bignum::BigUint;

GoldwasserMicaliKeyPair GoldwasserMicaliKeyPair::Generate(Xoshiro256& rng,
                                                          size_t modulus_bits) {
  if (modulus_bits < 64) {
    throw std::invalid_argument("GoldwasserMicaliKeyPair: modulus too small");
  }
  GoldwasserMicaliKeyPair key;
  do {
    key.p_ = bignum::RandomBlumPrime(rng, modulus_bits / 2);
    key.q_ = bignum::RandomBlumPrime(rng, modulus_bits - modulus_bits / 2);
  } while (key.p_ == key.q_);
  key.n_ = key.p_ * key.q_;
  // For Blum primes, -1 is a non-residue modulo both p and q, hence n - 1 is
  // a Jacobi-(+1) pseudo-residue: the canonical GM non-residue.
  key.x_ = key.n_ - BigUint::One();
  key.p_half_ = (key.p_ - BigUint::One()) >> 1;
  key.ctx_n_ = std::make_shared<bignum::MontgomeryContext>(key.n_);
  key.ctx_p_ = std::make_shared<bignum::MontgomeryContext>(key.p_);
  return key;
}

BigUint GoldwasserMicaliKeyPair::EncryptBit(bool bit, Xoshiro256& rng) const {
  // Draw y in [1, n). A y sharing a factor with n occurs with negligible
  // probability (~2^-512 for 1024-bit n) — production GM implementations do
  // not test for it, and neither do we (the gcd would dominate the cost of
  // the two modular multiplications below).
  BigUint y;
  do {
    y = BigUint::RandomBelow(rng, n_);
  } while (y.IsZero());
  BigUint c = bignum::ModMul(y, y, n_);
  if (bit) {
    c = bignum::ModMul(c, x_, n_);
  }
  return c;
}

bool GoldwasserMicaliKeyPair::DecryptBit(const BigUint& c) const {
  // Euler criterion: c is a QR mod p iff c^((p-1)/2) == 1 (mod p).
  const BigUint legendre = ctx_p_->Exp(c % p_, p_half_);
  return legendre != BigUint::One();
}

std::vector<BigUint> GoldwasserMicaliKeyPair::EncryptBits(
    const BitVector& bits, Xoshiro256& rng) const {
  std::vector<BigUint> cts;
  cts.reserve(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    cts.push_back(EncryptBit(bits.Get(i), rng));
  }
  return cts;
}

BitVector GoldwasserMicaliKeyPair::DecryptBits(
    const std::vector<BigUint>& cts) const {
  BitVector bits(cts.size());
  for (size_t i = 0; i < cts.size(); ++i) {
    bits.Set(i, DecryptBit(cts[i]));
  }
  return bits;
}

BigUint GoldwasserMicaliKeyPair::HomomorphicXor(const BigUint& c1,
                                                const BigUint& c2) const {
  return bignum::ModMul(c1, c2, n_);
}

}  // namespace privapprox::crypto
