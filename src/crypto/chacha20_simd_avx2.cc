// 8-way AVX2 ChaCha20 kernel. This translation unit is the only one in the
// tree compiled with -mavx2 (see src/CMakeLists.txt); it must contain
// nothing that runs unless simd::IsaAvailable(kAvx2) — the dispatcher in
// chacha20_simd.cc only takes this path after the CPUID check passes.

#include "crypto/chacha20_simd.h"

#if defined(PRIVAPPROX_HAVE_AVX2_TU)

#include <immintrin.h>

namespace privapprox::crypto::internal {
namespace {

// Byte-shuffle rotations (one port-5 op instead of two shifts + an or).
inline __m256i Rotl16Avx2(__m256i x) {
  const __m256i mask = _mm256_set_epi8(
      13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2,
      13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2);
  return _mm256_shuffle_epi8(x, mask);
}

inline __m256i Rotl8Avx2(__m256i x) {
  const __m256i mask = _mm256_set_epi8(
      14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3,
      14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3);
  return _mm256_shuffle_epi8(x, mask);
}

template <int K>
inline __m256i RotlAvx2(__m256i x) {
  return _mm256_or_si256(_mm256_slli_epi32(x, K), _mm256_srli_epi32(x, 32 - K));
}

#define PRIVAPPROX_QR_AVX2(a, b, c, d)              \
  do {                                              \
    (a) = _mm256_add_epi32((a), (b));               \
    (d) = Rotl16Avx2(_mm256_xor_si256((d), (a)));   \
    (c) = _mm256_add_epi32((c), (d));               \
    (b) = RotlAvx2<12>(_mm256_xor_si256((b), (c))); \
    (a) = _mm256_add_epi32((a), (b));               \
    (d) = Rotl8Avx2(_mm256_xor_si256((d), (a)));    \
    (c) = _mm256_add_epi32((c), (d));               \
    (b) = RotlAvx2<7>(_mm256_xor_si256((b), (c)));  \
  } while (0)

// Transposes an 8x8 u32 matrix held as rows r[0..7]; row i becomes the old
// column i (the words of block i).
inline void Transpose8x8(__m256i r[8]) {
  const __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
  const __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
  const __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
  const __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
  const __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
  const __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
  const __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
  const __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);
  const __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
  const __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
  const __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
  const __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
  const __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
  const __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
  const __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
  const __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
  r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
  r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
  r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
  r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
  r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
  r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
  r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
  r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

}  // namespace

// 8 blocks vertically: v[w] lane j holds word w of block (state[12] + j).
void ChaCha20Blocks8Avx2(uint8_t* out, const uint32_t state[16]) {
  __m256i init[16];
  __m256i v[16];
  for (int i = 0; i < 16; ++i) {
    init[i] = _mm256_set1_epi32(static_cast<int>(state[i]));
  }
  init[12] =
      _mm256_add_epi32(init[12], _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  for (int i = 0; i < 16; ++i) {
    v[i] = init[i];
  }
  for (int round = 0; round < 10; ++round) {
    PRIVAPPROX_QR_AVX2(v[0], v[4], v[8], v[12]);
    PRIVAPPROX_QR_AVX2(v[1], v[5], v[9], v[13]);
    PRIVAPPROX_QR_AVX2(v[2], v[6], v[10], v[14]);
    PRIVAPPROX_QR_AVX2(v[3], v[7], v[11], v[15]);
    PRIVAPPROX_QR_AVX2(v[0], v[5], v[10], v[15]);
    PRIVAPPROX_QR_AVX2(v[1], v[6], v[11], v[12]);
    PRIVAPPROX_QR_AVX2(v[2], v[7], v[8], v[13]);
    PRIVAPPROX_QR_AVX2(v[3], v[4], v[9], v[14]);
  }
  for (int i = 0; i < 16; ++i) {
    v[i] = _mm256_add_epi32(v[i], init[i]);
  }
  // Two 8x8 transposes turn the vertical layout back into 8 contiguous
  // blocks: after them, v[b] = words 0..7 of block b and v[8 + b] = words
  // 8..15 of block b.
  Transpose8x8(v);
  Transpose8x8(v + 8);
  for (int b = 0; b < 8; ++b) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 64 * b), v[b]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 64 * b + 32),
                        v[8 + b]);
  }
}

}  // namespace privapprox::crypto::internal

#endif  // PRIVAPPROX_HAVE_AVX2_TU
