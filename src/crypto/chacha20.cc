#include "crypto/chacha20.h"

#include <cstring>

namespace privapprox::crypto {
namespace {

inline uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d ^= a;
  d = Rotl32(d, 16);
  c += d;
  b ^= c;
  b = Rotl32(b, 12);
  a += b;
  d ^= a;
  d = Rotl32(d, 8);
  c += d;
  b ^= c;
  b = Rotl32(b, 7);
}

inline uint32_t Load32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline void Store32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

}  // namespace

void ChaCha20BlockInto(uint8_t* out, const std::array<uint8_t, 32>& key,
                       const std::array<uint8_t, 12>& nonce,
                       uint32_t counter) {
  uint32_t state[16];
  // "expand 32-byte k"
  state[0] = 0x61707865;
  state[1] = 0x3320646E;
  state[2] = 0x79622D32;
  state[3] = 0x6B206574;
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = Load32(key.data() + 4 * i);
  }
  state[12] = counter;
  for (int i = 0; i < 3; ++i) {
    state[13 + i] = Load32(nonce.data() + 4 * i);
  }

  uint32_t working[16];
  std::memcpy(working, state, sizeof(working));
  for (int round = 0; round < 10; ++round) {
    // Column rounds.
    QuarterRound(working[0], working[4], working[8], working[12]);
    QuarterRound(working[1], working[5], working[9], working[13]);
    QuarterRound(working[2], working[6], working[10], working[14]);
    QuarterRound(working[3], working[7], working[11], working[15]);
    // Diagonal rounds.
    QuarterRound(working[0], working[5], working[10], working[15]);
    QuarterRound(working[1], working[6], working[11], working[12]);
    QuarterRound(working[2], working[7], working[8], working[13]);
    QuarterRound(working[3], working[4], working[9], working[14]);
  }

  for (int i = 0; i < 16; ++i) {
    Store32(out + 4 * i, working[i] + state[i]);
  }
}

std::array<uint8_t, 64> ChaCha20Block(const std::array<uint8_t, 32>& key,
                                      const std::array<uint8_t, 12>& nonce,
                                      uint32_t counter) {
  std::array<uint8_t, 64> out;
  ChaCha20BlockInto(out.data(), key, nonce, counter);
  return out;
}

ChaCha20Rng::ChaCha20Rng(const std::array<uint8_t, 32>& key,
                         uint64_t stream_id)
    : key_(key) {
  nonce_.fill(0);
  for (int i = 0; i < 8; ++i) {
    nonce_[i] = static_cast<uint8_t>(stream_id >> (8 * i));
  }
}

ChaCha20Rng ChaCha20Rng::FromSeed(uint64_t seed, uint64_t stream_id) {
  // Expand the seed with SplitMix-style mixing into a 256-bit key.
  std::array<uint8_t, 32> key{};
  uint64_t state = seed;
  for (int w = 0; w < 4; ++w) {
    uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z = z ^ (z >> 31);
    for (int b = 0; b < 8; ++b) {
      key[8 * w + b] = static_cast<uint8_t>(z >> (8 * b));
    }
  }
  return ChaCha20Rng(key, stream_id);
}

void ChaCha20Rng::Refill() {
  block_ = ChaCha20Block(key_, nonce_, counter_++);
  offset_ = 0;
}

uint64_t ChaCha20Rng::NextUint64() {
  uint8_t bytes[8];
  FillBytes(bytes, sizeof(bytes));
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  }
  return out;
}

void ChaCha20Rng::FillBytes(uint8_t* out, size_t len) {
  // Drain whatever the staging block still holds from an earlier call.
  if (offset_ < block_.size()) {
    const size_t take = std::min(len, block_.size() - offset_);
    std::memcpy(out, block_.data() + offset_, take);
    offset_ += take;
    out += take;
    len -= take;
  }
  // Whole blocks go straight into the destination — no staged copy.
  while (len >= block_.size()) {
    ChaCha20BlockInto(out, key_, nonce_, counter_++);
    out += block_.size();
    len -= block_.size();
  }
  // The tail comes out of a fresh staged block so the stream position is
  // preserved for the next call.
  if (len > 0) {
    Refill();
    std::memcpy(out, block_.data(), len);
    offset_ = len;
  }
}

std::vector<uint8_t> ChaCha20Rng::Bytes(size_t len) {
  std::vector<uint8_t> out(len);
  FillBytes(out.data(), len);
  return out;
}

void ChaCha20Rng::Bytes(std::vector<uint8_t>& out, size_t len) {
  out.resize(len);
  FillBytes(out.data(), len);
}

}  // namespace privapprox::crypto
