#include "crypto/chacha20.h"

#include <bit>
#include <cstring>

#include "crypto/chacha20_simd.h"

namespace privapprox::crypto {

void ChaCha20BlockInto(uint8_t* out, const std::array<uint8_t, 32>& key,
                       const std::array<uint8_t, 12>& nonce,
                       uint32_t counter) {
  uint32_t state[16];
  internal::BuildChaChaState(state, key, nonce, counter);
  internal::ChaCha20BlockFromState(out, state);
}

std::array<uint8_t, 64> ChaCha20Block(const std::array<uint8_t, 32>& key,
                                      const std::array<uint8_t, 12>& nonce,
                                      uint32_t counter) {
  std::array<uint8_t, 64> out;
  ChaCha20BlockInto(out.data(), key, nonce, counter);
  return out;
}

ChaCha20Rng::ChaCha20Rng(const std::array<uint8_t, 32>& key,
                         uint64_t stream_id)
    : key_(key) {
  nonce_.fill(0);
  for (int i = 0; i < 8; ++i) {
    nonce_[i] = static_cast<uint8_t>(stream_id >> (8 * i));
  }
}

ChaCha20Rng ChaCha20Rng::FromSeed(uint64_t seed, uint64_t stream_id) {
  // Expand the seed with SplitMix-style mixing into a 256-bit key.
  std::array<uint8_t, 32> key{};
  uint64_t state = seed;
  for (int w = 0; w < 4; ++w) {
    uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z = z ^ (z >> 31);
    for (int b = 0; b < 8; ++b) {
      key[8 * w + b] = static_cast<uint8_t>(z >> (8 * b));
    }
  }
  return ChaCha20Rng(key, stream_id);
}

void ChaCha20Rng::Refill() {
  ChaCha20BlockInto(block_.data(), key_, nonce_, counter_++);
  offset_ = 0;
}

uint64_t ChaCha20Rng::NextUint64() {
  // Fast path for the randomized-response coin draws in the client hot
  // loop: read the 8 bytes straight out of the staged block. Falls back to
  // FillBytes when the read would straddle the block edge (including the
  // offset_ == 64 "needs refill" state), which reproduces the exact
  // drain/refill sequence — so the stream position and output are
  // bit-identical to assembling the value from 8 single-byte reads.
  // The keystream is a little-endian byte sequence; on a big-endian host
  // the memcpy below would need a byte swap to keep streams portable.
  static_assert(std::endian::native == std::endian::little,
                "ChaCha20Rng::NextUint64 assumes little-endian layout");
  uint64_t out;
  if (offset_ + 8 <= block_.size()) {
    std::memcpy(&out, block_.data() + offset_, 8);
    offset_ += 8;
  } else {
    uint8_t bytes[8];
    FillBytes(bytes, sizeof(bytes));
    std::memcpy(&out, bytes, 8);
  }
  return out;
}

void ChaCha20Rng::FillBytes(uint8_t* out, size_t len) {
  // Drain whatever the staging block still holds from an earlier call.
  if (offset_ < block_.size()) {
    const size_t take = std::min(len, block_.size() - offset_);
    std::memcpy(out, block_.data() + offset_, take);
    offset_ += take;
    out += take;
    len -= take;
  }
  // Whole blocks are generated as one multi-block run straight into the
  // destination — the SIMD engine emits 4 or 8 of them per vector step.
  const size_t whole_blocks = len / block_.size();
  if (whole_blocks > 0) {
    ChaCha20BlocksInto(out, key_, nonce_, counter_, whole_blocks);
    counter_ += static_cast<uint32_t>(whole_blocks);
    out += whole_blocks * block_.size();
    len -= whole_blocks * block_.size();
  }
  // The tail comes out of a fresh staged block so the stream position is
  // preserved for the next call.
  if (len > 0) {
    Refill();
    std::memcpy(out, block_.data(), len);
    offset_ = len;
  }
}

std::vector<uint8_t> ChaCha20Rng::Bytes(size_t len) {
  std::vector<uint8_t> out(len);
  FillBytes(out.data(), len);
  return out;
}

void ChaCha20Rng::Bytes(std::vector<uint8_t>& out, size_t len) {
  out.resize(len);
  FillBytes(out.data(), len);
}

}  // namespace privapprox::crypto
