// Goldwasser-Micali bit encryption — comparator for Table 2
// ("Goldwasser [27]", the scheme used by the PDA system of Chen et al.,
// NSDI'12). Probabilistic, bit-by-bit: the natural fit for PrivApprox-style
// bit-vector answers, which is exactly why the paper benchmarks it.
//
// Keygen: n = p*q with p ≡ q ≡ 3 (mod 4) (Blum primes), so x = n - 1 is a
// pseudo-residue (Jacobi +1, non-residue mod both factors).
// Encrypt(b): c = y^2 * x^b mod n for random y in Z_n^*.
// Decrypt(c): b = 0 iff c is a quadratic residue mod p (Euler criterion).

#ifndef PRIVAPPROX_CRYPTO_GOLDWASSER_MICALI_H_
#define PRIVAPPROX_CRYPTO_GOLDWASSER_MICALI_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "bignum/biguint.h"
#include "bignum/modular.h"
#include "common/bitvector.h"
#include "common/rng.h"

namespace privapprox::crypto {

class GoldwasserMicaliKeyPair {
 public:
  static GoldwasserMicaliKeyPair Generate(Xoshiro256& rng,
                                          size_t modulus_bits);

  const bignum::BigUint& modulus() const { return n_; }

  // Encrypts a single bit.
  bignum::BigUint EncryptBit(bool bit, Xoshiro256& rng) const;
  bool DecryptBit(const bignum::BigUint& c) const;

  // Encrypts / decrypts a whole answer bit-vector, one ciphertext per bit.
  std::vector<bignum::BigUint> EncryptBits(const BitVector& bits,
                                           Xoshiro256& rng) const;
  BitVector DecryptBits(const std::vector<bignum::BigUint>& cts) const;

  // XOR-homomorphism: Enc(a) * Enc(b) mod n = Enc(a ^ b).
  bignum::BigUint HomomorphicXor(const bignum::BigUint& c1,
                                 const bignum::BigUint& c2) const;

 private:
  GoldwasserMicaliKeyPair() = default;

  bignum::BigUint n_, p_, q_, x_;
  bignum::BigUint p_half_;  // (p - 1) / 2, Euler-criterion exponent
  std::shared_ptr<bignum::MontgomeryContext> ctx_n_, ctx_p_;
};

}  // namespace privapprox::crypto

#endif  // PRIVAPPROX_CRYPTO_GOLDWASSER_MICALI_H_
