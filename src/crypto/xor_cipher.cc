#include "crypto/xor_cipher.h"

#include <stdexcept>

namespace privapprox::crypto {

XorSplitter::XorSplitter(size_t num_shares, ChaCha20Rng rng)
    : num_shares_(num_shares), rng_(rng) {
  if (num_shares < 2) {
    throw std::invalid_argument("XorSplitter: need at least two shares");
  }
}

std::vector<MessageShare> XorSplitter::Split(
    const std::vector<uint8_t>& plaintext) {
  const uint64_t mid = rng_.NextUint64();
  std::vector<MessageShare> shares(num_shares_);
  // ME starts as M and absorbs every key string (Eqs 10-11).
  shares[0].message_id = mid;
  shares[0].payload = plaintext;
  for (size_t i = 1; i < num_shares_; ++i) {
    shares[i].message_id = mid;
    shares[i].payload = rng_.Bytes(plaintext.size());
    for (size_t b = 0; b < plaintext.size(); ++b) {
      shares[0].payload[b] ^= shares[i].payload[b];
    }
  }
  return shares;
}

std::vector<uint8_t> XorSplitter::Combine(
    const std::vector<MessageShare>& shares) {
  if (shares.size() < 2) {
    throw std::invalid_argument("XorSplitter::Combine: need >= 2 shares");
  }
  const uint64_t mid = shares[0].message_id;
  const size_t len = shares[0].payload.size();
  std::vector<uint8_t> out(shares[0].payload);
  for (size_t i = 1; i < shares.size(); ++i) {
    if (shares[i].message_id != mid) {
      throw std::invalid_argument("XorSplitter::Combine: MID mismatch");
    }
    if (shares[i].payload.size() != len) {
      throw std::invalid_argument("XorSplitter::Combine: length mismatch");
    }
    for (size_t b = 0; b < len; ++b) {
      out[b] ^= shares[i].payload[b];
    }
  }
  return out;
}

}  // namespace privapprox::crypto
