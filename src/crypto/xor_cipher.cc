#include "crypto/xor_cipher.h"

#include <stdexcept>

#include "common/xor_bytes.h"

namespace privapprox::crypto {

XorSplitter::XorSplitter(size_t num_shares, ChaCha20Rng rng)
    : num_shares_(num_shares), rng_(rng) {
  if (num_shares < 2) {
    throw std::invalid_argument("XorSplitter: need at least two shares");
  }
}

std::vector<MessageShare> XorSplitter::Split(std::vector<uint8_t> plaintext) {
  const uint64_t mid = rng_.NextUint64();
  const size_t len = plaintext.size();
  std::vector<MessageShare> shares(num_shares_);
  // ME starts as M and absorbs every key string (Eqs 10-11). Taking the
  // plaintext by value lets callers move their serialized message straight
  // into share 0 instead of copying it.
  shares[0].message_id = mid;
  shares[0].payload = std::move(plaintext);
  for (size_t i = 1; i < num_shares_; ++i) {
    shares[i].message_id = mid;
    rng_.Bytes(shares[i].payload, len);
    XorBytesInPlace(shares[0].payload.data(), shares[i].payload.data(), len);
  }
  return shares;
}

void XorSplitter::SplitMessageInto(const AnswerMessage& message,
                                   EpochArena& arena,
                                   std::span<ShareView> out) {
  if (out.size() != num_shares_) {
    throw std::invalid_argument(
        "XorSplitter::SplitMessageInto: need one view slot per share");
  }
  const uint64_t mid = rng_.NextUint64();
  const size_t payload_len = AnswerMessage::WireSize(message.answer.size());
  const size_t record_len = 8 + payload_len;
  uint8_t* base = arena.Alloc(num_shares_ * record_len);
  // Share 0 starts as <MID, M> and absorbs every key string (Eqs 10-11).
  message.SerializeInto(base + 8);
  for (size_t i = 0; i < num_shares_; ++i) {
    uint8_t* record = base + i * record_len;
    for (int b = 0; b < 8; ++b) {
      record[b] = static_cast<uint8_t>(mid >> (8 * b));
    }
    if (i != 0) {
      rng_.FillBytes(record + 8, payload_len);
      XorBytesInPlace(base + 8, record + 8, payload_len);
    }
    out[i] = ShareView{mid, message.query_id, record, record_len};
  }
}

std::vector<uint8_t> XorSplitter::Combine(
    const std::vector<MessageShare>& shares) {
  if (shares.size() < 2) {
    throw std::invalid_argument("XorSplitter::Combine: need >= 2 shares");
  }
  const uint64_t mid = shares[0].message_id;
  const size_t len = shares[0].payload.size();
  std::vector<uint8_t> out(len);
  bool first_pair = true;
  for (size_t i = 1; i < shares.size(); ++i) {
    if (shares[i].message_id != mid) {
      throw std::invalid_argument("XorSplitter::Combine: MID mismatch");
    }
    if (shares[i].payload.size() != len) {
      throw std::invalid_argument("XorSplitter::Combine: length mismatch");
    }
    if (first_pair) {
      // Combine the first two shares straight into the output buffer.
      XorBytesInto(out.data(), shares[0].payload.data(),
                   shares[i].payload.data(), len);
      first_pair = false;
    } else {
      XorBytesInPlace(out.data(), shares[i].payload.data(), len);
    }
  }
  return out;
}

}  // namespace privapprox::crypto
