// Textbook RSA — comparator for Table 2 ("RSA [10]", 1024-bit keys).
//
// Implements exactly the operations the paper benchmarks: modular-
// exponentiation encryption and CRT decryption. No padding — the compared
// systems use RSA as a raw transport primitive over fixed-size answers.

#ifndef PRIVAPPROX_CRYPTO_RSA_H_
#define PRIVAPPROX_CRYPTO_RSA_H_

#include <cstddef>
#include <memory>

#include "bignum/biguint.h"
#include "bignum/modular.h"
#include "common/rng.h"

namespace privapprox::crypto {

class RsaKeyPair {
 public:
  // Generates an RSA key with a modulus of `modulus_bits` bits, e = 65537.
  static RsaKeyPair Generate(Xoshiro256& rng, size_t modulus_bits);

  const bignum::BigUint& modulus() const { return n_; }
  size_t modulus_bits() const { return n_.BitLength(); }

  // c = m^e mod n. Requires m < n.
  bignum::BigUint Encrypt(const bignum::BigUint& m) const;

  // m = c^d mod n via CRT (Garner recombination).
  bignum::BigUint Decrypt(const bignum::BigUint& c) const;

 private:
  RsaKeyPair() = default;

  bignum::BigUint n_, e_, d_;
  bignum::BigUint p_, q_;
  bignum::BigUint d_p_, d_q_;   // d mod (p-1), d mod (q-1)
  bignum::BigUint q_inv_;       // q^-1 mod p
  std::shared_ptr<bignum::MontgomeryContext> ctx_n_, ctx_p_, ctx_q_;
};

}  // namespace privapprox::crypto

#endif  // PRIVAPPROX_CRYPTO_RSA_H_
