// privapprox_aggregatord: the PrivApprox aggregator as a standalone
// process, dialing one TCP connection at each proxy daemon.
//
//   privapprox_aggregatord --port=9200 --proxy=127.0.0.1:9100 \
//       --proxy=127.0.0.1:9101 --population=600 [--confidence=0.95]
//       [--host=127.0.0.1] [--invert] [--shards=1] [--data-dir=DIR]
//       [--fsync=never|on_rotate|every_n_records|always]
//       [--fsync-every-n=N] [--segment-bytes=B]
//
// --data-dir turns on the query journal: announcements persist to
// <dir>/query_journal and a restarted daemon re-registers them before the
// "listening" line prints.
//
// --proxy order defines proxy indices (the first --proxy is proxy 0).
// Prints "listening <host>:<port>" once ready, then serves until
// SIGINT/SIGTERM.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <semaphore.h>
#include <string>

#include "deploy/aggregator_daemon.h"

namespace {

sem_t g_stop_sem;

void HandleSignal(int) { sem_post(&g_stop_sem); }

bool ParseFlag(const char* arg, const char* name, std::string& value) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  value = arg + prefix.size();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: privapprox_aggregatord --port=P --proxy=H:P "
               "--proxy=H:P [...] --population=N [--confidence=C] "
               "[--host=H] [--invert] [--shards=K] [--data-dir=DIR] "
               "[--fsync=POLICY] [--fsync-every-n=N] [--segment-bytes=B]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  privapprox::deploy::AggregatorDaemonConfig config;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "port", value)) {
      config.port = static_cast<uint16_t>(std::stoul(value));
    } else if (ParseFlag(argv[i], "proxy", value)) {
      config.proxies.push_back(privapprox::deploy::Endpoint::Parse(value));
    } else if (ParseFlag(argv[i], "population", value)) {
      config.population = std::stoul(value);
    } else if (ParseFlag(argv[i], "confidence", value)) {
      config.confidence = std::stod(value);
    } else if (ParseFlag(argv[i], "host", value)) {
      config.bind_host = value;
    } else if (ParseFlag(argv[i], "shards", value)) {
      config.num_shards = std::stoul(value);
    } else if (ParseFlag(argv[i], "data-dir", value)) {
      config.data_dir = value;
    } else if (ParseFlag(argv[i], "fsync", value)) {
      config.log.fsync = privapprox::storage::ParseFsyncPolicy(value);
    } else if (ParseFlag(argv[i], "fsync-every-n", value)) {
      config.log.fsync_every_n = std::stoull(value);
    } else if (ParseFlag(argv[i], "segment-bytes", value)) {
      config.log.max_segment_bytes = std::stoull(value);
    } else if (std::strcmp(argv[i], "--invert") == 0) {
      config.answers_inverted = true;
    } else {
      return Usage();
    }
  }
  if (config.proxies.size() < 2 || config.population == 0) {
    return Usage();
  }
  try {
    privapprox::deploy::AggregatorDaemon daemon(config);
    daemon.Start();
    std::printf("listening %s:%u\n", config.bind_host.c_str(),
                static_cast<unsigned>(daemon.port()));
    std::fflush(stdout);
    sem_init(&g_stop_sem, 0, 0);
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    while (sem_wait(&g_stop_sem) != 0 && errno == EINTR) {
    }
    daemon.Stop();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "privapprox_aggregatord: %s\n", e.what());
    return 1;
  }
  return 0;
}
