// The proxy as a standalone process: one broker::Broker + proxy::Proxy pair
// behind a TcpBusServer.
//
// Clients (the fleet driver) produce shares straight into the proxy's lane
// inbound topics over the data opcodes; the aggregator daemon polls the
// lane outbound topics the same way. The proxy's own state transitions —
// lane creation, forwarding — are driven by control verbs, which execute on
// the server's single event-loop thread, so the proxy (whose consumer
// offsets are single-writer state) needs no locking:
//
//   ensure_lane        u64 QID            -> (empty)
//   forward_lanes      (empty)            -> u64 records forwarded
//   forward_queries    (empty)            -> u64 announcements forwarded
//   advance_watermark  u32 n, n x {str topic, u32 k, k x u64 offset}
//                                         -> u64 segments deleted
//   snapshot_offsets   (empty)            -> text offset dump (CI artifact)
//   metrics            (empty)            -> Prometheus text exposition
//   ping               (empty)            -> (empty)
//
// Durability: with a non-empty data_dir the daemon's broker spills every
// topic to disk (per-partition segment logs) and the constructor recovers a
// previous incarnation's state — topics replayed, lanes rediscovered from
// the recovered topic names, and every lane consumer seeked to its outbound
// topic's recovered end offset (forwarding preserves per-partition order
// and mapping, so out-end == records already forwarded). advance_watermark
// carries the aggregator's consumed offsets per out topic; the daemon trims
// those out-topic segments and each lane's in-topic segments below the
// proxy's own forward offsets.
//
// privapprox_proxyd (deploy/proxyd_main.cc) is this class plus flag parsing
// and signal handling.

#ifndef PRIVAPPROX_DEPLOY_PROXY_DAEMON_H_
#define PRIVAPPROX_DEPLOY_PROXY_DAEMON_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "metrics/metrics.h"
#include "proxy/proxy.h"
#include "storage/partition_log.h"
#include "transport/tcp_bus.h"

namespace privapprox::deploy {

struct ProxyDaemonConfig {
  size_t proxy_index = 0;
  size_t num_partitions = 4;  // must match the in-process system's proxies
  std::string bind_host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port with port()
  // Durability root. Empty = memory-only topics, byte-identical to a daemon
  // without the durable log. Non-empty = the broker spills every topic to
  // <data_dir>/<topic>/p<k> and the constructor runs crash recovery.
  std::string data_dir;
  storage::PartitionLogOptions log;
};

class ProxyDaemon {
 public:
  explicit ProxyDaemon(ProxyDaemonConfig config);
  ~ProxyDaemon();

  ProxyDaemon(const ProxyDaemon&) = delete;
  ProxyDaemon& operator=(const ProxyDaemon&) = delete;

  void Start();
  void Stop();
  uint16_t port() const;

  std::string MetricsText() { return registry_.RenderText(); }

 private:
  std::vector<uint8_t> HandleControl(const std::string& verb,
                                     std::span<const uint8_t> payload);
  // Re-creates the lanes a previous incarnation had, from the recovered
  // topic names, then repositions every consumer. Constructor-only.
  void RecoverLanes(const std::vector<std::string>& recovered_topics);
  std::string SnapshotOffsetsText() const;

  ProxyDaemonConfig config_;
  metrics::Registry registry_;
  broker::Broker broker_;
  std::unique_ptr<proxy::Proxy> proxy_;
  std::unique_ptr<transport::TcpBusServer> server_;
};

}  // namespace privapprox::deploy

#endif  // PRIVAPPROX_DEPLOY_PROXY_DAEMON_H_
