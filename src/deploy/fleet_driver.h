// Drives a fleet of simulated clients against real daemons over TCP: the
// client-side half of a socket deployment (proxy daemons + aggregator
// daemon being the server side).
//
// The driver owns the same client::Client objects PrivApproxSystem would
// own — same ClientConfig fields, same seed derivation, same ascending-QID
// answer layout — and replays the system's sequence of operations over the
// wire:
//
//   SubmitQuery   validate / verify / admit exactly like the in-process
//                 system, then: ensure_lane on every proxy daemon, produce
//                 the announcement into each proxy's query.in topic,
//                 forward_queries, poll query.out back and deliver the
//                 bytes to the proxy's client cohort (client i learns from
//                 proxy i mod n), and finally register_query on the
//                 aggregator daemon.
//   RunEpoch      answer clients sequentially in client-id order (the
//                 canonical order both in-process pipeline modes reduce
//                 to), produce each (query, proxy) lane's shares in that
//                 order, forward_lanes on every proxy, drain on the
//                 aggregator.
//
// Because every byte that reaches a lane topic is produced in the same
// order with the same content as the in-process run, and the aggregator
// daemon runs the unchanged Aggregator over those topics, the two
// deployments' results are bit-identical (DESIGN.md §6j).

#ifndef PRIVAPPROX_DEPLOY_FLEET_DRIVER_H_
#define PRIVAPPROX_DEPLOY_FLEET_DRIVER_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "aggregator/aggregator.h"
#include "client/client.h"
#include "common/arena.h"
#include "core/budget_manager.h"
#include "core/query.h"
#include "deploy/endpoint.h"
#include "metrics/metrics.h"
#include "transport/tcp_bus.h"

namespace privapprox::deploy {

struct FleetDriverConfig {
  size_t num_clients = 0;
  uint64_t seed = 42;
  bool invert_answers = false;
  std::vector<Endpoint> proxies;  // one proxy daemon per proxy index
  Endpoint aggregator;
  // Mirrors SystemConfig::budget so admission (and thus the announced
  // parameters) matches the in-process system.
  double max_epsilon_zk = std::numeric_limits<double>::infinity();
  bool downsample_to_fit = true;
  double min_sampling_fraction = 1e-3;
  // Records per Produce frame on the share path. Bounds frame size well
  // under the transport's 64 MiB cap; chunking never reorders records.
  size_t produce_chunk_records = 2048;
  // Chaos hooks (crash-restart CI): run between RunEpoch's wire phases —
  // after every lane batch has been produced / acked, and right before the
  // aggregator drain. A hook typically kill -9s and restarts a daemon, so
  // the next RPC at that daemon fails once while the TCP client re-dials;
  // set control_retries > 0 to absorb those one-shot failures. Retried
  // verbs are idempotent: forward_lanes forwards whatever is still pending,
  // and a durable daemon recovers its state before printing "listening".
  std::function<void()> after_produce_hook;
  std::function<void()> before_drain_hook;
  size_t control_retries = 0;
};

// What one distributed epoch moved, mirroring the in-process EpochStats
// core fields (fault injection does not exist on this path).
struct FleetEpochStats {
  size_t participants = 0;
  uint64_t shares_sent = 0;
  uint64_t shares_forwarded = 0;
  uint64_t shares_consumed = 0;
};

class FleetDriver {
 public:
  explicit FleetDriver(FleetDriverConfig config);
  ~FleetDriver();

  FleetDriver(const FleetDriver&) = delete;
  FleetDriver& operator=(const FleetDriver&) = delete;

  size_t num_clients() const { return clients_.size(); }
  // The client's local database is the test/bench seam — fill it exactly
  // like the reference system's before answering.
  client::Client& client(size_t index) { return *clients_.at(index); }

  // Submission phase over the wire; returns the admitted (possibly
  // down-sampled) parameters, like PrivApproxSystem::SubmitQuery.
  core::ExecutionParams SubmitQuery(const core::Query& query,
                                    const core::ExecutionParams& params);

  FleetEpochStats RunEpoch(int64_t now_ms);

  void AdvanceWatermark(int64_t watermark_ms);
  void Flush();
  std::vector<aggregator::WindowedResult> TakeResults();

  // Retention sweep across the durable fleet: fetches the aggregator's
  // per-source consumed offsets (source_offsets), routes each topic's
  // offsets to the proxy daemon that hosts it, and has every proxy trim
  // sealed log segments below those watermarks (plus its own lane-inbound
  // watermarks). Returns segments deleted fleet-wide. Safe (a no-op) on a
  // non-durable fleet.
  uint64_t AdvanceRetention();

  // Human-readable offset/storage dumps (snapshot_offsets verb) — the chaos
  // CI job uploads these as artifacts.
  std::string ProxySnapshotText(size_t proxy_index);
  std::string AggregatorSnapshotText();

  // Remote /metrics dumps, fetched via each daemon's "metrics" control verb
  // (the CI socket-smoke job uploads these as artifacts).
  std::string ProxyMetricsText(size_t proxy_index);
  std::string AggregatorMetricsText();
  // The driver's own transport counters.
  std::string MetricsText() { return registry_.RenderText(); }

 private:
  struct ActiveQuery {
    core::ExecutionParams params;
    // lane_in_topics[j] = "proxy<j>.q<QID>.in", cached at submission.
    std::vector<std::string> lane_in_topics;
  };

  // Control with up to config_.control_retries retried attempts — absorbs
  // the single failed RPC a killed-and-restarted daemon costs its client.
  std::vector<uint8_t> ControlWithRetry(transport::TcpBusClient& bus,
                                        const std::string& verb,
                                        std::span<const uint8_t> payload);

  FleetDriverConfig config_;
  metrics::Registry registry_;
  core::PrivacyBudgetManager budget_manager_;
  std::vector<std::unique_ptr<client::Client>> clients_;
  std::vector<std::unique_ptr<transport::TcpBusClient>> proxy_buses_;
  std::unique_ptr<transport::TcpBusClient> aggregator_bus_;
  EpochArena arena_;
  std::map<uint64_t, ActiveQuery> active_;  // ascending QID
};

}  // namespace privapprox::deploy

#endif  // PRIVAPPROX_DEPLOY_FLEET_DRIVER_H_
