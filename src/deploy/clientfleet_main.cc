// privapprox_clientfleet: drives a deterministic simulated client fleet
// against running proxy/aggregator daemons over TCP.
//
//   privapprox_clientfleet --proxy=127.0.0.1:9100 --proxy=127.0.0.1:9101 \
//       --aggregator=127.0.0.1:9200 --clients=600 [--epochs=3] [--seed=42]
//       [--compare-inproc] [--metrics-dir=DIR] [--results-out=FILE]
//       [--retention] [--chaos-cmd=CMD] [--chaos-epoch=E]
//       [--chaos-point=after_produce|before_drain]
//
// Chaos (crash-restart CI): --chaos-cmd runs a shell command exactly once,
// at epoch --chaos-epoch, from the --chaos-point seam inside RunEpoch —
// after the epoch's shares are produced/acked, or right before the
// aggregator drain. The command typically kill -9s one daemon and restarts
// it on the same port and --data-dir; the driver's control retries absorb
// the one failed RPC the restart costs. --results-out writes the final
// result wire bytes to a file so an interrupted run can be byte-compared
// with an uninterrupted one. --retention runs a fleet-wide retention sweep
// after every epoch (and prints segments deleted).
//
// The workload is fixed (speed telemetry, one windowed query) and seeded,
// so two runs against the same daemon topology are identical. With
// --compare-inproc the same fleet also runs through an in-process
// PrivApproxSystem and the two result streams are compared byte-for-byte
// (result_wire serialization covers every IEEE-754 bit); exit status 1 on
// any mismatch — this is the CI socket-smoke gate. --metrics-dir writes
// each daemon's /metrics dump (fetched over the control channel) plus the
// fleet's own transport counters as artifact files.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/query.h"
#include "deploy/fleet_driver.h"
#include "deploy/result_wire.h"
#include "localdb/database.h"
#include "system/system.h"

namespace {

using privapprox::deploy::Endpoint;
using privapprox::deploy::FleetDriver;
using privapprox::deploy::FleetDriverConfig;
using privapprox::deploy::FleetEpochStats;

privapprox::core::Query SpeedQuery() {
  return privapprox::core::QueryBuilder()
      .WithId(1)
      .WithSql("SELECT speed FROM vehicle")
      .WithAnswerFormat(
          privapprox::core::AnswerFormat::UniformNumeric(0, 100, 10, true))
      .WithFrequencyMs(1000)
      .WithWindowMs(1000)
      .WithSlideMs(1000)
      .Build();
}

privapprox::core::ExecutionParams Params() {
  privapprox::core::ExecutionParams params;
  params.sampling_fraction = 0.9;
  params.randomization = {0.85, 0.5};
  return params;
}

// Deterministic per-client telemetry, applied identically to the fleet and
// the in-process reference so their truthful answers agree.
void FillDatabase(privapprox::localdb::Database& db, size_t client_index) {
  db.CreateTable("vehicle", {"speed"});
  db.GetTable("vehicle").Insert(
      500, {privapprox::localdb::Value(
               static_cast<double>((client_index * 7) % 100))});
}

bool ParseFlag(const char* arg, const char* name, std::string& value) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  value = arg + prefix.size();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: privapprox_clientfleet --proxy=H:P --proxy=H:P [...] "
               "--aggregator=H:P --clients=N [--epochs=E] [--seed=S] "
               "[--compare-inproc] [--metrics-dir=DIR] [--results-out=FILE] "
               "[--retention] [--chaos-cmd=CMD] [--chaos-epoch=E] "
               "[--chaos-point=after_produce|before_drain]\n");
  return 2;
}

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  if (!out) {
    throw std::runtime_error("cannot write " + path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  FleetDriverConfig config;
  Endpoint aggregator;
  size_t epochs = 3;
  bool compare_inproc = false;
  bool retention = false;
  std::string metrics_dir;
  std::string results_out;
  std::string chaos_cmd;
  std::string chaos_point = "after_produce";
  size_t chaos_epoch = 0;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "proxy", value)) {
      config.proxies.push_back(Endpoint::Parse(value));
    } else if (ParseFlag(argv[i], "aggregator", value)) {
      config.aggregator = Endpoint::Parse(value);
    } else if (ParseFlag(argv[i], "clients", value)) {
      config.num_clients = std::stoul(value);
    } else if (ParseFlag(argv[i], "epochs", value)) {
      epochs = std::stoul(value);
    } else if (ParseFlag(argv[i], "seed", value)) {
      config.seed = std::stoull(value);
    } else if (ParseFlag(argv[i], "metrics-dir", value)) {
      metrics_dir = value;
    } else if (ParseFlag(argv[i], "results-out", value)) {
      results_out = value;
    } else if (ParseFlag(argv[i], "chaos-cmd", value)) {
      chaos_cmd = value;
    } else if (ParseFlag(argv[i], "chaos-epoch", value)) {
      chaos_epoch = std::stoul(value);
    } else if (ParseFlag(argv[i], "chaos-point", value)) {
      chaos_point = value;
    } else if (std::strcmp(argv[i], "--retention") == 0) {
      retention = true;
    } else if (std::strcmp(argv[i], "--compare-inproc") == 0) {
      compare_inproc = true;
    } else {
      return Usage();
    }
  }
  if (config.proxies.size() < 2 || config.aggregator.port == 0 ||
      config.num_clients == 0) {
    return Usage();
  }
  if (chaos_point != "after_produce" && chaos_point != "before_drain") {
    return Usage();
  }

  // The chaos hook fires once, at the chosen epoch and seam. The kill +
  // restart command runs synchronously (std::system), so by the time the
  // hook returns the daemon is back on its port and the driver's retried
  // control calls reconnect to it.
  size_t current_epoch = 0;
  bool chaos_fired = false;
  const auto fire_chaos = [&] {
    if (chaos_fired || current_epoch != chaos_epoch) {
      return;
    }
    chaos_fired = true;
    std::printf("chaos: epoch %zu %s: %s\n", current_epoch,
                chaos_point.c_str(), chaos_cmd.c_str());
    std::fflush(stdout);
    const int rc = std::system(chaos_cmd.c_str());
    if (rc != 0) {
      throw std::runtime_error("chaos command failed (exit " +
                               std::to_string(rc) + ")");
    }
  };
  if (!chaos_cmd.empty()) {
    config.control_retries = 3;
    if (chaos_point == "after_produce") {
      config.after_produce_hook = fire_chaos;
    } else {
      config.before_drain_hook = fire_chaos;
    }
  }

  try {
    FleetDriver fleet(config);
    for (size_t i = 0; i < fleet.num_clients(); ++i) {
      FillDatabase(fleet.client(i).database(), i);
    }
    fleet.SubmitQuery(SpeedQuery(), Params());

    uint64_t total_shares = 0;
    const auto start = std::chrono::steady_clock::now();
    for (size_t e = 0; e < epochs; ++e) {
      current_epoch = e;
      const FleetEpochStats stats =
          fleet.RunEpoch(static_cast<int64_t>(1000 * (e + 1)));
      total_shares += stats.shares_sent;
      std::printf("epoch %zu: participants=%zu sent=%llu forwarded=%llu "
                  "consumed=%llu\n",
                  e, stats.participants,
                  static_cast<unsigned long long>(stats.shares_sent),
                  static_cast<unsigned long long>(stats.shares_forwarded),
                  static_cast<unsigned long long>(stats.shares_consumed));
      if (retention) {
        std::printf("epoch %zu: retention deleted %llu segment(s)\n", e,
                    static_cast<unsigned long long>(fleet.AdvanceRetention()));
      }
    }
    if (!chaos_cmd.empty() && !chaos_fired) {
      throw std::logic_error("chaos command never fired (--chaos-epoch >= "
                             "--epochs?)");
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    fleet.Flush();
    const std::vector<privapprox::aggregator::WindowedResult> results =
        fleet.TakeResults();
    const std::vector<uint8_t> wire =
        privapprox::deploy::SerializeResults(results);
    std::printf("results=%zu shares=%llu elapsed_s=%.3f shares_per_sec=%.0f\n",
                results.size(), static_cast<unsigned long long>(total_shares),
                seconds, seconds > 0 ? total_shares / seconds : 0.0);

    if (!results_out.empty()) {
      std::ofstream out(results_out, std::ios::binary);
      out.write(reinterpret_cast<const char*>(wire.data()),
                static_cast<std::streamsize>(wire.size()));
      if (!out) {
        throw std::runtime_error("cannot write " + results_out);
      }
    }

    if (!metrics_dir.empty()) {
      std::filesystem::create_directories(metrics_dir);
      for (size_t j = 0; j < config.proxies.size(); ++j) {
        WriteFile(metrics_dir + "/proxyd" + std::to_string(j) + ".metrics",
                  fleet.ProxyMetricsText(j));
        WriteFile(metrics_dir + "/proxyd" + std::to_string(j) + ".offsets",
                  fleet.ProxySnapshotText(j));
      }
      WriteFile(metrics_dir + "/aggregatord.metrics",
                fleet.AggregatorMetricsText());
      WriteFile(metrics_dir + "/aggregatord.offsets",
                fleet.AggregatorSnapshotText());
      WriteFile(metrics_dir + "/clientfleet.metrics", fleet.MetricsText());
    }

    if (compare_inproc) {
      privapprox::system::SystemConfig sys_config;
      sys_config.num_clients = config.num_clients;
      sys_config.num_proxies = config.proxies.size();
      sys_config.seed = config.seed;
      privapprox::system::PrivApproxSystem sys(sys_config);
      for (size_t i = 0; i < config.num_clients; ++i) {
        FillDatabase(sys.client(i).database(), i);
      }
      sys.SubmitQuery(SpeedQuery(), Params());
      for (size_t e = 0; e < epochs; ++e) {
        sys.RunEpoch(static_cast<int64_t>(1000 * (e + 1)));
      }
      sys.Flush();
      const std::vector<uint8_t> reference =
          privapprox::deploy::SerializeResults(sys.TakeResults());
      if (wire != reference) {
        std::fprintf(stderr,
                     "MISMATCH: socket deployment diverged from in-process "
                     "run (%zu vs %zu wire bytes)\n",
                     wire.size(), reference.size());
        return 1;
      }
      std::printf("compare-inproc: OK (%zu result(s), bit-identical)\n",
                  results.size());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "privapprox_clientfleet: %s\n", e.what());
    return 1;
  }
  return 0;
}
