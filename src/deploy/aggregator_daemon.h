// The aggregator as a standalone process: the unchanged aggregator::
// Aggregator running over a TopicRouterBus of TcpBusClients — one dialed at
// each proxy daemon — plus a control TcpBusServer for the analyst-facing
// verbs.
//
// Topic routing: every topic the aggregator consumes is named
// "proxy<j>.q<QID>.out", so the router resolves prefix "proxy<j>." to the
// client dialed at proxy daemon j, and the n-source join code runs
// byte-for-byte the code that runs in process (DESIGN.md §6j's bit-identity
// argument leans on this).
//
// Control verbs (executed on the server's event-loop thread, so the
// aggregator — single-threaded by contract — needs no locking):
//
//   register_query     announcement bytes          -> (empty)
//   drain              (empty)                     -> u64 shares consumed
//   advance_watermark  u64 (bit-cast i64 ms)       -> (empty)
//   flush              (empty)                     -> (empty)
//   take_results       (empty)                     -> result_wire bytes
//   source_offsets     (empty)                     -> u32 n, n x {str topic,
//                                                    u32 k, k x u64 offset}
//   snapshot_offsets   (empty)                     -> text offset dump
//   metrics            (empty)                     -> Prometheus text
//   ping               (empty)                     -> (empty)
//
// Durability: with a non-empty data_dir the daemon keeps a *query journal*
// — a storage::PartitionLog of raw announcement bytes at
// <data_dir>/query_journal, fsynced per append. A restarted daemon replays
// the journal to re-register every query, then its lane consumers restart
// at offset zero and re-consume the (durable, retained) proxy streams;
// because windows only fire at Flush, an interrupted epoch converges to the
// uninterrupted result. register_query is idempotent across the restart
// (already-registered QIDs are skipped, and skipped registrations are not
// re-journaled).
//
// privapprox_aggregatord (deploy/aggregatord_main.cc) is this class plus
// flag parsing and signal handling.

#ifndef PRIVAPPROX_DEPLOY_AGGREGATOR_DAEMON_H_
#define PRIVAPPROX_DEPLOY_AGGREGATOR_DAEMON_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "aggregator/aggregator.h"
#include "broker/broker.h"
#include "deploy/endpoint.h"
#include "metrics/metrics.h"
#include "storage/partition_log.h"
#include "transport/message_bus.h"
#include "transport/tcp_bus.h"

namespace privapprox::deploy {

struct AggregatorDaemonConfig {
  // One endpoint per proxy daemon, indexed by proxy index.
  std::vector<Endpoint> proxies;
  // Estimator inputs — must match the fleet they describe for results to be
  // comparable with an in-process run (population = number of clients).
  size_t population = 0;
  double confidence = 0.95;
  bool answers_inverted = false;
  // Join/window shards. Results are bit-identical for every value (DESIGN.md
  // §6g); the daemon defaults to 1 because it runs without a worker pool.
  size_t num_shards = 1;
  std::string bind_host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral
  // Durability root. Empty = no journal (previous behavior). Non-empty =
  // query announcements journal to <data_dir>/query_journal and the
  // constructor replays them.
  std::string data_dir;
  storage::PartitionLogOptions log;
};

class AggregatorDaemon {
 public:
  explicit AggregatorDaemon(AggregatorDaemonConfig config);
  ~AggregatorDaemon();

  AggregatorDaemon(const AggregatorDaemon&) = delete;
  AggregatorDaemon& operator=(const AggregatorDaemon&) = delete;

  void Start();
  void Stop();
  uint16_t port() const;

  std::string MetricsText() { return registry_.RenderText(); }

 private:
  std::vector<uint8_t> HandleControl(const std::string& verb,
                                     std::span<const uint8_t> payload);
  // Registers the announcement's query (no-op if the QID already has a
  // lane). `journal` = append the bytes to the query journal first — true on
  // the control verb, false during replay. Returns whether it registered.
  bool RegisterAnnouncement(std::span<const uint8_t> announcement,
                            bool journal);

  AggregatorDaemonConfig config_;
  metrics::Registry registry_;
  // The control server fronts this (otherwise unused) broker — the daemon's
  // topic traffic all flows through the proxy-bound TCP clients below.
  broker::Broker control_broker_;
  std::vector<std::unique_ptr<transport::TcpBusClient>> proxy_buses_;
  transport::TopicRouterBus router_;
  std::unique_ptr<aggregator::Aggregator> aggregator_;
  std::vector<aggregator::WindowedResult> results_;
  // Query journal; null when data_dir is empty.
  std::unique_ptr<storage::PartitionLog> journal_;
  std::unique_ptr<transport::TcpBusServer> server_;
};

}  // namespace privapprox::deploy

#endif  // PRIVAPPROX_DEPLOY_AGGREGATOR_DAEMON_H_
