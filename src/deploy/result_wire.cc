#include "deploy/result_wire.h"

#include <bit>

#include "transport/wire.h"

namespace privapprox::deploy {

namespace {

void PutF64(double v, std::vector<uint8_t>& out) {
  transport::PutU64(std::bit_cast<uint64_t>(v), out);
}

double TakeF64(transport::WireReader& reader) {
  return std::bit_cast<double>(reader.TakeU64());
}

}  // namespace

std::vector<uint8_t> SerializeResults(
    std::span<const aggregator::WindowedResult> results) {
  std::vector<uint8_t> out;
  transport::PutU32(static_cast<uint32_t>(results.size()), out);
  for (const aggregator::WindowedResult& result : results) {
    transport::PutU64(result.query_id, out);
    transport::PutU64(static_cast<uint64_t>(result.window.start_ms), out);
    transport::PutU64(static_cast<uint64_t>(result.window.end_ms), out);
    const core::QueryResult& qr = result.result;
    transport::PutU64(qr.participants, out);
    transport::PutU64(qr.population, out);
    transport::PutU64(qr.lost_to_faults, out);
    PutF64(qr.confidence, out);
    PutF64(qr.sampling_fraction, out);
    transport::PutU32(static_cast<uint32_t>(qr.buckets.size()), out);
    for (const core::BucketEstimate& bucket : qr.buckets) {
      PutF64(bucket.estimate.value, out);
      PutF64(bucket.estimate.error, out);
      PutF64(bucket.estimate.confidence, out);
      transport::PutU64(bucket.estimate.sample_size, out);
      PutF64(bucket.randomized_count, out);
    }
  }
  return out;
}

std::vector<aggregator::WindowedResult> DeserializeResults(
    std::span<const uint8_t> bytes) {
  transport::WireReader reader(bytes);
  const uint32_t count = reader.TakeU32();
  std::vector<aggregator::WindowedResult> results;
  results.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    aggregator::WindowedResult result;
    result.query_id = reader.TakeU64();
    result.window.start_ms = static_cast<int64_t>(reader.TakeU64());
    result.window.end_ms = static_cast<int64_t>(reader.TakeU64());
    core::QueryResult& qr = result.result;
    qr.participants = static_cast<size_t>(reader.TakeU64());
    qr.population = static_cast<size_t>(reader.TakeU64());
    qr.lost_to_faults = static_cast<size_t>(reader.TakeU64());
    qr.confidence = TakeF64(reader);
    qr.sampling_fraction = TakeF64(reader);
    const uint32_t num_buckets = reader.TakeU32();
    qr.buckets.reserve(num_buckets);
    for (uint32_t b = 0; b < num_buckets; ++b) {
      core::BucketEstimate bucket;
      bucket.estimate.value = TakeF64(reader);
      bucket.estimate.error = TakeF64(reader);
      bucket.estimate.confidence = TakeF64(reader);
      bucket.estimate.sample_size = static_cast<size_t>(reader.TakeU64());
      bucket.randomized_count = TakeF64(reader);
      qr.buckets.push_back(bucket);
    }
    results.push_back(std::move(result));
  }
  if (!reader.AtEnd()) {
    throw std::invalid_argument("DeserializeResults: trailing bytes");
  }
  return results;
}

}  // namespace privapprox::deploy
