// Bit-exact wire serialization of windowed query results.
//
// The socket deployment's acceptance criterion is that a 2-proxy TCP run
// produces *bit-identical* QueryResults to the in-process run. Comparing
// doubles through a text format would launder away ULP differences, so
// results cross the wire (and the e2e diff) with every double encoded as
// its raw IEEE-754 bit pattern: two runs compare equal iff every estimate,
// error margin, and randomized count is the same 64-bit value.

#ifndef PRIVAPPROX_DEPLOY_RESULT_WIRE_H_
#define PRIVAPPROX_DEPLOY_RESULT_WIRE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "aggregator/aggregator.h"

namespace privapprox::deploy {

// Serializes results in order. Deterministic: equal result vectors produce
// equal bytes, and (because doubles travel as bit patterns) equal bytes mean
// bit-identical results.
std::vector<uint8_t> SerializeResults(
    std::span<const aggregator::WindowedResult> results);

// Parses bytes produced by SerializeResults. Throws std::invalid_argument
// on truncation or a bad record count.
std::vector<aggregator::WindowedResult> DeserializeResults(
    std::span<const uint8_t> bytes);

}  // namespace privapprox::deploy

#endif  // PRIVAPPROX_DEPLOY_RESULT_WIRE_H_
