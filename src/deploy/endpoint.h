// A (host, port) pair naming one daemon, shared by every deploy-layer
// config. Parse accepts "host:port" and bare "port" (host defaults to
// loopback), the two spellings the daemon flags take.

#ifndef PRIVAPPROX_DEPLOY_ENDPOINT_H_
#define PRIVAPPROX_DEPLOY_ENDPOINT_H_

#include <cstdint>
#include <string>

namespace privapprox::deploy {

struct Endpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  // Throws std::invalid_argument on a malformed or out-of-range port.
  static Endpoint Parse(const std::string& spec);
};

}  // namespace privapprox::deploy

#endif  // PRIVAPPROX_DEPLOY_ENDPOINT_H_
