#include "deploy/endpoint.h"

#include <stdexcept>

namespace privapprox::deploy {

Endpoint Endpoint::Parse(const std::string& spec) {
  Endpoint out;
  std::string port_part = spec;
  const size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    out.host = spec.substr(0, colon);
    port_part = spec.substr(colon + 1);
  }
  if (out.host.empty() || port_part.empty()) {
    throw std::invalid_argument("Endpoint::Parse: malformed '" + spec + "'");
  }
  unsigned long port = 0;  // NOLINT(google-runtime-int): stoul's type
  size_t consumed = 0;
  try {
    port = std::stoul(port_part, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("Endpoint::Parse: bad port in '" + spec +
                                "'");
  }
  if (consumed != port_part.size() || port == 0 || port > 65535) {
    throw std::invalid_argument("Endpoint::Parse: bad port in '" + spec +
                                "'");
  }
  out.port = static_cast<uint16_t>(port);
  return out;
}

}  // namespace privapprox::deploy
