// privapprox_proxyd: one PrivApprox proxy as a standalone process.
//
//   privapprox_proxyd --index=0 --port=9100 [--host=127.0.0.1]
//                     [--partitions=4] [--data-dir=DIR]
//                     [--fsync=never|on_rotate|every_n_records|always]
//                     [--fsync-every-n=N] [--segment-bytes=B]
//
// --data-dir turns on the durable topic log: every topic spills to
// <dir>/<topic>/p<k> and startup recovers a previous incarnation's state
// (replay, lane rediscovery, consumer repositioning) before the
// "listening" line prints.
//
// Prints "listening <host>:<port>" once ready (the socket-smoke harness
// waits for this line), then serves until SIGINT/SIGTERM.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <semaphore.h>
#include <string>

#include "deploy/proxy_daemon.h"

namespace {

sem_t g_stop_sem;

void HandleSignal(int) { sem_post(&g_stop_sem); }

bool ParseFlag(const char* arg, const char* name, std::string& value) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  value = arg + prefix.size();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: privapprox_proxyd --index=N --port=P "
               "[--host=H] [--partitions=K] [--data-dir=DIR] "
               "[--fsync=POLICY] [--fsync-every-n=N] [--segment-bytes=B]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  privapprox::deploy::ProxyDaemonConfig config;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "index", value)) {
      config.proxy_index = std::stoul(value);
    } else if (ParseFlag(argv[i], "port", value)) {
      config.port = static_cast<uint16_t>(std::stoul(value));
    } else if (ParseFlag(argv[i], "host", value)) {
      config.bind_host = value;
    } else if (ParseFlag(argv[i], "partitions", value)) {
      config.num_partitions = std::stoul(value);
    } else if (ParseFlag(argv[i], "data-dir", value)) {
      config.data_dir = value;
    } else if (ParseFlag(argv[i], "fsync", value)) {
      config.log.fsync = privapprox::storage::ParseFsyncPolicy(value);
    } else if (ParseFlag(argv[i], "fsync-every-n", value)) {
      config.log.fsync_every_n = std::stoull(value);
    } else if (ParseFlag(argv[i], "segment-bytes", value)) {
      config.log.max_segment_bytes = std::stoull(value);
    } else {
      return Usage();
    }
  }
  try {
    privapprox::deploy::ProxyDaemon daemon(config);
    daemon.Start();
    std::printf("listening %s:%u\n", config.bind_host.c_str(),
                static_cast<unsigned>(daemon.port()));
    std::fflush(stdout);
    sem_init(&g_stop_sem, 0, 0);
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    while (sem_wait(&g_stop_sem) != 0 && errno == EINTR) {
    }
    daemon.Stop();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "privapprox_proxyd: %s\n", e.what());
    return 1;
  }
  return 0;
}
