#include "deploy/aggregator_daemon.h"

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "core/query_wire.h"
#include "deploy/result_wire.h"
#include "transport/wire.h"

namespace privapprox::deploy {

AggregatorDaemon::AggregatorDaemon(AggregatorDaemonConfig config)
    : config_(std::move(config)) {
  if (config_.proxies.size() < 2) {
    throw std::invalid_argument("AggregatorDaemon: need at least two proxies");
  }
  metrics::Counter* reconnects = &registry_.GetCounter(
      "privapprox_transport_reconnects_total",
      "Proxy-bus re-dials after the first established connection");
  metrics::Counter* client_bytes_in = &registry_.GetCounter(
      "privapprox_transport_bytes_in_total", "Bytes received from peers");
  metrics::Counter* client_bytes_out = &registry_.GetCounter(
      "privapprox_transport_bytes_out_total", "Bytes sent to peers");
  metrics::Counter* client_frames_in = &registry_.GetCounter(
      "privapprox_transport_frames_in_total", "Request frames received");
  metrics::Counter* client_frames_out = &registry_.GetCounter(
      "privapprox_transport_frames_out_total", "Response frames sent");
  proxy_buses_.reserve(config_.proxies.size());
  for (size_t j = 0; j < config_.proxies.size(); ++j) {
    transport::TcpBusClientConfig client_config;
    client_config.host = config_.proxies[j].host;
    client_config.port = config_.proxies[j].port;
    client_config.counters.reconnects = reconnects;
    client_config.counters.bytes_in = client_bytes_in;
    client_config.counters.bytes_out = client_bytes_out;
    client_config.counters.frames_in = client_frames_in;
    client_config.counters.frames_out = client_frames_out;
    proxy_buses_.push_back(
        std::make_unique<transport::TcpBusClient>(client_config));
    router_.AddRoute("proxy" + std::to_string(j) + ".", *proxy_buses_[j]);
  }

  aggregator::AggregatorConfig agg_config;
  agg_config.num_proxies = config_.proxies.size();
  agg_config.population = config_.population;
  agg_config.confidence = config_.confidence;
  agg_config.answers_inverted = config_.answers_inverted;
  agg_config.num_shards = config_.num_shards;
  aggregator_ = std::make_unique<aggregator::Aggregator>(
      agg_config, router_, [this](const aggregator::WindowedResult& result) {
        results_.push_back(result);
      });

  if (!config_.data_dir.empty()) {
    journal_ = std::make_unique<storage::PartitionLog>(
        std::filesystem::path(config_.data_dir) / "query_journal",
        config_.log);
    // Re-register every query a previous incarnation accepted. The lane
    // consumers start at offset zero, so the next drains re-consume the
    // proxies' retained streams from the beginning.
    journal_->Replay([this](uint64_t /*offset*/, uint64_t /*key*/,
                            int64_t /*timestamp_ms*/,
                            std::span<const uint8_t> payload) {
      RegisterAnnouncement(payload, /*journal=*/false);
    });

    auto* segments = &registry_.GetGauge("privapprox_storage_segments",
                                         "Live query-journal segments");
    auto* bytes = &registry_.GetGauge("privapprox_storage_bytes",
                                      "Bytes held in the query journal");
    auto* fsyncs = &registry_.GetGauge("privapprox_storage_fsyncs",
                                       "fsync calls issued by the journal");
    auto* recovered = &registry_.GetGauge(
        "privapprox_storage_recovered_records",
        "Journal records replayed at startup");
    auto* truncated = &registry_.GetGauge(
        "privapprox_storage_truncated_tails",
        "Torn journal tails truncated during recovery");
    registry_.AddCollector(
        [this, segments, bytes, fsyncs, recovered, truncated] {
          const storage::PartitionLogStats s = journal_->stats();
          segments->Set(static_cast<int64_t>(s.segments));
          bytes->Set(static_cast<int64_t>(s.bytes));
          fsyncs->Set(static_cast<int64_t>(s.fsyncs));
          recovered->Set(static_cast<int64_t>(s.recovered_records));
          truncated->Set(static_cast<int64_t>(s.truncated_tails));
        });
  }

  transport::TcpBusServerConfig server_config;
  server_config.bind_host = config_.bind_host;
  server_config.port = config_.port;
  server_config.counters.accepts = &registry_.GetCounter(
      "privapprox_transport_accepts_total", "Connections accepted");
  server_config.counters.disconnects = &registry_.GetCounter(
      "privapprox_transport_disconnects_total", "Peers hung up");
  server_config.counters.protocol_errors = &registry_.GetCounter(
      "privapprox_transport_protocol_errors_total",
      "Connections quarantined for framing errors");
  server_ = std::make_unique<transport::TcpBusServer>(
      server_config, control_broker_,
      [this](const std::string& verb, std::span<const uint8_t> payload) {
        return HandleControl(verb, payload);
      });
}

AggregatorDaemon::~AggregatorDaemon() { Stop(); }

void AggregatorDaemon::Start() { server_->Start(); }

void AggregatorDaemon::Stop() { server_->Stop(); }

uint16_t AggregatorDaemon::port() const { return server_->port(); }

bool AggregatorDaemon::RegisterAnnouncement(
    std::span<const uint8_t> announcement, bool journal) {
  // The announcement is the registration unit — the same bytes every client
  // parses, so daemon and in-process lanes run identical (query, params)
  // pairs by construction. It is also the journal record, so replay and the
  // live verb share this one code path.
  const core::QueryAnnouncement ann = core::DeserializeAnnouncement(announcement);
  if (aggregator_->HasQuery(ann.query.query_id)) {
    return false;  // driver retry after a restart, or duplicate submission
  }
  if (journal && journal_ != nullptr) {
    // Journal before registering, and sync unconditionally: once the verb
    // acks, the query must survive kill -9 under any fsync policy.
    journal_->Append(ann.query.query_id, /*timestamp_ms=*/0, announcement);
    journal_->Sync();
  }
  aggregator::QueryLaneOptions lane;
  lane.source_topics.reserve(config_.proxies.size());
  for (size_t j = 0; j < config_.proxies.size(); ++j) {
    lane.source_topics.push_back("proxy" + std::to_string(j) + ".q" +
                                 std::to_string(ann.query.query_id) + ".out");
  }
  aggregator_->RegisterQuery(ann.query, ann.params, std::move(lane));
  return true;
}

std::vector<uint8_t> AggregatorDaemon::HandleControl(
    const std::string& verb, std::span<const uint8_t> payload) {
  std::vector<uint8_t> response;
  if (verb == "ping") {
    return response;
  }
  if (verb == "register_query") {
    RegisterAnnouncement(payload, /*journal=*/true);
    return response;
  }
  if (verb == "drain") {
    transport::PutU64(aggregator_->Drain(), response);
    return response;
  }
  if (verb == "advance_watermark") {
    transport::WireReader reader(payload);
    aggregator_->AdvanceWatermark(static_cast<int64_t>(reader.TakeU64()));
    return response;
  }
  if (verb == "flush") {
    aggregator_->Flush();
    return response;
  }
  if (verb == "take_results") {
    response = SerializeResults(results_);
    results_.clear();
    return response;
  }
  if (verb == "source_offsets") {
    // Per-source-topic consumed offsets — the retention low-watermarks the
    // fleet driver routes to each proxy daemon's advance_watermark verb.
    const auto offsets = aggregator_->SourceOffsets();
    transport::PutU32(static_cast<uint32_t>(offsets.size()), response);
    for (const auto& [topic, parts] : offsets) {
      transport::PutString(topic, response);
      transport::PutU32(static_cast<uint32_t>(parts.size()), response);
      for (const uint64_t offset : parts) {
        transport::PutU64(offset, response);
      }
    }
    return response;
  }
  if (verb == "snapshot_offsets") {
    std::ostringstream out;
    out << "aggregator\n";
    for (const auto& [topic, parts] : aggregator_->SourceOffsets()) {
      out << "source " << topic << " consumed=";
      for (size_t p = 0; p < parts.size(); ++p) {
        out << (p != 0 ? "," : "") << parts[p];
      }
      out << "\n";
    }
    if (journal_ != nullptr) {
      const storage::PartitionLogStats s = journal_->stats();
      out << "journal records=" << journal_->end_offset()
          << " segments=" << s.segments << " bytes=" << s.bytes
          << " recovered_records=" << s.recovered_records
          << " truncated_tails=" << s.truncated_tails << "\n";
    }
    const std::string text = out.str();
    response.assign(text.begin(), text.end());
    return response;
  }
  if (verb == "metrics") {
    const std::string text = registry_.RenderText();
    response.assign(text.begin(), text.end());
    return response;
  }
  throw std::invalid_argument("AggregatorDaemon: unknown control verb '" +
                              verb + "'");
}

}  // namespace privapprox::deploy
