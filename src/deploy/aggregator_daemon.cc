#include "deploy/aggregator_daemon.h"

#include <stdexcept>

#include "core/query_wire.h"
#include "deploy/result_wire.h"
#include "transport/wire.h"

namespace privapprox::deploy {

AggregatorDaemon::AggregatorDaemon(AggregatorDaemonConfig config)
    : config_(std::move(config)) {
  if (config_.proxies.size() < 2) {
    throw std::invalid_argument("AggregatorDaemon: need at least two proxies");
  }
  metrics::Counter* reconnects = &registry_.GetCounter(
      "privapprox_transport_reconnects_total",
      "Proxy-bus re-dials after the first established connection");
  metrics::Counter* client_bytes_in = &registry_.GetCounter(
      "privapprox_transport_bytes_in_total", "Bytes received from peers");
  metrics::Counter* client_bytes_out = &registry_.GetCounter(
      "privapprox_transport_bytes_out_total", "Bytes sent to peers");
  metrics::Counter* client_frames_in = &registry_.GetCounter(
      "privapprox_transport_frames_in_total", "Request frames received");
  metrics::Counter* client_frames_out = &registry_.GetCounter(
      "privapprox_transport_frames_out_total", "Response frames sent");
  proxy_buses_.reserve(config_.proxies.size());
  for (size_t j = 0; j < config_.proxies.size(); ++j) {
    transport::TcpBusClientConfig client_config;
    client_config.host = config_.proxies[j].host;
    client_config.port = config_.proxies[j].port;
    client_config.counters.reconnects = reconnects;
    client_config.counters.bytes_in = client_bytes_in;
    client_config.counters.bytes_out = client_bytes_out;
    client_config.counters.frames_in = client_frames_in;
    client_config.counters.frames_out = client_frames_out;
    proxy_buses_.push_back(
        std::make_unique<transport::TcpBusClient>(client_config));
    router_.AddRoute("proxy" + std::to_string(j) + ".", *proxy_buses_[j]);
  }

  aggregator::AggregatorConfig agg_config;
  agg_config.num_proxies = config_.proxies.size();
  agg_config.population = config_.population;
  agg_config.confidence = config_.confidence;
  agg_config.answers_inverted = config_.answers_inverted;
  agg_config.num_shards = config_.num_shards;
  aggregator_ = std::make_unique<aggregator::Aggregator>(
      agg_config, router_, [this](const aggregator::WindowedResult& result) {
        results_.push_back(result);
      });

  transport::TcpBusServerConfig server_config;
  server_config.bind_host = config_.bind_host;
  server_config.port = config_.port;
  server_config.counters.accepts = &registry_.GetCounter(
      "privapprox_transport_accepts_total", "Connections accepted");
  server_config.counters.disconnects = &registry_.GetCounter(
      "privapprox_transport_disconnects_total", "Peers hung up");
  server_config.counters.protocol_errors = &registry_.GetCounter(
      "privapprox_transport_protocol_errors_total",
      "Connections quarantined for framing errors");
  server_ = std::make_unique<transport::TcpBusServer>(
      server_config, control_broker_,
      [this](const std::string& verb, std::span<const uint8_t> payload) {
        return HandleControl(verb, payload);
      });
}

AggregatorDaemon::~AggregatorDaemon() { Stop(); }

void AggregatorDaemon::Start() { server_->Start(); }

void AggregatorDaemon::Stop() { server_->Stop(); }

uint16_t AggregatorDaemon::port() const { return server_->port(); }

std::vector<uint8_t> AggregatorDaemon::HandleControl(
    const std::string& verb, std::span<const uint8_t> payload) {
  std::vector<uint8_t> response;
  if (verb == "ping") {
    return response;
  }
  if (verb == "register_query") {
    // The announcement is the registration unit — the same bytes every
    // client parses, so daemon and in-process lanes run identical (query,
    // params) pairs by construction.
    const core::QueryAnnouncement ann = core::DeserializeAnnouncement(payload);
    aggregator::QueryLaneOptions lane;
    lane.source_topics.reserve(config_.proxies.size());
    for (size_t j = 0; j < config_.proxies.size(); ++j) {
      lane.source_topics.push_back("proxy" + std::to_string(j) + ".q" +
                                   std::to_string(ann.query.query_id) +
                                   ".out");
    }
    aggregator_->RegisterQuery(ann.query, ann.params, std::move(lane));
    return response;
  }
  if (verb == "drain") {
    transport::PutU64(aggregator_->Drain(), response);
    return response;
  }
  if (verb == "advance_watermark") {
    transport::WireReader reader(payload);
    aggregator_->AdvanceWatermark(static_cast<int64_t>(reader.TakeU64()));
    return response;
  }
  if (verb == "flush") {
    aggregator_->Flush();
    return response;
  }
  if (verb == "take_results") {
    response = SerializeResults(results_);
    results_.clear();
    return response;
  }
  if (verb == "metrics") {
    const std::string text = registry_.RenderText();
    response.assign(text.begin(), text.end());
    return response;
  }
  throw std::invalid_argument("AggregatorDaemon: unknown control verb '" +
                              verb + "'");
}

}  // namespace privapprox::deploy
