#include "deploy/proxy_daemon.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "transport/wire.h"

namespace privapprox::deploy {

ProxyDaemon::ProxyDaemon(ProxyDaemonConfig config) : config_(std::move(config)) {
  std::vector<std::string> recovered_topics;
  if (!config_.data_dir.empty()) {
    broker_.EnableDurability({config_.data_dir, config_.log});
    recovered_topics = broker_.RecoverTopics();
  }

  proxy::ProxyConfig proxy_config;
  proxy_config.proxy_index = config_.proxy_index;
  proxy_config.num_partitions = config_.num_partitions;
  const metrics::Labels labels{
      {"proxy", std::to_string(config_.proxy_index)}};
  proxy_config.received_total = &registry_.GetCounter(
      "privapprox_proxy_received_total",
      "Records accepted into the proxy's inbound topic", labels);
  proxy_config.forwarded_total = &registry_.GetCounter(
      "privapprox_proxy_forwarded_total",
      "Records the proxy moved inbound -> outbound", labels);
  proxy_ = std::make_unique<proxy::Proxy>(proxy_config, broker_);

  if (!config_.data_dir.empty()) {
    RecoverLanes(recovered_topics);

    auto* segments = &registry_.GetGauge(
        "privapprox_storage_segments", "Live log segments, all durable topics");
    auto* bytes = &registry_.GetGauge("privapprox_storage_bytes",
                                      "Bytes held in live log segments");
    auto* fsyncs = &registry_.GetGauge("privapprox_storage_fsyncs",
                                       "fsync calls issued by partition logs");
    auto* recovered = &registry_.GetGauge(
        "privapprox_storage_recovered_records",
        "Records replayed from disk at startup");
    auto* truncated = &registry_.GetGauge(
        "privapprox_storage_truncated_tails",
        "Torn record tails truncated during recovery");
    registry_.AddCollector(
        [this, segments, bytes, fsyncs, recovered, truncated] {
          const broker::DurableStats s = broker_.durable_stats();
          segments->Set(static_cast<int64_t>(s.segments));
          bytes->Set(static_cast<int64_t>(s.bytes));
          fsyncs->Set(static_cast<int64_t>(s.fsyncs));
          recovered->Set(static_cast<int64_t>(s.recovered_records));
          truncated->Set(static_cast<int64_t>(s.truncated_tails));
        });
  }

  transport::TcpBusServerConfig server_config;
  server_config.bind_host = config_.bind_host;
  server_config.port = config_.port;
  server_config.counters.frames_in = &registry_.GetCounter(
      "privapprox_transport_frames_in_total", "Request frames received");
  server_config.counters.frames_out = &registry_.GetCounter(
      "privapprox_transport_frames_out_total", "Response frames sent");
  server_config.counters.bytes_in = &registry_.GetCounter(
      "privapprox_transport_bytes_in_total", "Bytes received from peers");
  server_config.counters.bytes_out = &registry_.GetCounter(
      "privapprox_transport_bytes_out_total", "Bytes sent to peers");
  server_config.counters.accepts = &registry_.GetCounter(
      "privapprox_transport_accepts_total", "Connections accepted");
  server_config.counters.disconnects = &registry_.GetCounter(
      "privapprox_transport_disconnects_total", "Peers hung up");
  server_config.counters.protocol_errors = &registry_.GetCounter(
      "privapprox_transport_protocol_errors_total",
      "Connections quarantined for framing errors");
  server_ = std::make_unique<transport::TcpBusServer>(
      server_config, broker_,
      [this](const std::string& verb, std::span<const uint8_t> payload) {
        return HandleControl(verb, payload);
      });
}

void ProxyDaemon::RecoverLanes(
    const std::vector<std::string>& recovered_topics) {
  // A previous incarnation's lanes are encoded in its topic names:
  // "<prefix>.q<ID>.in". The query topics also match the ".q" prefix
  // ("proxy0.query.in"), so only all-digit IDs count.
  const std::string prefix =
      "proxy" + std::to_string(config_.proxy_index) + ".q";
  const std::string suffix = ".in";
  for (const std::string& name : recovered_topics) {
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string id_str = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    if (id_str.empty() ||
        id_str.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    proxy_->EnsureLane(std::strtoull(id_str.c_str(), nullptr, 10));
  }
  // Reposition every consumer past the records a previous incarnation
  // already forwarded (out-end == records forwarded; see proxy.h).
  proxy_->SyncConsumersToOutbound();
}

std::string ProxyDaemon::SnapshotOffsetsText() const {
  std::ostringstream out;
  out << "proxy " << config_.proxy_index << "\n";
  for (const std::string& name : broker_.TopicNames()) {
    const broker::Topic& topic = broker_.GetTopic(name);
    out << "topic " << name << " end=";
    for (size_t p = 0; p < topic.num_partitions(); ++p) {
      out << (p != 0 ? "," : "") << topic.EndOffset(p);
    }
    out << "\n";
  }
  for (const uint64_t qid : proxy_->lane_ids()) {
    out << "lane q" << qid << " consumed=";
    const std::vector<uint64_t> offsets = proxy_->LaneInOffsets(qid);
    for (size_t p = 0; p < offsets.size(); ++p) {
      out << (p != 0 ? "," : "") << offsets[p];
    }
    out << "\n";
  }
  const broker::DurableStats s = broker_.durable_stats();
  out << "storage segments=" << s.segments << " bytes=" << s.bytes
      << " fsyncs=" << s.fsyncs << " recovered_records=" << s.recovered_records
      << " truncated_tails=" << s.truncated_tails << "\n";
  return out.str();
}

ProxyDaemon::~ProxyDaemon() { Stop(); }

void ProxyDaemon::Start() { server_->Start(); }

void ProxyDaemon::Stop() { server_->Stop(); }

uint16_t ProxyDaemon::port() const { return server_->port(); }

std::vector<uint8_t> ProxyDaemon::HandleControl(
    const std::string& verb, std::span<const uint8_t> payload) {
  std::vector<uint8_t> response;
  if (verb == "ping") {
    return response;
  }
  if (verb == "ensure_lane") {
    transport::WireReader reader(payload);
    proxy_->EnsureLane(reader.TakeU64());
    return response;
  }
  if (verb == "forward_lanes") {
    transport::PutU64(proxy_->ForwardLanes(), response);
    return response;
  }
  if (verb == "forward_queries") {
    transport::PutU64(proxy_->ForwardQueries(), response);
    return response;
  }
  if (verb == "advance_watermark") {
    // Payload: u32 n, then n x {string topic, u32 k, k x u64 offset} — the
    // aggregator's consumed offsets for this proxy's lane outbound topics.
    transport::WireReader reader(payload);
    uint64_t deleted = 0;
    const uint32_t num_topics = reader.TakeU32();
    for (uint32_t i = 0; i < num_topics; ++i) {
      const std::string topic = reader.TakeString();
      const uint32_t num_parts = reader.TakeU32();
      for (uint32_t p = 0; p < num_parts; ++p) {
        const uint64_t offset = reader.TakeU64();
        if (broker_.HasTopic(topic)) {
          deleted += broker_.GetTopic(topic).AdvanceWatermark(p, offset);
        }
      }
    }
    // Lane inbound topics have exactly one consumer — this proxy — so its
    // forward offsets are their low-watermark.
    for (const uint64_t qid : proxy_->lane_ids()) {
      broker::Topic& in = broker_.GetTopic(proxy_->lane_in_topic(qid));
      const std::vector<uint64_t> offsets = proxy_->LaneInOffsets(qid);
      for (size_t p = 0; p < offsets.size(); ++p) {
        deleted += in.AdvanceWatermark(p, offsets[p]);
      }
    }
    transport::PutU64(deleted, response);
    return response;
  }
  if (verb == "snapshot_offsets") {
    const std::string text = SnapshotOffsetsText();
    response.assign(text.begin(), text.end());
    return response;
  }
  if (verb == "metrics") {
    const std::string text = registry_.RenderText();
    response.assign(text.begin(), text.end());
    return response;
  }
  throw std::invalid_argument("ProxyDaemon: unknown control verb '" + verb +
                              "'");
}

}  // namespace privapprox::deploy
