#include "deploy/proxy_daemon.h"

#include <stdexcept>

#include "transport/wire.h"

namespace privapprox::deploy {

ProxyDaemon::ProxyDaemon(ProxyDaemonConfig config) : config_(config) {
  proxy::ProxyConfig proxy_config;
  proxy_config.proxy_index = config_.proxy_index;
  proxy_config.num_partitions = config_.num_partitions;
  const metrics::Labels labels{
      {"proxy", std::to_string(config_.proxy_index)}};
  proxy_config.received_total = &registry_.GetCounter(
      "privapprox_proxy_received_total",
      "Records accepted into the proxy's inbound topic", labels);
  proxy_config.forwarded_total = &registry_.GetCounter(
      "privapprox_proxy_forwarded_total",
      "Records the proxy moved inbound -> outbound", labels);
  proxy_ = std::make_unique<proxy::Proxy>(proxy_config, broker_);

  transport::TcpBusServerConfig server_config;
  server_config.bind_host = config_.bind_host;
  server_config.port = config_.port;
  server_config.counters.frames_in = &registry_.GetCounter(
      "privapprox_transport_frames_in_total", "Request frames received");
  server_config.counters.frames_out = &registry_.GetCounter(
      "privapprox_transport_frames_out_total", "Response frames sent");
  server_config.counters.bytes_in = &registry_.GetCounter(
      "privapprox_transport_bytes_in_total", "Bytes received from peers");
  server_config.counters.bytes_out = &registry_.GetCounter(
      "privapprox_transport_bytes_out_total", "Bytes sent to peers");
  server_config.counters.accepts = &registry_.GetCounter(
      "privapprox_transport_accepts_total", "Connections accepted");
  server_config.counters.disconnects = &registry_.GetCounter(
      "privapprox_transport_disconnects_total", "Peers hung up");
  server_config.counters.protocol_errors = &registry_.GetCounter(
      "privapprox_transport_protocol_errors_total",
      "Connections quarantined for framing errors");
  server_ = std::make_unique<transport::TcpBusServer>(
      server_config, broker_,
      [this](const std::string& verb, std::span<const uint8_t> payload) {
        return HandleControl(verb, payload);
      });
}

ProxyDaemon::~ProxyDaemon() { Stop(); }

void ProxyDaemon::Start() { server_->Start(); }

void ProxyDaemon::Stop() { server_->Stop(); }

uint16_t ProxyDaemon::port() const { return server_->port(); }

std::vector<uint8_t> ProxyDaemon::HandleControl(
    const std::string& verb, std::span<const uint8_t> payload) {
  std::vector<uint8_t> response;
  if (verb == "ping") {
    return response;
  }
  if (verb == "ensure_lane") {
    transport::WireReader reader(payload);
    proxy_->EnsureLane(reader.TakeU64());
    return response;
  }
  if (verb == "forward_lanes") {
    transport::PutU64(proxy_->ForwardLanes(), response);
    return response;
  }
  if (verb == "forward_queries") {
    transport::PutU64(proxy_->ForwardQueries(), response);
    return response;
  }
  if (verb == "metrics") {
    const std::string text = registry_.RenderText();
    response.assign(text.begin(), text.end());
    return response;
  }
  throw std::invalid_argument("ProxyDaemon: unknown control verb '" + verb +
                              "'");
}

}  // namespace privapprox::deploy
