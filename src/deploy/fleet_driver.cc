#include "deploy/fleet_driver.h"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "broker/broker.h"
#include "core/query_wire.h"
#include "crypto/xor_cipher.h"
#include "deploy/result_wire.h"
#include "transport/message_bus.h"
#include "transport/wire.h"

namespace privapprox::deploy {

FleetDriver::FleetDriver(FleetDriverConfig config)
    : config_(std::move(config)),
      budget_manager_(core::BudgetManagerConfig{config_.max_epsilon_zk,
                                                config_.downsample_to_fit,
                                                config_.min_sampling_fraction}) {
  if (config_.num_clients == 0) {
    throw std::invalid_argument("FleetDriver: need >= 1 client");
  }
  if (config_.proxies.size() < 2) {
    throw std::invalid_argument("FleetDriver: need >= 2 proxies");
  }

  transport::TransportCounters counters;
  counters.reconnects = &registry_.GetCounter(
      "privapprox_transport_reconnects_total",
      "Daemon re-dials after the first established connection");
  counters.bytes_in = &registry_.GetCounter(
      "privapprox_transport_bytes_in_total", "Bytes received from daemons");
  counters.bytes_out = &registry_.GetCounter(
      "privapprox_transport_bytes_out_total", "Bytes sent to daemons");
  counters.frames_in = &registry_.GetCounter(
      "privapprox_transport_frames_in_total", "Response frames received");
  counters.frames_out = &registry_.GetCounter(
      "privapprox_transport_frames_out_total", "Request frames sent");
  proxy_buses_.reserve(config_.proxies.size());
  for (const Endpoint& endpoint : config_.proxies) {
    transport::TcpBusClientConfig client_config;
    client_config.host = endpoint.host;
    client_config.port = endpoint.port;
    client_config.counters = counters;
    proxy_buses_.push_back(
        std::make_unique<transport::TcpBusClient>(client_config));
  }
  transport::TcpBusClientConfig agg_config;
  agg_config.host = config_.aggregator.host;
  agg_config.port = config_.aggregator.port;
  agg_config.counters = counters;
  aggregator_bus_ = std::make_unique<transport::TcpBusClient>(agg_config);

  clients_.reserve(config_.num_clients);
  for (size_t i = 0; i < config_.num_clients; ++i) {
    client::ClientConfig client_config;
    client_config.client_id = i;
    client_config.num_proxies = config_.proxies.size();
    client_config.seed = config_.seed;
    client_config.invert_answers = config_.invert_answers;
    clients_.push_back(std::make_unique<client::Client>(client_config));
  }
}

FleetDriver::~FleetDriver() = default;

core::ExecutionParams FleetDriver::SubmitQuery(
    const core::Query& query, const core::ExecutionParams& params) {
  params.Validate();
  if (!query.VerifySignature()) {
    throw std::invalid_argument("FleetDriver: query signature invalid");
  }
  if (active_.count(query.query_id) != 0) {
    throw std::invalid_argument("FleetDriver: query id already submitted");
  }
  const core::BudgetAdmission admission =
      budget_manager_.Admit(query.query_id, params);
  try {
    const std::string qid = std::to_string(query.query_id);
    const size_t num_proxies = proxy_buses_.size();
    const std::vector<uint8_t> announcement = core::SerializeAnnouncement(
        core::QueryAnnouncement{query, admission.params});

    ActiveQuery active;
    active.params = admission.params;
    active.lane_in_topics.reserve(num_proxies);
    std::vector<uint8_t> qid_payload;
    transport::PutU64(query.query_id, qid_payload);
    for (size_t j = 0; j < num_proxies; ++j) {
      const std::string prefix = "proxy" + std::to_string(j);
      proxy_buses_[j]->Control("ensure_lane", qid_payload);
      active.lane_in_topics.push_back(prefix + ".q" + qid + ".in");
      // Attach to the daemon-created topics (EnsureTopic validates that
      // both sides agree on the partition count).
      proxy_buses_[j]->EnsureTopic(prefix + ".query.in", 1);
      const broker::ProduceView view{/*key=*/0, announcement,
                                     /*timestamp_ms=*/0};
      proxy_buses_[j]->Produce(prefix + ".query.in",
                               std::span<const broker::ProduceView>(&view, 1));
      proxy_buses_[j]->Control("forward_queries", {});
    }
    // Deliver the forwarded announcement to each proxy's client cohort —
    // client i subscribes via proxy i mod n, like the in-process system.
    for (size_t j = 0; j < num_proxies; ++j) {
      transport::BusConsumer consumer(*proxy_buses_[j],
                                      "proxy" + std::to_string(j) +
                                          ".query.out");
      std::vector<broker::RecordView> records;
      while (consumer.PollInto(64, records) != 0) {
      }
      if (records.empty()) {
        throw std::logic_error("FleetDriver: query distribution failed");
      }
      const broker::RecordView& last = records.back();
      const std::vector<uint8_t> bytes(last.payload,
                                       last.payload + last.payload_len);
      for (size_t i = j; i < clients_.size(); i += num_proxies) {
        clients_[i]->OnAnnouncement(bytes);
      }
    }
    aggregator_bus_->Control("register_query", announcement);
    active_.emplace(query.query_id, std::move(active));
  } catch (...) {
    budget_manager_.Release(query.query_id);
    throw;
  }
  return admission.params;
}

FleetEpochStats FleetDriver::RunEpoch(int64_t now_ms) {
  if (active_.empty()) {
    throw std::logic_error("FleetDriver::RunEpoch: no query submitted");
  }
  const size_t num_clients = clients_.size();
  const size_t num_proxies = proxy_buses_.size();
  const size_t num_queries = active_.size();
  std::vector<const ActiveQuery*> lanes;
  lanes.reserve(num_queries);
  for (const auto& [qid, active] : active_) {
    lanes.push_back(&active);
  }

  // Answer sequentially in client-id order: the canonical share order both
  // in-process pipeline modes reduce to (DESIGN.md §6j). All share records
  // live in the epoch arena until every lane batch has been produced.
  FleetEpochStats stats;
  std::vector<std::vector<std::vector<broker::ProduceView>>> batches(
      num_queries);
  for (auto& per_proxy : batches) {
    per_proxy.resize(num_proxies);
  }
  std::vector<crypto::ShareView> views(num_queries * num_proxies);
  std::vector<uint64_t> answered_qids;
  for (size_t i = 0; i < num_clients; ++i) {
    clients_[i]->AnswerSubscribedInto(now_ms, arena_, views, answered_qids);
    size_t k = 0;
    auto it = active_.begin();
    for (const uint64_t qid : answered_qids) {
      while (it->first != qid) {
        ++it;
        ++k;
      }
      ++stats.participants;
      for (size_t j = 0; j < num_proxies; ++j) {
        const crypto::ShareView& view = views[k * num_proxies + j];
        batches[k][j].push_back(
            broker::ProduceView{view.message_id, view.bytes(), now_ms});
      }
    }
  }
  stats.shares_sent =
      static_cast<uint64_t>(stats.participants) * num_proxies;

  // Produce each (query, proxy) lane's shares in answer order, chunked to
  // bound frame size — chunking splits a batch, never reorders it.
  const size_t chunk = std::max<size_t>(1, config_.produce_chunk_records);
  for (size_t k = 0; k < num_queries; ++k) {
    for (size_t j = 0; j < num_proxies; ++j) {
      const std::vector<broker::ProduceView>& batch = batches[k][j];
      const std::string& topic = lanes[k]->lane_in_topics[j];
      for (size_t begin = 0; begin < batch.size(); begin += chunk) {
        const size_t len = std::min(chunk, batch.size() - begin);
        proxy_buses_[j]->Produce(
            topic,
            std::span<const broker::ProduceView>(&batch[begin], len));
      }
    }
  }
  arena_.Reset();

  // Chaos seams: every produce above is acked (and, on a durable fleet with
  // fsync=always, on disk) before after_produce_hook fires, and everything
  // below is an idempotent RPC.
  if (config_.after_produce_hook) {
    config_.after_produce_hook();
  }

  for (size_t j = 0; j < num_proxies; ++j) {
    const std::vector<uint8_t> reply =
        ControlWithRetry(*proxy_buses_[j], "forward_lanes", {});
    transport::WireReader reader(reply);
    stats.shares_forwarded += reader.TakeU64();
  }

  if (config_.before_drain_hook) {
    config_.before_drain_hook();
  }

  {
    const std::vector<uint8_t> reply =
        ControlWithRetry(*aggregator_bus_, "drain", {});
    transport::WireReader reader(reply);
    stats.shares_consumed = reader.TakeU64();
  }
  return stats;
}

std::vector<uint8_t> FleetDriver::ControlWithRetry(
    transport::TcpBusClient& bus, const std::string& verb,
    std::span<const uint8_t> payload) {
  for (size_t attempt = 0;; ++attempt) {
    try {
      return bus.Control(verb, payload);
    } catch (const std::exception&) {
      if (attempt >= config_.control_retries) {
        throw;
      }
      // The client re-dials on the next call (with its own backoff window),
      // so the retry itself is the recovery wait.
    }
  }
}

uint64_t FleetDriver::AdvanceRetention() {
  // source_offsets response: u32 n, n x {string topic, u32 k, k x u64}.
  const std::vector<uint8_t> reply =
      ControlWithRetry(*aggregator_bus_, "source_offsets", {});
  transport::WireReader reader(reply);
  // Regroup by hosting proxy: topic "proxy<j>.q<QID>.out" belongs to
  // proxy_buses_[j]. Payload format to each proxy mirrors the response.
  std::vector<std::vector<uint8_t>> payloads(proxy_buses_.size());
  std::vector<uint32_t> counts(proxy_buses_.size(), 0);
  const uint32_t num_topics = reader.TakeU32();
  for (uint32_t i = 0; i < num_topics; ++i) {
    const std::string topic = reader.TakeString();
    const uint32_t num_parts = reader.TakeU32();
    size_t owner = proxy_buses_.size();
    for (size_t j = 0; j < proxy_buses_.size(); ++j) {
      const std::string prefix = "proxy" + std::to_string(j) + ".";
      if (topic.compare(0, prefix.size(), prefix) == 0) {
        owner = j;
        break;
      }
    }
    if (owner == proxy_buses_.size()) {
      throw std::logic_error("FleetDriver::AdvanceRetention: unroutable " +
                             topic);
    }
    ++counts[owner];
    transport::PutString(topic, payloads[owner]);
    transport::PutU32(num_parts, payloads[owner]);
    for (uint32_t p = 0; p < num_parts; ++p) {
      transport::PutU64(reader.TakeU64(), payloads[owner]);
    }
  }
  uint64_t deleted = 0;
  for (size_t j = 0; j < proxy_buses_.size(); ++j) {
    std::vector<uint8_t> payload;
    transport::PutU32(counts[j], payload);
    payload.insert(payload.end(), payloads[j].begin(), payloads[j].end());
    const std::vector<uint8_t> proxy_reply =
        ControlWithRetry(*proxy_buses_[j], "advance_watermark", payload);
    transport::WireReader proxy_reader(proxy_reply);
    deleted += proxy_reader.TakeU64();
  }
  return deleted;
}

std::string FleetDriver::ProxySnapshotText(size_t proxy_index) {
  const std::vector<uint8_t> reply =
      ControlWithRetry(*proxy_buses_.at(proxy_index), "snapshot_offsets", {});
  return std::string(reply.begin(), reply.end());
}

std::string FleetDriver::AggregatorSnapshotText() {
  const std::vector<uint8_t> reply =
      ControlWithRetry(*aggregator_bus_, "snapshot_offsets", {});
  return std::string(reply.begin(), reply.end());
}

void FleetDriver::AdvanceWatermark(int64_t watermark_ms) {
  std::vector<uint8_t> payload;
  transport::PutU64(static_cast<uint64_t>(watermark_ms), payload);
  ControlWithRetry(*aggregator_bus_, "advance_watermark", payload);
}

void FleetDriver::Flush() {
  ControlWithRetry(*aggregator_bus_, "flush", {});
}

std::vector<aggregator::WindowedResult> FleetDriver::TakeResults() {
  return DeserializeResults(
      ControlWithRetry(*aggregator_bus_, "take_results", {}));
}

std::string FleetDriver::ProxyMetricsText(size_t proxy_index) {
  const std::vector<uint8_t> reply =
      proxy_buses_.at(proxy_index)->Control("metrics", {});
  return std::string(reply.begin(), reply.end());
}

std::string FleetDriver::AggregatorMetricsText() {
  const std::vector<uint8_t> reply = aggregator_bus_->Control("metrics", {});
  return std::string(reply.begin(), reply.end());
}

}  // namespace privapprox::deploy
