#include "workload/electricity.h"

#include <algorithm>
#include <cmath>

namespace privapprox::workload {
namespace {

constexpr double kMeanKwh = 1.1;
constexpr double kStdDevKwh = 0.55;
constexpr double kMaxKwh = 3.0;

}  // namespace

ElectricityGenerator::ElectricityGenerator(uint64_t seed) : rng_(seed) {}

double ElectricityGenerator::NextConsumptionKwh() {
  // Truncated normal via rejection into [0, kMaxKwh].
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = kMeanKwh + kStdDevKwh * rng_.NextGaussian();
    if (x >= 0.0 && x <= kMaxKwh) {
      return x;
    }
  }
  return std::clamp(kMeanKwh, 0.0, kMaxKwh);
}

void ElectricityGenerator::PopulateClient(localdb::Database& db,
                                          int64_t from_ms, int64_t to_ms,
                                          int64_t interval_ms) {
  localdb::Table& table = db.HasTable("meter")
                              ? db.GetTable("meter")
                              : db.CreateTable("meter", {"kwh"});
  for (int64_t ts = from_ms; ts < to_ms; ts += interval_ms) {
    // Scale the 30-minute distribution down to one reading per interval so
    // the windowed SUM lands back on the 30-minute distribution.
    const double intervals_per_30min =
        static_cast<double>(30 * 60 * 1000) / static_cast<double>(interval_ms);
    table.Insert(ts,
                 {localdb::Value(NextConsumptionKwh() / intervals_per_30min)});
  }
}

core::Query ElectricityGenerator::MakeUsageQuery(uint64_t query_id,
                                                 int64_t window_ms,
                                                 int64_t slide_ms) {
  return core::QueryBuilder()
      .WithId(query_id)
      .WithAnalyst(2)
      .WithSql("SELECT SUM(kwh) FROM meter")
      .WithAnswerFormat(UsageBuckets())
      .WithFrequencyMs(slide_ms)
      .WithWindowMs(window_ms)
      .WithSlideMs(slide_ms)
      .Build();
}

core::AnswerFormat ElectricityGenerator::UsageBuckets() {
  // 6 buckets of 0.5 kWh over [0, 3).
  return core::AnswerFormat::UniformNumeric(0.0, 3.0, 6);
}

}  // namespace privapprox::workload
