#include "workload/synthetic.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace privapprox::workload {

std::vector<bool> BinaryAnswers(size_t count, double yes_fraction,
                                Xoshiro256& rng) {
  if (yes_fraction < 0.0 || yes_fraction > 1.0) {
    throw std::invalid_argument("BinaryAnswers: yes_fraction in [0,1]");
  }
  const size_t yes =
      static_cast<size_t>(std::llround(static_cast<double>(count) * yes_fraction));
  std::vector<bool> answers(count, false);
  for (size_t i = 0; i < yes && i < count; ++i) {
    answers[i] = true;
  }
  // Fisher-Yates shuffle.
  for (size_t i = count; i > 1; --i) {
    const size_t j = static_cast<size_t>(rng.NextBounded(i));
    const bool tmp = answers[i - 1];
    answers[i - 1] = answers[j];
    answers[j] = tmp;
  }
  return answers;
}

std::vector<BitVector> BucketAnswers(
    size_t count, const std::vector<double>& bucket_probabilities,
    Xoshiro256& rng) {
  if (bucket_probabilities.empty()) {
    throw std::invalid_argument("BucketAnswers: need >= 1 bucket");
  }
  const double total = std::accumulate(bucket_probabilities.begin(),
                                       bucket_probabilities.end(), 0.0);
  if (total <= 0.0) {
    throw std::invalid_argument("BucketAnswers: probabilities sum to 0");
  }
  std::vector<BitVector> answers;
  answers.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const double u = rng.NextDouble() * total;
    double cumulative = 0.0;
    size_t bucket = bucket_probabilities.size() - 1;
    for (size_t b = 0; b < bucket_probabilities.size(); ++b) {
      cumulative += bucket_probabilities[b];
      if (u < cumulative) {
        bucket = b;
        break;
      }
    }
    BitVector answer(bucket_probabilities.size());
    answer.Set(bucket, true);
    answers.push_back(std::move(answer));
  }
  return answers;
}

Histogram ExactCounts(const std::vector<BitVector>& answers,
                      size_t num_buckets) {
  Histogram hist(num_buckets);
  for (const BitVector& answer : answers) {
    for (size_t b = 0; b < answer.size() && b < num_buckets; ++b) {
      if (answer.Get(b)) {
        hist.Add(b);
      }
    }
  }
  return hist;
}

}  // namespace privapprox::workload
