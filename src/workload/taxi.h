// NYC Taxi Ride workload (case study 1, §7).
//
// Stand-in for the DEBS 2015 Grand Challenge dataset: synthetic rides whose
// trip-distance distribution matches the published marginals — the paper's
// utility analysis notes that "the fraction of truthful 'Yes' answers in the
// dataset is 33.57%" for the dominant bucket, which a log-normal with
// median ~1.53 miles reproduces (P[X < 1 mile] ~= 0.336).
//
// The case-study query: "What is the distance distribution of taxi rides in
// New York?" with 11 buckets: [0,1), [1,2), ..., [9,10), [10, +inf) miles.

#ifndef PRIVAPPROX_WORKLOAD_TAXI_H_
#define PRIVAPPROX_WORKLOAD_TAXI_H_

#include <cstdint>

#include "common/rng.h"
#include "core/query.h"
#include "localdb/database.h"

namespace privapprox::workload {

struct TaxiRide {
  double distance_miles = 0.0;
  double fare_usd = 0.0;
  int64_t pickup_ms = 0;
  std::string borough;
};

class TaxiGenerator {
 public:
  explicit TaxiGenerator(uint64_t seed);

  // One synthetic ride picked up in [from_ms, to_ms).
  TaxiRide NextRide(int64_t from_ms, int64_t to_ms);

  // Creates the client-side `rides` table (distance, fare, borough) and
  // fills it with `rides_per_client` rides in the given time range.
  void PopulateClient(localdb::Database& db, size_t rides_per_client,
                      int64_t from_ms, int64_t to_ms);

  // The case-study query over the `rides` table.
  static core::Query MakeDistanceQuery(uint64_t query_id, int64_t window_ms,
                                       int64_t slide_ms);

  // Answer format: 11 distance buckets.
  static core::AnswerFormat DistanceBuckets();

  // Exact bucket probabilities of the generator's distance distribution
  // (closed-form from the log-normal), for ground-truth comparisons.
  static std::vector<double> TrueBucketProbabilities();

 private:
  Xoshiro256 rng_;
};

}  // namespace privapprox::workload

#endif  // PRIVAPPROX_WORKLOAD_TAXI_H_
