#include "workload/taxi.h"

#include <array>
#include <cmath>

namespace privapprox::workload {
namespace {

// Log-normal parameters: sigma = 1.0 and mu chosen so that
// P[X < 1] = Phi(-mu) = 0.3357 -> mu = 0.4247.
constexpr double kMu = 0.4247;
constexpr double kSigma = 1.0;

constexpr std::array<const char*, 5> kBoroughs = {
    "manhattan", "brooklyn", "queens", "bronx", "staten_island"};

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

TaxiGenerator::TaxiGenerator(uint64_t seed) : rng_(seed) {}

TaxiRide TaxiGenerator::NextRide(int64_t from_ms, int64_t to_ms) {
  TaxiRide ride;
  ride.distance_miles = rng_.NextLogNormal(kMu, kSigma);
  // Fare model: $2.50 flag drop + $2.50/mile with noise.
  ride.fare_usd =
      2.5 + 2.5 * ride.distance_miles + 0.5 * rng_.NextGaussian();
  ride.pickup_ms = rng_.NextInRange(from_ms, to_ms - 1);
  ride.borough =
      kBoroughs[static_cast<size_t>(rng_.NextBounded(kBoroughs.size()))];
  return ride;
}

void TaxiGenerator::PopulateClient(localdb::Database& db,
                                   size_t rides_per_client, int64_t from_ms,
                                   int64_t to_ms) {
  localdb::Table& table =
      db.HasTable("rides")
          ? db.GetTable("rides")
          : db.CreateTable("rides", {"distance", "fare", "borough"});
  for (size_t i = 0; i < rides_per_client; ++i) {
    const TaxiRide ride = NextRide(from_ms, to_ms);
    table.Insert(ride.pickup_ms, {localdb::Value(ride.distance_miles),
                                  localdb::Value(ride.fare_usd),
                                  localdb::Value(ride.borough)});
  }
}

core::Query TaxiGenerator::MakeDistanceQuery(uint64_t query_id,
                                             int64_t window_ms,
                                             int64_t slide_ms) {
  return core::QueryBuilder()
      .WithId(query_id)
      .WithAnalyst(1)
      .WithSql("SELECT distance FROM rides")
      .WithAnswerFormat(DistanceBuckets())
      .WithFrequencyMs(slide_ms)
      .WithWindowMs(window_ms)
      .WithSlideMs(slide_ms)
      .Build();
}

core::AnswerFormat TaxiGenerator::DistanceBuckets() {
  // [0,1), [1,2), ..., [9,10), [10, +inf): 11 buckets as in §7.1.
  return core::AnswerFormat::UniformNumeric(0.0, 10.0, 10,
                                            /*with_overflow=*/true);
}

std::vector<double> TaxiGenerator::TrueBucketProbabilities() {
  std::vector<double> probs;
  probs.reserve(11);
  double previous_cdf = 0.0;
  for (int edge = 1; edge <= 10; ++edge) {
    const double cdf =
        NormalCdf((std::log(static_cast<double>(edge)) - kMu) / kSigma);
    probs.push_back(cdf - previous_cdf);
    previous_cdf = cdf;
  }
  probs.push_back(1.0 - previous_cdf);  // overflow bucket
  return probs;
}

}  // namespace privapprox::workload
