// Synthetic answer populations for the microbenchmarks (§6).
//
// The microbenchmarks operate on "10,000 original answers, 60% of which are
// 'Yes' answers" — i.e. a population of single-bit truthful answers with a
// controlled yes-fraction. This generator produces exactly that, plus
// multi-bucket populations with a chosen bucket distribution.

#ifndef PRIVAPPROX_WORKLOAD_SYNTHETIC_H_
#define PRIVAPPROX_WORKLOAD_SYNTHETIC_H_

#include <cstddef>
#include <vector>

#include "common/bitvector.h"
#include "common/histogram.h"
#include "common/rng.h"

namespace privapprox::workload {

// `count` single-bit truthful answers with exactly
// round(count * yes_fraction) "yes" entries, in shuffled order.
std::vector<bool> BinaryAnswers(size_t count, double yes_fraction,
                                Xoshiro256& rng);

// `count` one-hot truthful answers over `bucket_probabilities.size()`
// buckets, bucket chosen i.i.d. from the given distribution (need not sum
// to 1; it is normalized).
std::vector<BitVector> BucketAnswers(
    size_t count, const std::vector<double>& bucket_probabilities,
    Xoshiro256& rng);

// Exact per-bucket counts of a set of answers (the ground truth the
// accuracy-loss metric compares against).
Histogram ExactCounts(const std::vector<BitVector>& answers,
                      size_t num_buckets);

}  // namespace privapprox::workload

#endif  // PRIVAPPROX_WORKLOAD_SYNTHETIC_H_
