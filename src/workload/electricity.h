// Household electricity workload (case study 2, §7).
//
// Stand-in for the "Sample household electricity time of use" dataset: each
// household's meter produces consumption readings; the case-study query
// analyzes "the electricity usage distribution of households over the past
// 30 minutes" with 6 half-kWh buckets: [0, 0.5], (0.5, 1], ..., (2.5, 3].
// (We use half-open [lo, hi) buckets; the boundary measure is zero.)
//
// 30-minute household consumption is modeled as a truncated normal around
// 1.1 kWh — typical time-of-use data: unimodal, right tail clipped by
// physical limits. The answer's 6-bit vector is roughly half the taxi
// query's 11 bits, which is what makes the electricity case study the
// higher-throughput one in Figs 8-9.

#ifndef PRIVAPPROX_WORKLOAD_ELECTRICITY_H_
#define PRIVAPPROX_WORKLOAD_ELECTRICITY_H_

#include <cstdint>

#include "common/rng.h"
#include "core/query.h"
#include "localdb/database.h"

namespace privapprox::workload {

class ElectricityGenerator {
 public:
  explicit ElectricityGenerator(uint64_t seed);

  // One 30-minute consumption reading in kWh.
  double NextConsumptionKwh();

  // Creates the client-side `meter` table (kwh) and inserts one reading per
  // `interval_ms` across [from_ms, to_ms).
  void PopulateClient(localdb::Database& db, int64_t from_ms, int64_t to_ms,
                      int64_t interval_ms);

  // The case-study query: total usage over the sliding window, bucketized.
  static core::Query MakeUsageQuery(uint64_t query_id, int64_t window_ms,
                                    int64_t slide_ms);

  static core::AnswerFormat UsageBuckets();

 private:
  Xoshiro256 rng_;
};

}  // namespace privapprox::workload

#endif  // PRIVAPPROX_WORKLOAD_ELECTRICITY_H_
