// Statistical special functions needed for the error-bound machinery (§3.2.4):
// the t-distribution quantile used in Eq 3 (`t` at the 1 - alpha/2 level with
// U' - 1 degrees of freedom) and the normal quantile used for large-sample
// approximations. Implemented from scratch: regularized incomplete beta via
// Lentz's continued fraction, normal quantile via Acklam's rational
// approximation refined with one Halley step.

#ifndef PRIVAPPROX_STATS_SPECIAL_FUNCTIONS_H_
#define PRIVAPPROX_STATS_SPECIAL_FUNCTIONS_H_

namespace privapprox::stats {

// Regularized incomplete beta function I_x(a, b), for a, b > 0, x in [0, 1].
double RegularizedIncompleteBeta(double a, double b, double x);

// Standard normal CDF.
double NormalCdf(double x);

// Standard normal quantile (inverse CDF), p in (0, 1).
double NormalQuantile(double p);

// Student-t CDF with `df` degrees of freedom.
double StudentTCdf(double t, double df);

// Student-t quantile (inverse CDF), p in (0, 1), df > 0.
// For df >= 1e6 falls back to the normal quantile.
double StudentTQuantile(double p, double df);

// Two-sided critical value t_{1 - alpha/2, df}: the multiplier in Eq 3 for a
// (1 - alpha) confidence interval.
double StudentTCriticalValue(double confidence_level, double df);

// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0 (series for
// x < a + 1, continued fraction otherwise).
double RegularizedGammaP(double a, double x);

// Chi-square survival function: P[X > x] for df degrees of freedom
// (= 1 - P(df/2, x/2)). Used by the goodness-of-fit tests.
double ChiSquareSurvival(double x, double df);

}  // namespace privapprox::stats

#endif  // PRIVAPPROX_STATS_SPECIAL_FUNCTIONS_H_
