// Hypothesis tests used to validate distributional claims in the paper's
// analysis: the two-sample Kolmogorov-Smirnov test (does sampling-then-
// randomizing produce the same distribution as randomizing-then-sampling,
// §4's commutativity) and the chi-square goodness-of-fit test (do generated
// workloads match their target bucket distributions).

#ifndef PRIVAPPROX_STATS_HYPOTHESIS_H_
#define PRIVAPPROX_STATS_HYPOTHESIS_H_

#include <vector>

namespace privapprox::stats {

struct TestResult {
  double statistic = 0.0;
  double p_value = 1.0;
};

// Two-sample KS test. Inputs need not be sorted (copies are sorted
// internally). p-value via the asymptotic Kolmogorov distribution
// Q(lambda) = 2 sum (-1)^{j-1} e^{-2 j^2 lambda^2}.
TestResult KolmogorovSmirnovTwoSample(std::vector<double> a,
                                      std::vector<double> b);

// Chi-square goodness of fit of observed counts against expected counts
// (same length; expected entries must be > 0). `df_reduction` degrees of
// freedom are subtracted beyond the standard k-1 (e.g. estimated
// parameters).
TestResult ChiSquareGoodnessOfFit(const std::vector<double>& observed,
                                  const std::vector<double>& expected,
                                  int df_reduction = 0);

}  // namespace privapprox::stats

#endif  // PRIVAPPROX_STATS_HYPOTHESIS_H_
