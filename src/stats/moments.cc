#include "stats/moments.h"

#include <cmath>

namespace privapprox::stats {

void RunningMoments::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningMoments::Merge(const RunningMoments& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
}

double RunningMoments::SampleVariance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningMoments::PopulationVariance() const {
  if (count_ < 1) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningMoments::SampleStdDev() const {
  return std::sqrt(SampleVariance());
}

RunningMoments MomentsOf(std::span<const double> values) {
  RunningMoments moments;
  for (double v : values) {
    moments.Add(v);
  }
  return moments;
}

}  // namespace privapprox::stats
