// Single-pass running moments (Welford) used to compute the sample variance
// sigma^2 in the SRS variance estimator (Eq 4) and by the window aggregator.

#ifndef PRIVAPPROX_STATS_MOMENTS_H_
#define PRIVAPPROX_STATS_MOMENTS_H_

#include <cstddef>
#include <span>

namespace privapprox::stats {

class RunningMoments {
 public:
  void Add(double x);

  // Merges another accumulator (Chan's parallel combination), so per-worker
  // partial moments can be reduced.
  void Merge(const RunningMoments& other);

  size_t count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }

  // Unbiased sample variance (n - 1 denominator); 0 for n < 2.
  double SampleVariance() const;

  // Population variance (n denominator); 0 for n < 1.
  double PopulationVariance() const;

  double SampleStdDev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Convenience: moments of a whole span.
RunningMoments MomentsOf(std::span<const double> values);

}  // namespace privapprox::stats

#endif  // PRIVAPPROX_STATS_MOMENTS_H_
