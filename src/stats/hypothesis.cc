#include "stats/hypothesis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special_functions.h"

namespace privapprox::stats {
namespace {

// Asymptotic Kolmogorov survival function Q(lambda).
double KolmogorovQ(double lambda) {
  if (lambda < 1e-10) {
    return 1.0;
  }
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) {
      break;
    }
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace

TestResult KolmogorovSmirnovTwoSample(std::vector<double> a,
                                      std::vector<double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("KS test: empty sample");
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  size_t ia = 0, ib = 0;
  double d_max = 0.0;
  while (ia < a.size() && ib < b.size()) {
    const double x = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] <= x) {
      ++ia;
    }
    while (ib < b.size() && b[ib] <= x) {
      ++ib;
    }
    d_max = std::max(d_max, std::fabs(static_cast<double>(ia) / na -
                                      static_cast<double>(ib) / nb));
  }
  const double ne = na * nb / (na + nb);
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d_max;
  return TestResult{d_max, KolmogorovQ(lambda)};
}

TestResult ChiSquareGoodnessOfFit(const std::vector<double>& observed,
                                  const std::vector<double>& expected,
                                  int df_reduction) {
  if (observed.size() != expected.size() || observed.empty()) {
    throw std::invalid_argument("chi-square: size mismatch or empty");
  }
  double statistic = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) {
      throw std::invalid_argument("chi-square: expected counts must be > 0");
    }
    const double diff = observed[i] - expected[i];
    statistic += diff * diff / expected[i];
  }
  const double df =
      static_cast<double>(observed.size()) - 1.0 - df_reduction;
  if (df <= 0.0) {
    throw std::invalid_argument("chi-square: non-positive degrees of freedom");
  }
  return TestResult{statistic, ChiSquareSurvival(statistic, df)};
}

}  // namespace privapprox::stats
