// Stratified sampling estimator — the tech-report extension of §3.2.1 for
// client populations whose data streams follow different distributions.
//
// The population is partitioned into H strata of sizes U_h; each stratum is
// sampled independently (SRS within stratum). The stratified estimator is
//     tau_hat = sum_h (U_h / U'_h) * sum(a_hi)
// with variance the sum of per-stratum SRS variances. This dominates plain
// SRS whenever strata means differ (ablation `bench_ablation_stratified`).

#ifndef PRIVAPPROX_STATS_STRATIFIED_H_
#define PRIVAPPROX_STATS_STRATIFIED_H_

#include <cstddef>
#include <vector>

#include "stats/srs.h"

namespace privapprox::stats {

class StratifiedSumEstimator {
 public:
  // `stratum_sizes[h]` is U_h, the total client population of stratum h.
  explicit StratifiedSumEstimator(std::vector<size_t> stratum_sizes,
                                  double confidence_level = 0.95);

  size_t num_strata() const { return strata_.size(); }

  // Adds one sampled observation belonging to stratum `h`.
  void Add(size_t stratum, double value);

  // Sum over all strata with a combined confidence bound. The degrees of
  // freedom use the conservative min over strata (Satterthwaite would be
  // tighter; min-df never understates the error).
  Estimate EstimateSum() const;

  // Per-stratum sums, for inspecting the decomposition.
  std::vector<Estimate> PerStratumEstimates() const;

 private:
  double confidence_level_;
  std::vector<SrsSumEstimator> strata_;
};

// Proportional allocation: splits a total sample budget n across strata in
// proportion to stratum sizes, each at least `min_per_stratum` (clamped to
// stratum size). Returns per-stratum sample counts.
std::vector<size_t> ProportionalAllocation(
    const std::vector<size_t>& stratum_sizes, size_t total_sample,
    size_t min_per_stratum = 2);

}  // namespace privapprox::stats

#endif  // PRIVAPPROX_STATS_STRATIFIED_H_
