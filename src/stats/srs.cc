#include "stats/srs.h"

#include <cmath>
#include <stdexcept>

#include "stats/special_functions.h"

namespace privapprox::stats {

double Estimate::RelativeError() const {
  if (value == 0.0) {
    return 0.0;
  }
  return error / std::fabs(value);
}

SrsSumEstimator::SrsSumEstimator(size_t population_size,
                                 double confidence_level)
    : population_size_(population_size), confidence_level_(confidence_level) {
  if (population_size == 0) {
    throw std::invalid_argument("SrsSumEstimator: population_size must be > 0");
  }
  if (confidence_level <= 0.0 || confidence_level >= 1.0) {
    throw std::invalid_argument(
        "SrsSumEstimator: confidence_level must be in (0, 1)");
  }
}

void SrsSumEstimator::Add(double value) {
  if (moments_.count() >= population_size_) {
    throw std::logic_error("SrsSumEstimator: sample larger than population");
  }
  moments_.Add(value);
}

void SrsSumEstimator::Merge(const SrsSumEstimator& other) {
  if (other.population_size_ != population_size_) {
    throw std::invalid_argument("SrsSumEstimator::Merge: population mismatch");
  }
  moments_.Merge(other.moments_);
  if (moments_.count() > population_size_) {
    throw std::logic_error("SrsSumEstimator: merged sample exceeds population");
  }
}

Estimate SrsSumEstimator::EstimateSum() const {
  Estimate est;
  est.confidence = confidence_level_;
  est.sample_size = moments_.count();
  const double u = static_cast<double>(population_size_);
  const double u_prime = static_cast<double>(moments_.count());
  if (moments_.count() == 0) {
    return est;
  }
  // Eq 2: tau_hat = U/U' * sum(a_i) = U * mean.
  est.value = u * moments_.Mean();
  if (moments_.count() < 2) {
    return est;
  }
  // Eq 4 with finite-population correction.
  const double sigma2 = moments_.SampleVariance();
  const double variance = (u * u / u_prime) * sigma2 * (u - u_prime) / u;
  // Eq 3.
  const double t = StudentTCriticalValue(confidence_level_, u_prime - 1.0);
  est.error = t * std::sqrt(std::max(0.0, variance));
  return est;
}

Estimate SrsSumEstimator::EstimateMean() const {
  Estimate est = EstimateSum();
  const double u = static_cast<double>(population_size_);
  est.value /= u;
  est.error /= u;
  return est;
}

Estimate EstimatePopulationSum(std::span<const double> sample,
                               size_t population_size,
                               double confidence_level) {
  SrsSumEstimator estimator(population_size, confidence_level);
  for (double v : sample) {
    estimator.Add(v);
  }
  return estimator.EstimateSum();
}

}  // namespace privapprox::stats
