// Simple Random Sampling estimator (paper §3.2.1, Eqs 2-4).
//
// Given a population of U clients of which a sample of U' answered, the
// population sum is estimated as
//     tau_hat = (U / U') * sum(a_i)                               (Eq 2)
// with variance
//     Var(tau_hat) = U^2 / U' * sigma^2 * (U - U') / U            (Eq 4)
// (sigma^2 the sample variance, (U - U')/U the finite-population
// correction) and a confidence bound
//     error = t_{1-alpha/2, U'-1} * sqrt(Var(tau_hat))            (Eq 3).

#ifndef PRIVAPPROX_STATS_SRS_H_
#define PRIVAPPROX_STATS_SRS_H_

#include <cstddef>
#include <span>

#include "stats/moments.h"

namespace privapprox::stats {

// An estimate with a symmetric confidence bound: value +/- error.
struct Estimate {
  double value = 0.0;
  double error = 0.0;         // margin at the stated confidence level
  double confidence = 0.95;   // confidence level of `error`
  size_t sample_size = 0;

  double Lower() const { return value - error; }
  double Upper() const { return value + error; }
  // Relative error margin (error / |value|), 0 when value == 0.
  double RelativeError() const;
};

// Streaming estimator for a population sum from an SRS sample.
class SrsSumEstimator {
 public:
  // `population_size` is U; `confidence_level` governs the t critical value.
  SrsSumEstimator(size_t population_size, double confidence_level = 0.95);

  // Adds one sampled observation a_i.
  void Add(double value);

  // Merges a partial estimator over the same population (parallel workers).
  void Merge(const SrsSumEstimator& other);

  size_t sample_size() const { return moments_.count(); }
  size_t population_size() const { return population_size_; }

  // Current estimate of the population sum with its confidence bound.
  // With fewer than 2 samples the error is reported as 0 (undefined
  // variance); callers should treat tiny samples as low-confidence.
  Estimate EstimateSum() const;

  // Current estimate of the population mean.
  Estimate EstimateMean() const;

 private:
  size_t population_size_;
  double confidence_level_;
  RunningMoments moments_;
};

// One-shot helper over a materialized sample.
Estimate EstimatePopulationSum(std::span<const double> sample,
                               size_t population_size,
                               double confidence_level = 0.95);

}  // namespace privapprox::stats

#endif  // PRIVAPPROX_STATS_SRS_H_
