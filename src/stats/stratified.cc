#include "stats/stratified.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special_functions.h"

namespace privapprox::stats {

StratifiedSumEstimator::StratifiedSumEstimator(
    std::vector<size_t> stratum_sizes, double confidence_level)
    : confidence_level_(confidence_level) {
  if (stratum_sizes.empty()) {
    throw std::invalid_argument("StratifiedSumEstimator: no strata");
  }
  strata_.reserve(stratum_sizes.size());
  for (size_t size : stratum_sizes) {
    strata_.emplace_back(size, confidence_level);
  }
}

void StratifiedSumEstimator::Add(size_t stratum, double value) {
  if (stratum >= strata_.size()) {
    throw std::out_of_range("StratifiedSumEstimator::Add: bad stratum");
  }
  strata_[stratum].Add(value);
}

Estimate StratifiedSumEstimator::EstimateSum() const {
  Estimate combined;
  combined.confidence = confidence_level_;
  double variance_sum = 0.0;
  double min_df = 1e18;
  bool any_variance = false;
  for (const auto& stratum : strata_) {
    const Estimate est = stratum.EstimateSum();
    combined.value += est.value;
    combined.sample_size += est.sample_size;
    if (est.sample_size >= 2) {
      // Recover the stratum variance from its margin: error = t * sqrt(var).
      const double t = StudentTCriticalValue(
          confidence_level_, static_cast<double>(est.sample_size) - 1.0);
      const double sd = est.error / t;
      variance_sum += sd * sd;
      min_df = std::min(min_df, static_cast<double>(est.sample_size) - 1.0);
      any_variance = true;
    }
  }
  if (any_variance) {
    const double t = StudentTCriticalValue(confidence_level_, min_df);
    combined.error = t * std::sqrt(variance_sum);
  }
  return combined;
}

std::vector<Estimate> StratifiedSumEstimator::PerStratumEstimates() const {
  std::vector<Estimate> estimates;
  estimates.reserve(strata_.size());
  for (const auto& stratum : strata_) {
    estimates.push_back(stratum.EstimateSum());
  }
  return estimates;
}

std::vector<size_t> ProportionalAllocation(
    const std::vector<size_t>& stratum_sizes, size_t total_sample,
    size_t min_per_stratum) {
  size_t population = 0;
  for (size_t size : stratum_sizes) {
    population += size;
  }
  std::vector<size_t> allocation(stratum_sizes.size(), 0);
  if (population == 0) {
    return allocation;
  }
  for (size_t h = 0; h < stratum_sizes.size(); ++h) {
    const double share = static_cast<double>(stratum_sizes[h]) /
                         static_cast<double>(population);
    size_t n_h = static_cast<size_t>(
        std::llround(share * static_cast<double>(total_sample)));
    n_h = std::max(n_h, min_per_stratum);
    allocation[h] = std::min(n_h, stratum_sizes[h]);
  }
  return allocation;
}

}  // namespace privapprox::stats
