#include "stats/special_functions.h"

#include <cmath>
#include <stdexcept>

namespace privapprox::stats {
namespace {

// Continued-fraction evaluation of the incomplete beta function
// (Lentz's method, as in Numerical Recipes betacf).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEps = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) {
    d = kFpMin;
  }
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) {
      d = kFpMin;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) {
      c = kFpMin;
    }
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) {
      d = kFpMin;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) {
      c = kFpMin;
    }
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) {
      break;
    }
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (a <= 0.0 || b <= 0.0) {
    throw std::invalid_argument("RegularizedIncompleteBeta: a, b must be > 0");
  }
  if (x <= 0.0) {
    return 0.0;
  }
  if (x >= 1.0) {
    return 1.0;
  }
  const double ln_beta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                         a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_beta);
  // Use the continued fraction directly for x < (a+1)/(a+b+2), else use the
  // symmetry relation for faster convergence.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("NormalQuantile: p must be in (0, 1)");
  }
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step against the true CDF.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double StudentTCdf(double t, double df) {
  if (df <= 0.0) {
    throw std::invalid_argument("StudentTCdf: df must be > 0");
  }
  const double x = df / (df + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double StudentTQuantile(double p, double df) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("StudentTQuantile: p must be in (0, 1)");
  }
  if (df <= 0.0) {
    throw std::invalid_argument("StudentTQuantile: df must be > 0");
  }
  if (df >= 1e6) {
    return NormalQuantile(p);
  }
  if (p == 0.5) {
    return 0.0;
  }
  // Start from the normal quantile with the Cornish-Fisher-style expansion,
  // then polish with Newton iterations on the exact CDF.
  const double z = NormalQuantile(p);
  const double g1 = (z * z * z + z) / 4.0;
  const double g2 = (5.0 * std::pow(z, 5) + 16.0 * z * z * z + 3.0 * z) / 96.0;
  double t = z + g1 / df + g2 / (df * df);
  for (int iter = 0; iter < 50; ++iter) {
    const double cdf = StudentTCdf(t, df);
    // Student-t pdf at t.
    const double ln_pdf = std::lgamma((df + 1.0) / 2.0) -
                          std::lgamma(df / 2.0) -
                          0.5 * std::log(df * M_PI) -
                          (df + 1.0) / 2.0 * std::log1p(t * t / df);
    const double pdf = std::exp(ln_pdf);
    if (pdf <= 0.0) {
      break;
    }
    const double step = (cdf - p) / pdf;
    t -= step;
    if (std::fabs(step) < 1e-12 * (1.0 + std::fabs(t))) {
      break;
    }
  }
  return t;
}

double RegularizedGammaP(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw std::invalid_argument("RegularizedGammaP: need a > 0, x >= 0");
  }
  if (x == 0.0) {
    return 0.0;
  }
  const double ln_prefix = a * std::log(x) - x - std::lgamma(a);
  if (x < a + 1.0) {
    // Series: P(a,x) = e^{-x} x^a / Gamma(a) * sum x^n / (a)_{n+1}.
    double term = 1.0 / a;
    double sum = term;
    for (int n = 1; n < 500; ++n) {
      term *= x / (a + n);
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-15) {
        break;
      }
    }
    return sum * std::exp(ln_prefix);
  }
  // Continued fraction for Q(a,x) (Lentz), then P = 1 - Q.
  constexpr double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) {
      d = kFpMin;
    }
    c = b + an / c;
    if (std::fabs(c) < kFpMin) {
      c = kFpMin;
    }
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) {
      break;
    }
  }
  return 1.0 - std::exp(ln_prefix) * h;
}

double ChiSquareSurvival(double x, double df) {
  if (df <= 0.0) {
    throw std::invalid_argument("ChiSquareSurvival: df must be > 0");
  }
  if (x <= 0.0) {
    return 1.0;
  }
  return 1.0 - RegularizedGammaP(df / 2.0, x / 2.0);
}

double StudentTCriticalValue(double confidence_level, double df) {
  if (confidence_level <= 0.0 || confidence_level >= 1.0) {
    throw std::invalid_argument(
        "StudentTCriticalValue: confidence_level must be in (0, 1)");
  }
  const double alpha = 1.0 - confidence_level;
  return StudentTQuantile(1.0 - alpha / 2.0, df);
}

}  // namespace privapprox::stats
