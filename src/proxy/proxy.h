// The proxy runtime (paper §3.2.3, §5).
//
// A PrivApprox proxy does exactly one thing on the answer path: transmit
// opaque shares from clients to the aggregator. There is no noise addition,
// no answer intersection, no shuffling and — crucially — no synchronization
// with the other proxies (contrast: baseline::SplitX). Forward() moves
// pending records from inbound to outbound topics, which is the operation
// Fig 5b / Fig 8a measure.
//
// Multi-query: share traffic runs over per-(query, proxy) *lanes*. A lane is
// an inbound/outbound topic pair named "<prefix>.q<QID>.in" / ".out", so a
// record's topic implies its query — batches stay query-pure end to end and
// the hot path never parses a QID out of a payload. The legacy QID-less
// topics ("<prefix>.in"/".out") and their Receive/Forward entry points
// remain as the single-query compatibility surface for tests and simple
// deployments; the system runtime itself only speaks lanes.
//
// Transport: the proxy speaks transport::MessageBus, never a broker
// directly. In process that is an InProcessBus over the shared broker; in a
// proxy daemon the same code runs against the daemon's local broker while
// remote peers reach the topics over TCP. The Broker& constructor is the
// in-process convenience: it owns an InProcessBus internally so existing
// call sites keep working.
//
// API shape: span-first. Batched entries take spans of non-owning views
// (arena- or slab-backed) and decode produces spans into broker slab
// storage; the only owning calls are the single-record adapters
// (Receive(share, ts), DecodeShare) kept for tests and simple clients.

#ifndef PRIVAPPROX_PROXY_PROXY_H_
#define PRIVAPPROX_PROXY_PROXY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "common/thread_pool.h"
#include "crypto/message.h"
#include "metrics/metrics.h"
#include "transport/inproc_bus.h"
#include "transport/message_bus.h"

namespace privapprox::proxy {

struct ProxyConfig {
  size_t proxy_index = 0;
  size_t num_partitions = 4;  // Kafka brokers per proxy in the paper's setup
  // Topic naming. Empty prefix = "proxy<index>". A standby proxy (fault
  // failover target) uses its own prefix for the inbound/query topics while
  // out_topic overrides the outbound to its primary's — shares delivered
  // via failover land in the same stream the aggregator already joins, so
  // the n-source join is untouched.
  std::string topic_prefix;
  std::string out_topic;  // empty = "<prefix>.out"
  // Lane outbound naming: lane out topics are "<out_prefix>.q<QID>.out",
  // empty = own prefix. A standby sets this to its primary's prefix so
  // failover shares join the primary's per-query streams.
  std::string out_prefix;
  // Optional instruments, not owned (null = uninstrumented). The system
  // wires these to its registry's per-proxy families; the Counters are the
  // source of truth behind EpochStats.shares_forwarded.
  metrics::Counter* received_total = nullptr;   // records accepted inbound
  metrics::Counter* forwarded_total = nullptr;  // records moved in -> out
  metrics::Histogram* forward_ns = nullptr;     // latency per forward call
};

class Proxy {
 public:
  // The bus must outlive the proxy.
  Proxy(ProxyConfig config, transport::MessageBus& bus);
  // In-process convenience: wraps `broker` in an internally owned
  // InProcessBus.
  Proxy(ProxyConfig config, broker::Broker& broker);

  size_t index() const { return config_.proxy_index; }
  const std::string& in_topic() const { return in_topic_; }
  const std::string& out_topic() const { return out_topic_; }
  const std::string& query_in_topic() const { return query_in_topic_; }
  const std::string& query_out_topic() const { return query_out_topic_; }

  // Creates the per-query lane (topics + consumer) for `query_id` if it
  // does not exist yet. Topics are EnsureTopic'd so a standby whose lane
  // outbound is its primary's existing topic attaches rather than clashes.
  // Called by the system at query submission for every proxy and standby.
  void EnsureLane(uint64_t query_id);
  bool HasLane(uint64_t query_id) const;
  size_t num_lanes() const { return lanes_.size(); }
  std::vector<uint64_t> lane_ids() const;  // ascending
  const std::string& lane_in_topic(uint64_t query_id) const;
  const std::string& lane_out_topic(uint64_t query_id) const;

  // Crash-recovery repositioning (called once by a restarted proxy daemon
  // after its broker replayed the durable topics, never in steady state):
  // seeks every consumer — legacy, query, and per-lane — to its outbound
  // topic's end offset. Valid because a forwarded record keeps its key, the
  // in/out topics share a partition count, and forwarding preserves
  // per-partition order: out partition p holds exactly the records already
  // forwarded from in partition p, so out-end(p) is the count consumed from
  // in-p. Records produced inbound but not yet forwarded before the crash
  // remain pending and go out on the next Forward*/ReceiveAndForwardShard.
  void SyncConsumersToOutbound();

  // Per-partition committed offsets of one lane's inbound consumer — the
  // retention low-watermark for that lane's inbound topic (everything below
  // has been forwarded).
  std::vector<uint64_t> LaneInOffsets(uint64_t query_id) const;

  // Client-facing entry: enqueue a batch of pre-encoded shares (keyed by
  // MID) in one produce call. The views (typically arena-backed ShareView
  // records, in client-id order so topic contents stay byte-identical to
  // per-record produce calls) only need to stay valid for the duration of
  // the call — the topic copies each payload once into its slab.
  // The QID-less overload feeds the legacy single-query topic; the QID
  // overload feeds that query's lane (which must exist).
  void Receive(std::span<const broker::ProduceView> records);
  void Receive(uint64_t query_id, std::span<const broker::ProduceView> records);

  // Owning single-record adapter: encodes and enqueues one share.
  void Receive(const crypto::MessageShare& share, int64_t timestamp_ms);

  // Transmits all pending inbound records to the outbound topic. Returns the
  // number of records forwarded. Forward() serves the legacy topic pair;
  // ForwardLanes() drains every lane in ascending-QID order.
  uint64_t Forward();
  uint64_t ForwardLanes();

  // Streaming-mode entry (system/system.cc): appends one shard batch to the
  // inbound topic, immediately forwards everything pending (the batch plus
  // any records produced out of band), and returns the number of records
  // forwarded per *outbound* partition. The streaming aggregator consumes
  // exactly these counts (transport::BusConsumer::PollExactInto), which is
  // what makes the downstream read deterministic while later shards are
  // still in flight. Must be called from a single thread per proxy — the
  // proxy stage owns this proxy's consumer offsets. The inbound -> outbound
  // hop runs over slab-backed views with reused member scratch, so a
  // warmed-up proxy forwards without heap allocation. The QID overload runs
  // the same hop over that query's lane.
  std::vector<uint32_t> ReceiveAndForwardShard(
      std::span<const broker::ProduceView> records);
  std::vector<uint32_t> ReceiveAndForwardShard(
      uint64_t query_id, std::span<const broker::ProduceView> records);

  // Query distribution (§3.1, submission phase): the aggregator publishes
  // serialized query announcements into the proxy's query inbound topic;
  // ForwardQueries moves them to the client-facing outbound topic. Proxies
  // treat announcements as opaque bytes, exactly like answer shares.
  void AnnounceQuery(const std::vector<uint8_t>& announcement,
                     int64_t timestamp_ms);
  uint64_t ForwardQueries();

  // Parallel variant used by the scalability bench: forwarding fans out over
  // the pool in record batches.
  uint64_t ForwardParallel(ThreadPool& pool);

  // Serialization helpers shared with the aggregator side. DecodeShare is
  // the owning single-record adapter: it parses the 8-byte MID header and
  // copies the remaining bytes into the share's payload.
  static std::vector<uint8_t> EncodeShare(const crypto::MessageShare& share);
  static crypto::MessageShare DecodeShare(std::span<const uint8_t> bytes);

  // Span-first batch decode, shared by the aggregator's parallel drain and
  // streaming shard consumption so malformed accounting stays in one place.
  // A decoded share's payload is a span into the broker's slab storage
  // (valid for the topic's lifetime), so decoding is just header parsing —
  // no per-share vector. Records shorter than the 8-byte MID header count
  // as malformed.
  struct DecodedShare {
    uint64_t message_id = 0;
    std::span<const uint8_t> payload;
    int64_t timestamp_ms = 0;
  };
  struct DecodedShares {
    std::vector<DecodedShare> shares;
    uint64_t malformed = 0;

    void Clear() {
      shares.clear();
      malformed = 0;
    }
  };
  // Decodes slab-backed record views and appends into `out`.
  static void DecodeShares(std::span<const broker::RecordView> records,
                           DecodedShares& out);

  uint64_t forwarded() const { return forwarded_; }

 private:
  // One per-query topic pair plus the consumer that owns the inbound
  // offsets for this proxy.
  struct Lane {
    std::string in_topic;
    std::string out_topic;
    std::unique_ptr<transport::BusConsumer> consumer;
  };

  // Drains everything pending on `consumer` to `out_topic` over
  // slab-backed views (no payload copies besides the one into the outbound
  // slab). If `counts` is non-null it accumulates the forwarded records
  // per outbound partition. Returns records forwarded.
  uint64_t ForwardPendingViews(transport::BusConsumer& consumer,
                               const std::string& out_topic,
                               std::vector<uint32_t>* counts);
  const Lane& GetLane(uint64_t query_id, const char* caller) const;
  Lane& GetLane(uint64_t query_id, const char* caller);
  void NoteReceived(uint64_t n);
  void NoteForwarded(uint64_t n);

  void Init();

  ProxyConfig config_;
  // Set only by the Broker& convenience constructor; declared before bus_
  // so the pointer below can bind to it.
  std::unique_ptr<transport::InProcessBus> owned_bus_;
  transport::MessageBus* bus_ = nullptr;  // never null after construction
  std::string prefix_;
  std::string out_prefix_;
  std::string in_topic_;
  std::string out_topic_;
  std::string query_in_topic_;
  std::string query_out_topic_;
  std::unique_ptr<transport::BusConsumer> consumer_;
  std::unique_ptr<transport::BusConsumer> query_consumer_;
  std::map<uint64_t, Lane> lanes_;  // QID -> lane, ascending
  uint64_t forwarded_ = 0;
  // Forwarding scratch, reused across calls so steady-state forwarding
  // performs no heap allocation. Only touched by the single thread that
  // owns this proxy's consumer offsets.
  std::vector<broker::RecordView> fwd_views_;
  std::vector<broker::ProduceView> fwd_produce_;
};

}  // namespace privapprox::proxy

#endif  // PRIVAPPROX_PROXY_PROXY_H_
