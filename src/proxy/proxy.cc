#include "proxy/proxy.h"

#include <stdexcept>

namespace privapprox::proxy {

Proxy::Proxy(ProxyConfig config, broker::Broker& broker)
    : config_(config), broker_(broker) {
  const std::string prefix = "proxy" + std::to_string(config.proxy_index);
  in_topic_ = prefix + ".in";
  out_topic_ = prefix + ".out";
  query_in_topic_ = prefix + ".query.in";
  query_out_topic_ = prefix + ".query.out";
  broker_.CreateTopic(in_topic_, config.num_partitions);
  broker_.CreateTopic(out_topic_, config.num_partitions);
  broker_.CreateTopic(query_in_topic_, 1);
  broker_.CreateTopic(query_out_topic_, 1);
  consumer_ = std::make_unique<broker::Consumer>(broker_.GetTopic(in_topic_));
  query_consumer_ =
      std::make_unique<broker::Consumer>(broker_.GetTopic(query_in_topic_));
}

void Proxy::Receive(const crypto::MessageShare& share, int64_t timestamp_ms) {
  broker_.Produce(in_topic_, share.message_id, EncodeShare(share),
                  timestamp_ms);
}

void Proxy::ReceiveBatch(std::vector<broker::ProduceRecord> records) {
  broker_.ProduceBatch(in_topic_, std::move(records));
}

uint64_t Proxy::Forward() {
  broker::Topic& out = broker_.GetTopic(out_topic_);
  uint64_t count = 0;
  for (;;) {
    std::vector<broker::Record> batch = consumer_->Poll(4096);
    if (batch.empty()) {
      break;
    }
    count += batch.size();
    std::vector<broker::ProduceRecord> records;
    records.reserve(batch.size());
    for (auto& record : batch) {
      records.push_back(broker::ProduceRecord{
          record.key, std::move(record.payload), record.timestamp_ms});
    }
    out.AppendBatch(std::move(records));
  }
  forwarded_ += count;
  return count;
}

std::vector<uint32_t> Proxy::ReceiveAndForwardShard(
    std::vector<broker::ProduceRecord> records) {
  broker_.ProduceBatch(in_topic_, std::move(records));
  broker::Topic& out = broker_.GetTopic(out_topic_);
  std::vector<uint32_t> counts(out.num_partitions(), 0);
  uint64_t total = 0;
  for (;;) {
    std::vector<broker::Record> batch = consumer_->Poll(4096);
    if (batch.empty()) {
      break;
    }
    total += batch.size();
    std::vector<broker::ProduceRecord> forward;
    forward.reserve(batch.size());
    for (auto& record : batch) {
      ++counts[out.PartitionOf(record.key)];
      forward.push_back(broker::ProduceRecord{
          record.key, std::move(record.payload), record.timestamp_ms});
    }
    out.AppendBatch(std::move(forward));
  }
  forwarded_ += total;
  return counts;
}

uint64_t Proxy::ForwardParallel(ThreadPool& pool) {
  broker::Topic& out = broker_.GetTopic(out_topic_);
  uint64_t count = 0;
  for (;;) {
    std::vector<broker::Record> batch = consumer_->Poll(8192);
    if (batch.empty()) {
      break;
    }
    count += batch.size();
    pool.ParallelFor(batch.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        out.Append(batch[i].key, std::move(batch[i].payload),
                   batch[i].timestamp_ms);
      }
    });
  }
  forwarded_ += count;
  return count;
}

void Proxy::AnnounceQuery(const std::vector<uint8_t>& announcement,
                          int64_t timestamp_ms) {
  broker_.Produce(query_in_topic_, /*key=*/0, announcement, timestamp_ms);
}

uint64_t Proxy::ForwardQueries() {
  broker::Topic& out = broker_.GetTopic(query_out_topic_);
  uint64_t count = 0;
  for (;;) {
    std::vector<broker::Record> batch = query_consumer_->Poll(64);
    if (batch.empty()) {
      break;
    }
    for (auto& record : batch) {
      out.Append(record.key, std::move(record.payload), record.timestamp_ms);
      ++count;
    }
  }
  return count;
}

std::vector<uint8_t> Proxy::EncodeShare(const crypto::MessageShare& share) {
  std::vector<uint8_t> out;
  out.reserve(8 + share.payload.size());
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(share.message_id >> (8 * i)));
  }
  out.insert(out.end(), share.payload.begin(), share.payload.end());
  return out;
}

crypto::MessageShare Proxy::DecodeShare(std::span<const uint8_t> bytes) {
  if (bytes.size() < 8) {
    throw std::invalid_argument("Proxy::DecodeShare: truncated share");
  }
  crypto::MessageShare share;
  for (int i = 0; i < 8; ++i) {
    share.message_id |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  }
  share.payload.assign(bytes.begin() + 8, bytes.end());
  return share;
}

crypto::MessageShare Proxy::DecodeShare(std::vector<uint8_t>&& bytes) {
  if (bytes.size() < 8) {
    throw std::invalid_argument("Proxy::DecodeShare: truncated share");
  }
  crypto::MessageShare share;
  for (int i = 0; i < 8; ++i) {
    share.message_id |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  }
  bytes.erase(bytes.begin(), bytes.begin() + 8);
  share.payload = std::move(bytes);
  return share;
}

void Proxy::DecodeShareBatch(std::vector<broker::Record> records,
                             DecodedBatch& out) {
  out.shares.reserve(out.shares.size() + records.size());
  for (auto& record : records) {
    try {
      out.shares.push_back(DecodedShare{DecodeShare(std::move(record.payload)),
                                        record.timestamp_ms});
    } catch (const std::invalid_argument&) {
      ++out.malformed;
    }
  }
}

}  // namespace privapprox::proxy
