#include "proxy/proxy.h"

#include <chrono>
#include <stdexcept>

namespace privapprox::proxy {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Proxy::Proxy(ProxyConfig config, transport::MessageBus& bus)
    : config_(config), bus_(&bus) {
  Init();
}

Proxy::Proxy(ProxyConfig config, broker::Broker& broker)
    : config_(config),
      owned_bus_(std::make_unique<transport::InProcessBus>(broker)),
      bus_(owned_bus_.get()) {
  Init();
}

void Proxy::Init() {
  prefix_ = config_.topic_prefix.empty()
                ? "proxy" + std::to_string(config_.proxy_index)
                : config_.topic_prefix;
  out_prefix_ = config_.out_prefix.empty() ? prefix_ : config_.out_prefix;
  in_topic_ = prefix_ + ".in";
  out_topic_ =
      config_.out_topic.empty() ? prefix_ + ".out" : config_.out_topic;
  query_in_topic_ = prefix_ + ".query.in";
  query_out_topic_ = prefix_ + ".query.out";
  bus_->EnsureTopic(in_topic_, config_.num_partitions);
  // EnsureTopic: a standby proxy's outbound is its primary's existing topic.
  bus_->EnsureTopic(out_topic_, config_.num_partitions);
  bus_->EnsureTopic(query_in_topic_, 1);
  bus_->EnsureTopic(query_out_topic_, 1);
  consumer_ = std::make_unique<transport::BusConsumer>(*bus_, in_topic_);
  query_consumer_ =
      std::make_unique<transport::BusConsumer>(*bus_, query_in_topic_);
}

void Proxy::EnsureLane(uint64_t query_id) {
  if (query_id == 0) {
    throw std::invalid_argument("Proxy::EnsureLane: query id 0");
  }
  if (lanes_.count(query_id) != 0) {
    return;
  }
  const std::string qid = std::to_string(query_id);
  Lane lane;
  lane.in_topic = prefix_ + ".q" + qid + ".in";
  lane.out_topic = out_prefix_ + ".q" + qid + ".out";
  bus_->EnsureTopic(lane.in_topic, config_.num_partitions);
  bus_->EnsureTopic(lane.out_topic, config_.num_partitions);
  lane.consumer = std::make_unique<transport::BusConsumer>(*bus_, lane.in_topic);
  lanes_.emplace(query_id, std::move(lane));
}

bool Proxy::HasLane(uint64_t query_id) const {
  return lanes_.count(query_id) != 0;
}

std::vector<uint64_t> Proxy::lane_ids() const {
  std::vector<uint64_t> ids;
  ids.reserve(lanes_.size());
  for (const auto& [qid, lane] : lanes_) {
    ids.push_back(qid);
  }
  return ids;
}

void Proxy::SyncConsumersToOutbound() {
  const auto sync = [this](transport::BusConsumer& consumer,
                           const std::string& out_topic) {
    for (size_t p = 0; p < consumer.num_partitions(); ++p) {
      consumer.Seek(p, bus_->EndOffset(out_topic, p));
    }
  };
  sync(*consumer_, out_topic_);
  sync(*query_consumer_, query_out_topic_);
  for (auto& [qid, lane] : lanes_) {
    sync(*lane.consumer, lane.out_topic);
  }
}

std::vector<uint64_t> Proxy::LaneInOffsets(uint64_t query_id) const {
  const Lane& lane = GetLane(query_id, "Proxy::LaneInOffsets");
  std::vector<uint64_t> offsets;
  offsets.reserve(lane.consumer->num_partitions());
  for (size_t p = 0; p < lane.consumer->num_partitions(); ++p) {
    offsets.push_back(lane.consumer->offset(p));
  }
  return offsets;
}

const Proxy::Lane& Proxy::GetLane(uint64_t query_id,
                                  const char* caller) const {
  const auto it = lanes_.find(query_id);
  if (it == lanes_.end()) {
    throw std::invalid_argument(std::string(caller) + ": no lane for query " +
                                std::to_string(query_id));
  }
  return it->second;
}

Proxy::Lane& Proxy::GetLane(uint64_t query_id, const char* caller) {
  return const_cast<Lane&>(
      static_cast<const Proxy*>(this)->GetLane(query_id, caller));
}

const std::string& Proxy::lane_in_topic(uint64_t query_id) const {
  return GetLane(query_id, "Proxy::lane_in_topic").in_topic;
}

const std::string& Proxy::lane_out_topic(uint64_t query_id) const {
  return GetLane(query_id, "Proxy::lane_out_topic").out_topic;
}

void Proxy::NoteReceived(uint64_t n) {
  if (config_.received_total != nullptr) {
    config_.received_total->Increment(n);
  }
}

void Proxy::NoteForwarded(uint64_t n) {
  forwarded_ += n;
  if (config_.forwarded_total != nullptr) {
    config_.forwarded_total->Increment(n);
  }
}

void Proxy::Receive(std::span<const broker::ProduceView> records) {
  bus_->Produce(in_topic_, records);
  NoteReceived(records.size());
}

void Proxy::Receive(uint64_t query_id,
                    std::span<const broker::ProduceView> records) {
  const Lane& lane = GetLane(query_id, "Proxy::Receive");
  bus_->Produce(lane.in_topic, records);
  NoteReceived(records.size());
}

void Proxy::Receive(const crypto::MessageShare& share, int64_t timestamp_ms) {
  const std::vector<uint8_t> encoded = EncodeShare(share);
  const broker::ProduceView view{share.message_id, encoded, timestamp_ms};
  bus_->Produce(in_topic_, std::span<const broker::ProduceView>(&view, 1));
  NoteReceived(1);
}

uint64_t Proxy::ForwardPendingViews(transport::BusConsumer& consumer,
                                    const std::string& out_topic,
                                    std::vector<uint32_t>* counts) {
  const int64_t start_ns = config_.forward_ns != nullptr ? NowNs() : 0;
  // Every share topic is created with config_.num_partitions (EnsureTopic
  // enforces agreement), so the outbound partition of a key is computable
  // without a topic lookup.
  const size_t out_partitions = config_.num_partitions;
  uint64_t total = 0;
  for (;;) {
    fwd_views_.clear();
    if (consumer.PollInto(4096, fwd_views_) == 0) {
      break;
    }
    total += fwd_views_.size();
    fwd_produce_.clear();
    fwd_produce_.reserve(fwd_views_.size());
    for (const auto& view : fwd_views_) {
      if (counts != nullptr) {
        ++(*counts)[transport::PartitionForKey(view.key, out_partitions)];
      }
      fwd_produce_.push_back(
          broker::ProduceView{view.key, view.bytes(), view.timestamp_ms});
    }
    bus_->Produce(out_topic, fwd_produce_);
  }
  NoteForwarded(total);
  if (config_.forward_ns != nullptr) {
    config_.forward_ns->Observe(static_cast<uint64_t>(NowNs() - start_ns));
  }
  return total;
}

uint64_t Proxy::Forward() {
  return ForwardPendingViews(*consumer_, out_topic_, nullptr);
}

uint64_t Proxy::ForwardLanes() {
  uint64_t total = 0;
  for (auto& [qid, lane] : lanes_) {
    total += ForwardPendingViews(*lane.consumer, lane.out_topic, nullptr);
  }
  return total;
}

std::vector<uint32_t> Proxy::ReceiveAndForwardShard(
    std::span<const broker::ProduceView> records) {
  bus_->Produce(in_topic_, records);
  NoteReceived(records.size());
  std::vector<uint32_t> counts(config_.num_partitions, 0);
  ForwardPendingViews(*consumer_, out_topic_, &counts);
  return counts;
}

std::vector<uint32_t> Proxy::ReceiveAndForwardShard(
    uint64_t query_id, std::span<const broker::ProduceView> records) {
  Lane& lane = GetLane(query_id, "Proxy::ReceiveAndForwardShard");
  bus_->Produce(lane.in_topic, records);
  NoteReceived(records.size());
  std::vector<uint32_t> counts(config_.num_partitions, 0);
  ForwardPendingViews(*lane.consumer, lane.out_topic, &counts);
  return counts;
}

uint64_t Proxy::ForwardParallel(ThreadPool& pool) {
  uint64_t count = 0;
  std::vector<broker::RecordView> batch;
  for (;;) {
    batch.clear();
    if (consumer_->PollInto(8192, batch) == 0) {
      break;
    }
    count += batch.size();
    pool.ParallelFor(batch.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const broker::ProduceView view{batch[i].key, batch[i].bytes(),
                                       batch[i].timestamp_ms};
        bus_->Produce(out_topic_,
                     std::span<const broker::ProduceView>(&view, 1));
      }
    });
  }
  NoteForwarded(count);
  return count;
}

void Proxy::AnnounceQuery(const std::vector<uint8_t>& announcement,
                          int64_t timestamp_ms) {
  const broker::ProduceView view{/*key=*/0, announcement, timestamp_ms};
  bus_->Produce(query_in_topic_, std::span<const broker::ProduceView>(&view, 1));
}

uint64_t Proxy::ForwardQueries() {
  uint64_t count = 0;
  std::vector<broker::RecordView> batch;
  std::vector<broker::ProduceView> produce;
  for (;;) {
    batch.clear();
    if (query_consumer_->PollInto(64, batch) == 0) {
      break;
    }
    produce.clear();
    for (const auto& record : batch) {
      produce.push_back(
          broker::ProduceView{record.key, record.bytes(), record.timestamp_ms});
    }
    bus_->Produce(query_out_topic_, produce);
    count += batch.size();
  }
  return count;
}

std::vector<uint8_t> Proxy::EncodeShare(const crypto::MessageShare& share) {
  std::vector<uint8_t> out;
  out.reserve(8 + share.payload.size());
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(share.message_id >> (8 * i)));
  }
  out.insert(out.end(), share.payload.begin(), share.payload.end());
  return out;
}

crypto::MessageShare Proxy::DecodeShare(std::span<const uint8_t> bytes) {
  if (bytes.size() < 8) {
    throw std::invalid_argument("Proxy::DecodeShare: truncated share");
  }
  crypto::MessageShare share;
  for (int i = 0; i < 8; ++i) {
    share.message_id |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  }
  share.payload.assign(bytes.begin() + 8, bytes.end());
  return share;
}

void Proxy::DecodeShares(std::span<const broker::RecordView> records,
                         DecodedShares& out) {
  out.shares.reserve(out.shares.size() + records.size());
  for (const auto& record : records) {
    if (record.payload_len < 8) {
      ++out.malformed;
      continue;
    }
    uint64_t mid = 0;
    for (int i = 0; i < 8; ++i) {
      mid |= static_cast<uint64_t>(record.payload[i]) << (8 * i);
    }
    out.shares.push_back(DecodedShare{
        mid,
        std::span<const uint8_t>(record.payload + 8, record.payload_len - 8),
        record.timestamp_ms});
  }
}

}  // namespace privapprox::proxy
