#include "baseline/rappor_full.h"

#include <cmath>
#include <stdexcept>

namespace privapprox::baseline {
namespace {

// FNV-1a with per-hash seed; double hashing would also do, but k distinct
// seeded hashes keep the code obvious.
uint64_t SeededHash(const std::string& value, uint64_t seed) {
  uint64_t hash = 0xCBF29CE484222325ULL ^ (seed * 0x9E3779B97F4A7C15ULL);
  for (char c : value) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  // Final avalanche.
  hash ^= hash >> 33;
  hash *= 0xFF51AFD7ED558CCDULL;
  hash ^= hash >> 33;
  return hash;
}

}  // namespace

void RapporConfig::Validate() const {
  if (num_bits == 0 || num_hashes == 0 || num_hashes > num_bits) {
    throw std::invalid_argument("RapporConfig: bad k/h");
  }
  if (!(f > 0.0 && f < 1.0)) {
    throw std::invalid_argument("RapporConfig: f must be in (0, 1)");
  }
  if (!(p_irr >= 0.0 && p_irr < q_irr && q_irr <= 1.0)) {
    throw std::invalid_argument("RapporConfig: need 0 <= p_irr < q_irr <= 1");
  }
}

RapporClient::RapporClient(RapporConfig config, uint64_t seed)
    : config_(config), rng_(seed) {
  config_.Validate();
}

BitVector RapporClient::BloomEncode(const std::string& value) const {
  BitVector bits(config_.num_bits);
  for (size_t h = 0; h < config_.num_hashes; ++h) {
    bits.Set(SeededHash(value, h) % config_.num_bits, true);
  }
  return bits;
}

const BitVector& RapporClient::PermanentFor(const std::string& value) {
  const auto it = permanent_.find(value);
  if (it != permanent_.end()) {
    return it->second;
  }
  const BitVector bloom = BloomEncode(value);
  BitVector prr(config_.num_bits);
  for (size_t i = 0; i < config_.num_bits; ++i) {
    const double u = rng_.NextDouble();
    bool bit;
    if (u < config_.f / 2.0) {
      bit = true;
    } else if (u < config_.f) {
      bit = false;
    } else {
      bit = bloom.Get(i);
    }
    prr.Set(i, bit);
  }
  return permanent_.emplace(value, std::move(prr)).first->second;
}

BitVector RapporClient::Report(const std::string& value) {
  const BitVector& prr = PermanentFor(value);
  BitVector report(config_.num_bits);
  for (size_t i = 0; i < config_.num_bits; ++i) {
    const double pr = prr.Get(i) ? config_.q_irr : config_.p_irr;
    report.Set(i, rng_.NextBernoulli(pr));
  }
  return report;
}

Histogram RapporDebias(const RapporConfig& config, const Histogram& counts,
                       double total) {
  config.Validate();
  const double bias = config.p_irr + config.f * config.q_irr / 2.0 -
                      config.f * config.p_irr / 2.0;
  const double gain = (1.0 - config.f) * (config.q_irr - config.p_irr);
  Histogram out(counts.num_buckets());
  for (size_t i = 0; i < counts.num_buckets(); ++i) {
    out.SetCount(i, (counts.Count(i) - bias * total) / gain);
  }
  return out;
}

double RapporEpsilonOneTime(const RapporConfig& config) {
  config.Validate();
  // Effective report probabilities conditioned on the true Bloom bit:
  // P[S=1|B=1] = q* = (f/2)(p+q) + (1-f) q_irr; P[S=1|B=0] = p* likewise.
  const double q_star = (config.f / 2.0) * (config.p_irr + config.q_irr) +
                        (1.0 - config.f) * config.q_irr;
  const double p_star = (config.f / 2.0) * (config.p_irr + config.q_irr) +
                        (1.0 - config.f) * config.p_irr;
  const double h = static_cast<double>(config.num_hashes);
  // The odds ratio q*(1-p*) / (p*(1-q*)) already accounts for both report
  // values; h set Bloom bits multiply the exponent (RAPPOR paper, Thm 1:
  // eps = 2h ln((1-f/2)/(f/2)) in the IRR-degenerate case, which this
  // expression reduces to).
  return h * std::log((q_star * (1.0 - p_star)) / (p_star * (1.0 - q_star)));
}

}  // namespace privapprox::baseline
