// RAPPOR baseline (Erlingsson et al., CCS'14) — comparator for Fig 5c.
//
// RAPPOR's permanent randomized response with parameter f reports each
// Bloom-filter bit b as: 1 with probability f/2, 0 with probability f/2,
// and b itself with probability 1 - f. The paper's apples-to-apples mapping
// (§6 #VIII): set h = 1 hash function, and note that RAPPOR's randomization
// equals PrivApprox's randomized response with p = 1 - f, q = 0.5 — but
// RAPPOR has no client-side sampling (s = 1), so PrivApprox's amplified
// epsilon is strictly lower for s < 1.

#ifndef PRIVAPPROX_BASELINE_RAPPOR_H_
#define PRIVAPPROX_BASELINE_RAPPOR_H_

#include <cstddef>

#include "common/bitvector.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "core/randomized_response.h"

namespace privapprox::baseline {

class Rappor {
 public:
  // `f` in (0, 1): RAPPOR's longitudinal privacy parameter; `num_hashes` = h.
  Rappor(double f, size_t num_hashes = 1);

  double f() const { return f_; }
  size_t num_hashes() const { return num_hashes_; }

  // Permanent randomized response over a bit-vector report.
  BitVector PermanentRandomize(const BitVector& truthful,
                               Xoshiro256& rng) const;

  // Unbiased estimate of the truthful per-bit count from randomized counts:
  // t = (c - (f/2) N) / (1 - f).
  double DebiasCount(double randomized_count, double total) const;
  Histogram DebiasHistogram(const Histogram& randomized, double total) const;

  // One-time differential privacy of the permanent RR:
  // eps = 2 h ln((1 - f/2) / (f/2)).
  double EpsilonOneTime() const;

  // The paper's parameter mapping into PrivApprox's (p, q) space.
  core::RandomizationParams ToPrivApproxParams() const;

 private:
  double f_;
  size_t num_hashes_;
};

}  // namespace privapprox::baseline

#endif  // PRIVAPPROX_BASELINE_RAPPOR_H_
