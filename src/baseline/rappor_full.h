// Full RAPPOR pipeline (Erlingsson, Pihur, Korolova — CCS'14), as the
// comparator system actually deploys it: Bloom-filter encoding of a string
// value with h hash functions into k bits, a *memoized* permanent randomized
// response (longitudinal privacy: the same value always maps to the same
// noisy bits), and an instantaneous randomized response on every report.
//
// The simple `Rappor` class in rappor.h is the h = 1 mapping the paper's
// Fig 5c comparison uses; this file is the complete system for the
// head-to-head tests and the heavy-hitter style decoding.
//
// Report bit i:
//   B    = Bloom(value)                       (h bits of k set)
//   B'   = PRR(B):  1 w.p. f/2, 0 w.p. f/2, B_i w.p. 1-f   [memoized]
//   S    = IRR(B'): 1 w.p. q_irr if B'_i = 1, w.p. p_irr if B'_i = 0
// Count de-bias across N reports of bit i:
//   t_i = (c_i - (p_irr + f*q_irr/2 - f*p_irr/2) N) / ((1-f)(q_irr - p_irr))

#ifndef PRIVAPPROX_BASELINE_RAPPOR_FULL_H_
#define PRIVAPPROX_BASELINE_RAPPOR_FULL_H_

#include <cstddef>
#include <string>
#include <unordered_map>

#include "common/bitvector.h"
#include "common/histogram.h"
#include "common/rng.h"

namespace privapprox::baseline {

struct RapporConfig {
  size_t num_bits = 128;   // k: Bloom filter width
  size_t num_hashes = 2;   // h
  double f = 0.5;          // permanent RR parameter
  double p_irr = 0.25;     // IRR: P[report 1 | PRR bit 0]
  double q_irr = 0.75;     // IRR: P[report 1 | PRR bit 1]

  void Validate() const;
};

class RapporClient {
 public:
  explicit RapporClient(RapporConfig config, uint64_t seed);

  const RapporConfig& config() const { return config_; }

  // Deterministic Bloom encoding of `value` (no noise).
  BitVector BloomEncode(const std::string& value) const;

  // The memoized permanent randomized response for `value`: computed once
  // per distinct value per client, then reused for every future report —
  // RAPPOR's defense against longitudinal averaging attacks.
  const BitVector& PermanentFor(const std::string& value);

  // One report: IRR over the memoized PRR.
  BitVector Report(const std::string& value);

  size_t memoized_values() const { return permanent_.size(); }

 private:
  RapporConfig config_;
  Xoshiro256 rng_;
  std::unordered_map<std::string, BitVector> permanent_;
};

// Aggregate decoding: de-biased per-bit counts from `reports` accumulated
// per-bit counts over `total` reports.
Histogram RapporDebias(const RapporConfig& config, const Histogram& counts,
                       double total);

// One-time epsilon of the full pipeline (PRR composed with IRR), h hashes:
// h times the log odds-ratio of P[S_i = 1 | B_i = 1] vs P[S_i = 1 | B_i = 0]
// (the odds ratio covers both report values; h set bits compose), matching
// the RAPPOR paper's eps = 2h ln((1-f/2)/(f/2)) when the IRR is degenerate.
double RapporEpsilonOneTime(const RapporConfig& config);

}  // namespace privapprox::baseline

#endif  // PRIVAPPROX_BASELINE_RAPPOR_FULL_H_
