#include "baseline/splitx.h"

namespace privapprox::baseline {

SplitXStageLatency SplitXModel::Estimate(uint64_t num_clients) const {
  const double n = static_cast<double>(num_clients);
  SplitXStageLatency latency;
  latency.transmission_ms =
      costs_.transmission_fixed_ms + n * costs_.transmission_us / 1000.0;
  latency.computation_ms =
      costs_.computation_fixed_ms + n * costs_.computation_us / 1000.0;
  latency.shuffling_ms =
      costs_.shuffling_fixed_ms + n * costs_.shuffling_us / 1000.0;
  latency.synchronization_ms = costs_.synchronization_fixed_ms;
  return latency;
}

double PrivApproxProxyModel::EstimateMs(uint64_t num_clients) const {
  return costs_.transmission_fixed_ms +
         static_cast<double>(num_clients) * costs_.transmission_us / 1000.0;
}

}  // namespace privapprox::baseline
