#include "baseline/rappor.h"

#include <cmath>
#include <stdexcept>

namespace privapprox::baseline {

Rappor::Rappor(double f, size_t num_hashes) : f_(f), num_hashes_(num_hashes) {
  if (!(f > 0.0 && f < 1.0)) {
    throw std::invalid_argument("Rappor: f must be in (0, 1)");
  }
  if (num_hashes == 0) {
    throw std::invalid_argument("Rappor: need >= 1 hash function");
  }
}

BitVector Rappor::PermanentRandomize(const BitVector& truthful,
                                     Xoshiro256& rng) const {
  BitVector randomized(truthful.size());
  for (size_t i = 0; i < truthful.size(); ++i) {
    const double u = rng.NextDouble();
    bool bit;
    if (u < f_ / 2.0) {
      bit = true;
    } else if (u < f_) {
      bit = false;
    } else {
      bit = truthful.Get(i);
    }
    randomized.Set(i, bit);
  }
  return randomized;
}

double Rappor::DebiasCount(double randomized_count, double total) const {
  return (randomized_count - (f_ / 2.0) * total) / (1.0 - f_);
}

Histogram Rappor::DebiasHistogram(const Histogram& randomized,
                                  double total) const {
  Histogram out(randomized.num_buckets());
  for (size_t i = 0; i < randomized.num_buckets(); ++i) {
    out.SetCount(i, DebiasCount(randomized.Count(i), total));
  }
  return out;
}

double Rappor::EpsilonOneTime() const {
  return 2.0 * static_cast<double>(num_hashes_) *
         std::log((1.0 - f_ / 2.0) / (f_ / 2.0));
}

core::RandomizationParams Rappor::ToPrivApproxParams() const {
  return core::RandomizationParams{1.0 - f_, 0.5};
}

}  // namespace privapprox::baseline
