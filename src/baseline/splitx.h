// SplitX baseline (Chen, Akkus, Francis — SIGCOMM'13) — comparator for
// Fig 6.
//
// SplitX shares PrivApprox's client/proxy/aggregator architecture, but its
// proxies are not transmission-only: for every batch of answers they must
// (i) add noise, (ii) transmit, (iii) intersect answer sets, and (iv)
// shuffle — and stages (iii)/(iv) require synchronization between the
// proxies, serializing the pipeline. PrivApprox proxies only transmit.
//
// Fig 6's comparison is a latency model over those published stages,
// calibrated so that per-record costs reproduce the paper's reference
// points (SplitX 40.27 s vs PrivApprox 6.21 s at 10^6 clients — a 6.48x
// speedup, with SplitX ~an order of magnitude slower across the sweep).

#ifndef PRIVAPPROX_BASELINE_SPLITX_H_
#define PRIVAPPROX_BASELINE_SPLITX_H_

#include <cstdint>

namespace privapprox::baseline {

struct SplitXStageLatency {
  double transmission_ms = 0.0;
  double computation_ms = 0.0;  // noise addition + answer intersection
  double shuffling_ms = 0.0;
  double synchronization_ms = 0.0;  // inter-proxy barrier costs

  double Total() const {
    return transmission_ms + computation_ms + shuffling_ms +
           synchronization_ms;
  }
};

class SplitXModel {
 public:
  struct Costs {
    // Per-record costs (microseconds / record).
    double transmission_us = 6.2;   // same wire path as PrivApprox
    double computation_us = 13.5;   // noise + intersection
    double shuffling_us = 20.0;     // shuffle rounds
    // Fixed per-query costs (milliseconds).
    double transmission_fixed_ms = 1.0;
    double computation_fixed_ms = 40.0;
    double shuffling_fixed_ms = 80.0;
    double synchronization_fixed_ms = 150.0;  // barrier rounds
  };

  SplitXModel() : costs_(Costs{}) {}
  explicit SplitXModel(Costs costs) : costs_(costs) {}

  // Proxy-side latency to process `num_clients` answers.
  SplitXStageLatency Estimate(uint64_t num_clients) const;

 private:
  Costs costs_;
};

// The matching PrivApprox proxy model: transmission only (same per-record
// transmission cost and fixed cost as SplitX's transmission stage).
class PrivApproxProxyModel {
 public:
  struct Costs {
    double transmission_us = 6.2;
    double transmission_fixed_ms = 1.0;
  };

  PrivApproxProxyModel() : costs_(Costs{}) {}
  explicit PrivApproxProxyModel(Costs costs) : costs_(costs) {}

  double EstimateMs(uint64_t num_clients) const;

 private:
  Costs costs_;
};

}  // namespace privapprox::baseline

#endif  // PRIVAPPROX_BASELINE_SPLITX_H_
