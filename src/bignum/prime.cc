#include "bignum/prime.h"

#include <array>
#include <stdexcept>

#include "bignum/modular.h"

namespace privapprox::bignum {
namespace {

constexpr std::array<uint64_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// One Miller-Rabin round with base `a`: returns false if `a` witnesses
// compositeness of n = d * 2^r + 1.
bool MillerRabinRound(const MontgomeryContext& ctx, const BigUint& n,
                      const BigUint& n_minus_1, const BigUint& d, size_t r,
                      const BigUint& a) {
  BigUint x = ctx.Exp(a, d);
  if (x == BigUint::One() || x == n_minus_1) {
    return true;
  }
  for (size_t i = 1; i < r; ++i) {
    x = (x * x) % n;
    if (x == n_minus_1) {
      return true;
    }
    if (x == BigUint::One()) {
      return false;
    }
  }
  return false;
}

}  // namespace

bool IsProbablePrime(const BigUint& n, Xoshiro256& rng, int rounds) {
  if (n < BigUint(2)) {
    return false;
  }
  for (uint64_t p : kSmallPrimes) {
    const BigUint bp(p);
    if (n == bp) {
      return true;
    }
    if ((n % bp).IsZero()) {
      return false;
    }
  }
  // n is odd and > 251 here; write n - 1 = d * 2^r.
  const BigUint n_minus_1 = n - BigUint::One();
  BigUint d = n_minus_1;
  size_t r = 0;
  while (d.IsEven()) {
    d = d >> 1;
    ++r;
  }
  const MontgomeryContext ctx(n);
  const BigUint upper = n - BigUint(3);  // bases in [2, n-2]
  for (int round = 0; round < rounds; ++round) {
    const BigUint a = BigUint::RandomBelow(rng, upper) + BigUint::Two();
    if (!MillerRabinRound(ctx, n, n_minus_1, d, r, a)) {
      return false;
    }
  }
  return true;
}

BigUint RandomPrime(Xoshiro256& rng, size_t bits, int rounds) {
  if (bits < 2) {
    throw std::invalid_argument("RandomPrime: bits must be >= 2");
  }
  for (;;) {
    BigUint candidate = BigUint::RandomBits(rng, bits);
    candidate.SetBit(0, true);  // force odd
    if (IsProbablePrime(candidate, rng, rounds)) {
      return candidate;
    }
  }
}

BigUint RandomBlumPrime(Xoshiro256& rng, size_t bits, int rounds) {
  if (bits < 3) {
    throw std::invalid_argument("RandomBlumPrime: bits must be >= 3");
  }
  for (;;) {
    BigUint candidate = BigUint::RandomBits(rng, bits);
    candidate.SetBit(0, true);
    candidate.SetBit(1, true);  // candidate % 4 == 3
    if (IsProbablePrime(candidate, rng, rounds)) {
      return candidate;
    }
  }
}

}  // namespace privapprox::bignum
