// Arbitrary-precision unsigned integers.
//
// Substrate for the public-key comparators of Table 2 (RSA,
// Goldwasser-Micali, Paillier with 1024-bit keys). Little-endian 64-bit
// limbs; schoolbook multiplication and Knuth Algorithm D division, which is
// ample for 1024-4096 bit operands.

#ifndef PRIVAPPROX_BIGNUM_BIGUINT_H_
#define PRIVAPPROX_BIGNUM_BIGUINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace privapprox::bignum {

class BigUint {
 public:
  BigUint() = default;
  BigUint(uint64_t value);  // NOLINT(google-explicit-constructor): numeric literal interop

  static const BigUint& Zero();
  static const BigUint& One();
  static const BigUint& Two();

  // Parses a hexadecimal string (no 0x prefix required; accepts it).
  static BigUint FromHex(const std::string& hex);
  // Parses a decimal string.
  static BigUint FromDecimal(const std::string& dec);

  std::string ToHex() const;
  std::string ToDecimal() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool IsEven() const { return !IsOdd(); }

  // Number of significant bits (0 for zero).
  size_t BitLength() const;
  bool GetBit(size_t index) const;
  void SetBit(size_t index, bool value);

  // Low 64 bits (0 for zero).
  uint64_t Low64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  // Three-way comparison: -1, 0, +1.
  int Compare(const BigUint& other) const;
  bool operator==(const BigUint& o) const { return Compare(o) == 0; }
  bool operator!=(const BigUint& o) const { return Compare(o) != 0; }
  bool operator<(const BigUint& o) const { return Compare(o) < 0; }
  bool operator<=(const BigUint& o) const { return Compare(o) <= 0; }
  bool operator>(const BigUint& o) const { return Compare(o) > 0; }
  bool operator>=(const BigUint& o) const { return Compare(o) >= 0; }

  BigUint operator+(const BigUint& other) const;
  // Throws std::underflow_error if other > *this.
  BigUint operator-(const BigUint& other) const;
  BigUint operator*(const BigUint& other) const;
  // Throws std::domain_error on division by zero.
  BigUint operator/(const BigUint& other) const;
  BigUint operator%(const BigUint& other) const;
  BigUint operator<<(size_t bits) const;
  BigUint operator>>(size_t bits) const;

  BigUint& operator+=(const BigUint& o) { return *this = *this + o; }
  BigUint& operator-=(const BigUint& o) { return *this = *this - o; }
  BigUint& operator*=(const BigUint& o) { return *this = *this * o; }
  BigUint& operator/=(const BigUint& o) { return *this = *this / o; }
  BigUint& operator%=(const BigUint& o) { return *this = *this % o; }

  // Quotient and remainder in one pass (definition follows the class).
  struct DivModResult;
  DivModResult DivMod(const BigUint& divisor) const;

  // Builds from little-endian 64-bit limbs (trailing zero limbs are trimmed).
  static BigUint FromLittleEndianLimbs(std::vector<uint64_t> limbs);

  // Uniform random integer with exactly `bits` bits (top bit set) — used for
  // prime candidates.
  static BigUint RandomBits(Xoshiro256& rng, size_t bits);
  // Uniform random integer in [0, bound).
  static BigUint RandomBelow(Xoshiro256& rng, const BigUint& bound);

  const std::vector<uint64_t>& limbs() const { return limbs_; }

 private:
  void Trim();
  static BigUint FromLimbs(std::vector<uint64_t> limbs);

  // Little-endian limbs; empty means zero; no trailing zero limbs.
  std::vector<uint64_t> limbs_;
};

struct BigUint::DivModResult {
  BigUint quotient;
  BigUint remainder;
};

}  // namespace privapprox::bignum

#endif  // PRIVAPPROX_BIGNUM_BIGUINT_H_
