// Probabilistic primality testing and random prime generation — key
// generation substrate for the RSA / Goldwasser-Micali / Paillier
// comparators (Table 2 uses 1024-bit keys, i.e. 512-bit primes).

#ifndef PRIVAPPROX_BIGNUM_PRIME_H_
#define PRIVAPPROX_BIGNUM_PRIME_H_

#include "bignum/biguint.h"
#include "common/rng.h"

namespace privapprox::bignum {

// Miller-Rabin with `rounds` random bases (error probability <= 4^-rounds).
// Deterministic small-case handling and trial division by small primes first.
bool IsProbablePrime(const BigUint& n, Xoshiro256& rng, int rounds = 24);

// Uniform random probable prime with exactly `bits` bits (bits >= 2).
BigUint RandomPrime(Xoshiro256& rng, size_t bits, int rounds = 24);

// Random probable prime p with exactly `bits` bits and p % 4 == 3 — the
// Blum-prime shape Goldwasser-Micali uses so that -1 is a non-residue.
BigUint RandomBlumPrime(Xoshiro256& rng, size_t bits, int rounds = 24);

}  // namespace privapprox::bignum

#endif  // PRIVAPPROX_BIGNUM_PRIME_H_
