// Modular arithmetic over BigUint: gcd / extended gcd, modular inverse,
// Jacobi symbol (needed by Goldwasser-Micali), and modular exponentiation
// with a Montgomery fast path for odd moduli (RSA/Paillier/GM all use odd
// moduli, so every hot path is Montgomery).

#ifndef PRIVAPPROX_BIGNUM_MODULAR_H_
#define PRIVAPPROX_BIGNUM_MODULAR_H_

#include <optional>

#include "bignum/biguint.h"

namespace privapprox::bignum {

BigUint Gcd(BigUint a, BigUint b);

// Modular inverse of a mod m; nullopt when gcd(a, m) != 1.
std::optional<BigUint> ModInverse(const BigUint& a, const BigUint& m);

// (a + b) mod m, operands already reduced or not.
BigUint ModAdd(const BigUint& a, const BigUint& b, const BigUint& m);
// (a - b) mod m.
BigUint ModSub(const BigUint& a, const BigUint& b, const BigUint& m);
// (a * b) mod m.
BigUint ModMul(const BigUint& a, const BigUint& b, const BigUint& m);

// base^exp mod m. Uses Montgomery ladder when m is odd, plain
// square-and-multiply otherwise. Throws std::domain_error for m == 0.
BigUint ModExp(const BigUint& base, const BigUint& exp, const BigUint& m);

// Jacobi symbol (a/n) for odd n > 0: returns -1, 0, or +1.
int Jacobi(BigUint a, BigUint n);

// Montgomery multiplication context for a fixed odd modulus. Amortizes the
// per-modulus setup across many multiplications (the shape of every
// public-key hot loop).
class MontgomeryContext {
 public:
  // Requires an odd modulus > 1.
  explicit MontgomeryContext(const BigUint& modulus);

  const BigUint& modulus() const { return modulus_; }

  // Converts into / out of Montgomery form.
  BigUint ToMontgomery(const BigUint& x) const;
  BigUint FromMontgomery(const BigUint& x) const;

  // Montgomery product: returns aR * bR * R^-1 = (ab)R mod m, for inputs in
  // Montgomery form.
  BigUint Multiply(const BigUint& a, const BigUint& b) const;

  // base^exp mod m (inputs/outputs in ordinary form).
  BigUint Exp(const BigUint& base, const BigUint& exp) const;

 private:
  BigUint modulus_;
  size_t num_limbs_;       // R = 2^(64 * num_limbs_)
  uint64_t inv_neg_m_;     // -m^-1 mod 2^64
  BigUint r_mod_m_;        // R mod m
  BigUint r2_mod_m_;       // R^2 mod m
};

}  // namespace privapprox::bignum

#endif  // PRIVAPPROX_BIGNUM_MODULAR_H_
