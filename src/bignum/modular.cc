#include "bignum/modular.h"

#include <stdexcept>
#include <utility>

namespace privapprox::bignum {
namespace {

using uint128 = unsigned __int128;

// -m^-1 mod 2^64 via Newton iteration on the low limb.
uint64_t NegInverse64(uint64_t m) {
  // m odd. x = m^-1 mod 2^64 by Hensel lifting: x_{k+1} = x_k (2 - m x_k).
  uint64_t x = m;  // correct mod 2^3
  for (int i = 0; i < 5; ++i) {
    x *= 2 - m * x;
  }
  return ~x + 1;  // -x
}

}  // namespace

BigUint Gcd(BigUint a, BigUint b) {
  while (!b.IsZero()) {
    BigUint r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

std::optional<BigUint> ModInverse(const BigUint& a, const BigUint& m) {
  if (m.IsZero()) {
    throw std::domain_error("ModInverse: zero modulus");
  }
  if (m == BigUint::One()) {
    return BigUint::Zero();
  }
  // Extended Euclid tracking only the coefficient of `a`, with sign handled
  // as (value, is_negative) since BigUint is unsigned.
  BigUint r0 = m, r1 = a % m;
  BigUint t0 = BigUint::Zero(), t1 = BigUint::One();
  bool neg0 = false, neg1 = false;
  while (!r1.IsZero()) {
    const BigUint::DivModResult dm = r0.DivMod(r1);
    // t2 = t0 - q * t1 with signed bookkeeping.
    const BigUint qt1 = dm.quotient * t1;
    BigUint t2;
    bool neg2;
    if (neg0 == neg1) {
      // t0 and q*t1 have the same sign: result keeps sign of the larger.
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        neg2 = neg0;
      } else {
        t2 = qt1 - t0;
        neg2 = !neg0;
      }
    } else {
      t2 = t0 + qt1;
      neg2 = neg0;
    }
    r0 = std::move(r1);
    r1 = dm.remainder;
    t0 = std::move(t1);
    neg0 = neg1;
    t1 = std::move(t2);
    neg1 = neg2;
  }
  if (r0 != BigUint::One()) {
    return std::nullopt;
  }
  BigUint inv = t0 % m;
  if (neg0 && !inv.IsZero()) {
    inv = m - inv;
  }
  return inv;
}

BigUint ModAdd(const BigUint& a, const BigUint& b, const BigUint& m) {
  return (a % m + b % m) % m;
}

BigUint ModSub(const BigUint& a, const BigUint& b, const BigUint& m) {
  const BigUint ar = a % m;
  const BigUint br = b % m;
  if (ar >= br) {
    return ar - br;
  }
  return m - (br - ar);
}

BigUint ModMul(const BigUint& a, const BigUint& b, const BigUint& m) {
  return (a * b) % m;
}

BigUint ModExp(const BigUint& base, const BigUint& exp, const BigUint& m) {
  if (m.IsZero()) {
    throw std::domain_error("ModExp: zero modulus");
  }
  if (m == BigUint::One()) {
    return BigUint::Zero();
  }
  if (m.IsOdd()) {
    return MontgomeryContext(m).Exp(base, exp);
  }
  // Plain square-and-multiply for even moduli.
  BigUint result = BigUint::One();
  BigUint b = base % m;
  const size_t bits = exp.BitLength();
  for (size_t i = 0; i < bits; ++i) {
    if (exp.GetBit(i)) {
      result = (result * b) % m;
    }
    b = (b * b) % m;
  }
  return result;
}

int Jacobi(BigUint a, BigUint n) {
  if (n.IsZero() || n.IsEven()) {
    throw std::invalid_argument("Jacobi: n must be odd and positive");
  }
  a = a % n;
  int result = 1;
  while (!a.IsZero()) {
    while (a.IsEven()) {
      a = a >> 1;
      const uint64_t n_mod_8 = n.Low64() & 7;
      if (n_mod_8 == 3 || n_mod_8 == 5) {
        result = -result;
      }
    }
    std::swap(a, n);
    if ((a.Low64() & 3) == 3 && (n.Low64() & 3) == 3) {
      result = -result;
    }
    a = a % n;
  }
  return n == BigUint::One() ? result : 0;
}

MontgomeryContext::MontgomeryContext(const BigUint& modulus)
    : modulus_(modulus) {
  if (modulus.IsZero() || modulus.IsEven() || modulus == BigUint::One()) {
    throw std::invalid_argument("MontgomeryContext: modulus must be odd > 1");
  }
  num_limbs_ = modulus_.limbs().size();
  inv_neg_m_ = NegInverse64(modulus_.limbs()[0]);
  const BigUint r = BigUint::One() << (64 * num_limbs_);
  r_mod_m_ = r % modulus_;
  r2_mod_m_ = (r_mod_m_ * r_mod_m_) % modulus_;
}

BigUint MontgomeryContext::ToMontgomery(const BigUint& x) const {
  return Multiply(x % modulus_, r2_mod_m_);
}

BigUint MontgomeryContext::FromMontgomery(const BigUint& x) const {
  return Multiply(x, BigUint::One());
}

BigUint MontgomeryContext::Multiply(const BigUint& a, const BigUint& b) const {
  // CIOS (coarsely integrated operand scanning) Montgomery multiplication.
  const size_t n = num_limbs_;
  const auto& m = modulus_.limbs();
  std::vector<uint64_t> t(n + 2, 0);

  const auto& al = a.limbs();
  const auto& bl = b.limbs();

  for (size_t i = 0; i < n; ++i) {
    const uint64_t ai = i < al.size() ? al[i] : 0;
    // t += ai * b
    uint64_t carry = 0;
    for (size_t j = 0; j < n; ++j) {
      const uint64_t bj = j < bl.size() ? bl[j] : 0;
      const uint128 acc = static_cast<uint128>(ai) * bj + t[j] + carry;
      t[j] = static_cast<uint64_t>(acc);
      carry = static_cast<uint64_t>(acc >> 64);
    }
    {
      const uint128 acc = static_cast<uint128>(t[n]) + carry;
      t[n] = static_cast<uint64_t>(acc);
      t[n + 1] += static_cast<uint64_t>(acc >> 64);
    }
    // Reduce: u = t[0] * (-m^-1) mod 2^64; t += u * m; t >>= 64.
    const uint64_t u = t[0] * inv_neg_m_;
    carry = 0;
    {
      const uint128 acc = static_cast<uint128>(u) * m[0] + t[0];
      carry = static_cast<uint64_t>(acc >> 64);
    }
    for (size_t j = 1; j < n; ++j) {
      const uint128 acc = static_cast<uint128>(u) * m[j] + t[j] + carry;
      t[j - 1] = static_cast<uint64_t>(acc);
      carry = static_cast<uint64_t>(acc >> 64);
    }
    {
      const uint128 acc = static_cast<uint128>(t[n]) + carry;
      t[n - 1] = static_cast<uint64_t>(acc);
      t[n] = t[n + 1] + static_cast<uint64_t>(acc >> 64);
      t[n + 1] = 0;
    }
  }
  t.resize(n + 1);
  BigUint value = BigUint::FromLittleEndianLimbs(std::move(t));
  if (value >= modulus_) {
    value = value - modulus_;
  }
  return value;
}

BigUint MontgomeryContext::Exp(const BigUint& base, const BigUint& exp) const {
  BigUint result = r_mod_m_;  // 1 in Montgomery form
  BigUint b = ToMontgomery(base);
  const size_t bits = exp.BitLength();
  for (size_t i = bits; i > 0; --i) {
    result = Multiply(result, result);
    if (exp.GetBit(i - 1)) {
      result = Multiply(result, b);
    }
  }
  return FromMontgomery(result);
}

}  // namespace privapprox::bignum
