#include "bignum/biguint.h"

#include <algorithm>
#include <span>
#include <bit>
#include <cctype>
#include <stdexcept>

namespace privapprox::bignum {
namespace {

using uint128 = unsigned __int128;

}  // namespace

BigUint::BigUint(uint64_t value) {
  if (value != 0) {
    limbs_.push_back(value);
  }
}

const BigUint& BigUint::Zero() {
  static const BigUint kZero;
  return kZero;
}

const BigUint& BigUint::One() {
  static const BigUint kOne(1);
  return kOne;
}

const BigUint& BigUint::Two() {
  static const BigUint kTwo(2);
  return kTwo;
}

BigUint BigUint::FromLimbs(std::vector<uint64_t> limbs) {
  BigUint out;
  out.limbs_ = std::move(limbs);
  out.Trim();
  return out;
}

void BigUint::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

BigUint BigUint::FromHex(const std::string& hex) {
  size_t start = 0;
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    start = 2;
  }
  if (start == hex.size()) {
    throw std::invalid_argument("BigUint::FromHex: empty string");
  }
  BigUint out;
  const size_t digits = hex.size() - start;
  out.limbs_.assign((digits + 15) / 16, 0);
  size_t bit = 0;
  for (size_t i = hex.size(); i > start; --i) {
    const char c = hex[i - 1];
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<uint64_t>(c - 'A') + 10;
    } else {
      throw std::invalid_argument("BigUint::FromHex: bad digit");
    }
    out.limbs_[bit / 64] |= nibble << (bit % 64);
    bit += 4;
  }
  out.Trim();
  return out;
}

BigUint BigUint::FromDecimal(const std::string& dec) {
  if (dec.empty()) {
    throw std::invalid_argument("BigUint::FromDecimal: empty string");
  }
  BigUint out;
  for (char c : dec) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      throw std::invalid_argument("BigUint::FromDecimal: bad digit");
    }
    out = out * BigUint(10) + BigUint(static_cast<uint64_t>(c - '0'));
  }
  return out;
}

std::string BigUint::ToHex() const {
  if (IsZero()) {
    return "0";
  }
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i > 0; --i) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      const uint64_t nibble = (limbs_[i - 1] >> shift) & 0xF;
      if (out.empty() && nibble == 0) {
        continue;
      }
      out.push_back(kDigits[nibble]);
    }
  }
  return out;
}

std::string BigUint::ToDecimal() const {
  if (IsZero()) {
    return "0";
  }
  std::string out;
  BigUint value = *this;
  const BigUint ten(10);
  while (!value.IsZero()) {
    DivModResult dm = value.DivMod(ten);
    out.push_back(static_cast<char>('0' + dm.remainder.Low64()));
    value = std::move(dm.quotient);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

size_t BigUint::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  return 64 * (limbs_.size() - 1) +
         (64 - static_cast<size_t>(std::countl_zero(limbs_.back())));
}

bool BigUint::GetBit(size_t index) const {
  const size_t limb = index / 64;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (index % 64)) & 1u;
}

void BigUint::SetBit(size_t index, bool value) {
  const size_t limb = index / 64;
  if (limb >= limbs_.size()) {
    if (!value) {
      return;
    }
    limbs_.resize(limb + 1, 0);
  }
  if (value) {
    limbs_[limb] |= (uint64_t{1} << (index % 64));
  } else {
    limbs_[limb] &= ~(uint64_t{1} << (index % 64));
    Trim();
  }
}

int BigUint::Compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i > 0; --i) {
    if (limbs_[i - 1] != other.limbs_[i - 1]) {
      return limbs_[i - 1] < other.limbs_[i - 1] ? -1 : 1;
    }
  }
  return 0;
}

BigUint BigUint::operator+(const BigUint& other) const {
  std::vector<uint64_t> result(std::max(limbs_.size(), other.limbs_.size()) + 1,
                               0);
  uint64_t carry = 0;
  for (size_t i = 0; i < result.size() - 1; ++i) {
    uint128 sum = static_cast<uint128>(carry);
    if (i < limbs_.size()) {
      sum += limbs_[i];
    }
    if (i < other.limbs_.size()) {
      sum += other.limbs_[i];
    }
    result[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  result.back() = carry;
  return FromLimbs(std::move(result));
}

BigUint BigUint::operator-(const BigUint& other) const {
  if (*this < other) {
    throw std::underflow_error("BigUint::operator-: negative result");
  }
  std::vector<uint64_t> result(limbs_.size(), 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t rhs = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const uint128 lhs = static_cast<uint128>(limbs_[i]);
    const uint128 sub = static_cast<uint128>(rhs) + borrow;
    if (lhs >= sub) {
      result[i] = static_cast<uint64_t>(lhs - sub);
      borrow = 0;
    } else {
      result[i] = static_cast<uint64_t>((uint128{1} << 64) + lhs - sub);
      borrow = 1;
    }
  }
  return FromLimbs(std::move(result));
}

namespace {

// Karatsuba kicks in above this limb count; below it, schoolbook's cache
// behaviour wins. 32 limbs = 2048 bits, i.e. Paillier's n^2 products.
constexpr size_t kKaratsubaThreshold = 32;

// result[i..] += a * b (schoolbook), result must be large enough.
void SchoolbookMulInto(std::span<const uint64_t> a,
                       std::span<const uint64_t> b,
                       std::span<uint64_t> result) {
  using uint128 = unsigned __int128;
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      const uint128 acc =
          static_cast<uint128>(a[i]) * b[j] + result[i + j] + carry;
      result[i + j] = static_cast<uint64_t>(acc);
      carry = static_cast<uint64_t>(acc >> 64);
    }
    // Propagate the final carry (the slot may already hold a value from a
    // previous partial product).
    size_t k = i + b.size();
    while (carry != 0) {
      const uint128 acc = static_cast<uint128>(result[k]) + carry;
      result[k] = static_cast<uint64_t>(acc);
      carry = static_cast<uint64_t>(acc >> 64);
      ++k;
    }
  }
}

}  // namespace

BigUint BigUint::operator*(const BigUint& other) const {
  if (IsZero() || other.IsZero()) {
    return Zero();
  }
  if (std::min(limbs_.size(), other.limbs_.size()) < kKaratsubaThreshold) {
    std::vector<uint64_t> result(limbs_.size() + other.limbs_.size(), 0);
    SchoolbookMulInto(limbs_, other.limbs_, result);
    return FromLimbs(std::move(result));
  }
  // Karatsuba: split both operands at half the larger size.
  //   x = x1*B + x0, y = y1*B + y0  (B = 2^(64*half))
  //   x*y = z2*B^2 + z1*B + z0 with
  //   z0 = x0*y0, z2 = x1*y1, z1 = (x0+x1)(y0+y1) - z0 - z2.
  const size_t half = std::max(limbs_.size(), other.limbs_.size()) / 2;
  auto split = [half](const std::vector<uint64_t>& limbs) {
    const size_t lo_size = std::min(half, limbs.size());
    BigUint lo = FromLimbs({limbs.begin(), limbs.begin() + static_cast<long>(lo_size)});
    BigUint hi = lo_size < limbs.size()
                     ? FromLimbs({limbs.begin() + static_cast<long>(lo_size),
                                  limbs.end()})
                     : Zero();
    return std::pair<BigUint, BigUint>(std::move(lo), std::move(hi));
  };
  const auto [x0, x1] = split(limbs_);
  const auto [y0, y1] = split(other.limbs_);
  const BigUint z0 = x0 * y0;
  const BigUint z2 = x1 * y1;
  const BigUint z1 = (x0 + x1) * (y0 + y1) - z0 - z2;
  return (z2 << (128 * half)) + (z1 << (64 * half)) + z0;
}

BigUint::DivModResult BigUint::DivMod(const BigUint& divisor) const {
  if (divisor.IsZero()) {
    throw std::domain_error("BigUint::DivMod: division by zero");
  }
  if (*this < divisor) {
    return {Zero(), *this};
  }
  // Fast path: single-limb divisor.
  if (divisor.limbs_.size() == 1) {
    const uint64_t d = divisor.limbs_[0];
    std::vector<uint64_t> quotient(limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = limbs_.size(); i > 0; --i) {
      const uint128 cur = (static_cast<uint128>(rem) << 64) | limbs_[i - 1];
      quotient[i - 1] = static_cast<uint64_t>(cur / d);
      rem = static_cast<uint64_t>(cur % d);
    }
    return {FromLimbs(std::move(quotient)), BigUint(rem)};
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high bit
  // set.
  const int shift = std::countl_zero(divisor.limbs_.back());
  const BigUint u_norm = *this << static_cast<size_t>(shift);
  const BigUint v_norm = divisor << static_cast<size_t>(shift);
  const size_t n = v_norm.limbs_.size();
  const size_t m = u_norm.limbs_.size() - n;

  std::vector<uint64_t> u = u_norm.limbs_;
  u.push_back(0);  // u has m + n + 1 limbs
  const std::vector<uint64_t>& v = v_norm.limbs_;
  std::vector<uint64_t> q(m + 1, 0);

  const uint64_t v_hi = v[n - 1];
  const uint64_t v_lo = v[n - 2];

  for (size_t j = m + 1; j > 0; --j) {
    const size_t jj = j - 1;
    // Estimate q_hat = (u[jj+n]*B + u[jj+n-1]) / v_hi.
    const uint128 numerator =
        (static_cast<uint128>(u[jj + n]) << 64) | u[jj + n - 1];
    uint128 q_hat = numerator / v_hi;
    uint128 r_hat = numerator % v_hi;
    while (q_hat >= (uint128{1} << 64) ||
           q_hat * v_lo > ((r_hat << 64) | u[jj + n - 2])) {
      --q_hat;
      r_hat += v_hi;
      if (r_hat >= (uint128{1} << 64)) {
        break;
      }
    }
    // Multiply-subtract: u[jj .. jj+n] -= q_hat * v.
    uint64_t mul_carry = 0;
    uint64_t borrow = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint128 prod =
          static_cast<uint128>(static_cast<uint64_t>(q_hat)) * v[i] + mul_carry;
      const uint64_t prod_lo = static_cast<uint64_t>(prod);
      mul_carry = static_cast<uint64_t>(prod >> 64);
      const uint128 lhs = static_cast<uint128>(u[jj + i]);
      const uint128 sub = static_cast<uint128>(prod_lo) + borrow;
      if (lhs >= sub) {
        u[jj + i] = static_cast<uint64_t>(lhs - sub);
        borrow = 0;
      } else {
        u[jj + i] = static_cast<uint64_t>((uint128{1} << 64) + lhs - sub);
        borrow = 1;
      }
    }
    {
      const uint128 lhs = static_cast<uint128>(u[jj + n]);
      const uint128 sub = static_cast<uint128>(mul_carry) + borrow;
      if (lhs >= sub) {
        u[jj + n] = static_cast<uint64_t>(lhs - sub);
        borrow = 0;
      } else {
        u[jj + n] = static_cast<uint64_t>((uint128{1} << 64) + lhs - sub);
        borrow = 1;
      }
    }
    q[jj] = static_cast<uint64_t>(q_hat);
    if (borrow) {
      // q_hat was one too large: add back.
      --q[jj];
      uint64_t carry = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint128 sum =
            static_cast<uint128>(u[jj + i]) + v[i] + carry;
        u[jj + i] = static_cast<uint64_t>(sum);
        carry = static_cast<uint64_t>(sum >> 64);
      }
      u[jj + n] += carry;
    }
  }

  u.resize(n);
  BigUint remainder = FromLimbs(std::move(u)) >> static_cast<size_t>(shift);
  return {FromLimbs(std::move(q)), std::move(remainder)};
}

BigUint BigUint::operator/(const BigUint& other) const {
  return DivMod(other).quotient;
}

BigUint BigUint::operator%(const BigUint& other) const {
  return DivMod(other).remainder;
}

BigUint BigUint::operator<<(size_t bits) const {
  if (IsZero() || bits == 0) {
    return *this;
  }
  const size_t limb_shift = bits / 64;
  const size_t bit_shift = bits % 64;
  std::vector<uint64_t> result(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    result[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      result[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  return FromLimbs(std::move(result));
}

BigUint BigUint::operator>>(size_t bits) const {
  if (IsZero() || bits == 0) {
    return *this;
  }
  const size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) {
    return Zero();
  }
  const size_t bit_shift = bits % 64;
  std::vector<uint64_t> result(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < result.size(); ++i) {
    result[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      result[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  return FromLimbs(std::move(result));
}

BigUint BigUint::FromLittleEndianLimbs(std::vector<uint64_t> limbs) {
  return FromLimbs(std::move(limbs));
}

BigUint BigUint::RandomBits(Xoshiro256& rng, size_t bits) {
  if (bits == 0) {
    return Zero();
  }
  std::vector<uint64_t> limbs((bits + 63) / 64, 0);
  for (auto& limb : limbs) {
    limb = rng.Next();
  }
  const size_t top_bits = bits % 64;
  if (top_bits != 0) {
    limbs.back() &= (uint64_t{1} << top_bits) - 1;
  }
  BigUint out = FromLimbs(std::move(limbs));
  out.SetBit(bits - 1, true);
  return out;
}

BigUint BigUint::RandomBelow(Xoshiro256& rng, const BigUint& bound) {
  if (bound.IsZero()) {
    throw std::invalid_argument("BigUint::RandomBelow: bound must be > 0");
  }
  const size_t bits = bound.BitLength();
  // Rejection sampling: uniform in [0, 2^bits), retry until < bound.
  for (;;) {
    std::vector<uint64_t> limbs((bits + 63) / 64, 0);
    for (auto& limb : limbs) {
      limb = rng.Next();
    }
    const size_t top_bits = bits % 64;
    if (top_bits != 0) {
      limbs.back() &= (uint64_t{1} << top_bits) - 1;
    }
    BigUint candidate = FromLimbs(std::move(limbs));
    if (candidate < bound) {
      return candidate;
    }
  }
}

}  // namespace privapprox::bignum
