// End-to-end integration tests: the full client -> proxy -> aggregator
// pipeline via PrivApproxSystem, on synthetic and case-study workloads,
// including the budget path, historical analytics, and inversion mode.

#include <gtest/gtest.h>

#include <cmath>

#include "core/privacy.h"
#include "system/system.h"
#include "workload/electricity.h"
#include "workload/taxi.h"

namespace privapprox::system {
namespace {

core::Query SpeedQuery() {
  return core::QueryBuilder()
      .WithId(1)
      .WithSql("SELECT speed FROM vehicle")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 100, 10, true))
      .WithFrequencyMs(1000)
      .WithWindowMs(10000)
      .WithSlideMs(10000)
      .Build();
}

core::ExecutionParams ExactParams() {
  core::ExecutionParams params;
  params.sampling_fraction = 1.0;
  params.randomization = {1.0, 0.5};
  return params;
}

void LoadSpeed(PrivApproxSystem& sys, size_t index, double speed) {
  auto& db = sys.client(index).database();
  if (!db.HasTable("vehicle")) {
    db.CreateTable("vehicle", {"speed"});
  }
  db.GetTable("vehicle").Insert(500, {localdb::Value(speed)});
}

TEST(SystemConfigTest, ResolvedFoldsDeprecatedAliasesIntoNestedFields) {
  SystemConfig config;
  config.enable_historical = true;
  config.historical_dir = "/tmp/hist";
  config.num_worker_threads = 5;
  config.pipeline_mode = EpochPipelineMode::kBarrier;
  config.pipeline_depth = 3;
  config.stream_shard_size = 17;
  const SystemConfig resolved = config.Resolved();
  EXPECT_TRUE(resolved.historical.enabled);
  EXPECT_EQ(resolved.historical.dir, "/tmp/hist");
  EXPECT_EQ(resolved.pipeline.num_worker_threads, 5u);
  EXPECT_EQ(resolved.pipeline.mode, EpochPipelineMode::kBarrier);
  EXPECT_EQ(resolved.pipeline.depth, 3u);
  EXPECT_EQ(resolved.pipeline.shard_size, 17u);
  // Resolved values mirror back to the flat names too, so code reading
  // either spelling sees the same config.
  EXPECT_TRUE(resolved.enable_historical);
  EXPECT_EQ(resolved.num_worker_threads, 5u);
}

TEST(SystemConfigTest, NestedFieldWinsOverDeprecatedAlias) {
  SystemConfig config;
  config.pipeline.depth = 4;   // explicitly set nested field...
  config.pipeline_depth = 99;  // ...beats a conflicting legacy alias
  const SystemConfig resolved = config.Resolved();
  EXPECT_EQ(resolved.pipeline.depth, 4u);
  EXPECT_EQ(resolved.pipeline_depth, 4u);
}

TEST(SystemConfigTest, ResolvedIsIdentityOnDefaults) {
  const SystemConfig resolved = SystemConfig{}.Resolved();
  EXPECT_FALSE(resolved.historical.enabled);
  EXPECT_TRUE(resolved.historical.dir.empty());
  EXPECT_EQ(resolved.pipeline.mode, EpochPipelineMode::kStreaming);
  EXPECT_EQ(resolved.pipeline.depth, 8u);
  EXPECT_EQ(resolved.pipeline.shard_size, 0u);
  EXPECT_TRUE(resolved.metrics.enabled);
  EXPECT_FALSE(resolved.metrics.timeline);
}

TEST(SystemTest, MetricsExpositionCoversPipelineFamilies) {
  SystemConfig config;
  config.num_clients = 30;
  config.num_proxies = 2;
  config.metrics.timeline = true;
  PrivApproxSystem sys(config);
  for (size_t i = 0; i < config.num_clients; ++i) {
    LoadSpeed(sys, i, 25.0);
  }
  sys.SubmitQuery(SpeedQuery(), ExactParams());
  sys.RunEpoch(1000);

  const std::string text = sys.MetricsText();
  for (const char* family :
       {"privapprox_epochs_total", "privapprox_participants_total",
        "privapprox_shares_sent_total", "privapprox_shares_forwarded_total",
        "privapprox_shares_consumed_total",
        "privapprox_malformed_dropped_total", "privapprox_stage_ns",
        "privapprox_proxy_received_total", "privapprox_proxy_forwarded_total",
        "privapprox_agg_decode_ns", "privapprox_agg_join_ns",
        "privapprox_topic_records_in", "privapprox_topic_slab_used_bytes",
        "privapprox_channel_depth_hwm"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
  const std::string json = sys.MetricsJson();
  EXPECT_NE(json.find("\"privapprox_epochs_total\":1"), std::string::npos);
  // The timeline captured the epoch's stage spans.
  const std::string trace = sys.TimelineJson();
  EXPECT_NE(trace.find("\"name\":\"epoch\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"answer_shard\""), std::string::npos);
}

TEST(SystemTest, MetricsDisabledKeepsCoreCountersOnly) {
  SystemConfig config;
  config.num_clients = 10;
  config.metrics.enabled = false;
  PrivApproxSystem sys(config);
  for (size_t i = 0; i < config.num_clients; ++i) {
    LoadSpeed(sys, i, 25.0);
  }
  sys.SubmitQuery(SpeedQuery(), ExactParams());
  const EpochStats stats = sys.RunEpoch(1000);
  EXPECT_EQ(stats.participants, 10u);
  const std::string text = sys.MetricsText();
  EXPECT_NE(text.find("privapprox_epochs_total 1"), std::string::npos);
  EXPECT_EQ(text.find("privapprox_stage_ns"), std::string::npos);
  EXPECT_EQ(text.find("privapprox_agg_decode_ns"), std::string::npos);
  // Timeline off by default: no spans recorded.
  EXPECT_NE(sys.TimelineJson().find("\"traceEvents\":[]"), std::string::npos);
}

TEST(SystemTest, ValidatesConfig) {
  SystemConfig config;
  config.num_clients = 0;
  EXPECT_THROW(PrivApproxSystem{config}, std::invalid_argument);
  config.num_clients = 1;
  config.num_proxies = 1;
  EXPECT_THROW(PrivApproxSystem{config}, std::invalid_argument);
}

TEST(SystemTest, RunEpochWithoutQueryThrows) {
  SystemConfig config;
  config.num_clients = 2;
  PrivApproxSystem sys(config);
  EXPECT_THROW(sys.RunEpoch(0), std::logic_error);
}

TEST(SystemTest, ExactPipelineEndToEnd) {
  SystemConfig config;
  config.num_clients = 60;
  PrivApproxSystem sys(config);
  for (size_t i = 0; i < 60; ++i) {
    LoadSpeed(sys, i, i < 45 ? 25.0 : 55.0);  // 75% bucket 2, 25% bucket 5
  }
  sys.SubmitQuery(SpeedQuery(), ExactParams());
  const EpochStats stats = sys.RunEpoch(5000);
  EXPECT_EQ(stats.participants, 60u);
  EXPECT_EQ(stats.shares_sent, 120u);
  EXPECT_EQ(stats.shares_forwarded, 120u);
  EXPECT_EQ(stats.shares_consumed, 120u);
  sys.AdvanceWatermark(10000);
  ASSERT_EQ(sys.results().size(), 1u);
  const auto& result = sys.results()[0].result;
  EXPECT_NEAR(result.buckets[2].estimate.value, 45.0, 1e-9);
  EXPECT_NEAR(result.buckets[5].estimate.value, 15.0, 1e-9);
}

TEST(SystemTest, RandomizedPipelineDebiasesAccurately) {
  SystemConfig config;
  config.num_clients = 4000;
  PrivApproxSystem sys(config);
  for (size_t i = 0; i < 4000; ++i) {
    LoadSpeed(sys, i, i < 2400 ? 25.0 : 55.0);  // 60% / 40%
  }
  core::ExecutionParams params;
  params.sampling_fraction = 0.8;
  params.randomization = {0.7, 0.6};
  sys.SubmitQuery(SpeedQuery(), params);
  sys.RunEpoch(5000);
  sys.Flush();
  ASSERT_EQ(sys.results().size(), 1u);
  const auto& result = sys.results()[0].result;
  EXPECT_NEAR(result.buckets[2].estimate.value, 2400.0, 250.0);
  EXPECT_NEAR(result.buckets[5].estimate.value, 1600.0, 250.0);
  // Both within the stated error bound (generous multiple).
  EXPECT_LE(std::fabs(result.buckets[2].estimate.value - 2400.0),
            2.0 * result.buckets[2].estimate.error);
}

TEST(SystemTest, SamplingReducesParticipantsAndTraffic) {
  SystemConfig config;
  config.num_clients = 2000;
  config.seed = 5;
  PrivApproxSystem full(config);
  PrivApproxSystem sampled(config);
  for (size_t i = 0; i < 2000; ++i) {
    LoadSpeed(full, i, 25.0);
    LoadSpeed(sampled, i, 25.0);
  }
  core::ExecutionParams params = ExactParams();
  full.SubmitQuery(SpeedQuery(), params);
  params.sampling_fraction = 0.4;
  params.randomization = {0.9, 0.6};
  sampled.SubmitQuery(SpeedQuery(), params);
  const EpochStats full_stats = full.RunEpoch(5000);
  const EpochStats sampled_stats = sampled.RunEpoch(5000);
  EXPECT_EQ(full_stats.participants, 2000u);
  EXPECT_NEAR(static_cast<double>(sampled_stats.participants), 800.0, 80.0);
  EXPECT_LT(sampled.ClientToProxyBytes(), full.ClientToProxyBytes());
}

TEST(SystemTest, BudgetPathChoosesParamsAndRuns) {
  SystemConfig config;
  config.num_clients = 500;
  PrivApproxSystem sys(config);
  for (size_t i = 0; i < 500; ++i) {
    LoadSpeed(sys, i, 25.0);
  }
  core::QueryBudget budget;
  budget.max_epsilon = 1.5;
  const core::ExecutionParams params =
      sys.SubmitQuery(SpeedQuery(), budget, 0.6);
  const double eps = core::AmplifyBySampling(
      core::EpsilonDp(params.randomization), params.sampling_fraction);
  EXPECT_LE(eps, 1.5 + 1e-9);
  sys.RunEpoch(5000);
  sys.Flush();
  EXPECT_EQ(sys.results().size(), 1u);
}

TEST(SystemTest, MultiEpochSlidingWindows) {
  SystemConfig config;
  config.num_clients = 30;
  PrivApproxSystem sys(config);
  for (size_t i = 0; i < 30; ++i) {
    LoadSpeed(sys, i, 25.0);
  }
  // Window 10s sliding 5s.
  const core::Query query = core::QueryBuilder()
                                .WithId(1)
                                .WithSql("SELECT speed FROM vehicle")
                                .WithAnswerFormat(
                                    core::AnswerFormat::UniformNumeric(
                                        0, 100, 10, true))
                                .WithFrequencyMs(5000)
                                .WithWindowMs(10000)
                                .WithSlideMs(5000)
                                .Build();
  sys.SubmitQuery(query, ExactParams());
  for (int64_t now = 5000; now <= 30000; now += 5000) {
    // Keep each client's data fresh so every epoch has an answer.
    for (size_t i = 0; i < 30; ++i) {
      sys.client(i).database().GetTable("vehicle").Insert(
          now - 100, {localdb::Value(25.0)});
    }
    sys.RunEpoch(now);
    sys.AdvanceWatermark(now);
  }
  sys.Flush();
  // Sliding windows: each epoch's answers land in two windows.
  EXPECT_GE(sys.results().size(), 5u);
  for (const auto& windowed : sys.results()) {
    EXPECT_GT(windowed.result.participants, 0u);
  }
}

TEST(SystemTest, HistoricalAnalyticsOverCollectedAnswers) {
  SystemConfig config;
  config.num_clients = 100;
  config.historical.enabled = true;
  PrivApproxSystem sys(config);
  for (size_t i = 0; i < 100; ++i) {
    LoadSpeed(sys, i, i < 70 ? 25.0 : 55.0);
  }
  sys.SubmitQuery(SpeedQuery(), ExactParams());
  sys.RunEpoch(5000);
  sys.Flush();
  const core::QueryResult batch =
      sys.RunHistorical(0, 10000, aggregator::BatchQueryBudget{1.0});
  EXPECT_EQ(batch.participants, 100u);
  EXPECT_NEAR(batch.buckets[2].estimate.value, 70.0, 1e-9);
  EXPECT_NEAR(batch.buckets[5].estimate.value, 30.0, 1e-9);
}

TEST(SystemTest, HistoricalDisabledThrows) {
  SystemConfig config;
  config.num_clients = 2;
  PrivApproxSystem sys(config);
  sys.SubmitQuery(SpeedQuery(), ExactParams());
  EXPECT_THROW(sys.RunHistorical(0, 1, aggregator::BatchQueryBudget{1.0}),
               std::logic_error);
}

TEST(SystemTest, InvertedSystemRecoversCounts) {
  SystemConfig config;
  config.num_clients = 50;
  config.invert_answers = true;
  PrivApproxSystem sys(config);
  for (size_t i = 0; i < 50; ++i) {
    LoadSpeed(sys, i, 25.0);  // everyone in bucket 2
  }
  sys.SubmitQuery(SpeedQuery(), ExactParams());
  sys.RunEpoch(5000);
  sys.Flush();
  ASSERT_EQ(sys.results().size(), 1u);
  EXPECT_NEAR(sys.results()[0].result.buckets[2].estimate.value, 50.0, 1e-6);
  EXPECT_NEAR(sys.results()[0].result.buckets[0].estimate.value, 0.0, 1e-6);
}

TEST(SystemTest, TakeResultsDrains) {
  SystemConfig config;
  config.num_clients = 5;
  PrivApproxSystem sys(config);
  for (size_t i = 0; i < 5; ++i) {
    LoadSpeed(sys, i, 25.0);
  }
  sys.SubmitQuery(SpeedQuery(), ExactParams());
  sys.RunEpoch(5000);
  sys.Flush();
  EXPECT_EQ(sys.TakeResults().size(), 1u);
  EXPECT_TRUE(sys.results().empty());
}

TEST(SystemTest, TaxiCaseStudySmoke) {
  SystemConfig config;
  config.num_clients = 300;
  PrivApproxSystem sys(config);
  workload::TaxiGenerator generator(13);
  for (size_t i = 0; i < 300; ++i) {
    generator.PopulateClient(sys.client(i).database(), 3, 0, 5000);
  }
  const core::Query query =
      workload::TaxiGenerator::MakeDistanceQuery(9, 10000, 10000);
  core::ExecutionParams params;
  params.sampling_fraction = 0.9;
  params.randomization = {0.9, 0.3};
  sys.SubmitQuery(query, params);
  sys.RunEpoch(5000);
  sys.Flush();
  ASSERT_EQ(sys.results().size(), 1u);
  const auto& result = sys.results()[0].result;
  EXPECT_GT(result.participants, 200u);
  // The first bucket should hold roughly a third of the population.
  EXPECT_NEAR(result.buckets[0].estimate.value / 300.0, 0.3357, 0.15);
}

TEST(SystemTest, ElectricityCaseStudySmoke) {
  SystemConfig config;
  config.num_clients = 200;
  PrivApproxSystem sys(config);
  workload::ElectricityGenerator generator(17);
  const int64_t window = 30 * 60 * 1000;
  for (size_t i = 0; i < 200; ++i) {
    generator.PopulateClient(sys.client(i).database(), 0, window, 60 * 1000);
  }
  const core::Query query =
      workload::ElectricityGenerator::MakeUsageQuery(10, window, window);
  sys.SubmitQuery(query, ExactParams());
  sys.RunEpoch(window);
  sys.Flush();
  ASSERT_EQ(sys.results().size(), 1u);
  // Every household lands in exactly one bucket: totals must equal clients.
  double total = 0.0;
  for (const auto& bucket : sys.results()[0].result.buckets) {
    total += bucket.estimate.value;
  }
  EXPECT_NEAR(total, 200.0, 1e-6);
}

}  // namespace
}  // namespace privapprox::system
