// Tests for the client runtime: subscription, sampling, local execution,
// randomization, share production, and query inversion at the client.

#include <gtest/gtest.h>

#include "client/client.h"
#include "crypto/xor_cipher.h"

namespace privapprox::client {
namespace {

core::Query MakeQuery(uint64_t id = 1) {
  return core::QueryBuilder()
      .WithId(id)
      .WithSql("SELECT speed FROM vehicle")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 100, 10, true))
      .WithFrequencyMs(1000)
      .WithWindowMs(60000)
      .WithSlideMs(1000)
      .Build();
}

core::ExecutionParams MakeParams(double s = 1.0, double p = 0.9,
                                 double q = 0.6) {
  core::ExecutionParams params;
  params.sampling_fraction = s;
  params.randomization = {p, q};
  return params;
}

Client MakeClientWithData(double speed, uint64_t id = 0) {
  Client client(ClientConfig{id, 2, 7});
  auto& table = client.database().CreateTable("vehicle", {"speed"});
  table.Insert(1000, {localdb::Value(speed)});
  return client;
}

TEST(ClientTest, RejectsTamperedQuery) {
  Client client(ClientConfig{});
  core::Query query = MakeQuery();
  query.sql = "SELECT password FROM secrets";
  EXPECT_THROW(client.Subscribe(query, MakeParams()), std::invalid_argument);
}

TEST(ClientTest, NoAnswerWithoutSubscription) {
  Client client(ClientConfig{});
  EXPECT_FALSE(client.AnswerQuery(1000).has_value());
  EXPECT_THROW(client.query(), std::logic_error);
}

TEST(ClientTest, TruthfulAnswerBucketizesLocalData) {
  Client client = MakeClientWithData(15.0);
  client.Subscribe(MakeQuery(), MakeParams());
  const BitVector truthful = client.TruthfulAnswer(2000);
  EXPECT_EQ(truthful.PopCount(), 1u);
  EXPECT_TRUE(truthful.Get(1));  // 15.0 in [10, 20)
}

TEST(ClientTest, MissingTableYieldsAllZeroAnswer) {
  Client client(ClientConfig{0, 2, 7});
  client.Subscribe(MakeQuery(), MakeParams());
  // No `vehicle` table exists: the client must still answer (all-zero).
  const BitVector truthful = client.TruthfulAnswer(2000);
  EXPECT_EQ(truthful.PopCount(), 0u);
  EXPECT_TRUE(client.AnswerQuery(2000).has_value());
}

TEST(ClientTest, DataOutsideWindowIsIgnored) {
  Client client = MakeClientWithData(15.0);
  client.Subscribe(MakeQuery(), MakeParams());
  // Window is [now - 60s, now); the row at t=1000 is outside at now=100000.
  EXPECT_EQ(client.TruthfulAnswer(100000).PopCount(), 0u);
}

TEST(ClientTest, ProducesOneSharePerProxy) {
  Client client = MakeClientWithData(15.0);
  client.Subscribe(MakeQuery(), MakeParams(1.0, 1.0, 0.5));
  const auto answer = client.AnswerQuery(2000);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->shares.size(), 2u);
  EXPECT_EQ(answer->timestamp_ms, 2000);
  // All shares carry the same MID and equal-length payloads.
  EXPECT_EQ(answer->shares[0].message_id, answer->shares[1].message_id);
  EXPECT_EQ(answer->shares[0].payload.size(),
            answer->shares[1].payload.size());
}

TEST(ClientTest, SharesRecombineToTruthfulAnswerWhenP1) {
  Client client = MakeClientWithData(15.0);
  client.Subscribe(MakeQuery(), MakeParams(1.0, 1.0, 0.5));
  const auto answer = client.AnswerQuery(2000);
  ASSERT_TRUE(answer.has_value());
  const auto plaintext = crypto::XorSplitter::Combine(answer->shares);
  const auto message = crypto::AnswerMessage::Deserialize(plaintext);
  EXPECT_EQ(message.query_id, 1u);
  EXPECT_TRUE(message.answer.Get(1));
  EXPECT_EQ(message.answer.PopCount(), 1u);
}

TEST(ClientTest, SamplingSkipsEpochs) {
  Client client = MakeClientWithData(15.0);
  client.Subscribe(MakeQuery(), MakeParams(0.3));
  int participated = 0;
  const int epochs = 2000;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    if (client.AnswerQuery(2000 + epoch).has_value()) {
      ++participated;
    }
  }
  EXPECT_NEAR(static_cast<double>(participated) / epochs, 0.3, 0.05);
}

TEST(ClientTest, FullSamplingAlwaysParticipates) {
  Client client = MakeClientWithData(15.0);
  client.Subscribe(MakeQuery(), MakeParams(1.0));
  for (int epoch = 0; epoch < 50; ++epoch) {
    EXPECT_TRUE(client.AnswerQuery(2000 + epoch).has_value());
  }
}

TEST(ClientTest, InvertedClientFlipsBits) {
  ClientConfig config;
  config.invert_answers = true;
  config.num_proxies = 2;
  Client client(config);
  auto& table = client.database().CreateTable("vehicle", {"speed"});
  table.Insert(1000, {localdb::Value(15.0)});
  client.Subscribe(MakeQuery(), MakeParams());
  const BitVector truthful = client.TruthfulAnswer(2000);
  EXPECT_EQ(truthful.PopCount(), 10u);  // 11 buckets, one flipped off
  EXPECT_FALSE(truthful.Get(1));
}

TEST(ClientTest, ThreeProxyConfiguration) {
  Client client(ClientConfig{0, 3, 7});
  auto& table = client.database().CreateTable("vehicle", {"speed"});
  table.Insert(1000, {localdb::Value(42.0)});
  client.Subscribe(MakeQuery(), MakeParams(1.0, 1.0, 0.5));
  const auto answer = client.AnswerQuery(2000);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->shares.size(), 3u);
  const auto plaintext = crypto::XorSplitter::Combine(answer->shares);
  EXPECT_TRUE(crypto::AnswerMessage::Deserialize(plaintext).answer.Get(4));
}

TEST(ClientTest, DistinctClientsProduceDistinctMids) {
  Client a = MakeClientWithData(15.0, /*id=*/1);
  Client b = MakeClientWithData(15.0, /*id=*/2);
  a.Subscribe(MakeQuery(), MakeParams());
  b.Subscribe(MakeQuery(), MakeParams());
  const auto answer_a = a.AnswerQuery(2000);
  const auto answer_b = b.AnswerQuery(2000);
  ASSERT_TRUE(answer_a.has_value() && answer_b.has_value());
  EXPECT_NE(answer_a->shares[0].message_id, answer_b->shares[0].message_id);
}

}  // namespace
}  // namespace privapprox::client
