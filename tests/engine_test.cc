// Tests for the dataflow engine: sliding-window assignment, the windowed
// buffer with watermarks and late data, the MID share join (including
// replay/duplicate defense and partial-group eviction), and the pull
// pipeline.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>

#include "crypto/xor_cipher.h"
#include "engine/join.h"
#include "engine/pipeline.h"
#include "engine/window.h"

namespace privapprox::engine {
namespace {

// ------------------------------------------------------------------ windows

TEST(SlidingWindowAssignerTest, TumblingWindow) {
  const SlidingWindowAssigner assigner(10, 10);
  const auto windows = assigner.WindowsFor(25);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].start_ms, 20);
  EXPECT_EQ(windows[0].end_ms, 30);
}

TEST(SlidingWindowAssignerTest, OverlappingWindows) {
  // Window 30 ms sliding by 10 ms: each timestamp is in 3 windows.
  const SlidingWindowAssigner assigner(30, 10);
  const auto windows = assigner.WindowsFor(35);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].start_ms, 30);
  EXPECT_EQ(windows[1].start_ms, 20);
  EXPECT_EQ(windows[2].start_ms, 10);
  for (const Window& w : windows) {
    EXPECT_LE(w.start_ms, 35);
    EXPECT_GT(w.end_ms, 35);
  }
}

TEST(SlidingWindowAssignerTest, BoundaryTimestampBelongsToNewWindow) {
  const SlidingWindowAssigner assigner(20, 10);
  const auto windows = assigner.WindowsFor(20);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].start_ms, 20);  // [20, 40)
  EXPECT_EQ(windows[1].start_ms, 10);  // [10, 30)
}

TEST(SlidingWindowAssignerTest, NegativeTimestamps) {
  const SlidingWindowAssigner assigner(10, 10);
  const auto windows = assigner.WindowsFor(-5);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].start_ms, -10);
  EXPECT_EQ(windows[0].end_ms, 0);
}

TEST(SlidingWindowAssignerTest, RejectsBadPeriods) {
  EXPECT_THROW(SlidingWindowAssigner(0, 1), std::invalid_argument);
  EXPECT_THROW(SlidingWindowAssigner(10, 0), std::invalid_argument);
  EXPECT_THROW(SlidingWindowAssigner(10, 20), std::invalid_argument);
}

TEST(SlidingWindowAssignerTest, TimestampExactlyOnWindowStart) {
  // Tumbling: a timestamp on a boundary belongs to the window starting
  // there, never the one ending there ([start, end) semantics).
  const SlidingWindowAssigner assigner(10, 10);
  const auto windows = assigner.WindowsFor(20);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].start_ms, 20);
  EXPECT_EQ(windows[0].end_ms, 30);
}

TEST(SlidingWindowAssignerTest, TimestampJustBeforeWindowEnd) {
  const SlidingWindowAssigner assigner(10, 10);
  const auto windows = assigner.WindowsFor(19);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].start_ms, 10);
  EXPECT_EQ(windows[0].end_ms, 20);
}

TEST(SlidingWindowAssignerTest, SlidingBoundaryExcludesEndingWindow) {
  // Length 30, slide 10: ts 30 is in [30,60), [20,50), [10,40) — but not
  // [0,30), which ends exactly at 30.
  const SlidingWindowAssigner assigner(30, 10);
  const auto windows = assigner.WindowsFor(30);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].start_ms, 30);
  EXPECT_EQ(windows[1].start_ms, 20);
  EXPECT_EQ(windows[2].start_ms, 10);
}

TEST(SlidingWindowAssignerTest, NegativeTimestampOnBoundary) {
  const SlidingWindowAssigner assigner(10, 10);
  const auto windows = assigner.WindowsFor(-10);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].start_ms, -10);
  EXPECT_EQ(windows[0].end_ms, 0);
}

TEST(SlidingWindowAssignerTest, NegativeTimestampsSliding) {
  const SlidingWindowAssigner assigner(20, 10);
  const auto windows = assigner.WindowsFor(-15);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].start_ms, -20);  // [-20, 0)
  EXPECT_EQ(windows[1].start_ms, -30);  // [-30, -10)
}

TEST(SlidingWindowAssignerTest, AppendWindowsForMatchesWindowsFor) {
  // The allocation-free fast path (including the tumbling shortcut) must
  // agree with the reference implementation everywhere, and must clear any
  // stale content in the output vector.
  for (const auto& [length, slide] :
       {std::pair<int64_t, int64_t>{10, 10}, {30, 10}, {20, 10}, {7, 3}}) {
    const SlidingWindowAssigner assigner(length, slide);
    std::vector<Window> scratch = {Window{-999, -999}};
    for (int64_t ts = -45; ts <= 45; ++ts) {
      assigner.AppendWindowsFor(ts, scratch);
      EXPECT_EQ(scratch, assigner.WindowsFor(ts))
          << "length=" << length << " slide=" << slide << " ts=" << ts;
    }
  }
}

TEST(WindowBufferTest, FiresOnWatermark) {
  std::map<int64_t, size_t> fired;  // window start -> item count
  WindowBuffer<int> buffer(SlidingWindowAssigner(10, 10),
                           [&](const Window& w, const std::vector<int>& items) {
                             fired[w.start_ms] = items.size();
                           });
  buffer.Add(1, 100);
  buffer.Add(5, 101);
  buffer.Add(12, 102);
  EXPECT_TRUE(fired.empty());
  buffer.AdvanceWatermark(10);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 2u);
  buffer.AdvanceWatermark(20);
  EXPECT_EQ(fired[10], 1u);
}

TEST(WindowBufferTest, LateDataIsDroppedAndCounted) {
  int fired = 0;
  WindowBuffer<int> buffer(SlidingWindowAssigner(10, 10),
                           [&](const Window&, const std::vector<int>&) {
                             ++fired;
                           });
  buffer.AdvanceWatermark(50);
  buffer.Add(30, 1);  // behind the watermark
  EXPECT_EQ(buffer.late_dropped(), 1u);
  buffer.AdvanceWatermark(100);
  EXPECT_EQ(fired, 0);
}

TEST(WindowBufferTest, WatermarkNeverMovesBackwards) {
  WindowBuffer<int> buffer(SlidingWindowAssigner(10, 10),
                           [](const Window&, const std::vector<int>&) {});
  buffer.AdvanceWatermark(100);
  buffer.AdvanceWatermark(50);
  EXPECT_EQ(buffer.watermark_ms(), 100);
}

TEST(WindowBufferTest, FlushFiresEverythingPending) {
  int fired = 0;
  WindowBuffer<int> buffer(SlidingWindowAssigner(30, 10),
                           [&](const Window&, const std::vector<int>&) {
                             ++fired;
                           });
  buffer.Add(25, 1);  // 3 overlapping windows
  EXPECT_EQ(buffer.pending_windows(), 3u);
  buffer.Flush();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(buffer.pending_windows(), 0u);
}

TEST(WindowBufferTest, SlidingWindowsShareItems) {
  std::map<int64_t, std::vector<int>> fired;
  WindowBuffer<int> buffer(SlidingWindowAssigner(20, 10),
                           [&](const Window& w, const std::vector<int>& items) {
                             fired[w.start_ms] = items;
                           });
  buffer.Add(15, 7);  // in [0,20) and [10,30)
  buffer.AdvanceWatermark(40);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], std::vector<int>{7});
  EXPECT_EQ(fired[10], std::vector<int>{7});
}

TEST(WindowBufferTest, AddAfterFlushCountsAsLate) {
  // Regression: Flush used to leave the watermark where it was, so a
  // post-flush Add would silently start a window that could never fire.
  int fired = 0;
  WindowBuffer<int> buffer(SlidingWindowAssigner(10, 10),
                           [&](const Window&, const std::vector<int>&) {
                             ++fired;
                           });
  buffer.Add(5, 1);
  buffer.Flush();
  EXPECT_EQ(fired, 1);
  buffer.Add(100, 2);  // stream is over: must not buffer
  EXPECT_EQ(buffer.pending_windows(), 0u);
  EXPECT_EQ(buffer.late_dropped(), 1u);
  buffer.AdvanceWatermark(INT64_MAX);
  EXPECT_EQ(fired, 1);
}

TEST(WindowBufferTest, RvalueAddMovesIntoLastWindow) {
  // An item spanning k windows is copied k-1 times and moved once (into
  // the last-assigned window). Observable: the moved-from source is empty,
  // and every fired window holds the full item.
  std::map<int64_t, std::vector<std::vector<int>>> fired;
  WindowBuffer<std::vector<int>> buffer(
      SlidingWindowAssigner(20, 10),
      [&](const Window& w, const std::vector<std::vector<int>>& items) {
        fired[w.start_ms] = items;
      });
  std::vector<int> item = {1, 2, 3};
  buffer.Add(15, std::move(item));  // in [0,20) and [10,30)
  EXPECT_TRUE(item.empty());        // NOLINT(bugprone-use-after-move)
  buffer.AdvanceWatermark(40);
  ASSERT_EQ(fired.size(), 2u);
  const std::vector<int> expected = {1, 2, 3};
  EXPECT_EQ(fired[0], std::vector<std::vector<int>>{expected});
  EXPECT_EQ(fired[10], std::vector<std::vector<int>>{expected});
}

// --------------------------------------------- accumulating window buffer

// Minimal additive accumulator for AccumulatingWindowBuffer tests.
struct SumAcc {
  int64_t sum = 0;
  size_t n = 0;
  void Add(int v) {
    sum += v;
    ++n;
  }
};

TEST(AccumulatingWindowBufferTest, FoldsAndDrainsOnWatermark) {
  AccumulatingWindowBuffer<SumAcc> buffer{SlidingWindowAssigner(10, 10)};
  buffer.Fold(1, 100, [] { return SumAcc{}; });
  buffer.Fold(5, 10, [] { return SumAcc{}; });
  buffer.Fold(12, 7, [] { return SumAcc{}; });
  EXPECT_EQ(buffer.pending_windows(), 2u);

  std::vector<std::pair<Window, SumAcc>> fired;
  buffer.DrainFired(10, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first.start_ms, 0);
  EXPECT_EQ(fired[0].second.sum, 110);
  EXPECT_EQ(fired[0].second.n, 2u);
  EXPECT_EQ(buffer.pending_windows(), 1u);

  // Watermark never moves backwards; nothing re-fires.
  buffer.DrainFired(5, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(buffer.watermark_ms(), 10);
}

TEST(AccumulatingWindowBufferTest, SlidingWindowsEachAccumulate) {
  AccumulatingWindowBuffer<SumAcc> buffer{SlidingWindowAssigner(20, 10)};
  buffer.Fold(15, 3, [] { return SumAcc{}; });  // in [0,20) and [10,30)
  std::vector<std::pair<Window, SumAcc>> fired;
  buffer.DrainFired(40, fired);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].first.start_ms, 0);   // ascending window order
  EXPECT_EQ(fired[1].first.start_ms, 10);
  EXPECT_EQ(fired[0].second.sum, 3);
  EXPECT_EQ(fired[1].second.sum, 3);
}

TEST(AccumulatingWindowBufferTest, LateFoldsDropAndDrainAllPinsWatermark) {
  AccumulatingWindowBuffer<SumAcc> buffer{SlidingWindowAssigner(10, 10)};
  std::vector<std::pair<Window, SumAcc>> none;
  buffer.DrainFired(50, none);
  EXPECT_TRUE(none.empty());
  buffer.Fold(30, 1, [] { return SumAcc{}; });  // behind the watermark
  EXPECT_EQ(buffer.late_dropped(), 1u);
  buffer.Fold(60, 2, [] { return SumAcc{}; });
  std::vector<std::pair<Window, SumAcc>> fired;
  buffer.DrainAll(fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].second.sum, 2);
  // Stream over: later folds are late, mirroring WindowBuffer::Flush.
  buffer.Fold(1000, 3, [] { return SumAcc{}; });
  EXPECT_EQ(buffer.pending_windows(), 0u);
  EXPECT_EQ(buffer.late_dropped(), 2u);
}

// --------------------------------------------------------------------- join

crypto::MessageShare Share(uint64_t mid, std::vector<uint8_t> payload) {
  return crypto::MessageShare{mid, std::move(payload)};
}

TEST(MidJoinerTest, JoinsWhenAllSharesArrive) {
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> emitted;
  MidJoiner joiner(2, 1000,
                   [&](uint64_t mid, std::vector<uint8_t> plaintext, int64_t) {
                     emitted.emplace_back(mid, std::move(plaintext));
                   });
  joiner.Add(Share(7, {0xF0}), 10, /*source=*/0);
  EXPECT_TRUE(emitted.empty());
  joiner.Add(Share(7, {0x0F}), 12, /*source=*/1);
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].first, 7u);
  EXPECT_EQ(emitted[0].second, std::vector<uint8_t>{0xFF});
  EXPECT_EQ(joiner.stats().joined, 1u);
}

TEST(MidJoinerTest, EmitsWithFirstSeenTimestamp) {
  int64_t emitted_ts = -1;
  MidJoiner joiner(2, 1000,
                   [&](uint64_t, std::vector<uint8_t>, int64_t ts) {
                     emitted_ts = ts;
                   });
  joiner.Add(Share(1, {0}), 100, 0);
  joiner.Add(Share(1, {0}), 250, 1);
  EXPECT_EQ(emitted_ts, 100);
}

TEST(MidJoinerTest, ThreeWayJoinRoundTrip) {
  crypto::XorSplitter splitter(3, crypto::ChaCha20Rng::FromSeed(1, 0));
  const std::vector<uint8_t> plaintext = {1, 2, 3, 4};
  const auto shares = splitter.Split(plaintext);
  std::vector<uint8_t> recovered;
  MidJoiner joiner(3, 1000,
                   [&](uint64_t, std::vector<uint8_t> out, int64_t) {
                     recovered = std::move(out);
                   });
  // Arrive out of order (the share's own source index still identifies the
  // stream it traveled on).
  joiner.Add(shares[2], 1, 2);
  joiner.Add(shares[0], 2, 0);
  joiner.Add(shares[1], 3, 1);
  EXPECT_EQ(recovered, plaintext);
}

TEST(MidJoinerTest, ReplayedMidIsDropped) {
  int emitted = 0;
  MidJoiner joiner(2, 1000,
                   [&](uint64_t, std::vector<uint8_t>, int64_t) { ++emitted; });
  joiner.Add(Share(5, {1}), 0, 0);
  joiner.Add(Share(5, {2}), 0, 1);
  EXPECT_EQ(emitted, 1);
  // A malicious client replays the same MID to distort the count (§3.2.4).
  joiner.Add(Share(5, {1}), 1, 0);
  joiner.Add(Share(5, {2}), 1, 1);
  EXPECT_EQ(emitted, 1);
  EXPECT_EQ(joiner.stats().duplicates_dropped, 2u);
}

TEST(MidJoinerTest, EvictsStalePartialGroups) {
  int emitted = 0;
  MidJoiner joiner(2, 100,
                   [&](uint64_t, std::vector<uint8_t>, int64_t) { ++emitted; });
  joiner.Add(Share(9, {1}), 0, 0);  // second share never arrives
  EXPECT_EQ(joiner.pending_groups(), 1u);
  joiner.EvictStale(200);
  EXPECT_EQ(joiner.pending_groups(), 0u);
  EXPECT_EQ(joiner.stats().evicted_partial, 1u);
  // The straggler share is dropped as late — it must not start a fresh,
  // never-completable group (which would double-count the loss on the next
  // eviction pass).
  joiner.Add(Share(9, {2}), 201, 1);
  EXPECT_EQ(emitted, 0);
  EXPECT_EQ(joiner.pending_groups(), 0u);
  EXPECT_EQ(joiner.stats().late_dropped, 1u);
}

TEST(MidJoinerTest, LastShareExactlyAtEvictionCutoffStillJoins) {
  // Eviction is strict (first_seen < now - timeout): the watermark landing
  // exactly on first_seen + timeout does not expire the group, so a sibling
  // arriving in the same instant still completes the join.
  int emitted = 0;
  MidJoiner joiner(2, 100,
                   [&](uint64_t, std::vector<uint8_t>, int64_t) { ++emitted; });
  joiner.Add(Share(4, {0x0F}), 50, 0);
  joiner.EvictStale(150);  // cutoff = 50: 50 < 50 is false -> keep waiting
  EXPECT_EQ(joiner.pending_groups(), 1u);
  EXPECT_EQ(joiner.stats().evicted_partial, 0u);
  joiner.Add(Share(4, {0xF0}), 150, 1);
  EXPECT_EQ(emitted, 1);
  // One more millisecond and it would have been evicted.
  joiner.Add(Share(6, {1}), 50, 0);
  joiner.EvictStale(151);
  EXPECT_EQ(joiner.pending_groups(), 0u);
  EXPECT_EQ(joiner.stats().evicted_partial, 1u);
}

TEST(MidJoinerTest, DuplicateShareAfterExpiryIsLateDropped) {
  int emitted = 0;
  MidJoiner joiner(2, 100,
                   [&](uint64_t, std::vector<uint8_t>, int64_t) { ++emitted; });
  joiner.Add(Share(8, {1}), 0, 0);
  joiner.EvictStale(200);
  EXPECT_EQ(joiner.stats().evicted_partial, 1u);
  // Even a redelivery of the share the group already had counts as late,
  // not as a same-slot duplicate — the group no longer exists.
  joiner.Add(Share(8, {1}), 205, 0);
  joiner.Add(Share(8, {2}), 206, 1);
  EXPECT_EQ(emitted, 0);
  EXPECT_EQ(joiner.pending_groups(), 0u);
  EXPECT_EQ(joiner.stats().late_dropped, 2u);
  EXPECT_EQ(joiner.stats().duplicates_dropped, 0u);
}

TEST(MidJoinerTest, RememberedMidSetsStayBoundedOverManyEpochs) {
  // Regression: completed_mids_/expired_mids_ used to grow for the life of
  // the run — one entry per MID ever seen. EvictStale now prunes both
  // behind its cutoff, so across many epochs the remembered set stays
  // bounded by the MIDs seen within the last join timeout, while replay
  // and straggler defense still hold inside that horizon.
  int emitted = 0;
  MidJoiner joiner(2, 100,
                   [&](uint64_t, std::vector<uint8_t>, int64_t) { ++emitted; });
  size_t max_remembered = 0;
  uint64_t next_mid = 1;
  for (int64_t epoch = 0; epoch < 200; ++epoch) {
    const int64_t now = epoch * 100;
    for (int i = 0; i < 10; ++i) {
      const uint64_t mid = next_mid++;
      joiner.Add(Share(mid, {1}), now, 0);
      if (i % 2 == 0) {
        joiner.Add(Share(mid, {2}), now, 1);  // completes
      }  // else: partial, expires at the watermark
    }
    joiner.EvictStale(now + 100);
    max_remembered = std::max(max_remembered, joiner.remembered_mids());
  }
  // Strict cutoff: the final epoch's partials outlive its own watermark by
  // design; one more advance expires them.
  joiner.EvictStale(200 * 100 + 100);
  EXPECT_EQ(emitted, 200 * 5);
  EXPECT_EQ(joiner.stats().evicted_partial, 200u * 5u);
  EXPECT_EQ(joiner.pending_groups(), 0u);
  // Each epoch remembers at most its own 10 MIDs plus the previous epoch's
  // (stamps within one timeout of the watermark) — far below the 2000 MIDs
  // an unbounded set would hold.
  EXPECT_LE(max_remembered, 40u);
  EXPECT_LE(joiner.remembered_mids(), 40u);
}

TEST(MidJoinerTest, ReplayAfterPruneRestartsButReexpires) {
  // Beyond the remembered horizon, a replayed MID is indistinguishable from
  // a new one: it restarts a group that can never complete and is evicted
  // again at the next watermark — counted as evicted, never double-joined.
  int emitted = 0;
  MidJoiner joiner(2, 100,
                   [&](uint64_t, std::vector<uint8_t>, int64_t) { ++emitted; });
  joiner.Add(Share(7, {1}), 0, 0);
  joiner.Add(Share(7, {2}), 0, 1);
  EXPECT_EQ(emitted, 1);
  joiner.EvictStale(1000);  // prunes the completed-MID memory of 7
  EXPECT_EQ(joiner.remembered_mids(), 0u);
  joiner.Add(Share(7, {1}), 1001, 0);  // ancient replay
  EXPECT_EQ(joiner.pending_groups(), 1u);
  joiner.EvictStale(2000);
  EXPECT_EQ(emitted, 1);
  EXPECT_EQ(joiner.pending_groups(), 0u);
  EXPECT_EQ(joiner.stats().evicted_partial, 1u);
}

TEST(MidJoinerTest, EvictFnReportsMidAndFirstSeen) {
  std::vector<std::pair<uint64_t, int64_t>> evicted;
  MidJoiner joiner(2, 100,
                   [](uint64_t, std::vector<uint8_t>, int64_t) {});
  joiner.set_evict_fn([&](uint64_t mid, int64_t first_seen_ms) {
    evicted.emplace_back(mid, first_seen_ms);
  });
  joiner.Add(Share(11, {1}), 10, 0);
  joiner.Add(Share(12, {2}), 20, 1);
  joiner.EvictStale(500);
  ASSERT_EQ(evicted.size(), 2u);
  std::sort(evicted.begin(), evicted.end());
  EXPECT_EQ(evicted[0], (std::pair<uint64_t, int64_t>{11, 10}));
  EXPECT_EQ(evicted[1], (std::pair<uint64_t, int64_t>{12, 20}));
}

TEST(MidJoinerTest, RejectsBadConfig) {
  const auto noop = [](uint64_t, std::vector<uint8_t>, int64_t) {};
  EXPECT_THROW(MidJoiner(1, 1000, noop), std::invalid_argument);
  EXPECT_THROW(MidJoiner(2, 0, noop), std::invalid_argument);
}

TEST(MidJoinerTest, RejectsBadSource) {
  MidJoiner joiner(2, 1000, [](uint64_t, std::vector<uint8_t>, int64_t) {});
  EXPECT_THROW(joiner.Add(Share(1, {0}), 0, 2), std::out_of_range);
}

TEST(MidJoinerTest, SameStreamRedeliveryCannotSelfJoin) {
  // The same share delivered twice on one stream must not XOR with itself
  // into a zero "plaintext" — it fills one slot and the copy is dropped.
  int emitted = 0;
  std::vector<uint8_t> plaintext_out;
  MidJoiner joiner(2, 1000,
                   [&](uint64_t, std::vector<uint8_t> plaintext, int64_t) {
                     ++emitted;
                     plaintext_out = std::move(plaintext);
                   });
  joiner.Add(Share(3, {0xAA}), 0, 0);
  joiner.Add(Share(3, {0xAA}), 1, 0);  // redelivery on stream 0
  EXPECT_EQ(emitted, 0);
  EXPECT_EQ(joiner.stats().duplicates_dropped, 1u);
  joiner.Add(Share(3, {0x55}), 2, 1);  // the real sibling
  EXPECT_EQ(emitted, 1);
  EXPECT_EQ(plaintext_out, std::vector<uint8_t>{0xFF});
}

TEST(MidJoinerTest, ManyInterleavedGroups) {
  crypto::XorSplitter splitter(2, crypto::ChaCha20Rng::FromSeed(2, 0));
  std::vector<std::vector<crypto::MessageShare>> all;
  for (uint8_t i = 0; i < 100; ++i) {
    all.push_back(splitter.Split({i}));
  }
  size_t emitted = 0;
  MidJoiner joiner(2, 1000,
                   [&](uint64_t, std::vector<uint8_t> plaintext, int64_t) {
                     ++emitted;
                     ASSERT_EQ(plaintext.size(), 1u);
                   });
  // First shares of everyone, then second shares of everyone.
  for (const auto& shares : all) {
    joiner.Add(shares[0], 0, 0);
  }
  for (const auto& shares : all) {
    joiner.Add(shares[1], 1, 1);
  }
  EXPECT_EQ(emitted, 100u);
}

// ----------------------------------------------------------------- pipeline

TEST(PullPipelineTest, SequentialDrainSeesEveryRecord) {
  broker::Broker b;
  broker::Topic& topic = b.CreateTopic("t", 2);
  for (uint64_t key = 0; key < 1000; ++key) {
    topic.Append(key, {1}, 0);
  }
  broker::Consumer consumer(topic);
  size_t seen = 0;
  const auto stats = PullPipeline::DrainSequential(
      consumer,
      [&](std::vector<broker::Record>&& batch) { seen += batch.size(); },
      128);
  EXPECT_EQ(seen, 1000u);
  EXPECT_EQ(stats.records, 1000u);
  EXPECT_GT(stats.batches, 1u);
}

TEST(PullPipelineTest, ParallelDrainCountsMatch) {
  broker::Broker b;
  broker::Topic& topic = b.CreateTopic("t", 4);
  for (uint64_t key = 0; key < 5000; ++key) {
    topic.Append(key, {1}, 0);
  }
  broker::Consumer consumer(topic);
  ThreadPool pool(4);
  std::atomic<size_t> seen{0};
  const auto stats = PullPipeline::DrainParallel(
      consumer, pool, [&](const broker::Record&) { seen++; }, 512);
  EXPECT_EQ(seen.load(), 5000u);
  EXPECT_EQ(stats.records, 5000u);
}

}  // namespace
}  // namespace privapprox::engine
